/**
 * @file
 * The Table I workload registry.
 *
 * All 40 workloads the paper evaluates, across five suites (Parboil,
 * Rodinia, CUDA SDK, Cactus, MLPerf inference), with their published
 * kernel and invocation counts and a per-workload statistical
 * character tuned to reproduce the paper's observations:
 *   - Fig. 2 tier structure (e.g. gms/lmr all Tier-1/2 even at
 *     theta = 0.1; gst mostly Tier-3; gru/lmc/bert/resnet50 all
 *     Tier-1/2 for theta >= 0.5),
 *   - the dispersion pressure behind PKS' errors (Figs. 3-5),
 *   - the cross-architecture behaviour of Fig. 9 (gst/dcg/lgt much
 *     faster on Ampere; lmc/lmr slower on Ampere).
 *
 * Invocation counts are scaled down proportionally (default cap
 * 24,000 per workload) to keep end-to-end experiment runtimes in
 * seconds; every reported fraction and ratio is scale-invariant.
 */

#ifndef SIEVE_WORKLOADS_SUITES_HH
#define SIEVE_WORKLOADS_SUITES_HH

#include <optional>
#include <string>
#include <vector>

#include "workloads/spec.hh"

namespace sieve::workloads {

/** Default cap on generated invocations per workload. */
inline constexpr size_t kDefaultInvocationCap = 24'000;

/** The five Parboil workloads of Table I. */
std::vector<WorkloadSpec> parboilSpecs(
    size_t cap = kDefaultInvocationCap);

/** The nine Rodinia workloads of Table I. */
std::vector<WorkloadSpec> rodiniaSpecs(
    size_t cap = kDefaultInvocationCap);

/** The ten CUDA SDK workloads of Table I. */
std::vector<WorkloadSpec> sdkSpecs(size_t cap = kDefaultInvocationCap);

/** The ten Cactus workloads of Table I. */
std::vector<WorkloadSpec> cactusSpecs(
    size_t cap = kDefaultInvocationCap);

/** The six MLPerf inference workloads of Table I. */
std::vector<WorkloadSpec> mlperfSpecs(
    size_t cap = kDefaultInvocationCap);

/** All 40 Table I workloads, suite order. */
std::vector<WorkloadSpec> allSpecs(size_t cap = kDefaultInvocationCap);

/** The challenging suites the evaluation focuses on (Cactus+MLPerf). */
std::vector<WorkloadSpec> challengingSpecs(
    size_t cap = kDefaultInvocationCap);

/** The traditional suites of Fig. 8 (Parboil+Rodinia+SDK). */
std::vector<WorkloadSpec> traditionalSpecs(
    size_t cap = kDefaultInvocationCap);

/** Look a spec up by workload name ("lmc") or "suite/name". */
std::optional<WorkloadSpec> findSpec(
    const std::string &name, size_t cap = kDefaultInvocationCap);

} // namespace sieve::workloads

#endif // SIEVE_WORKLOADS_SUITES_HH
