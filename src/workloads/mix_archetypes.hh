/**
 * @file
 * Instruction-mix archetypes for synthetic kernels.
 *
 * Real GPU-compute kernels fall into a handful of behavioural
 * families (tiled GEMM, elementwise map, reduction, stencil,
 * gather/scatter, bulk copy). Distinct kernels drawn from the same
 * family produce *similar microarchitecture-independent feature
 * vectors* — which is exactly why PKS can cluster invocations from
 * different kernels together (paper Section II-B) — while their
 * hidden locality and latency behaviour still differs. The archetype
 * table is the source of both effects.
 */

#ifndef SIEVE_WORKLOADS_MIX_ARCHETYPES_HH
#define SIEVE_WORKLOADS_MIX_ARCHETYPES_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "trace/instruction_mix.hh"
#include "trace/memory_profile.hh"

namespace sieve::workloads {

/** Behavioural families for synthetic kernels. */
enum class Archetype : uint8_t {
    Gemm,        //!< tiled matrix multiply: shared-memory heavy
    Elementwise, //!< streaming map: coalesced global traffic
    Reduction,   //!< tree reduction: shared memory plus atomics
    Stencil,     //!< neighbourhood access: high spatial locality
    Gather,      //!< irregular gather/scatter: poor coalescing
    Copy,        //!< bandwidth-bound bulk transfer
};

inline constexpr size_t kNumArchetypes = 6;

/** Display name of an archetype. */
const char *archetypeName(Archetype a);

/**
 * A kernel's static mix profile: the per-instruction fractions that,
 * multiplied by an invocation's dynamic instruction count, yield its
 * InstructionMix. Fixed per kernel so that two invocations of the
 * same kernel with the same instruction count produce *identical*
 * feature vectors (the Tier-1 property the paper observes).
 */
struct MixProfile
{
    Archetype archetype = Archetype::Elementwise;

    // Per-warp-instruction fractions of thread-level memory
    // operations (each in [0, 1), summing below 1).
    double globalLoadFrac = 0.1;
    double globalStoreFrac = 0.05;
    double localLoadFrac = 0.0;
    double sharedLoadFrac = 0.0;
    double sharedStoreFrac = 0.0;
    double atomicFrac = 0.0;

    /** Average 32B sectors per global-memory warp access (1..32). */
    double sectorsPerAccess = 1.0;

    /** SIMT lane efficiency in [0, 1]. */
    double divergenceEfficiency = 1.0;

    /** Thread-level instructions executed per thread. */
    double instsPerThread = 1000.0;

    /** Hidden (profile-invisible) behaviour of this kernel. */
    trace::MemoryProfile memory;
};

/**
 * Draw a kernel mix profile from an archetype family.
 *
 * @param archetype the behavioural family
 * @param rng per-kernel random stream
 * @param hidden_spread how widely the *hidden* locality parameters
 *        vary across kernels of the same family, in [0, 1]. Larger
 *        values widen the cycle-count dispersion inside feature-space
 *        clusters (the PKS failure mode of Fig. 4) without changing
 *        the visible features.
 */
MixProfile drawMixProfile(Archetype archetype, Rng &rng,
                          double hidden_spread);

/**
 * Realize the visible InstructionMix of one invocation from its
 * kernel's profile, dynamic size, and launch geometry.
 *
 * @param profile the kernel's static mix profile
 * @param warp_insts dynamic warp-level instruction count
 * @param num_ctas thread blocks launched
 * @param warp_size lanes per warp
 */
trace::InstructionMix realizeMix(const MixProfile &profile,
                                 uint64_t warp_insts, uint64_t num_ctas,
                                 uint32_t warp_size = 32);

} // namespace sieve::workloads

#endif // SIEVE_WORKLOADS_MIX_ARCHETYPES_HH
