/**
 * @file
 * Synthetic workload generation from a WorkloadSpec.
 *
 * The generator resolves a spec into kernel specs (patterns, mixes,
 * hidden behaviour), lays the invocations out on a chronological
 * timeline with realistic interleaving, and realizes per-invocation
 * instruction counts, launch geometry, and feature vectors. All
 * randomness derives from the spec's seed label, so a given spec
 * always produces the identical workload.
 */

#ifndef SIEVE_WORKLOADS_GENERATOR_HH
#define SIEVE_WORKLOADS_GENERATOR_HH

#include <vector>

#include "trace/workload.hh"
#include "workloads/spec.hh"

namespace sieve::workloads {

/**
 * Resolve the per-kernel specifications of a workload.
 * Deterministic in the spec; exposed separately for tests and for
 * inspection tools.
 */
std::vector<KernelSpec> buildKernelSpecs(const WorkloadSpec &spec);

/** Generate the concrete workload a spec describes. */
trace::Workload generateWorkload(const WorkloadSpec &spec);

} // namespace sieve::workloads

#endif // SIEVE_WORKLOADS_GENERATOR_HH
