#include "workloads/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sieve::workloads {

const char *
countPatternName(CountPattern p)
{
    switch (p) {
      case CountPattern::Constant:
        return "constant";
      case CountPattern::LowVariance:
        return "low-variance";
      case CountPattern::Multimodal:
        return "multimodal";
      case CountPattern::Drift:
        return "drift";
    }
    panic("unknown count pattern ", static_cast<int>(p));
}

namespace {

/** Lognormal sigma that yields a target coefficient of variation. */
double
lognormalSigmaForCov(double cov)
{
    return std::sqrt(std::log(1.0 + cov * cov));
}

constexpr uint64_t kMinWarpInsts = 20'000;

/** CTA size palette; weighted towards the common 128/256 choices. */
uint32_t
drawCtaSize(Rng &rng)
{
    static const uint32_t sizes[] = {64, 128, 256, 512, 1024};
    static const std::vector<double> weights = {1.0, 3.0, 4.0, 2.0, 0.5};
    return sizes[rng.categorical(weights)];
}

/**
 * Per-kernel instruction counts for each of its n invocations, by
 * pattern. Counts are indexed by the kernel's own chronological
 * ordinal (0 = its first invocation), which matters for Drift.
 */
std::vector<uint64_t>
drawCounts(const KernelSpec &spec, size_t n, Rng &rng)
{
    std::vector<uint64_t> counts(n);
    double base = spec.baseInstructions;

    switch (spec.pattern) {
      case CountPattern::Constant: {
        uint64_t c = std::max<uint64_t>(
            static_cast<uint64_t>(base), kMinWarpInsts);
        std::fill(counts.begin(), counts.end(), c);
        break;
      }
      case CountPattern::LowVariance: {
        double sigma = lognormalSigmaForCov(spec.covTarget);
        double mu = std::log(base) - 0.5 * sigma * sigma;
        for (auto &c : counts) {
            c = std::max<uint64_t>(
                static_cast<uint64_t>(rng.logNormal(mu, sigma)),
                kMinWarpInsts);
        }
        break;
      }
      case CountPattern::Multimodal: {
        size_t modes = std::max<size_t>(spec.numModes, 2);
        // Geometric mode spacing; the span grows with the CoV target.
        double span = std::max(spec.covTarget * 3.0, 2.0);
        double step = std::pow(span, 1.0 / static_cast<double>(modes - 1));
        std::vector<double> mode_base(modes);
        std::vector<double> mode_weight(modes);
        for (size_t m = 0; m < modes; ++m) {
            mode_base[m] = base * std::pow(step, static_cast<double>(m)) /
                           std::sqrt(span);
            mode_weight[m] = rng.uniform(0.5, 2.0);
        }
        double jitter_sigma = lognormalSigmaForCov(0.02);
        for (auto &c : counts) {
            size_t m = rng.categorical(mode_weight);
            c = std::max<uint64_t>(
                static_cast<uint64_t>(
                    mode_base[m] * rng.logNormal(0.0, jitter_sigma)),
                kMinWarpInsts);
        }
        break;
      }
      case CountPattern::Drift: {
        double ratio = std::max(spec.driftRatio, 1.01);
        double jitter_sigma = lognormalSigmaForCov(0.02);
        for (size_t i = 0; i < n; ++i) {
            double t = n > 1
                           ? static_cast<double>(i) /
                                 static_cast<double>(n - 1)
                           : 0.0;
            double scale = 1.0 + (ratio - 1.0) * t;
            counts[i] = std::max<uint64_t>(
                static_cast<uint64_t>(base * scale *
                                      rng.logNormal(0.0, jitter_sigma)),
                kMinWarpInsts);
        }
        break;
      }
    }
    return counts;
}

} // namespace

std::vector<KernelSpec>
buildKernelSpecs(const WorkloadSpec &spec)
{
    SIEVE_ASSERT(spec.numKernels > 0, "workload with zero kernels");
    const WorkloadCharacter &ch = spec.character;
    Rng rng = Rng("kernels:" + spec.seedLabel());

    size_t n = spec.numKernels;
    std::vector<KernelSpec> kernels(n);

    // Invocation shares: Zipf over a shuffled rank order.
    std::vector<size_t> ranks(n);
    std::iota(ranks.begin(), ranks.end(), 0);
    rng.shuffle(ranks);
    for (size_t k = 0; k < n; ++k) {
        kernels[k].invocationWeight = 1.0 /
            std::pow(static_cast<double>(ranks[k] + 1), ch.zipfExponent);
    }

    // Pattern assignment: round the fractional targets to kernel
    // counts. Drift patterns optionally pin to the highest-share
    // kernels (driftOnHeavy); everything else is shuffled so pattern
    // does not correlate with kernel id.
    struct PatternSlot
    {
        CountPattern pattern;
        bool slow;
        double covHint = 0.0; //!< fixed CoV target when positive
    };
    auto frac_count = [n](double f) {
        return std::min(static_cast<size_t>(
                            std::round(f * static_cast<double>(n))),
                        n);
    };
    size_t tier1 = frac_count(ch.tier1Frac);
    size_t tier3 = std::min(frac_count(ch.tier3Frac), n - tier1);
    size_t fast_drift =
        std::min(frac_count(ch.driftFrac), n - tier1 - tier3);
    size_t slow_drift = std::min(frac_count(ch.slowDriftFrac),
                                 n - tier1 - tier3 - fast_drift);

    std::vector<PatternSlot> drift_slots;
    drift_slots.insert(drift_slots.end(), fast_drift,
                       {CountPattern::Drift, false});
    drift_slots.insert(drift_slots.end(), slow_drift,
                       {CountPattern::Drift, true});

    std::vector<PatternSlot> other_slots;
    other_slots.insert(other_slots.end(), tier1,
                       {CountPattern::Constant, false});
    other_slots.insert(other_slots.end(), tier3,
                       {CountPattern::Multimodal, false});
    other_slots.insert(other_slots.end(),
                       n - tier1 - tier3 - drift_slots.size(),
                       {CountPattern::LowVariance, false});

    std::vector<PatternSlot> slots(n);
    if (ch.driftOnHeavy) {
        // Invocation-count leaders stay Tier-1 (Fig. 2: most
        // invocations show little to no count variability); the next
        // tier of kernels — which the generator below gives larger
        // per-invocation sizes, so they dominate *cycles* — drifts.
        std::vector<size_t> by_weight(n);
        std::iota(by_weight.begin(), by_weight.end(), 0);
        std::stable_sort(by_weight.begin(), by_weight.end(),
                         [&](size_t a, size_t b) {
                             return kernels[a].invocationWeight >
                                    kernels[b].invocationWeight;
                         });

        size_t n_top = std::min<size_t>(
            tier1, (n + 3) / 4); // top quarter by invocation count
        auto constant_end = std::stable_partition(
            other_slots.begin(), other_slots.end(),
            [](const PatternSlot &s) {
                return s.pattern == CountPattern::Constant;
            });
        size_t n_const =
            static_cast<size_t>(constant_end - other_slots.begin());
        n_top = std::min(n_top, n_const);

        // other_slots now: [constants..., rest...]. Reserve n_top
        // constants for the leaders, shuffle everything else.
        std::vector<PatternSlot> rest(other_slots.begin() +
                                          static_cast<long>(n_top),
                                      other_slots.end());
        rng.shuffle(rest);

        size_t next_rest = 0;
        for (size_t pos = 0; pos < n; ++pos) {
            PatternSlot slot;
            if (pos < n_top) {
                // Alternate exact-repeat and near-repeat leaders:
                // Fig. 2 shows a sizeable Tier-2 share even at
                // theta = 0.1, i.e. heavy kernels whose counts vary
                // by only a few percent.
                if (pos % 3 == 1) {
                    slot = {CountPattern::LowVariance, false,
                            rng.uniform(0.02, 0.09)};
                } else {
                    slot = {CountPattern::Constant, false, 0.0};
                }
            } else if (pos < n_top + drift_slots.size()) {
                slot = drift_slots[pos - n_top];
            } else {
                slot = rest[next_rest++];
            }
            slots[by_weight[pos]] = slot;
        }
    } else {
        std::vector<PatternSlot> pool = drift_slots;
        pool.insert(pool.end(), other_slots.begin(), other_slots.end());
        rng.shuffle(pool);
        slots = pool;
    }

    std::vector<double> arch_weights(ch.archetypeWeights.begin(),
                                     ch.archetypeWeights.end());

    for (size_t k = 0; k < n; ++k) {
        KernelSpec &ks = kernels[k];
        ks.pattern = slots[k].pattern;

        double log10_base =
            rng.uniform(ch.baseInstLog10Lo, ch.baseInstLog10Hi);
        if (ch.driftOnHeavy && ks.pattern == CountPattern::Drift) {
            // Drift kernels sit at the top of the size range so they
            // carry the cycle share even though the invocation-count
            // leaders are Tier-1.
            log10_base = rng.uniform(ch.baseInstLog10Hi - 0.4,
                                     ch.baseInstLog10Hi + 0.2);
        }
        ks.baseInstructions = std::pow(10.0, log10_base);

        switch (ks.pattern) {
          case CountPattern::Constant:
            ks.covTarget = 0.0;
            break;
          case CountPattern::LowVariance: {
            if (slots[k].covHint > 0.0) {
                ks.covTarget = slots[k].covHint;
                break;
            }
            // Log-uniform CoV draw across [covLo, covHi].
            double u = rng.uniform(std::log(ch.covLo),
                                   std::log(ch.covHi));
            ks.covTarget = std::exp(u);
            break;
          }
          case CountPattern::Multimodal:
            // Spread the CoV targets across (0.6, 2.2]: kernels at
            // the low end merge back into one stratum as theta
            // approaches 1, which is what bends the Fig. 10 error
            // curve upward at large thresholds.
            ks.covTarget = rng.uniform(0.6, 2.2);
            ks.numModes = static_cast<size_t>(rng.uniformInt(2, 5));
            break;
          case CountPattern::Drift:
            if (slots[k].slow) {
                // Slow drift: CoV of a linear ramp 1..r sampled
                // uniformly is (r-1)/(sqrt(3)(r+1)), so ratios up to
                // ~2.6 keep the kernel below theta = 0.4 (Tier-2).
                double hi = std::max(ch.slowDriftRatioHi, 1.1);
                double lo = 1.0 + 0.55 * (hi - 1.0);
                ks.driftRatio = rng.uniform(lo, hi);
            } else {
                // Fast drift: ratios of 3-8x put the kernel firmly in
                // Tier-3 so KDE stratification covers it; this
                // mirrors iterative solvers whose work shrinks or
                // grows with convergence.
                ks.driftRatio = rng.uniform(3.0, 8.0);
            }
            ks.covTarget = 0.5; // informational; actual CoV ~ ratio
            break;
        }

        Archetype arch =
            static_cast<Archetype>(rng.categorical(arch_weights));
        Rng kernel_rng = rng.split("profile:" + std::to_string(k));
        ks.profile = drawMixProfile(arch, kernel_rng, ch.hiddenSpread);

        // Aliasing: adopt an earlier kernel's entire visible identity
        // (mix, base size, pattern spread) but keep this kernel's own
        // freshly drawn *hidden* behaviour. The two kernels are then
        // indistinguishable to any profiler yet perform differently.
        bool pinned_drift = ch.driftOnHeavy &&
                            slots[k].pattern == CountPattern::Drift;
        if (k > 0 && !pinned_drift && rng.bernoulli(ch.aliasFrac)) {
            size_t target = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(k) - 1));
            const KernelSpec &src = kernels[target];
            trace::MemoryProfile own_hidden = ks.profile.memory;
            ks.pattern = src.pattern;
            ks.covTarget = src.covTarget;
            ks.numModes = src.numModes;
            ks.driftRatio = src.driftRatio;
            ks.baseInstructions = src.baseInstructions;
            ks.profile = src.profile;
            ks.profile.memory = own_hidden;
            ks.ctaSizePrimary = src.ctaSizePrimary;
            ks.ctaSizeSecondary = src.ctaSizeSecondary;
            ks.ctaSecondaryProb = src.ctaSecondaryProb;
            if (ch.workingSetOverride > 0)
                ks.profile.memory.workingSetBytes =
                    ch.workingSetOverride;
            if (ch.ilpOverride > 0.0)
                ks.profile.memory.ilp = ch.ilpOverride;
            if (ch.l2LocalityOverride > 0.0)
                ks.profile.memory.l2Locality = ch.l2LocalityOverride;
            if (ch.sectorsOverride > 0.0)
                ks.profile.sectorsPerAccess = ch.sectorsOverride;
            ks.name = spec.name + "_k" + std::to_string(k) + "_" +
                      archetypeName(ks.profile.archetype) + "_alias";
            continue;
        }
        if (ch.workingSetOverride > 0)
            ks.profile.memory.workingSetBytes = ch.workingSetOverride;
        if (ch.ilpOverride > 0.0)
            ks.profile.memory.ilp = ch.ilpOverride;
        if (ch.l2LocalityOverride > 0.0)
            ks.profile.memory.l2Locality = ch.l2LocalityOverride;
        if (ch.sectorsOverride > 0.0)
            ks.profile.sectorsPerAccess = ch.sectorsOverride;

        ks.ctaSizePrimary = drawCtaSize(rng);
        if (ks.pattern != CountPattern::Constant && rng.bernoulli(0.3)) {
            // Real kernels that re-tune their CTA size move to an
            // adjacent configuration (half or double), and only for a
            // minority of launches.
            ks.ctaSizeSecondary = rng.bernoulli(0.5)
                                      ? ks.ctaSizePrimary * 2
                                      : ks.ctaSizePrimary / 2;
            ks.ctaSizeSecondary =
                std::clamp<uint32_t>(ks.ctaSizeSecondary, 64, 1024);
            if (ks.ctaSizeSecondary == ks.ctaSizePrimary)
                ks.ctaSizeSecondary = 0;
            else
                ks.ctaSecondaryProb = rng.uniform(0.05, 0.15);
        }

        ks.name = spec.name + "_k" + std::to_string(k) + "_" +
                  archetypeName(arch);
    }

    if (ch.dominantInvocation && !kernels.empty()) {
        // gst structure: kernel 0 is highly variable and one of its
        // invocations is boosted to dominate total time.
        kernels[0].pattern = CountPattern::Multimodal;
        kernels[0].covTarget = 2.0;
        kernels[0].numModes = 4;
        kernels[0].dominantBoost = 200.0;
        kernels[0].invocationWeight =
            std::max(kernels[0].invocationWeight, 0.8);
    }

    return kernels;
}

trace::Workload
generateWorkload(const WorkloadSpec &spec)
{
    const WorkloadCharacter &ch = spec.character;
    std::vector<KernelSpec> kernel_specs = buildKernelSpecs(spec);
    Rng rng = Rng("stream:" + spec.seedLabel());

    size_t total = std::max<size_t>(spec.generatedInvocations,
                                    kernel_specs.size());

    // Apportion invocations to kernels by weight; every kernel gets
    // at least one (Table I counts kernels that actually ran).
    double weight_sum = 0.0;
    for (const auto &ks : kernel_specs)
        weight_sum += ks.invocationWeight;

    std::vector<size_t> n_invocations(kernel_specs.size());
    size_t assigned = 0;
    for (size_t k = 0; k < kernel_specs.size(); ++k) {
        size_t share = static_cast<size_t>(
            std::floor(kernel_specs[k].invocationWeight / weight_sum *
                       static_cast<double>(total)));
        n_invocations[k] = std::max<size_t>(share, 1);
        assigned += n_invocations[k];
    }
    // Fix up rounding drift on the highest-weight kernel.
    size_t heaviest = static_cast<size_t>(
        std::max_element(kernel_specs.begin(), kernel_specs.end(),
                         [](const KernelSpec &a, const KernelSpec &b) {
                             return a.invocationWeight <
                                    b.invocationWeight;
                         }) -
        kernel_specs.begin());
    while (assigned < total) {
        ++n_invocations[heaviest];
        ++assigned;
    }
    while (assigned > total && n_invocations[heaviest] > 1) {
        --n_invocations[heaviest];
        --assigned;
    }

    // Chronological layout: spread each kernel's invocations evenly
    // over the program timeline with jitter, then sort by position.
    // This interleaves kernels the way iterative applications do and
    // gives Drift kernels a meaningful time axis.
    struct Slot
    {
        double position;
        uint32_t kernel;
        uint32_t ordinal; //!< per-kernel chronological index
    };
    std::vector<Slot> slots;
    slots.reserve(total);
    for (size_t k = 0; k < kernel_specs.size(); ++k) {
        size_t n = n_invocations[k];
        double stride = 1.0 / static_cast<double>(n);
        for (size_t i = 0; i < n; ++i) {
            double pos = (static_cast<double>(i) + 0.5) * stride +
                         stride * 0.4 * (rng.uniform() - 0.5);
            slots.push_back({pos, static_cast<uint32_t>(k),
                             static_cast<uint32_t>(i)});
        }
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot &a, const Slot &b) {
                         return a.position < b.position;
                     });

    // Pre-draw per-kernel instruction counts (indexed by ordinal).
    std::vector<std::vector<uint64_t>> counts(kernel_specs.size());
    for (size_t k = 0; k < kernel_specs.size(); ++k) {
        Rng kernel_rng = rng.split("counts:" + std::to_string(k));
        counts[k] = drawCounts(kernel_specs[k], n_invocations[k],
                               kernel_rng);
        if (kernel_specs[k].dominantBoost > 0.0 && !counts[k].empty()) {
            // Boost a mid-stream invocation into the dominant one.
            size_t idx = counts[k].size() / 2;
            counts[k][idx] = static_cast<uint64_t>(
                static_cast<double>(counts[k][idx]) *
                kernel_specs[k].dominantBoost);
        }
    }

    trace::Workload workload(spec.suite, spec.name);
    workload.setPaperInvocations(spec.paperInvocations);
    for (const auto &ks : kernel_specs)
        workload.addKernel(ks.name);

    for (const Slot &slot : slots) {
        const KernelSpec &ks = kernel_specs[slot.kernel];
        uint64_t warp_insts = counts[slot.kernel][slot.ordinal];

        trace::KernelInvocation inv;
        inv.kernelId = slot.kernel;

        uint32_t cta_size = ks.ctaSizePrimary;
        if (ks.ctaSizeSecondary != 0 &&
            rng.bernoulli(ks.ctaSecondaryProb))
            cta_size = ks.ctaSizeSecondary;

        double threads = static_cast<double>(warp_insts) * 32.0 /
                         ks.profile.instsPerThread;
        uint64_t num_ctas = std::max<uint64_t>(
            static_cast<uint64_t>(std::ceil(threads / cta_size)), 1);

        inv.launch.grid = {static_cast<uint32_t>(
                               std::min<uint64_t>(num_ctas, 1u << 30)),
                           1, 1};
        inv.launch.cta = {cta_size, 1, 1};
        inv.launch.regsPerThread = 32;
        inv.launch.sharedMemBytes =
            (ks.profile.sharedLoadFrac > 0.0) ? 16384 : 0;

        inv.mix = realizeMix(ks.profile, warp_insts,
                             inv.launch.numCtas());
        inv.memory = ks.profile.memory;
        // A kernel's resident working set scales with its input (and
        // hence instruction count): larger invocations of the same
        // kernel press harder on the caches. This gives wide strata
        // a mild IPC gradient — the effect behind Fig. 10's error
        // growth with theta. Two exemptions: workloads that pin the
        // working set (lmc/lmr), and Drift kernels — iterative
        // solvers refine the *same* buffers, so their footprint does
        // not follow the per-iteration work.
        if (ch.workingSetOverride == 0 &&
            ks.pattern != CountPattern::Drift) {
            double ratio = static_cast<double>(warp_insts) /
                           ks.baseInstructions;
            // Multimodal kernels' operating points correspond to
            // genuinely different buffers, so their footprints track
            // size more strongly.
            double alpha =
                ks.pattern == CountPattern::Multimodal ? 0.6 : 0.25;
            double scaled =
                static_cast<double>(ks.profile.memory.workingSetBytes) *
                std::pow(ratio, alpha);
            // Quantize to ~15% buckets: real data structures resize
            // in coarse steps (pool doubling, refinement levels), so
            // a few-percent change in work does not move the
            // footprint — which keeps near-capacity cache behaviour
            // stable inside narrow strata.
            double step = std::log2(1.15);
            scaled = std::exp2(
                std::round(std::log2(std::max(scaled, 4096.0)) / step) *
                step);
            inv.memory.workingSetBytes = static_cast<uint64_t>(
                std::clamp(scaled, 4096.0, 2.1e9));
        }
        inv.noiseSeed = rng.next();

        workload.addInvocation(std::move(inv));
    }
    return workload;
}

} // namespace sieve::workloads
