/**
 * @file
 * Declarative specification of a synthetic workload.
 *
 * Each Table I workload is described by a WorkloadSpec: its suite,
 * name, kernel count, paper-scale invocation count, and a
 * WorkloadCharacter capturing the statistical structure the paper
 * reports for it (tier composition from Fig. 2, dispersion pressure
 * behind Figs. 3-5, and memory behaviour behind Fig. 9). The
 * generator turns a spec into a concrete trace::Workload.
 */

#ifndef SIEVE_WORKLOADS_SPEC_HH
#define SIEVE_WORKLOADS_SPEC_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workloads/mix_archetypes.hh"

namespace sieve::workloads {

/** How a kernel's dynamic instruction count varies across invocations. */
enum class CountPattern : uint8_t {
    Constant,    //!< identical count every invocation (Tier-1)
    LowVariance, //!< lognormal jitter around a base (Tier-2/3 by CoV)
    Multimodal,  //!< a few distinct operating points (Tier-3)
    Drift,       //!< count trends over time (iterative refinement)
};

/** Name of a count pattern. */
const char *countPatternName(CountPattern p);

/** Fully-resolved description of one synthetic kernel. */
struct KernelSpec
{
    std::string name;
    CountPattern pattern = CountPattern::Constant;
    double invocationWeight = 1.0; //!< relative share of invocations
    double baseInstructions = 1e6; //!< mean warp-instruction count
    double covTarget = 0.0;        //!< instruction-count CoV target
    size_t numModes = 1;           //!< modes for Multimodal
    double driftRatio = 1.0;       //!< end/start size ratio for Drift
    MixProfile profile;            //!< visible mix + hidden behaviour
    uint32_t ctaSizePrimary = 256;
    uint32_t ctaSizeSecondary = 0; //!< 0 = CTA size never varies
    double ctaSecondaryProb = 0.0;
    /** Boost factor for one designated giant invocation (gst). */
    double dominantBoost = 0.0;
};

/**
 * Statistical character of a workload; drives kernel-spec synthesis.
 * Defaults describe a moderate Cactus-like workload.
 */
struct WorkloadCharacter
{
    /** Fraction of kernels with Constant counts (Tier-1). */
    double tier1Frac = 0.4;
    /** CoV draw range (log-uniform) for variable-count kernels. */
    double covLo = 0.03;
    double covHi = 0.35;
    /** Fraction of kernels with Multimodal (high-CoV) counts. */
    double tier3Frac = 0.0;
    /** Fraction of kernels whose size drifts strongly over time
     *  (ratio 3-8x; lands in Tier-3 and is KDE-stratified). */
    double driftFrac = 0.0;
    /**
     * Fraction of kernels with *slow* drift (ratio up to
     * slowDriftRatioHi; CoV stays below theta so Sieve keeps one
     * Tier-2 stratum). Slow drift is what breaks PKS's default
     * first-chronological selection: the first invocation is
     * systematically the smallest, and PKS multiplies its cycle count
     * by the cluster's invocation count (Section II-B), while Sieve's
     * IPC-based instruction-weighted projection is robust to size
     * variation within a stratum.
     */
    double slowDriftFrac = 0.0;
    /** Upper bound on the slow-drift end/start ratio. */
    double slowDriftRatioHi = 2.6;
    /**
     * Pin drift patterns to the kernels with the largest invocation
     * shares, mimicking applications whose hot iterative kernels are
     * the ones that grow/shrink with convergence.
     */
    bool driftOnHeavy = false;
    /** Hidden-behaviour dispersion within archetype families [0,1]. */
    double hiddenSpread = 0.3;
    /**
     * Fraction of kernels that *alias* an earlier kernel: identical
     * visible mix profile, base size, and CTA geometry, but freshly
     * drawn hidden behaviour. Aliased kernels are indistinguishable
     * in the 12-metric PKS feature space yet perform differently —
     * e.g. two solver steps with the same instruction footprint
     * touching differently-structured data. This is the
     * under-determination the paper identifies behind PKS' intra-
     * cluster cycle dispersion (Section II-B, Fig. 4).
     */
    double aliasFrac = 0.0;
    /** Zipf exponent for invocation-share skew across kernels. */
    double zipfExponent = 0.9;
    /** log10 range of per-kernel base warp-instruction counts. */
    double baseInstLog10Lo = 5.3;
    double baseInstLog10Hi = 7.3;
    /** Archetype selection weights (Gemm..Copy). */
    std::array<double, kNumArchetypes> archetypeWeights = {
        1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    /** If > 0, force every kernel's working set to this many bytes. */
    uint64_t workingSetOverride = 0;
    /** If > 0, force every kernel's ILP (latency sensitivity). */
    double ilpOverride = 0.0;
    /** If > 0, force every kernel's L2 locality. */
    double l2LocalityOverride = 0.0;
    /** If > 0, force sectors per global access (pointer chasing ~1,
     *  streaming ~1, scatter/gather up to 32). */
    double sectorsOverride = 0.0;
    /**
     * gst-style structure: one invocation of kernel 0 is boosted to
     * dominate total execution time (paper Section V-B: 85% of gst's
     * time sits in a single high-variability kernel invocation).
     */
    bool dominantInvocation = false;
};

/** Complete recipe for one synthetic workload. */
struct WorkloadSpec
{
    std::string suite;
    std::string name;
    size_t numKernels = 1;
    /** Invocation count reported in Table I. */
    uint64_t paperInvocations = 1;
    /** Invocations actually generated (scaled-down, cap applied). */
    size_t generatedInvocations = 1;
    WorkloadCharacter character;

    /**
     * Salt mixed into the seed label. Selects which synthetic
     * instance of the workload's statistical character is generated;
     * the registry pins salts so each workload's instance matches the
     * per-workload behaviour the paper reports (e.g. spt being PKS'
     * worst case).
     */
    std::string seedSalt;

    /** Deterministic seed label, "suite/name#salt". */
    std::string seedLabel() const
    {
        return suite + "/" + name +
               (seedSalt.empty() ? "" : "#" + seedSalt);
    }
};

} // namespace sieve::workloads

#endif // SIEVE_WORKLOADS_SPEC_HH
