#include "workloads/suites.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::workloads {

namespace {

/** Archetype weight presets (Gemm, Elementwise, Reduction, Stencil,
 *  Gather, Copy). */
constexpr std::array<double, kNumArchetypes> kBalanced = {1.0, 1.0, 1.0,
                                                          1.0, 1.0, 1.0};
constexpr std::array<double, kNumArchetypes> kComputeHeavy = {
    3.5, 0.8, 0.8, 1.0, 0.2, 0.4};
constexpr std::array<double, kNumArchetypes> kStreamHeavy = {
    0.4, 3.0, 0.8, 1.5, 0.4, 2.0};
constexpr std::array<double, kNumArchetypes> kIrregular = {
    0.3, 0.8, 1.5, 0.8, 3.5, 0.4};
constexpr std::array<double, kNumArchetypes> kBandwidth = {
    0.3, 2.5, 0.6, 0.8, 0.4, 3.0};
constexpr std::array<double, kNumArchetypes> kStencilHeavy = {
    0.5, 1.0, 0.5, 3.5, 0.5, 0.8};
/** Pointer-chasing profile for the L2-capacity-sensitive workloads. */
constexpr std::array<double, kNumArchetypes> kLatencyBound = {
    0.0, 0.1, 0.1, 0.2, 8.0, 0.0};

WorkloadSpec
make(std::string suite, std::string name, size_t kernels,
     uint64_t paper_invocations, size_t cap, WorkloadCharacter ch)
{
    WorkloadSpec spec;
    spec.suite = std::move(suite);
    spec.name = std::move(name);
    spec.numKernels = kernels;
    spec.paperInvocations = paper_invocations;
    spec.generatedInvocations = static_cast<size_t>(
        std::min<uint64_t>(paper_invocations, cap));
    spec.character = ch;
    return spec;
}

/** Character template for the simple (Fig. 8) suites. */
WorkloadCharacter
simpleCharacter(double tier1, std::array<double, kNumArchetypes> arch,
                double cov_hi = 0.25, double drift = 0.0,
                double hidden = 0.15, double alias = 0.0)
{
    WorkloadCharacter ch;
    ch.tier1Frac = tier1;
    ch.covLo = 0.02;
    ch.covHi = cov_hi;
    ch.tier3Frac = 0.0;
    ch.driftFrac = drift;
    ch.hiddenSpread = hidden;
    ch.aliasFrac = alias;
    ch.zipfExponent = 0.6;
    ch.baseInstLog10Lo = 6.6;
    ch.baseInstLog10Hi = 8.0;
    ch.archetypeWeights = arch;
    return ch;
}

/** Character template for Cactus/MLPerf workloads. */
WorkloadCharacter
challengingCharacter(double tier1, double cov_hi, double tier3,
                     double drift, double hidden, double alias,
                     std::array<double, kNumArchetypes> arch)
{
    WorkloadCharacter ch;
    ch.tier1Frac = tier1;
    ch.covLo = 0.015;
    ch.covHi = cov_hi;
    ch.tier3Frac = tier3;
    ch.driftFrac = drift;
    ch.hiddenSpread = hidden;
    ch.aliasFrac = alias;
    ch.zipfExponent = 0.9;
    ch.baseInstLog10Lo = 6.5;
    ch.baseInstLog10Hi = 7.8;
    ch.archetypeWeights = arch;
    return ch;
}

/** MLPerf variant: adds slow-drift knobs to the challenging base. */
WorkloadCharacter
mlperfCharacter(double tier1, double cov_hi, double tier3, double drift,
                double hidden, double alias, double slow_drift,
                bool drift_on_heavy,
                std::array<double, kNumArchetypes> arch)
{
    WorkloadCharacter ch = challengingCharacter(tier1, cov_hi, tier3,
                                                drift, hidden, alias,
                                                arch);
    ch.slowDriftFrac = slow_drift;
    ch.driftOnHeavy = drift_on_heavy;
    return ch;
}

} // namespace

std::vector<WorkloadSpec>
parboilSpecs(size_t cap)
{
    return {
        make("parboil", "bfs_ny", 2, 11, cap,
             simpleCharacter(0.5, kIrregular, 0.6)),
        make("parboil", "histo", 4, 252, cap,
             simpleCharacter(0.5, kIrregular, 0.2)),
        make("parboil", "lbm", 1, 3000, cap,
             simpleCharacter(1.0, kBandwidth)),
        make("parboil", "mri-g", 9, 51, cap,
             simpleCharacter(0.7, kComputeHeavy)),
        make("parboil", "stencil", 1, 100, cap,
             simpleCharacter(1.0, kStencilHeavy)),
    };
}

namespace {

/** cfd: heavy kernels drift slowly; the Fig. 8 outlier for PKS. */
WorkloadCharacter
cfdCharacter()
{
    // Mostly fixed-size solver kernels whose feature vectors alias
    // one another while their locality differs: k-means merges them
    // at any k, so PKS mispredicts regardless of its golden-
    // reference k tuning, while Sieve's per-kernel strata are immune.
    WorkloadCharacter ch =
        simpleCharacter(0.5, kStreamHeavy, 0.3, 0.0, 0.8, 0.9);
    ch.slowDriftFrac = 0.25;
    return ch;
}

} // namespace

std::vector<WorkloadSpec>
rodiniaSpecs(size_t cap)
{
    return {
        // cfd: iterative solver whose per-iteration work drifts; the
        // outlier where PKS errs (~23%) even among simple suites
        // (paper Fig. 8).
        [cap] {
            WorkloadSpec spec =
                make("rodinia", "cfd", 4, 14'003, cap, cfdCharacter());
            spec.seedSalt = "h"; // the Fig. 8 PKS outlier instance
            return spec;
        }(),
        make("rodinia", "dwt2d", 4, 10, cap,
             simpleCharacter(0.75, kStreamHeavy)),
        make("rodinia", "gaussian", 2, 16'382, cap,
             simpleCharacter(0.0, kStreamHeavy, 0.2, 0.5, 0.1)),
        make("rodinia", "heartwall", 1, 20, cap,
             simpleCharacter(1.0, kStencilHeavy)),
        make("rodinia", "hotspot3d", 1, 100, cap,
             simpleCharacter(1.0, kStencilHeavy)),
        make("rodinia", "huffman", 6, 46, cap,
             simpleCharacter(0.5, kIrregular, 0.4)),
        make("rodinia", "lud", 3, 22, cap,
             simpleCharacter(0.34, kComputeHeavy, 0.3, 0.33, 0.2)),
        make("rodinia", "nw", 2, 255, cap,
             simpleCharacter(0.0, kIrregular, 0.3, 0.5, 0.15)),
        make("rodinia", "srad", 6, 502, cap,
             simpleCharacter(0.6, kStencilHeavy)),
    };
}

std::vector<WorkloadSpec>
sdkSpecs(size_t cap)
{
    return {
        make("sdk", "blackscholes", 1, 512, cap,
             simpleCharacter(1.0, kComputeHeavy)),
        make("sdk", "cholesky", 25, 143, cap,
             simpleCharacter(0.6, kComputeHeavy, 0.3, 0.1, 0.2)),
        make("sdk", "gradient", 7, 84, cap,
             simpleCharacter(0.7, kStreamHeavy)),
        make("sdk", "dct8x8", 8, 118, cap,
             simpleCharacter(0.8, kComputeHeavy)),
        make("sdk", "histogram", 4, 68, cap,
             simpleCharacter(0.75, kIrregular)),
        make("sdk", "hsopticalflow", 6, 7'576, cap,
             simpleCharacter(0.4, kStencilHeavy, 0.25)),
        make("sdk", "mergesort", 4, 49, cap,
             simpleCharacter(0.5, kIrregular, 0.3, 0.25, 0.2)),
        make("sdk", "nvjpeg", 2, 32, cap,
             simpleCharacter(0.5, kStreamHeavy)),
        make("sdk", "random", 2, 42, cap,
             simpleCharacter(1.0, kComputeHeavy)),
        make("sdk", "sortingnet", 4, 290, cap,
             simpleCharacter(0.75, kIrregular)),
    };
}

std::vector<WorkloadSpec>
cactusSpecs(size_t cap)
{
    std::vector<WorkloadSpec> specs;

    // gru: all Tier-1/2 at theta >= 0.5.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.4, 0.4, 0.0, 0.0, 0.55, 0.3, kBalanced);
        ch.slowDriftFrac = 0.25;
        ch.driftOnHeavy = true;
        specs.push_back(make("cactus", "gru", 8, 43'837, cap, ch));
    }

    // gst: dominant single invocation, largest Tier-3 share (> 50%).
    {
        WorkloadCharacter ch = challengingCharacter(
            0.2, 1.4, 0.4, 0.0, 0.6, 0.3, kComputeHeavy);
        ch.dominantInvocation = true;
        specs.push_back(make("cactus", "gst", 15, 175, cap, ch));
    }

    // gms: all kernels CoV < 0.1 (Tier-1/2 even at theta = 0.1).
    {
        WorkloadCharacter ch = challengingCharacter(
            0.55, 0.055, 0.0, 0.0, 0.3, 0.2, kBalanced);
        ch.slowDriftFrac = 0.15;
        ch.slowDriftRatioHi = 1.22; // keep CoV safely below 0.1
        specs.push_back(make("cactus", "gms", 14, 92'520, cap, ch));
    }

    // lmc: Tier-1/2 at theta >= 0.5; L2-capacity sensitive (slower on
    // Ampere, Fig. 9).
    {
        WorkloadCharacter ch = challengingCharacter(
            0.35, 0.45, 0.0, 0.0, 0.8, 0.6, kLatencyBound);
        ch.workingSetOverride = 5'450'000; // between the two L2 sizes
        ch.ilpOverride = 0.5; // dependent-load chains: sub-1 MLP
        ch.l2LocalityOverride = 0.95;
        ch.slowDriftFrac = 0.3;
        ch.slowDriftRatioHi = 3.2;
        ch.driftOnHeavy = true;
        specs.push_back(make("cactus", "lmc", 58, 248'548, cap, ch));
    }

    // lmr: all kernels CoV < 0.1; also L2-capacity sensitive.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.5, 0.055, 0.0, 0.0, 0.5, 0.35, kLatencyBound);
        ch.workingSetOverride = 5'450'000;
        ch.ilpOverride = 0.5;
        ch.l2LocalityOverride = 0.95;
        ch.slowDriftFrac = 0.2;
        ch.slowDriftRatioHi = 1.22; // keep CoV safely below 0.1
        ch.driftOnHeavy = true;
        specs.push_back(make("cactus", "lmr", 62, 74'765, cap, ch));
    }

    // dcg: widest hidden dispersion (PKS cluster CoV up to 3.25 in
    // Fig. 4); compute-heavy, large Ampere speedup.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.4, 0.8, 0.15, 0.1, 0.95, 0.5, kComputeHeavy);
        ch.slowDriftFrac = 0.2;
        ch.driftOnHeavy = true;
        specs.push_back(make("cactus", "dcg", 59, 414'585, cap, ch));
    }

    // lgt: Sieve's Cactus max error (4.1%); compute-heavy.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.35, 0.9, 0.2, 0.15, 0.7, 0.5, kComputeHeavy);
        ch.slowDriftFrac = 0.2;
        ch.driftOnHeavy = true;
        WorkloadSpec lgt = make("cactus", "lgt", 74, 532'707, cap, ch);
        lgt.seedSalt = "i";
        specs.push_back(std::move(lgt));
    }

    // nst: largest invocation count; drift plus hidden spread makes
    // PKS' first-chronological selection misleading (Figs. 5, 9).
    {
        WorkloadCharacter ch = challengingCharacter(
            0.35, 0.8, 0.2, 0.2, 0.9, 0.6, kComputeHeavy);
        ch.slowDriftFrac = 0.2;
        ch.slowDriftRatioHi = 3.5;
        ch.driftOnHeavy = true;
        specs.push_back(make("cactus", "nst", 50, 1'072'246, cap, ch));
    }

    // rfl: moderate everything.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.45, 0.6, 0.1, 0.05, 0.5, 0.35, kBalanced);
        ch.slowDriftFrac = 0.2;
        specs.push_back(make("cactus", "rfl", 57, 206'407, cap, ch));
    }

    // spt: PKS' worst case (60.4% error): strong drift and the widest
    // first-vs-centroid gap.
    {
        WorkloadCharacter ch = challengingCharacter(
            0.3, 0.7, 0.15, 0.2, 1.0, 0.7, kStreamHeavy);
        ch.slowDriftFrac = 0.35;
        ch.slowDriftRatioHi = 5.2;
        ch.driftOnHeavy = true;
        WorkloadSpec spt = make("cactus", "spt", 43, 112'668, cap, ch);
        spt.seedSalt = "z"; // instance matching the paper: PKS' worst
                            // Cactus case at sub-1% Sieve error
        specs.push_back(std::move(spt));
    }

    return specs;
}

std::vector<WorkloadSpec>
mlperfSpecs(size_t cap)
{
    return {
        make("mlperf", "3d-unet", 20, 113'183, cap,
             mlperfCharacter(0.45, 0.7, 0.15, 0.05, 0.5, 0.4, 0.2,
                             false, kComputeHeavy)),
        // bert: all Tier-1/2 at theta >= 0.5.
        make("mlperf", "bert", 11, 141'964, cap,
             mlperfCharacter(0.4, 0.4, 0.0, 0.0, 0.5, 0.4, 0.3, true,
                             kComputeHeavy)),
        // resnet50: all Tier-1/2 at theta >= 0.5.
        make("mlperf", "resnet50", 20, 78'825, cap,
             mlperfCharacter(0.5, 0.35, 0.0, 0.0, 0.4, 0.35, 0.25,
                             true, kComputeHeavy)),
        // rnnt: PKS' MLPerf worst case (46%); Sieve max 3.2%.
        [cap] {
            // rnnt: instance matching the paper's identities: Sieve's
            // MLPerf max (3.2%) and PKS' MLPerf worst case (46%).
            WorkloadSpec spec = make(
                "mlperf", "rnnt", 39, 205'440, cap,
                mlperfCharacter(0.3, 0.9, 0.25, 0.2, 0.95, 0.7, 0.3,
                                true, kComputeHeavy));
            spec.seedSalt = "e";
            return spec;
        }(),
        make("mlperf", "ssd-mobilenet", 33, 64'138, cap,
             mlperfCharacter(0.4, 0.7, 0.12, 0.05, 0.5, 0.4, 0.2,
                             false, kComputeHeavy)),
        make("mlperf", "ssd-resnet34", 26, 57'267, cap,
             mlperfCharacter(0.4, 0.75, 0.15, 0.1, 0.6, 0.45, 0.2,
                             true, kComputeHeavy)),
    };
}

std::vector<WorkloadSpec>
allSpecs(size_t cap)
{
    std::vector<WorkloadSpec> all;
    for (auto suite : {parboilSpecs(cap), rodiniaSpecs(cap),
                       sdkSpecs(cap), cactusSpecs(cap),
                       mlperfSpecs(cap)}) {
        all.insert(all.end(), suite.begin(), suite.end());
    }
    return all;
}

std::vector<WorkloadSpec>
challengingSpecs(size_t cap)
{
    std::vector<WorkloadSpec> out = cactusSpecs(cap);
    auto mlperf = mlperfSpecs(cap);
    out.insert(out.end(), mlperf.begin(), mlperf.end());
    return out;
}

std::vector<WorkloadSpec>
traditionalSpecs(size_t cap)
{
    std::vector<WorkloadSpec> out = parboilSpecs(cap);
    for (auto suite : {rodiniaSpecs(cap), sdkSpecs(cap)})
        out.insert(out.end(), suite.begin(), suite.end());
    return out;
}

std::optional<WorkloadSpec>
findSpec(const std::string &name, size_t cap)
{
    for (const auto &spec : allSpecs(cap)) {
        if (spec.name == name || spec.suite + "/" + spec.name == name)
            return spec;
    }
    return std::nullopt;
}

} // namespace sieve::workloads
