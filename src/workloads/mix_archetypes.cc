#include "workloads/mix_archetypes.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sieve::workloads {

const char *
archetypeName(Archetype a)
{
    switch (a) {
      case Archetype::Gemm:
        return "gemm";
      case Archetype::Elementwise:
        return "elementwise";
      case Archetype::Reduction:
        return "reduction";
      case Archetype::Stencil:
        return "stencil";
      case Archetype::Gather:
        return "gather";
      case Archetype::Copy:
        return "copy";
    }
    panic("unknown archetype ", static_cast<int>(a));
}

namespace {

/** Family centre values; per-kernel draws jitter around these. */
struct ArchetypeParams
{
    double globalLoad, globalStore, sharedLoad, sharedStore, atomic;
    double sectors;        //!< sectors per global access
    double divergence;
    double l1Loc, l2Loc;   //!< hidden locality centres
    double longLat;        //!< long-latency instruction fraction
    double ilp;
    double instsPerThread;
};

const ArchetypeParams &
params(Archetype a)
{
    // globalLd, globalSt, sharedLd, sharedSt, atomic, sectors, div,
    // l1, l2, longLat, ilp, ipt
    static const ArchetypeParams table[kNumArchetypes] = {
        // Gemm: shared-memory tiled, low global traffic, compute bound
        {0.04, 0.01, 0.22, 0.08, 0.000, 1.2, 0.99,
         0.80, 0.85, 0.05, 4.0, 700.0},
        // Elementwise: streaming, perfectly coalesced
        {0.16, 0.08, 0.00, 0.00, 0.000, 1.05, 1.00,
         0.25, 0.40, 0.08, 3.0, 200.0},
        // Reduction: shared tree plus a few atomics
        {0.12, 0.01, 0.10, 0.05, 0.004, 1.3, 0.96,
         0.55, 0.70, 0.06, 2.5, 300.0},
        // Stencil: neighbourhood reuse, high spatial locality
        {0.20, 0.06, 0.06, 0.03, 0.000, 1.6, 0.98,
         0.70, 0.80, 0.10, 2.2, 500.0},
        // Gather: irregular, divergent, scattered accesses
        {0.18, 0.05, 0.00, 0.00, 0.010, 9.0, 0.62,
         0.18, 0.35, 0.12, 1.5, 250.0},
        // Copy: pure bandwidth
        {0.24, 0.22, 0.00, 0.00, 0.000, 1.0, 1.00,
         0.05, 0.15, 0.02, 4.0, 100.0},
    };
    return table[static_cast<size_t>(a)];
}

/** Multiplicative jitter: centre * lognormal(sigma). */
double
jitter(Rng &rng, double centre, double sigma)
{
    return centre * rng.logNormal(0.0, sigma);
}

/** Clamp a fraction into a safe open interval. */
double
clampFrac(double v, double hi = 0.45)
{
    return std::clamp(v, 0.0, hi);
}

} // namespace

MixProfile
drawMixProfile(Archetype archetype, Rng &rng, double hidden_spread)
{
    SIEVE_ASSERT(hidden_spread >= 0.0 && hidden_spread <= 1.0,
                 "hidden_spread ", hidden_spread, " out of [0, 1]");
    const ArchetypeParams &p = params(archetype);

    MixProfile prof;
    prof.archetype = archetype;

    // Visible mix: modest jitter keeps same-family kernels close in
    // feature space (so PKS clusters them together).
    constexpr double kVisibleSigma = 0.15;
    prof.globalLoadFrac = clampFrac(jitter(rng, p.globalLoad,
                                           kVisibleSigma));
    prof.globalStoreFrac = clampFrac(jitter(rng, p.globalStore,
                                            kVisibleSigma));
    prof.sharedLoadFrac = clampFrac(jitter(rng, p.sharedLoad,
                                           kVisibleSigma));
    prof.sharedStoreFrac = clampFrac(jitter(rng, p.sharedStore,
                                            kVisibleSigma));
    prof.atomicFrac = clampFrac(jitter(rng, p.atomic, kVisibleSigma),
                                0.05);
    prof.localLoadFrac =
        archetype == Archetype::Gemm && rng.bernoulli(0.2)
            ? clampFrac(rng.uniform(0.005, 0.02), 0.05)
            : 0.0;

    prof.sectorsPerAccess =
        std::clamp(jitter(rng, p.sectors, kVisibleSigma), 1.0, 32.0);
    prof.divergenceEfficiency =
        std::clamp(jitter(rng, p.divergence, 0.05), 0.2, 1.0);
    prof.instsPerThread =
        std::clamp(jitter(rng, p.instsPerThread, 0.3), 50.0, 1200.0);

    // Hidden behaviour: spread scales how far kernels of the same
    // family diverge in locality/latency without moving in feature
    // space.
    double h = 0.1 + 0.9 * hidden_spread;
    prof.memory.l1Locality =
        std::clamp(p.l1Loc + h * rng.uniform(-0.45, 0.45), 0.02, 0.98);
    prof.memory.l2Locality =
        std::clamp(p.l2Loc + h * rng.uniform(-0.40, 0.40), 0.05, 0.98);
    prof.memory.longLatencyFrac =
        std::clamp(p.longLat * rng.logNormal(0.0, 0.3 + 0.7 * h), 0.005,
                   0.6);
    prof.memory.ilp =
        std::clamp(p.ilp * rng.logNormal(0.0, 0.2 + 0.6 * h), 1.0, 8.0);
    prof.memory.bankConflictRate =
        (archetype == Archetype::Gemm || archetype == Archetype::Reduction)
            ? std::clamp(h * rng.uniform(0.0, 0.5), 0.0, 0.9)
            : 0.0;
    // Working set: log-uniform across five decades; drives L2-fit
    // sensitivity differences between architectures.
    double ws_exp = rng.uniform(18.0, 26.0); // 256 KB .. 64 MB
    prof.memory.workingSetBytes =
        static_cast<uint64_t>(std::exp2(ws_exp));

    return prof;
}

trace::InstructionMix
realizeMix(const MixProfile &profile, uint64_t warp_insts,
           uint64_t num_ctas, uint32_t warp_size)
{
    SIEVE_ASSERT(warp_insts > 0, "realizeMix with zero instructions");

    trace::InstructionMix mix;
    mix.instructionCount = warp_insts;
    mix.numThreadBlocks = num_ctas;
    mix.divergenceEfficiency = profile.divergenceEfficiency;

    double wi = static_cast<double>(warp_insts);
    double lanes = profile.divergenceEfficiency *
                   static_cast<double>(warp_size);

    auto threads = [&](double frac) {
        return static_cast<uint64_t>(wi * frac * lanes);
    };
    auto warps = [&](double frac) { return wi * frac; };

    mix.threadGlobalLoads = threads(profile.globalLoadFrac);
    mix.threadGlobalStores = threads(profile.globalStoreFrac);
    mix.threadLocalLoads = threads(profile.localLoadFrac);
    mix.threadSharedLoads = threads(profile.sharedLoadFrac);
    mix.threadSharedStores = threads(profile.sharedStoreFrac);
    mix.threadGlobalAtomics = threads(profile.atomicFrac);

    mix.coalescedGlobalLoads = static_cast<uint64_t>(
        warps(profile.globalLoadFrac) * profile.sectorsPerAccess);
    mix.coalescedGlobalStores = static_cast<uint64_t>(
        warps(profile.globalStoreFrac) * profile.sectorsPerAccess);
    mix.coalescedLocalLoads = static_cast<uint64_t>(
        warps(profile.localLoadFrac) * 2.0);

    return mix;
}

} // namespace sieve::workloads
