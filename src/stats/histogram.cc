#include "stats/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::stats {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : _lo(lo), _width((hi - lo) / static_cast<double>(num_bins)),
      _counts(num_bins, 0)
{
    SIEVE_ASSERT(num_bins > 0, "histogram with zero bins");
    SIEVE_ASSERT(hi > lo, "histogram range [", lo, ", ", hi, ")");
}

Histogram
Histogram::fit(const std::vector<double> &values, size_t num_bins)
{
    SIEVE_ASSERT(!values.empty(), "cannot fit histogram to empty sample");
    auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (hi <= lo)
        hi = lo + 1.0; // degenerate sample: one bin catches everything
    Histogram h(lo, hi, num_bins);
    h.addAll(values);
    return h;
}

void
Histogram::add(double value)
{
    double pos = (value - _lo) / _width;
    long bin = static_cast<long>(pos);
    bin = std::clamp(bin, 0L, static_cast<long>(_counts.size()) - 1);
    ++_counts[static_cast<size_t>(bin)];
    ++_total;
}

void
Histogram::addAll(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

uint64_t
Histogram::binCount(size_t bin) const
{
    SIEVE_ASSERT(bin < _counts.size(), "bin ", bin, " out of range");
    return _counts[bin];
}

double
Histogram::binLow(size_t bin) const
{
    SIEVE_ASSERT(bin < _counts.size(), "bin ", bin, " out of range");
    return _lo + _width * static_cast<double>(bin);
}

double
Histogram::binCenter(size_t bin) const
{
    return binLow(bin) + 0.5 * _width;
}

double
Histogram::binFraction(size_t bin) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(binCount(bin)) /
           static_cast<double>(_total);
}

size_t
Histogram::modeBin() const
{
    return static_cast<size_t>(
        std::max_element(_counts.begin(), _counts.end()) -
        _counts.begin());
}

} // namespace sieve::stats
