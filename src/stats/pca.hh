/**
 * @file
 * Principal Component Analysis via a cyclic Jacobi eigensolver.
 *
 * PKS applies PCA to its 12-dimensional microarchitecture-independent
 * feature vectors to reduce dimensionality before k-means clustering
 * (paper Section II-A). The feature dimensionality is tiny, so a
 * dense Jacobi rotation eigensolver on the covariance matrix is exact
 * enough and dependency-free.
 */

#ifndef SIEVE_STATS_PCA_HH
#define SIEVE_STATS_PCA_HH

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace sieve::stats {

/** Eigen decomposition of a symmetric matrix. */
struct EigenDecomposition
{
    /** Eigenvalues in descending order. */
    std::vector<double> values;
    /** Matching eigenvectors as matrix columns (orthonormal). */
    Matrix vectors;
};

/**
 * Eigen decomposition of a symmetric matrix via cyclic Jacobi
 * rotations. fatal() if the matrix is not square.
 */
EigenDecomposition jacobiEigen(const Matrix &symmetric,
                               size_t max_sweeps = 64,
                               double tolerance = 1e-12);

/** A fitted PCA model. */
class Pca
{
  public:
    /**
     * Fit to a data matrix (rows = observations, cols = features).
     * Columns are z-score standardized before the covariance is taken,
     * matching the PKS preprocessing.
     *
     * @param data observation matrix
     * @param variance_to_keep fraction of total variance the retained
     *        components must explain, in (0, 1]
     */
    Pca(const Matrix &data, double variance_to_keep = 0.9);

    /** Number of retained components. */
    size_t numComponents() const { return _components.cols(); }

    /** Eigenvalues of all (not just retained) components. */
    const std::vector<double> &eigenvalues() const { return _eigenvalues; }

    /** Fraction of variance explained by the retained components. */
    double explainedVariance() const { return _explained; }

    /**
     * Project observations into the retained component space.
     * The input must have the same feature count as the training data
     * and is standardized with the training statistics.
     */
    Matrix transform(const Matrix &data) const;

  private:
    std::vector<double> _means;
    std::vector<double> _inv_stddevs;
    std::vector<double> _eigenvalues;
    Matrix _components; //!< features x retained-components
    double _explained = 0.0;
};

} // namespace sieve::stats

#endif // SIEVE_STATS_PCA_HH
