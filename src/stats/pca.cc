#include "stats/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::stats {

EigenDecomposition
jacobiEigen(const Matrix &symmetric, size_t max_sweeps, double tolerance)
{
    if (symmetric.rows() != symmetric.cols())
        fatal("jacobiEigen requires a square matrix, got ",
              symmetric.rows(), "x", symmetric.cols());

    size_t n = symmetric.rows();
    Matrix a = symmetric;
    Matrix v(n, n);
    for (size_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        // Sum of squared off-diagonal elements measures convergence.
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < tolerance)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                double app = a.at(p, p);
                double aqq = a.at(q, q);
                double theta = (aqq - app) / (2.0 * apq);
                double t = (theta >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    double akp = a.at(k, p);
                    double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    double apk = a.at(p, k);
                    double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    double vkp = v.at(k, p);
                    double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a.at(x, x) > a.at(y, y);
    });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (size_t j = 0; j < n; ++j) {
        out.values[j] = a.at(order[j], order[j]);
        for (size_t i = 0; i < n; ++i)
            out.vectors.at(i, j) = v.at(i, order[j]);
    }
    return out;
}

Pca::Pca(const Matrix &data, double variance_to_keep)
{
    SIEVE_ASSERT(variance_to_keep > 0.0 && variance_to_keep <= 1.0,
                 "variance_to_keep ", variance_to_keep, " out of (0, 1]");
    if (data.rows() == 0 || data.cols() == 0)
        fatal("PCA on an empty data matrix");

    static obs::Counter &c_fits = obs::counter("stats.pca.fits");
    static obs::Counter &c_components =
        obs::counter("stats.pca.components");
    c_fits.add();
    obs::Span span("stats", "pca.fit",
                   "rows=" + std::to_string(data.rows()));

    size_t d = data.cols();
    double n = static_cast<double>(data.rows());

    // Record training standardization so transform() is reusable.
    // Row-major passes on raw spans: each column accumulator still
    // receives its terms in row order (identical arithmetic to the
    // former column-major loops) while memory streams sequentially.
    _means.assign(d, 0.0);
    _inv_stddevs.assign(d, 1.0);
    for (size_t r = 0; r < data.rows(); ++r) {
        std::span<const double> row = data.rowSpan(r);
        for (size_t c = 0; c < d; ++c)
            _means[c] += row[c];
    }
    for (size_t c = 0; c < d; ++c)
        _means[c] /= n;

    std::vector<double> sq(d, 0.0);
    for (size_t r = 0; r < data.rows(); ++r) {
        std::span<const double> row = data.rowSpan(r);
        for (size_t c = 0; c < d; ++c) {
            double diff = row[c] - _means[c];
            sq[c] += diff * diff;
        }
    }
    for (size_t c = 0; c < d; ++c) {
        double sd = std::sqrt(sq[c] / n);
        _inv_stddevs[c] = sd > 0.0 ? 1.0 / sd : 1.0;
    }

    Matrix z(data.rows(), d);
    for (size_t r = 0; r < data.rows(); ++r) {
        std::span<const double> src = data.rowSpan(r);
        std::span<double> dst = z.rowSpan(r);
        for (size_t c = 0; c < d; ++c)
            dst[c] = (src[c] - _means[c]) * _inv_stddevs[c];
    }

    EigenDecomposition eig = jacobiEigen(covarianceMatrix(z));
    _eigenvalues = eig.values;

    double total = 0.0;
    for (double ev : eig.values)
        total += std::max(ev, 0.0);
    if (total <= 0.0) {
        // All-constant data: keep one (arbitrary) component so that
        // downstream clustering still has a 1-D space to work in.
        total = 1.0;
    }

    size_t keep = 0;
    double acc = 0.0;
    while (keep < d) {
        acc += std::max(eig.values[keep], 0.0);
        ++keep;
        if (acc / total >= variance_to_keep)
            break;
    }
    keep = std::max<size_t>(keep, 1);
    c_components.add(keep);
    _explained = acc / total;

    _components = Matrix(d, keep);
    for (size_t i = 0; i < d; ++i)
        for (size_t j = 0; j < keep; ++j)
            _components.at(i, j) = eig.vectors.at(i, j);
}

Matrix
Pca::transform(const Matrix &data) const
{
    if (data.cols() != _means.size())
        fatal("PCA transform feature count ", data.cols(),
              " does not match training feature count ", _means.size());

    Matrix z(data.rows(), data.cols());
    for (size_t r = 0; r < data.rows(); ++r) {
        std::span<const double> src = data.rowSpan(r);
        std::span<double> dst = z.rowSpan(r);
        for (size_t c = 0; c < data.cols(); ++c)
            dst[c] = (src[c] - _means[c]) * _inv_stddevs[c];
    }
    return z.multiply(_components);
}

} // namespace sieve::stats
