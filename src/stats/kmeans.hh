/**
 * @file
 * k-means clustering with k-means++ seeding.
 *
 * PKS groups kernel invocations with k-means in the PCA-reduced
 * feature space, evaluating every k up to 20 and choosing the one that
 * minimizes the prediction error against a golden hardware reference
 * (paper Section II-B). This module provides the clustering kernel;
 * the k selection policy lives in the PKS sampler.
 */

#ifndef SIEVE_STATS_KMEANS_HH
#define SIEVE_STATS_KMEANS_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "stats/matrix.hh"

namespace sieve::stats {

/** Result of one k-means run. */
struct KMeansResult
{
    /** Cluster index per observation, in [0, k). */
    std::vector<size_t> assignments;
    /** Cluster centroids (k x features). */
    Matrix centroids;
    /** Sum of squared distances to the assigned centroid. */
    double inertia = 0.0;
    /** Lloyd iterations executed before convergence. */
    size_t iterations = 0;

    /** Number of clusters (some may be empty after convergence). */
    size_t k() const { return centroids.rows(); }

    /** Observation counts per cluster. */
    std::vector<size_t> clusterSizes() const;

    /**
     * Index of the observation closest to each cluster's centroid
     * (the "centroid representative" selection policy of Fig. 5).
     * Empty clusters yield npos entries.
     *
     * Tie-break invariant: when two members of a cluster are exactly
     * equidistant from the centroid, the *lowest observation index*
     * is selected. Callers (and the determinism rule) rely on this
     * being a property of the distances, not of iteration order.
     */
    std::vector<size_t> closestToCentroid(const Matrix &data) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

/**
 * Precomputed, data-dependent (but k- and seed-independent) state
 * shared across every k-means run over the same observation matrix:
 * the bitwise-distinct rows with their duplicate multiplicities, and
 * the Euclidean norm of each distinct row.
 *
 * PKS feature matrices are duplicate-heavy (content-identical kernel
 * invocations produce bitwise-equal feature rows, and the row-wise
 * PCA projection preserves that equality), and the PKS k selection
 * runs k-means for every k = 1..maxK over the *same* projection — so
 * the sweep builds this context once and every run reuses it. All
 * per-row pure computations (distances, argmins) are evaluated once
 * per distinct row and fanned out to the duplicates; the norms feed
 * the triangle-inequality screens of the accelerated assignment.
 */
struct KMeansContext
{
    /** Observation row -> distinct-row id. */
    std::vector<size_t> distinctOf;
    /** Distinct-row id -> first observation row with those bytes. */
    std::vector<size_t> firstRow;
    /** Distinct-row id -> duplicate multiplicity (fan-out weight). */
    std::vector<uint64_t> multiplicity;
    /** Distinct-row id -> Euclidean norm of the row. */
    std::vector<double> pointNorms;

    size_t numPoints() const { return distinctOf.size(); }
    size_t numDistinct() const { return firstRow.size(); }
};

/** Build the shared context for a data matrix (rows = observations). */
KMeansContext makeKMeansContext(const Matrix &data);

/**
 * Run k-means (k-means++ seeding, Lloyd refinement).
 *
 * The Lloyd assignment step is a Hamerly-style bounds-pruned *exact*
 * search: per distinct row it keeps the exact distance to the
 * assigned centroid (needed for the inertia anyway) plus certified
 * lower bounds on every other centroid, and skips the full centroid
 * scan whenever the bounds prove the assignment cannot change. All
 * bounds carry conservative floating-point slack, so a skip is only
 * taken when the assigned centroid is provably the *unique strict*
 * argmin — making the reference tie-break moot — and the fallback is
 * the reference's own ascending strict-< scan. Duplicate rows share
 * one evaluation. The changed/inertia reduction and the centroid
 * recomputation always run serially in observation order, so results
 * are byte-identical at any worker count (and to the retained
 * reference implementation; see DESIGN.md §8).
 *
 * @param data observations (rows) in feature space
 * @param k number of clusters; clamped to the number of rows
 * @param rng deterministic random stream for seeding
 * @param max_iters Lloyd iteration cap
 * @param pool optional worker pool for the assignment step
 * @param context optional precomputed row-dedup/norm context for
 *        `data` (built internally when absent; pass one to amortize
 *        it across a k sweep)
 */
KMeansResult kMeans(const Matrix &data, size_t k, Rng rng,
                    size_t max_iters = 100, ThreadPool *pool = nullptr,
                    const KMeansContext *context = nullptr);

/** Squared Euclidean distance between a data row and a centroid row. */
double squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                       size_t row_b);

} // namespace sieve::stats

#endif // SIEVE_STATS_KMEANS_HH
