/**
 * @file
 * k-means clustering with k-means++ seeding.
 *
 * PKS groups kernel invocations with k-means in the PCA-reduced
 * feature space, evaluating every k up to 20 and choosing the one that
 * minimizes the prediction error against a golden hardware reference
 * (paper Section II-B). This module provides the clustering kernel;
 * the k selection policy lives in the PKS sampler.
 */

#ifndef SIEVE_STATS_KMEANS_HH
#define SIEVE_STATS_KMEANS_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "stats/matrix.hh"

namespace sieve::stats {

/** Result of one k-means run. */
struct KMeansResult
{
    /** Cluster index per observation, in [0, k). */
    std::vector<size_t> assignments;
    /** Cluster centroids (k x features). */
    Matrix centroids;
    /** Sum of squared distances to the assigned centroid. */
    double inertia = 0.0;
    /** Lloyd iterations executed before convergence. */
    size_t iterations = 0;

    /** Number of clusters (some may be empty after convergence). */
    size_t k() const { return centroids.rows(); }

    /** Observation counts per cluster. */
    std::vector<size_t> clusterSizes() const;

    /**
     * Index of the observation closest to each cluster's centroid
     * (the "centroid representative" selection policy of Fig. 5).
     * Empty clusters yield npos entries.
     *
     * Tie-break invariant: when two members of a cluster are exactly
     * equidistant from the centroid, the *lowest observation index*
     * is selected. Callers (and the determinism rule) rely on this
     * being a property of the distances, not of iteration order.
     */
    std::vector<size_t> closestToCentroid(const Matrix &data) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

/**
 * Run k-means (k-means++ seeding, Lloyd refinement).
 *
 * The Lloyd assignment step ranks centroids through the expansion
 * ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b with cached squared norms
 * (k times fewer multiplies than full distances) and, when a pool is
 * supplied, fans the per-point argmin out with order-preserving
 * writes — the reported inertia is always re-accumulated serially in
 * observation order, so results are byte-identical at any worker
 * count (and to the retained reference implementation).
 *
 * @param data observations (rows) in feature space
 * @param k number of clusters; clamped to the number of rows
 * @param rng deterministic random stream for seeding
 * @param max_iters Lloyd iteration cap
 * @param pool optional worker pool for the assignment step
 */
KMeansResult kMeans(const Matrix &data, size_t k, Rng rng,
                    size_t max_iters = 100, ThreadPool *pool = nullptr);

/** Squared Euclidean distance between a data row and a centroid row. */
double squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                       size_t row_b);

} // namespace sieve::stats

#endif // SIEVE_STATS_KMEANS_HH
