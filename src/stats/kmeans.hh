/**
 * @file
 * k-means clustering with k-means++ seeding.
 *
 * PKS groups kernel invocations with k-means in the PCA-reduced
 * feature space, evaluating every k up to 20 and choosing the one that
 * minimizes the prediction error against a golden hardware reference
 * (paper Section II-B). This module provides the clustering kernel;
 * the k selection policy lives in the PKS sampler.
 */

#ifndef SIEVE_STATS_KMEANS_HH
#define SIEVE_STATS_KMEANS_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "stats/matrix.hh"

namespace sieve::stats {

/** Result of one k-means run. */
struct KMeansResult
{
    /** Cluster index per observation, in [0, k). */
    std::vector<size_t> assignments;
    /** Cluster centroids (k x features). */
    Matrix centroids;
    /** Sum of squared distances to the assigned centroid. */
    double inertia = 0.0;
    /** Lloyd iterations executed before convergence. */
    size_t iterations = 0;

    /** Number of clusters (some may be empty after convergence). */
    size_t k() const { return centroids.rows(); }

    /** Observation counts per cluster. */
    std::vector<size_t> clusterSizes() const;

    /**
     * Index of the observation closest to each cluster's centroid
     * (the "centroid representative" selection policy of Fig. 5).
     * Empty clusters yield npos entries.
     */
    std::vector<size_t> closestToCentroid(const Matrix &data) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

/**
 * Run k-means (k-means++ seeding, Lloyd refinement).
 *
 * @param data observations (rows) in feature space
 * @param k number of clusters; clamped to the number of rows
 * @param rng deterministic random stream for seeding
 * @param max_iters Lloyd iteration cap
 */
KMeansResult kMeans(const Matrix &data, size_t k, Rng rng,
                    size_t max_iters = 100);

/** Squared Euclidean distance between a data row and a centroid row. */
double squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                       size_t row_b);

} // namespace sieve::stats

#endif // SIEVE_STATS_KMEANS_HH
