#include "stats/error_metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sieve::stats {

double
relativeError(double predicted, double measured)
{
    if (measured == 0.0)
        fatal("relative error against a zero measurement");
    return std::fabs(predicted - measured) / std::fabs(measured);
}

double
meanError(const std::vector<double> &errors)
{
    if (errors.empty())
        return 0.0;
    double sum = 0.0;
    for (double e : errors)
        sum += e;
    return sum / static_cast<double>(errors.size());
}

double
maxError(const std::vector<double> &errors)
{
    if (errors.empty())
        return 0.0;
    return *std::max_element(errors.begin(), errors.end());
}

} // namespace sieve::stats
