#include "stats/matrix.hh"

#include <cmath>

#include "common/logging.hh"

namespace sieve::stats {

Matrix::Matrix(size_t rows, size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m._cols)
            fatal("ragged matrix input: row ", r, " has ", rows[r].size(),
                  " columns, expected ", m._cols);
        for (size_t c = 0; c < m._cols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    SIEVE_ASSERT(r < _rows && c < _cols,
                 "matrix index (", r, ", ", c, ") out of ", _rows, "x",
                 _cols);
    return _data[r * _cols + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    SIEVE_ASSERT(r < _rows && c < _cols,
                 "matrix index (", r, ", ", c, ") out of ", _rows, "x",
                 _cols);
    return _data[r * _cols + c];
}

std::vector<double>
Matrix::row(size_t r) const
{
    std::vector<double> out(_cols);
    for (size_t c = 0; c < _cols; ++c)
        out[c] = at(r, c);
    return out;
}

std::vector<double>
Matrix::col(size_t c) const
{
    std::vector<double> out(_rows);
    for (size_t r = 0; r < _rows; ++r)
        out[r] = at(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (_cols != other._rows)
        fatal("matrix product shape mismatch: ", _rows, "x", _cols,
              " * ", other._rows, "x", other._cols);
    Matrix out(_rows, other._cols);
    for (size_t r = 0; r < _rows; ++r) {
        for (size_t k = 0; k < _cols; ++k) {
            double v = at(r, k);
            if (v == 0.0)
                continue;
            for (size_t c = 0; c < other._cols; ++c)
                out.at(r, c) += v * other.at(k, c);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(_cols, _rows);
    for (size_t r = 0; r < _rows; ++r)
        for (size_t c = 0; c < _cols; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
standardizeColumns(const Matrix &m)
{
    Matrix out(m.rows(), m.cols());
    if (m.empty())
        return out;
    double n = static_cast<double>(m.rows());
    for (size_t c = 0; c < m.cols(); ++c) {
        double sum = 0.0;
        for (size_t r = 0; r < m.rows(); ++r)
            sum += m.at(r, c);
        double mean = sum / n;

        double sq = 0.0;
        for (size_t r = 0; r < m.rows(); ++r) {
            double d = m.at(r, c) - mean;
            sq += d * d;
        }
        double sd = std::sqrt(sq / n);
        double inv = sd > 0.0 ? 1.0 / sd : 1.0;
        for (size_t r = 0; r < m.rows(); ++r)
            out.at(r, c) = (m.at(r, c) - mean) * inv;
    }
    return out;
}

Matrix
covarianceMatrix(const Matrix &m)
{
    SIEVE_ASSERT(m.rows() > 0, "covariance of empty matrix");
    size_t d = m.cols();
    double n = static_cast<double>(m.rows());

    std::vector<double> means(d, 0.0);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < d; ++c)
            means[c] += m.at(r, c);
    for (double &mu : means)
        mu /= n;

    Matrix cov(d, d);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t i = 0; i < d; ++i) {
            double di = m.at(r, i) - means[i];
            for (size_t j = i; j < d; ++j)
                cov.at(i, j) += di * (m.at(r, j) - means[j]);
        }
    }
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            cov.at(i, j) /= n;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

} // namespace sieve::stats
