#include "stats/matrix.hh"

#include <cmath>

#include "common/logging.hh"

namespace sieve::stats {

Matrix::Matrix(size_t rows, size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m._cols)
            fatal("ragged matrix input: row ", r, " has ", rows[r].size(),
                  " columns, expected ", m._cols);
        for (size_t c = 0; c < m._cols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    SIEVE_ASSERT(r < _rows && c < _cols,
                 "matrix index (", r, ", ", c, ") out of ", _rows, "x",
                 _cols);
    return _data[r * _cols + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    SIEVE_ASSERT(r < _rows && c < _cols,
                 "matrix index (", r, ", ", c, ") out of ", _rows, "x",
                 _cols);
    return _data[r * _cols + c];
}

std::span<double>
Matrix::rowSpan(size_t r)
{
    SIEVE_ASSERT(r < _rows, "matrix row ", r, " out of ", _rows);
    return {_data.data() + r * _cols, _cols};
}

std::span<const double>
Matrix::rowSpan(size_t r) const
{
    SIEVE_ASSERT(r < _rows, "matrix row ", r, " out of ", _rows);
    return {_data.data() + r * _cols, _cols};
}

std::vector<double>
Matrix::row(size_t r) const
{
    std::vector<double> out(_cols);
    for (size_t c = 0; c < _cols; ++c)
        out[c] = at(r, c);
    return out;
}

std::vector<double>
Matrix::col(size_t c) const
{
    std::vector<double> out(_rows);
    for (size_t r = 0; r < _rows; ++r)
        out[r] = at(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (_cols != other._rows)
        fatal("matrix product shape mismatch: ", _rows, "x", _cols,
              " * ", other._rows, "x", other._cols);
    // Cache-friendly (i, k, j) accumulation on raw row spans: the
    // inner loop streams one row of `other` into one row of `out`
    // with no per-element bounds checks. The zero-skip is bit-safe
    // (the accumulators are never -0.0, so adding 0.0 * x is a
    // no-op), and the (i, k, j) order keeps the arithmetic identical
    // to the historical at()-based loop.
    Matrix out(_rows, other._cols);
    for (size_t r = 0; r < _rows; ++r) {
        std::span<const double> a_row = rowSpan(r);
        std::span<double> out_row = out.rowSpan(r);
        for (size_t k = 0; k < _cols; ++k) {
            double v = a_row[k];
            if (v == 0.0)
                continue;
            std::span<const double> b_row = other.rowSpan(k);
            for (size_t c = 0; c < other._cols; ++c)
                out_row[c] += v * b_row[c];
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(_cols, _rows);
    for (size_t r = 0; r < _rows; ++r)
        for (size_t c = 0; c < _cols; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
standardizeColumns(const Matrix &m)
{
    Matrix out(m.rows(), m.cols());
    if (m.empty())
        return out;
    // Row-major passes with per-column accumulators: each column's
    // accumulator still receives its terms in row order (identical
    // arithmetic to the historical column-major loops), but memory is
    // streamed instead of strided.
    double n = static_cast<double>(m.rows());
    size_t d = m.cols();
    std::vector<double> mean(d, 0.0);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const double> row = m.rowSpan(r);
        for (size_t c = 0; c < d; ++c)
            mean[c] += row[c];
    }
    for (size_t c = 0; c < d; ++c)
        mean[c] /= n;

    std::vector<double> sq(d, 0.0);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const double> row = m.rowSpan(r);
        for (size_t c = 0; c < d; ++c) {
            double diff = row[c] - mean[c];
            sq[c] += diff * diff;
        }
    }
    std::vector<double> inv(d, 1.0);
    for (size_t c = 0; c < d; ++c) {
        double sd = std::sqrt(sq[c] / n);
        if (sd > 0.0)
            inv[c] = 1.0 / sd;
    }

    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const double> src = m.rowSpan(r);
        std::span<double> dst = out.rowSpan(r);
        for (size_t c = 0; c < d; ++c)
            dst[c] = (src[c] - mean[c]) * inv[c];
    }
    return out;
}

Matrix
covarianceMatrix(const Matrix &m)
{
    SIEVE_ASSERT(m.rows() > 0, "covariance of empty matrix");
    size_t d = m.cols();
    double n = static_cast<double>(m.rows());

    std::vector<double> means(d, 0.0);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const double> row = m.rowSpan(r);
        for (size_t c = 0; c < d; ++c)
            means[c] += row[c];
    }
    for (double &mu : means)
        mu /= n;

    // Upper-triangle accumulation on raw spans, (r, i, j) order as
    // before so every cov entry sums its terms in the same sequence.
    Matrix cov(d, d);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const double> row = m.rowSpan(r);
        for (size_t i = 0; i < d; ++i) {
            double di = row[i] - means[i];
            std::span<double> cov_row = cov.rowSpan(i);
            for (size_t j = i; j < d; ++j)
                cov_row[j] += di * (row[j] - means[j]);
        }
    }
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            cov.at(i, j) /= n;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

} // namespace sieve::stats
