#include "stats/kde.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>
#include <numeric>

#include "common/logging.hh"
#include "stats/descriptive.hh"

namespace sieve::stats {

KernelDensity::KernelDensity(std::vector<double> sample, double bandwidth)
    : _sample(std::move(sample)), _bandwidth(bandwidth)
{
    SIEVE_ASSERT(!_sample.empty(), "KDE over empty sample");
    if (_bandwidth <= 0.0)
        _bandwidth = silvermanBandwidth(_sample);
}

double
KernelDensity::silvermanBandwidth(const std::vector<double> &sample)
{
    SIEVE_ASSERT(!sample.empty(), "bandwidth of empty sample");
    double sigma = stddev(sample);
    double q1 = percentile(sample, 25.0);
    double q3 = percentile(sample, 75.0);
    double iqr = q3 - q1;

    double spread = sigma;
    if (iqr > 0.0)
        spread = std::min(spread, iqr / 1.34);
    double n = static_cast<double>(sample.size());
    double h = 0.9 * spread * std::pow(n, -0.2);

    if (h <= 0.0) {
        // Degenerate (near-constant) sample: any tiny positive width
        // keeps density() well defined; callers see one stratum anyway.
        double scale = std::fabs(mean(sample));
        h = scale > 0.0 ? 1e-3 * scale : 1e-3;
    }
    return h;
}

double
KernelDensity::density(double x) const
{
    const double inv_h = 1.0 / _bandwidth;
    const double norm =
        inv_h / (std::sqrt(2.0 * std::numbers::pi) *
                 static_cast<double>(_sample.size()));
    double sum = 0.0;
    for (double xi : _sample) {
        double u = (x - xi) * inv_h;
        sum += std::exp(-0.5 * u * u);
    }
    return norm * sum;
}

std::vector<double>
KernelDensity::densityGrid(double lo, double hi, size_t points) const
{
    SIEVE_ASSERT(points >= 2, "density grid needs at least two points");
    SIEVE_ASSERT(hi >= lo, "grid range [", lo, ", ", hi, "]");
    std::vector<double> out(points);
    double step = (hi - lo) / static_cast<double>(points - 1);
    for (size_t i = 0; i < points; ++i)
        out[i] = density(lo + step * static_cast<double>(i));
    return out;
}

std::vector<double>
densityValleys(const std::vector<double> &sample, size_t grid_points)
{
    SIEVE_ASSERT(!sample.empty(), "valleys of empty sample");
    auto [lo_it, hi_it] = std::minmax_element(sample.begin(), sample.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (hi <= lo)
        return {}; // constant sample: unimodal by definition

    KernelDensity kde(sample);
    // Pad the grid by one bandwidth on each side so boundary modes are
    // not mistaken for monotone edges.
    lo -= kde.bandwidth();
    hi += kde.bandwidth();
    std::vector<double> dens = kde.densityGrid(lo, hi, grid_points);

    std::vector<double> cuts;
    double step = (hi - lo) / static_cast<double>(grid_points - 1);
    for (size_t i = 1; i + 1 < dens.size(); ++i) {
        if (dens[i] < dens[i - 1] && dens[i] <= dens[i + 1])
            cuts.push_back(lo + step * static_cast<double>(i));
    }
    return cuts;
}

namespace {

/** A contiguous run [begin, end) of indexes into a sorted sample. */
struct Segment
{
    size_t begin;
    size_t end;
};

double
segmentCov(const std::vector<double> &sorted, const Segment &seg)
{
    Accumulator acc;
    for (size_t i = seg.begin; i < seg.end; ++i)
        acc.add(sorted[i]);
    return acc.cov();
}

/**
 * Split a CoV-violating segment at its widest internal value gap.
 * @pre the segment spans at least two distinct values.
 */
size_t
widestGapSplit(const std::vector<double> &sorted, const Segment &seg)
{
    size_t best = seg.begin + 1;
    double best_gap = -1.0;
    for (size_t i = seg.begin + 1; i < seg.end; ++i) {
        double gap = sorted[i] - sorted[i - 1];
        if (gap > best_gap) {
            best_gap = gap;
            best = i;
        }
    }
    return best;
}

} // namespace

std::vector<size_t>
stratifyByDensity(const std::vector<double> &values, double max_cov)
{
    SIEVE_ASSERT(max_cov > 0.0, "non-positive CoV bound ", max_cov);
    SIEVE_ASSERT(!values.empty(), "stratify of empty sample");

    // Work on a sorted copy; map back through the permutation at the end.
    std::vector<size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return values[a] < values[b];
    });
    std::vector<double> sorted(values.size());
    for (size_t i = 0; i < order.size(); ++i)
        sorted[i] = values[order[i]];

    // Phase 1: initial segmentation at KDE density valleys.
    std::vector<double> cuts = densityValleys(sorted);
    std::vector<Segment> segments;
    {
        size_t begin = 0;
        for (double cut : cuts) {
            size_t end = static_cast<size_t>(
                std::lower_bound(sorted.begin() + begin, sorted.end(),
                                 cut) - sorted.begin());
            if (end > begin) {
                segments.push_back({begin, end});
                begin = end;
            }
        }
        if (begin < sorted.size())
            segments.push_back({begin, sorted.size()});
    }

    // Phase 2: enforce the CoV bound by recursive widest-gap splits.
    std::deque<Segment> work(segments.begin(), segments.end());
    segments.clear();
    while (!work.empty()) {
        Segment seg = work.front();
        work.pop_front();
        if (segmentCov(sorted, seg) < max_cov ||
            sorted[seg.begin] == sorted[seg.end - 1]) {
            segments.push_back(seg);
            continue;
        }
        size_t mid = widestGapSplit(sorted, seg);
        work.push_front({mid, seg.end});
        work.push_front({seg.begin, mid});
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  return a.begin < b.begin;
              });

    // Phase 3: greedily merge neighbours to minimize the stratum count.
    std::vector<Segment> merged;
    for (const Segment &seg : segments) {
        if (!merged.empty()) {
            Segment candidate{merged.back().begin, seg.end};
            if (segmentCov(sorted, candidate) < max_cov) {
                merged.back() = candidate;
                continue;
            }
        }
        merged.push_back(seg);
    }

    // Map stratum labels back to the input order.
    std::vector<size_t> labels(values.size());
    for (size_t s = 0; s < merged.size(); ++s) {
        for (size_t i = merged[s].begin; i < merged[s].end; ++i)
            labels[order[i]] = s;
    }
    return labels;
}

size_t
numStrata(const std::vector<size_t> &labels)
{
    size_t max_label = 0;
    for (size_t l : labels)
        max_label = std::max(max_label, l);
    return labels.empty() ? 0 : max_label + 1;
}

} // namespace sieve::stats
