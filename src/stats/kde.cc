#include "stats/kde.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>
#include <numeric>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/descriptive.hh"

namespace sieve::stats {

KernelDensity::KernelDensity(std::vector<double> sample, double bandwidth)
    : _sample(std::move(sample)), _bandwidth(bandwidth)
{
    SIEVE_ASSERT(!_sample.empty(), "KDE over empty sample");
    if (_bandwidth <= 0.0)
        _bandwidth = silvermanBandwidth(_sample);
    // The stratification pipeline always hands us an already-sorted
    // sample, which unlocks the binary-searched kernel window in
    // density(). The order of _sample is never changed here: the
    // kernel sum must accumulate in storage order to stay bit-for-bit
    // identical to the historical dense evaluation.
    _sorted = std::is_sorted(_sample.begin(), _sample.end());
}

double
KernelDensity::silvermanBandwidth(const std::vector<double> &sample)
{
    SIEVE_ASSERT(!sample.empty(), "bandwidth of empty sample");
    double sigma = stddev(sample);
    double q1 = percentile(sample, 25.0);
    double q3 = percentile(sample, 75.0);
    double iqr = q3 - q1;

    double spread = sigma;
    if (iqr > 0.0)
        spread = std::min(spread, iqr / 1.34);
    double n = static_cast<double>(sample.size());
    double h = 0.9 * spread * std::pow(n, -0.2);

    if (h <= 0.0) {
        // Degenerate (near-constant) sample: any tiny positive width
        // keeps density() well defined; callers see one stratum anyway.
        double scale = std::fabs(mean(sample));
        h = scale > 0.0 ? 1e-3 * scale : 1e-3;
    }
    return h;
}

double
KernelDensity::density(double x) const
{
    const double inv_h = 1.0 / _bandwidth;
    const double norm =
        inv_h / (std::sqrt(2.0 * std::numbers::pi) *
                 static_cast<double>(_sample.size()));
    double sum = 0.0;
    if (_sorted) {
        // Only sample points within kKernelCutoff bandwidths of x can
        // contribute a non-zero kernel term (see the constant's doc);
        // binary-search that window and sum it in storage order. The
        // skipped terms are exactly +0.0, and the accumulator is never
        // -0.0, so the result is bit-identical to the dense sum.
        const double radius = kKernelCutoff * _bandwidth;
        auto first = std::lower_bound(_sample.begin(), _sample.end(),
                                      x - radius);
        auto last = std::upper_bound(first, _sample.end(), x + radius);
        for (auto it = first; it != last; ++it) {
            double u = (x - *it) * inv_h;
            sum += std::exp(-0.5 * u * u);
        }
    } else {
        // Unsorted sample (direct KernelDensity users): keep the full
        // walk in storage order but skip the exp() call where the
        // kernel underflows to exactly zero.
        const double cutoff_sq = kKernelCutoff * kKernelCutoff;
        for (double xi : _sample) {
            double u = (x - xi) * inv_h;
            if (u * u < cutoff_sq)
                sum += std::exp(-0.5 * u * u);
        }
    }
    return norm * sum;
}

std::vector<double>
KernelDensity::densityGrid(double lo, double hi, size_t points,
                           ThreadPool *pool) const
{
    SIEVE_ASSERT(points >= 2, "density grid needs at least two points");
    SIEVE_ASSERT(hi >= lo, "grid range [", lo, ", ", hi, "]");
    // Per-grid (not per-point) instrumentation: density() is the hot
    // loop and must stay untouched.
    static obs::Counter &c_points =
        obs::counter("stats.kde.grid_points");
    c_points.add(points);
    obs::Span span("stats", "kde.grid",
                   "points=" + std::to_string(points));
    std::vector<double> out(points);
    double step = (hi - lo) / static_cast<double>(points - 1);
    auto eval = [&](size_t i) {
        out[i] = density(lo + step * static_cast<double>(i));
    };
    if (pool)
        parallelFor(*pool, points, eval);
    else
        for (size_t i = 0; i < points; ++i)
            eval(i);
    return out;
}

std::vector<double>
densityValleys(const std::vector<double> &sample, size_t grid_points,
               ThreadPool *pool)
{
    SIEVE_ASSERT(!sample.empty(), "valleys of empty sample");
    auto [lo_it, hi_it] = std::minmax_element(sample.begin(), sample.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (hi <= lo)
        return {}; // constant sample: unimodal by definition

    KernelDensity kde(sample);
    // Pad the grid by one bandwidth on each side so boundary modes are
    // not mistaken for monotone edges.
    lo -= kde.bandwidth();
    hi += kde.bandwidth();
    std::vector<double> dens = kde.densityGrid(lo, hi, grid_points, pool);

    std::vector<double> cuts;
    cuts.reserve(8); // valleys are rare; avoid growth in the common case
    double step = (hi - lo) / static_cast<double>(grid_points - 1);
    for (size_t i = 1; i + 1 < dens.size(); ++i) {
        // A valley is a strict drop from the left with no further drop
        // to the right. The left strictness handles plateaus: on a flat
        // run (dens[i] == dens[i-1] == dens[i+1]) the condition is
        // false, and the asymmetric `<` / `<=` pair means a descending
        // step into a plateau fires only at the plateau's first grid
        // point — adjacent grid points can never both emit a cut, so a
        // flat-density region yields at most one cut, not a run of
        // duplicates.
        if (dens[i] < dens[i - 1] && dens[i] <= dens[i + 1])
            cuts.push_back(lo + step * static_cast<double>(i));
    }
    return cuts;
}

namespace {

/** A contiguous run [begin, end) of indexes into a sorted sample. */
struct Segment
{
    size_t begin;
    size_t end;
};

/**
 * O(1) per-segment CoV oracle over a sorted sample, backed by prefix
 * sums of (x - centre) and (x - centre)^2. Centering at the sample
 * mean keeps the sum-of-squares cancellation well conditioned even
 * for near-constant segments far from zero (instruction counts are
 * huge and tightly clustered), where raw Σx² prefix sums would lose
 * all significant digits of the variance.
 *
 * The CoV convention mirrors Accumulator::cov(): zero for a zero
 * mean, sigma / |mu| otherwise (population variance, divide by n).
 * The naive per-element reference lives in stats::reference and is
 * asserted equivalent (identical stratification labels) by the
 * oracle tests.
 */
class SegmentCov
{
  public:
    explicit SegmentCov(const std::vector<double> &sorted)
        : _centre(0.0), _psum(sorted.size() + 1, 0.0),
          _psq(sorted.size() + 1, 0.0)
    {
        double total = 0.0;
        for (double v : sorted)
            total += v;
        _centre = total / static_cast<double>(sorted.size());
        for (size_t i = 0; i < sorted.size(); ++i) {
            double d = sorted[i] - _centre;
            _psum[i + 1] = _psum[i] + d;
            _psq[i + 1] = _psq[i] + d * d;
        }
    }

    double
    operator()(const Segment &seg) const
    {
        SIEVE_ASSERT(seg.begin < seg.end && seg.end < _psum.size(),
                     "segment [", seg.begin, ", ", seg.end, ") invalid");
        double n = static_cast<double>(seg.end - seg.begin);
        double s = _psum[seg.end] - _psum[seg.begin];
        double q = _psq[seg.end] - _psq[seg.begin];
        double centred_mean = s / n;
        double var = q / n - centred_mean * centred_mean;
        if (var < 0.0)
            var = 0.0; // cancellation noise on (near-)constant segments
        double mu = _centre + centred_mean;
        if (mu == 0.0)
            return 0.0;
        return std::sqrt(var) / std::fabs(mu);
    }

  private:
    double _centre;
    std::vector<double> _psum;
    std::vector<double> _psq;
};

/**
 * Split a CoV-violating segment at its widest internal value gap.
 * @pre the segment spans at least two distinct values.
 */
size_t
widestGapSplit(const std::vector<double> &sorted, const Segment &seg)
{
    size_t best = seg.begin + 1;
    double best_gap = -1.0;
    for (size_t i = seg.begin + 1; i < seg.end; ++i) {
        double gap = sorted[i] - sorted[i - 1];
        if (gap > best_gap) {
            best_gap = gap;
            best = i;
        }
    }
    return best;
}

} // namespace

std::vector<size_t>
stratifyByDensity(const std::vector<double> &values, double max_cov,
                  ThreadPool *pool)
{
    SIEVE_ASSERT(max_cov > 0.0, "non-positive CoV bound ", max_cov);
    SIEVE_ASSERT(!values.empty(), "stratify of empty sample");

    static obs::Counter &c_calls =
        obs::counter("stats.stratify.calls");
    static obs::Counter &c_strata =
        obs::counter("stats.stratify.strata");
    c_calls.add();
    obs::Span span("stats", "stratify",
                   "n=" + std::to_string(values.size()));

    // Work on a sorted copy; map back through the permutation at the end.
    std::vector<size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return values[a] < values[b];
    });
    std::vector<double> sorted(values.size());
    for (size_t i = 0; i < order.size(); ++i)
        sorted[i] = values[order[i]];

    // Phase 1: initial segmentation at KDE density valleys.
    std::vector<double> cuts = densityValleys(sorted, 256, pool);
    std::vector<Segment> segments;
    {
        size_t begin = 0;
        for (double cut : cuts) {
            size_t end = static_cast<size_t>(
                std::lower_bound(sorted.begin() + begin, sorted.end(),
                                 cut) - sorted.begin());
            if (end > begin) {
                segments.push_back({begin, end});
                begin = end;
            }
        }
        if (begin < sorted.size())
            segments.push_back({begin, sorted.size()});
    }

    // O(1) CoV queries for phases 2 and 3 (the former per-segment
    // Welford pass made the splits/merges O(n) per decision).
    SegmentCov segment_cov(sorted);

    // Phase 2: enforce the CoV bound by recursive widest-gap splits.
    std::deque<Segment> work(segments.begin(), segments.end());
    segments.clear();
    while (!work.empty()) {
        Segment seg = work.front();
        work.pop_front();
        if (segment_cov(seg) < max_cov ||
            sorted[seg.begin] == sorted[seg.end - 1]) {
            segments.push_back(seg);
            continue;
        }
        size_t mid = widestGapSplit(sorted, seg);
        work.push_front({mid, seg.end});
        work.push_front({seg.begin, mid});
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  return a.begin < b.begin;
              });

    // Phase 3: greedily merge neighbours to minimize the stratum count.
    std::vector<Segment> merged;
    for (const Segment &seg : segments) {
        if (!merged.empty()) {
            Segment candidate{merged.back().begin, seg.end};
            if (segment_cov(candidate) < max_cov) {
                merged.back() = candidate;
                continue;
            }
        }
        merged.push_back(seg);
    }

    c_strata.add(merged.size());

    // Map stratum labels back to the input order.
    std::vector<size_t> labels(values.size());
    for (size_t s = 0; s < merged.size(); ++s) {
        for (size_t i = merged[s].begin; i < merged[s].end; ++i)
            labels[order[i]] = s;
    }
    return labels;
}

size_t
numStrata(const std::vector<size_t> &labels)
{
    size_t max_label = 0;
    for (size_t l : labels)
        max_label = std::max(max_label, l);
    return labels.empty() ? 0 : max_label + 1;
}

} // namespace sieve::stats
