/**
 * @file
 * Small dense row-major matrix used by the PCA and k-means substrates.
 *
 * Deliberately minimal: the sampling pipelines need matrices of at
 * most a few hundred thousand rows by a dozen columns, so a flat
 * vector with bounds-checked accessors is both sufficient and easy to
 * audit.
 */

#ifndef SIEVE_STATS_MATRIX_HH
#define SIEVE_STATS_MATRIX_HH

#include <cstddef>
#include <span>
#include <vector>

namespace sieve::stats {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix initialized to zero. */
    Matrix(size_t rows, size_t cols);

    /** Build from row vectors. fatal() on ragged input. */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    size_t rows() const { return _rows; }
    size_t cols() const { return _cols; }
    bool empty() const { return _rows == 0 || _cols == 0; }

    /** Element access (bounds-checked via SIEVE_ASSERT). */
    double &at(size_t r, size_t c);
    double at(size_t r, size_t c) const;

    /**
     * Contiguous view of row r with *no per-element bounds checks* —
     * the hot-path accessor for the k-means/PCA inner loops, where
     * per-element at() dominates the profile. The row index itself is
     * still asserted (one check per row, not per element).
     */
    std::span<double> rowSpan(size_t r);
    std::span<const double> rowSpan(size_t r) const;

    /** Copy out one row. */
    std::vector<double> row(size_t r) const;

    /** Copy out one column. */
    std::vector<double> col(size_t c) const;

    /** Matrix product this * other. fatal() on shape mismatch. */
    Matrix multiply(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

  private:
    size_t _rows = 0;
    size_t _cols = 0;
    std::vector<double> _data;
};

/**
 * Z-score standardization per column: subtract the column mean,
 * divide by the column standard deviation. Constant columns are
 * centred but left unscaled (their stddev is zero).
 */
Matrix standardizeColumns(const Matrix &m);

/** Sample covariance matrix (divides by n) of the rows of m. */
Matrix covarianceMatrix(const Matrix &m);

} // namespace sieve::stats

#endif // SIEVE_STATS_MATRIX_HH
