#include "stats/reference.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numbers>
#include <numeric>

#include "common/logging.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"
#include "stats/pca.hh"

namespace sieve::stats::reference {

namespace {

/** Dense kernel sum over the whole sample, in storage order. */
double
denseDensity(const std::vector<double> &sample, double bandwidth,
             double x)
{
    const double inv_h = 1.0 / bandwidth;
    const double norm =
        inv_h / (std::sqrt(2.0 * std::numbers::pi) *
                 static_cast<double>(sample.size()));
    double sum = 0.0;
    for (double xi : sample) {
        double u = (x - xi) * inv_h;
        sum += std::exp(-0.5 * u * u);
    }
    return norm * sum;
}

/** Pre-PR-2 densityValleys: dense grid, no reserve, no fast path. */
std::vector<double>
denseValleys(const std::vector<double> &sample, size_t grid_points)
{
    SIEVE_ASSERT(!sample.empty(), "valleys of empty sample");
    auto [lo_it, hi_it] =
        std::minmax_element(sample.begin(), sample.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (hi <= lo)
        return {};

    double h = KernelDensity::silvermanBandwidth(sample);
    lo -= h;
    hi += h;
    std::vector<double> dens =
        densityGrid(sample, h, lo, hi, grid_points);

    std::vector<double> cuts;
    double step = (hi - lo) / static_cast<double>(grid_points - 1);
    for (size_t i = 1; i + 1 < dens.size(); ++i) {
        if (dens[i] < dens[i - 1] && dens[i] <= dens[i + 1])
            cuts.push_back(lo + step * static_cast<double>(i));
    }
    return cuts;
}

struct Segment
{
    size_t begin;
    size_t end;
};

/** Per-decision Welford pass — O(segment) per query. */
double
segmentCov(const std::vector<double> &sorted, const Segment &seg)
{
    Accumulator acc;
    for (size_t i = seg.begin; i < seg.end; ++i)
        acc.add(sorted[i]);
    return acc.cov();
}

size_t
widestGapSplit(const std::vector<double> &sorted, const Segment &seg)
{
    size_t best = seg.begin + 1;
    double best_gap = -1.0;
    for (size_t i = seg.begin + 1; i < seg.end; ++i) {
        double gap = sorted[i] - sorted[i - 1];
        if (gap > best_gap) {
            best_gap = gap;
            best = i;
        }
    }
    return best;
}

} // namespace

std::vector<double>
densityGrid(const std::vector<double> &sample, double bandwidth,
            double lo, double hi, size_t points)
{
    SIEVE_ASSERT(!sample.empty(), "reference KDE over empty sample");
    SIEVE_ASSERT(bandwidth > 0.0, "non-positive bandwidth ", bandwidth);
    SIEVE_ASSERT(points >= 2, "density grid needs at least two points");
    SIEVE_ASSERT(hi >= lo, "grid range [", lo, ", ", hi, "]");
    std::vector<double> out(points);
    double step = (hi - lo) / static_cast<double>(points - 1);
    for (size_t i = 0; i < points; ++i)
        out[i] = denseDensity(sample, bandwidth,
                              lo + step * static_cast<double>(i));
    return out;
}

std::vector<size_t>
stratifyByDensity(const std::vector<double> &values, double max_cov)
{
    SIEVE_ASSERT(max_cov > 0.0, "non-positive CoV bound ", max_cov);
    SIEVE_ASSERT(!values.empty(), "stratify of empty sample");

    std::vector<size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return values[a] < values[b];
    });
    std::vector<double> sorted(values.size());
    for (size_t i = 0; i < order.size(); ++i)
        sorted[i] = values[order[i]];

    std::vector<double> cuts = denseValleys(sorted, 256);
    std::vector<Segment> segments;
    {
        size_t begin = 0;
        for (double cut : cuts) {
            size_t end = static_cast<size_t>(
                std::lower_bound(sorted.begin() + begin, sorted.end(),
                                 cut) - sorted.begin());
            if (end > begin) {
                segments.push_back({begin, end});
                begin = end;
            }
        }
        if (begin < sorted.size())
            segments.push_back({begin, sorted.size()});
    }

    std::deque<Segment> work(segments.begin(), segments.end());
    segments.clear();
    while (!work.empty()) {
        Segment seg = work.front();
        work.pop_front();
        if (segmentCov(sorted, seg) < max_cov ||
            sorted[seg.begin] == sorted[seg.end - 1]) {
            segments.push_back(seg);
            continue;
        }
        size_t mid = widestGapSplit(sorted, seg);
        work.push_front({mid, seg.end});
        work.push_front({seg.begin, mid});
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  return a.begin < b.begin;
              });

    std::vector<Segment> merged;
    for (const Segment &seg : segments) {
        if (!merged.empty()) {
            Segment candidate{merged.back().begin, seg.end};
            if (segmentCov(sorted, candidate) < max_cov) {
                merged.back() = candidate;
                continue;
            }
        }
        merged.push_back(seg);
    }

    std::vector<size_t> labels(values.size());
    for (size_t s = 0; s < merged.size(); ++s) {
        for (size_t i = merged[s].begin; i < merged[s].end; ++i)
            labels[order[i]] = s;
    }
    return labels;
}

KMeansResult
kMeans(const Matrix &data, size_t k, Rng rng, size_t max_iters)
{
    SIEVE_ASSERT(data.rows() > 0, "k-means on empty data");
    k = std::clamp<size_t>(k, 1, data.rows());

    size_t n = data.rows();
    size_t dims = data.cols();

    Matrix centroids(k, dims);
    std::vector<double> min_dist(n,
                                 std::numeric_limits<double>::infinity());

    size_t first = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    for (size_t c = 0; c < dims; ++c)
        centroids.at(0, c) = data.at(first, c);

    for (size_t centroid = 1; centroid < k; ++centroid) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double d = squaredDistance(data, i, centroids, centroid - 1);
            min_dist[i] = std::min(min_dist[i], d);
            total += min_dist[i];
        }
        size_t chosen;
        if (total <= 0.0) {
            chosen = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(n) - 1));
        } else {
            double r = rng.uniform() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (size_t i = 0; i < n; ++i) {
                acc += min_dist[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        }
        for (size_t c = 0; c < dims; ++c)
            centroids.at(centroid, c) = data.at(chosen, c);
    }

    KMeansResult result;
    result.assignments.assign(n, 0);
    std::vector<size_t> counts(k, 0);

    for (size_t iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        result.inertia = 0.0;
        for (size_t i = 0; i < n; ++i) {
            size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
                double d = squaredDistance(data, i, centroids, c);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignments[i] != best) {
                result.assignments[i] = best;
                changed = true;
            }
            result.inertia += best_d;
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        Matrix next(k, dims);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            size_t c = result.assignments[i];
            ++counts[c];
            for (size_t d = 0; d < dims; ++d)
                next.at(c, d) += data.at(i, d);
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            double inv = 1.0 / static_cast<double>(counts[c]);
            for (size_t d = 0; d < dims; ++d)
                centroids.at(c, d) = next.at(c, d) * inv;
        }
    }

    result.centroids = std::move(centroids);
    return result;
}

PcaFit
pcaFit(const Matrix &data, double variance_to_keep)
{
    SIEVE_ASSERT(variance_to_keep > 0.0 && variance_to_keep <= 1.0,
                 "variance_to_keep ", variance_to_keep,
                 " out of (0, 1]");
    SIEVE_ASSERT(data.rows() > 0 && data.cols() > 0,
                 "reference PCA on an empty data matrix");

    size_t d = data.cols();
    double n = static_cast<double>(data.rows());

    // Column-major bounds-checked passes. Each column accumulator
    // receives its terms in row order, same as the optimized
    // row-major span passes — bit-identical sums.
    PcaFit fit;
    fit.means.assign(d, 0.0);
    fit.invStddevs.assign(d, 1.0);
    for (size_t c = 0; c < d; ++c) {
        for (size_t r = 0; r < data.rows(); ++r)
            fit.means[c] += data.at(r, c);
        fit.means[c] /= n;
    }
    for (size_t c = 0; c < d; ++c) {
        double sq = 0.0;
        for (size_t r = 0; r < data.rows(); ++r) {
            double diff = data.at(r, c) - fit.means[c];
            sq += diff * diff;
        }
        double sd = std::sqrt(sq / n);
        fit.invStddevs[c] = sd > 0.0 ? 1.0 / sd : 1.0;
    }

    Matrix z(data.rows(), d);
    for (size_t r = 0; r < data.rows(); ++r)
        for (size_t c = 0; c < d; ++c)
            z.at(r, c) =
                (data.at(r, c) - fit.means[c]) * fit.invStddevs[c];

    // Entry-at-a-time covariance: cov(i, j) sums its terms over r in
    // storage order, exactly the per-entry sequence of the optimized
    // (r, i, j) upper-triangle accumulation.
    std::vector<double> zmeans(d, 0.0);
    for (size_t c = 0; c < d; ++c) {
        for (size_t r = 0; r < z.rows(); ++r)
            zmeans[c] += z.at(r, c);
        zmeans[c] /= n;
    }
    Matrix cov(d, d);
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            double sum = 0.0;
            for (size_t r = 0; r < z.rows(); ++r)
                sum += (z.at(r, i) - zmeans[i]) *
                       (z.at(r, j) - zmeans[j]);
            cov.at(i, j) = sum / n;
            cov.at(j, i) = cov.at(i, j);
        }
    }

    EigenDecomposition eig = jacobiEigen(cov);
    fit.eigenvalues = eig.values;

    double total = 0.0;
    for (double ev : eig.values)
        total += std::max(ev, 0.0);
    if (total <= 0.0)
        total = 1.0;

    size_t keep = 0;
    double acc = 0.0;
    while (keep < d) {
        acc += std::max(eig.values[keep], 0.0);
        ++keep;
        if (acc / total >= variance_to_keep)
            break;
    }
    keep = std::max<size_t>(keep, 1);
    fit.explained = acc / total;

    fit.components = Matrix(d, keep);
    for (size_t i = 0; i < d; ++i)
        for (size_t j = 0; j < keep; ++j)
            fit.components.at(i, j) = eig.vectors.at(i, j);
    return fit;
}

} // namespace sieve::stats::reference
