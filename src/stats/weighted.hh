/**
 * @file
 * Weighted mean computations used for performance projection.
 *
 * Sieve predicts application IPC as the *weighted harmonic mean* of
 * per-stratum IPC with instruction-count weights (paper Section
 * III-D); PKS predicts cycle count as a *weighted sum* of
 * representative cycle counts with invocation-count weights (Section
 * II-A). Both live here, alongside weight normalization.
 */

#ifndef SIEVE_STATS_WEIGHTED_HH
#define SIEVE_STATS_WEIGHTED_HH

#include <vector>

namespace sieve::stats {

/**
 * Normalize weights to sum to one.
 * fatal() if the weights are empty, negative, or sum to zero.
 */
std::vector<double> normalizeWeights(const std::vector<double> &weights);

/**
 * Weighted arithmetic mean: sum(w_i * x_i) / sum(w_i).
 * The correct mean for CPI-like (time-per-work) metrics with
 * work-based weights.
 */
double weightedArithmeticMean(const std::vector<double> &values,
                              const std::vector<double> &weights);

/**
 * Weighted harmonic mean: sum(w_i) / sum(w_i / x_i).
 * The correct mean for IPC-like (work-per-time) metrics with
 * work-based weights. fatal() on a non-positive value.
 */
double weightedHarmonicMean(const std::vector<double> &values,
                            const std::vector<double> &weights);

/** Unweighted harmonic mean. fatal() on a non-positive value. */
double harmonicMean(const std::vector<double> &values);

/** Weighted sum: sum(w_i * x_i). */
double weightedSum(const std::vector<double> &values,
                   const std::vector<double> &weights);

} // namespace sieve::stats

#endif // SIEVE_STATS_WEIGHTED_HH
