/**
 * @file
 * Descriptive statistics: streaming accumulation and batch summaries.
 *
 * The central quantity in the Sieve methodology is the Coefficient of
 * Variation (CoV = sigma / mu) of instruction counts across kernel
 * invocations (paper Section III-B); this module provides it along
 * with the usual moments.
 */

#ifndef SIEVE_STATS_DESCRIPTIVE_HH
#define SIEVE_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace sieve::stats {

/** Summary of a sample: count, moments, extrema, and CoV. */
struct Summary
{
    size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;  //!< population variance (divide by n)
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;

    /**
     * Coefficient of variation, sigma / mu.
     * Zero for an empty sample or a zero mean (by convention: a
     * degenerate stratum has no meaningful relative dispersion).
     */
    double cov() const;
};

/**
 * Numerically stable streaming accumulator (Welford's algorithm).
 * Supports weighted observations for weighted-CoV computations
 * (Fig. 4 reports *weighted* average intra-cluster CoV).
 */
class Accumulator
{
  public:
    /** Add one observation with optional weight. @pre weight > 0 */
    void add(double value, double weight = 1.0);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Number of observations added. */
    size_t count() const { return _count; }

    /** Total weight added. */
    double totalWeight() const { return _weight; }

    /** Weighted mean of the observations so far. */
    double mean() const { return _mean; }

    /** Weighted population variance. */
    double variance() const;

    /** Weighted population standard deviation. */
    double stddev() const;

    /** sigma / mu; zero when undefined. */
    double cov() const;

    double min() const { return _min; }
    double max() const { return _max; }

    /** Snapshot into a Summary struct. */
    Summary summary() const;

  private:
    size_t _count = 0;
    double _weight = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Batch summary of a value vector. */
Summary summarize(const std::vector<double> &values);

/** Batch summary with per-value weights. @pre equal lengths */
Summary summarize(const std::vector<double> &values,
                  const std::vector<double> &weights);

/** Arithmetic mean; zero for an empty vector. */
double mean(const std::vector<double> &values);

/** Population standard deviation; zero for n < 2. */
double stddev(const std::vector<double> &values);

/** Coefficient of variation of a vector; zero when undefined. */
double coefficientOfVariation(const std::vector<double> &values);

/**
 * Percentile by linear interpolation between order statistics.
 * @param p in [0, 100].
 */
double percentile(std::vector<double> values, double p);

} // namespace sieve::stats

#endif // SIEVE_STATS_DESCRIPTIVE_HH
