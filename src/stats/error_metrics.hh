/**
 * @file
 * Prediction-error metrics shared by the Sieve and PKS evaluations.
 *
 * The paper's accuracy metric (Section IV-3) is
 *     Error = |C_predicted - C_measured| / C_measured
 * applied identically to both sampling methods.
 */

#ifndef SIEVE_STATS_ERROR_METRICS_HH
#define SIEVE_STATS_ERROR_METRICS_HH

#include <vector>

namespace sieve::stats {

/**
 * Absolute relative error |predicted - measured| / measured.
 * fatal() if measured is zero.
 */
double relativeError(double predicted, double measured);

/** Mean of a vector of error values; zero when empty. */
double meanError(const std::vector<double> &errors);

/** Maximum of a vector of error values; zero when empty. */
double maxError(const std::vector<double> &errors);

} // namespace sieve::stats

#endif // SIEVE_STATS_ERROR_METRICS_HH
