/**
 * @file
 * Fixed-width histogram over a numeric range.
 */

#ifndef SIEVE_STATS_HISTOGRAM_HH
#define SIEVE_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sieve::stats {

/**
 * Equal-width histogram. Values outside [lo, hi) clamp into the first
 * or last bin so no observation is silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin, must exceed lo
     * @param num_bins number of bins, must be positive
     */
    Histogram(double lo, double hi, size_t num_bins);

    /** Convenience: span the min..max of a sample. */
    static Histogram fit(const std::vector<double> &values,
                         size_t num_bins);

    /** Add one observation. */
    void add(double value);

    /** Add a batch of observations. */
    void addAll(const std::vector<double> &values);

    size_t numBins() const { return _counts.size(); }
    uint64_t binCount(size_t bin) const;
    uint64_t totalCount() const { return _total; }

    /** Lower edge of the given bin. */
    double binLow(size_t bin) const;

    /** Center of the given bin. */
    double binCenter(size_t bin) const;

    /** Fraction of observations in the given bin (0 when empty). */
    double binFraction(size_t bin) const;

    /** Index of the fullest bin (ties resolve to the lowest index). */
    size_t modeBin() const;

  private:
    double _lo;
    double _width;
    std::vector<uint64_t> _counts;
    uint64_t _total = 0;
};

} // namespace sieve::stats

#endif // SIEVE_STATS_HISTOGRAM_HH
