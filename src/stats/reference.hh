/**
 * @file
 * Retained naive reference implementations of the optimized analysis
 * hot paths.
 *
 * PR 2 rewrote the KDE grid evaluation, the density stratification,
 * and the k-means assignment loop for speed under the constraint that
 * every output stays byte-identical. These are the originals, kept
 * verbatim, serving two masters:
 *
 *   - the oracle tests, which assert the optimized paths produce
 *     bit-for-bit identical results across randomized inputs, and
 *   - bench_perf, which times optimized-vs-reference to compute the
 *     speedups recorded in BENCH_PR*.json.
 *
 * Nothing in the production pipeline calls into this namespace; do
 * not "optimize" these — their entire value is being the slow,
 * obviously-correct baseline.
 */

#ifndef SIEVE_STATS_REFERENCE_HH
#define SIEVE_STATS_REFERENCE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "stats/kmeans.hh"
#include "stats/matrix.hh"

namespace sieve::stats::reference {

/**
 * Dense O(n * points) KDE grid: every grid point sums the Gaussian
 * kernel over the *entire* sample in storage order (the pre-PR-2
 * KernelDensity::densityGrid).
 *
 * @param bandwidth must be positive (callers pass
 *        KernelDensity::silvermanBandwidth to match production).
 */
std::vector<double> densityGrid(const std::vector<double> &sample,
                                double bandwidth, double lo, double hi,
                                size_t points);

/**
 * Pre-PR-2 stratifyByDensity: dense KDE valleys plus per-decision
 * Welford CoV passes (O(segment) per split/merge query).
 */
std::vector<size_t> stratifyByDensity(const std::vector<double> &values,
                                      double max_cov);

/**
 * Pre-PR-2 kMeans: k-means++ seeding plus Lloyd iterations whose
 * assignment step computes full squared distances through
 * bounds-checked Matrix::at for every (point, centroid) pair.
 */
KMeansResult kMeans(const Matrix &data, size_t k, Rng rng,
                    size_t max_iters = 100);

} // namespace sieve::stats::reference

#endif // SIEVE_STATS_REFERENCE_HH
