/**
 * @file
 * Retained naive reference implementations of the optimized analysis
 * hot paths.
 *
 * PR 2 rewrote the KDE grid evaluation, the density stratification,
 * and the k-means assignment loop for speed under the constraint that
 * every output stays byte-identical. These are the originals, kept
 * verbatim, serving two masters:
 *
 *   - the oracle tests, which assert the optimized paths produce
 *     bit-for-bit identical results across randomized inputs, and
 *   - bench_perf, which times optimized-vs-reference to compute the
 *     speedups recorded in BENCH_PR*.json.
 *
 * Nothing in the production pipeline calls into this namespace; do
 * not "optimize" these — their entire value is being the slow,
 * obviously-correct baseline.
 */

#ifndef SIEVE_STATS_REFERENCE_HH
#define SIEVE_STATS_REFERENCE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "stats/kmeans.hh"
#include "stats/matrix.hh"

namespace sieve::stats::reference {

/** Output of the reference PCA fit (mirrors the Pca accessors). */
struct PcaFit
{
    std::vector<double> means;
    std::vector<double> invStddevs;
    /** Eigenvalues of all components, descending. */
    std::vector<double> eigenvalues;
    /** features x retained-components projection. */
    Matrix components;
    /** Fraction of variance explained by the retained components. */
    double explained = 0.0;
};

/**
 * Naive PCA fit: bounds-checked Matrix::at element loops for the
 * standardization and an entry-at-a-time covariance, then the same
 * jacobiEigen and component-selection logic as stats::Pca. Every
 * accumulator receives its terms in the same order as the optimized
 * row-major span passes, so the fit is bit-identical to Pca — the
 * oracle tests assert it, and bench_perf times Pca against this.
 */
PcaFit pcaFit(const Matrix &data, double variance_to_keep = 0.9);

/**
 * Dense O(n * points) KDE grid: every grid point sums the Gaussian
 * kernel over the *entire* sample in storage order (the pre-PR-2
 * KernelDensity::densityGrid).
 *
 * @param bandwidth must be positive (callers pass
 *        KernelDensity::silvermanBandwidth to match production).
 */
std::vector<double> densityGrid(const std::vector<double> &sample,
                                double bandwidth, double lo, double hi,
                                size_t points);

/**
 * Pre-PR-2 stratifyByDensity: dense KDE valleys plus per-decision
 * Welford CoV passes (O(segment) per split/merge query).
 */
std::vector<size_t> stratifyByDensity(const std::vector<double> &values,
                                      double max_cov);

/**
 * Pre-PR-2 kMeans: k-means++ seeding plus Lloyd iterations whose
 * assignment step computes full squared distances through
 * bounds-checked Matrix::at for every (point, centroid) pair.
 */
KMeansResult kMeans(const Matrix &data, size_t k, Rng rng,
                    size_t max_iters = 100);

} // namespace sieve::stats::reference

#endif // SIEVE_STATS_REFERENCE_HH
