/**
 * @file
 * One-dimensional Gaussian kernel density estimation and
 * density-valley stratification.
 *
 * Sieve uses KDE to sub-stratify Tier-3 kernels (high instruction-count
 * variability across invocations) such that (1) the number of strata is
 * minimized and (2) the CoV of instruction count within each stratum
 * stays below the threshold theta (paper Section III-B). The
 * implementation here mirrors the scikit-learn 1-D KDE example the
 * paper cites: evaluate a Gaussian KDE on a grid, cut the sample at
 * density valleys (local minima), then repair any stratum that still
 * violates the CoV bound and greedily re-merge neighbours that do not.
 */

#ifndef SIEVE_STATS_KDE_HH
#define SIEVE_STATS_KDE_HH

#include <cstddef>
#include <vector>

#include "common/thread_pool.hh"

namespace sieve::stats {

/** Gaussian kernel density estimator over a 1-D sample. */
class KernelDensity
{
  public:
    /**
     * Kernel support cutoff: `exp(-0.5 * u * u)` is exactly +0.0 in
     * IEEE double arithmetic for |u| >= 38.61 (the exponent falls
     * below ln(DBL_TRUE_MIN / 2) ~ -745.13, so a correctly-rounded
     * exp underflows to zero). 39 keeps a safety margin. Terms beyond
     * the cutoff therefore contribute *bit-for-bit nothing* to the
     * kernel sum, which is what lets density() restrict itself to a
     * binary-searched window of a sorted sample without changing a
     * single output bit relative to the dense sum.
     */
    static constexpr double kKernelCutoff = 39.0;

    /**
     * @param sample observations (copied); must be non-empty
     * @param bandwidth kernel bandwidth; <= 0 selects Silverman's rule
     */
    explicit KernelDensity(std::vector<double> sample,
                           double bandwidth = 0.0);

    /** Density estimate at point x. */
    double density(double x) const;

    /**
     * Evaluate the density on a uniform grid over [lo, hi].
     * Grid points are independent; a non-null pool fans them out via
     * parallelFor with order-preserving writes (byte-identical to the
     * serial evaluation at any worker count).
     */
    std::vector<double> densityGrid(double lo, double hi, size_t points,
                                    ThreadPool *pool = nullptr) const;

    /** The bandwidth in use (after rule-of-thumb selection). */
    double bandwidth() const { return _bandwidth; }

    /**
     * Silverman's rule-of-thumb bandwidth:
     * 0.9 * min(sigma, IQR / 1.34) * n^(-1/5).
     * Falls back to a small positive value for degenerate samples.
     */
    static double silvermanBandwidth(const std::vector<double> &sample);

  private:
    std::vector<double> _sample;
    double _bandwidth;
    bool _sorted; //!< enables the windowed density() fast path
};

/**
 * Cut points of a sample at KDE density valleys.
 *
 * @return ascending cut values c_1 < ... < c_m; a value v belongs to
 *         segment i where c_i <= v < c_{i+1} (with sentinels at
 *         +/- infinity). Empty when the density is unimodal.
 */
std::vector<double> densityValleys(const std::vector<double> &sample,
                                   size_t grid_points = 256,
                                   ThreadPool *pool = nullptr);

/**
 * Stratify a 1-D sample so every stratum has CoV below max_cov.
 *
 * Pipeline: KDE valley cuts -> split any violating stratum at its
 * widest internal gap until compliant -> greedily merge adjacent
 * strata whose union still satisfies the bound (minimizing strata).
 *
 * @param values the sample (need not be sorted)
 * @param max_cov upper bound on per-stratum CoV; must be positive
 * @param pool optional worker pool for the KDE grid evaluation;
 *        results are byte-identical at any worker count
 * @return stratum index per input value, in [0, num_strata); stratum
 *         indices are ordered by ascending value range
 */
std::vector<size_t> stratifyByDensity(const std::vector<double> &values,
                                      double max_cov,
                                      ThreadPool *pool = nullptr);

/** Number of distinct strata in a stratifyByDensity() labelling. */
size_t numStrata(const std::vector<size_t> &labels);

} // namespace sieve::stats

#endif // SIEVE_STATS_KDE_HH
