#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sieve::stats {

double
Summary::cov() const
{
    if (count == 0 || mean == 0.0)
        return 0.0;
    return stddev / std::fabs(mean);
}

void
Accumulator::add(double value, double weight)
{
    SIEVE_ASSERT(weight > 0.0, "non-positive observation weight ", weight);
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;

    // Weighted Welford (West 1979).
    double new_weight = _weight + weight;
    double delta = value - _mean;
    double r = delta * weight / new_weight;
    _mean += r;
    _m2 += _weight * delta * r;
    _weight = new_weight;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    double total = _weight + other._weight;
    double delta = other._mean - _mean;
    _m2 += other._m2 + delta * delta * _weight * other._weight / total;
    _mean += delta * other._weight / total;
    _weight = total;
    _count += other._count;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
Accumulator::variance() const
{
    if (_count == 0 || _weight <= 0.0)
        return 0.0;
    return _m2 / _weight;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::cov() const
{
    if (_count == 0 || _mean == 0.0)
        return 0.0;
    return stddev() / std::fabs(_mean);
}

Summary
Accumulator::summary() const
{
    Summary s;
    s.count = _count;
    s.mean = _mean;
    s.variance = variance();
    s.stddev = stddev();
    s.min = _min;
    s.max = _max;
    return s;
}

Summary
summarize(const std::vector<double> &values)
{
    Accumulator acc;
    for (double v : values)
        acc.add(v);
    return acc.summary();
}

Summary
summarize(const std::vector<double> &values,
          const std::vector<double> &weights)
{
    SIEVE_ASSERT(values.size() == weights.size(),
                 "values/weights length mismatch: ", values.size(), " vs ",
                 weights.size());
    Accumulator acc;
    for (size_t i = 0; i < values.size(); ++i)
        acc.add(values[i], weights[i]);
    return acc.summary();
}

double
mean(const std::vector<double> &values)
{
    return summarize(values).mean;
}

double
stddev(const std::vector<double> &values)
{
    return summarize(values).stddev;
}

double
coefficientOfVariation(const std::vector<double> &values)
{
    return summarize(values).cov();
}

double
percentile(std::vector<double> values, double p)
{
    SIEVE_ASSERT(!values.empty(), "percentile of empty sample");
    SIEVE_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

} // namespace sieve::stats
