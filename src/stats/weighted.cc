#include "stats/weighted.hh"

#include "common/logging.hh"

namespace sieve::stats {

namespace {

void
checkLengths(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    SIEVE_ASSERT(values.size() == weights.size(),
                 "values/weights length mismatch: ", values.size(), " vs ",
                 weights.size());
    SIEVE_ASSERT(!values.empty(), "weighted mean of empty sample");
}

} // namespace

std::vector<double>
normalizeWeights(const std::vector<double> &weights)
{
    if (weights.empty())
        fatal("cannot normalize an empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        fatal("weights sum to zero");

    std::vector<double> out(weights.size());
    for (size_t i = 0; i < weights.size(); ++i)
        out[i] = weights[i] / total;
    return out;
}

double
weightedArithmeticMean(const std::vector<double> &values,
                       const std::vector<double> &weights)
{
    checkLengths(values, weights);
    double num = 0.0;
    double den = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        num += weights[i] * values[i];
        den += weights[i];
    }
    SIEVE_ASSERT(den > 0.0, "zero total weight");
    return num / den;
}

double
weightedHarmonicMean(const std::vector<double> &values,
                     const std::vector<double> &weights)
{
    checkLengths(values, weights);
    double num = 0.0;
    double den = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        if (weights[i] == 0.0)
            continue;
        if (values[i] <= 0.0)
            fatal("harmonic mean over non-positive value ", values[i]);
        num += weights[i];
        den += weights[i] / values[i];
    }
    SIEVE_ASSERT(den > 0.0, "zero total weight");
    return num / den;
}

double
harmonicMean(const std::vector<double> &values)
{
    std::vector<double> unit(values.size(), 1.0);
    return weightedHarmonicMean(values, unit);
}

double
weightedSum(const std::vector<double> &values,
            const std::vector<double> &weights)
{
    checkLengths(values, weights);
    double sum = 0.0;
    for (size_t i = 0; i < values.size(); ++i)
        sum += weights[i] * values[i];
    return sum;
}

} // namespace sieve::stats
