#include "stats/hierarchical.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"
#include "stats/kmeans.hh" // squaredDistance

namespace sieve::stats {

namespace {

/** One dendrogram merge: clusters a and b joined at `height`. */
struct Merge
{
    size_t a;
    size_t b;
    double height;
};

/** Disjoint-set forest for cutting the dendrogram. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : _parent(n)
    {
        std::iota(_parent.begin(), _parent.end(), 0);
    }

    size_t
    find(size_t x)
    {
        while (_parent[x] != x) {
            _parent[x] = _parent[_parent[x]];
            x = _parent[x];
        }
        return x;
    }

    void
    unite(size_t a, size_t b)
    {
        _parent[find(a)] = find(b);
    }

  private:
    std::vector<size_t> _parent;
};

/**
 * Full average-linkage dendrogram via the nearest-neighbour chain
 * algorithm (O(m^2) time, O(m^2) memory). Average linkage is
 * reducible, so NN-chain produces the exact dendrogram.
 */
std::vector<Merge>
buildDendrogram(const Matrix &points)
{
    size_t m = points.rows();
    SIEVE_ASSERT(m >= 1, "dendrogram of empty sample");

    // Pairwise average-linkage distances, updated via Lance-Williams.
    std::vector<double> dist(m * m, 0.0);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = i + 1; j < m; ++j) {
            double d = std::sqrt(squaredDistance(points, i, points, j));
            dist[i * m + j] = d;
            dist[j * m + i] = d;
        }
    }

    std::vector<bool> active(m, true);
    std::vector<size_t> size(m, 1);
    std::vector<Merge> merges;
    merges.reserve(m > 0 ? m - 1 : 0);

    std::vector<size_t> chain;
    chain.reserve(m);

    auto nearest = [&](size_t c) {
        size_t best = c;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t o = 0; o < m; ++o) {
            if (o == c || !active[o])
                continue;
            double d = dist[c * m + o];
            if (d < best_d) {
                best_d = d;
                best = o;
            }
        }
        return std::pair<size_t, double>(best, best_d);
    };

    size_t remaining = m;
    while (remaining > 1) {
        if (chain.empty()) {
            // Start the chain from the lowest-index active cluster.
            for (size_t c = 0; c < m; ++c) {
                if (active[c]) {
                    chain.push_back(c);
                    break;
                }
            }
        }
        size_t top = chain.back();
        auto [nn, d] = nearest(top);
        if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
            // Reciprocal nearest neighbours: merge top and nn.
            chain.pop_back();
            chain.pop_back();

            size_t a = top;
            size_t b = nn;
            merges.push_back({a, b, d});

            // Lance-Williams average-linkage update into slot a.
            double na = static_cast<double>(size[a]);
            double nb = static_cast<double>(size[b]);
            for (size_t o = 0; o < m; ++o) {
                if (!active[o] || o == a || o == b)
                    continue;
                double updated = (na * dist[a * m + o] +
                                  nb * dist[b * m + o]) /
                                 (na + nb);
                dist[a * m + o] = updated;
                dist[o * m + a] = updated;
            }
            size[a] += size[b];
            active[b] = false;
            --remaining;
        } else {
            chain.push_back(nn);
        }
    }
    return merges;
}

} // namespace

HierarchicalResult
hierarchicalCluster(const Matrix &data, HierarchicalOptions options)
{
    SIEVE_ASSERT(data.rows() > 0, "clustering empty data");
    if (options.distanceCutoff <= 0.0 && options.targetClusters == 0)
        fatal("hierarchicalCluster needs a distance cutoff or a "
              "target cluster count");

    size_t n = data.rows();
    size_t m = std::min(n, options.maxDendrogramPoints);

    // Deterministic subsample for the dendrogram.
    std::vector<size_t> pool(n);
    std::iota(pool.begin(), pool.end(), 0);
    if (m < n) {
        Rng rng(options.seed);
        rng.shuffle(pool);
    }
    pool.resize(m);
    std::sort(pool.begin(), pool.end());

    Matrix sample(m, data.cols());
    for (size_t i = 0; i < m; ++i) {
        for (size_t c = 0; c < data.cols(); ++c)
            sample.at(i, c) = data.at(pool[i], c);
    }

    // Build the dendrogram, then cut it: apply merges in height order
    // until either criterion triggers.
    std::vector<Merge> merges = buildDendrogram(sample);
    std::sort(merges.begin(), merges.end(),
              [](const Merge &a, const Merge &b) {
                  return a.height < b.height;
              });

    UnionFind forest(m);
    size_t clusters = m;
    double cut = 0.0;
    for (const Merge &merge : merges) {
        if (options.targetClusters > 0 &&
            clusters <= options.targetClusters)
            break;
        if (options.distanceCutoff > 0.0 &&
            merge.height > options.distanceCutoff)
            break;
        if (forest.find(merge.a) == forest.find(merge.b))
            continue; // already connected via an earlier (lower) merge
        forest.unite(merge.a, merge.b);
        --clusters;
        cut = merge.height;
    }

    // Dense cluster ids over the subsample.
    std::vector<size_t> root_to_id(m, static_cast<size_t>(-1));
    std::vector<size_t> sample_label(m);
    size_t next_id = 0;
    for (size_t i = 0; i < m; ++i) {
        size_t root = forest.find(i);
        if (root_to_id[root] == static_cast<size_t>(-1))
            root_to_id[root] = next_id++;
        sample_label[i] = root_to_id[root];
    }

    // Centroids from the subsample members.
    Matrix centroids(next_id, data.cols());
    std::vector<size_t> counts(next_id, 0);
    for (size_t i = 0; i < m; ++i) {
        size_t c = sample_label[i];
        ++counts[c];
        for (size_t f = 0; f < data.cols(); ++f)
            centroids.at(c, f) += sample.at(i, f);
    }
    for (size_t c = 0; c < next_id; ++c) {
        double inv = 1.0 / static_cast<double>(counts[c]);
        for (size_t f = 0; f < data.cols(); ++f)
            centroids.at(c, f) *= inv;
    }

    // Assign every point (sampled or not) to its nearest centroid.
    HierarchicalResult result;
    result.centroids = std::move(centroids);
    result.cutDistance = cut;
    result.assignments.resize(n);
    for (size_t i = 0; i < n; ++i) {
        size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < result.centroids.rows(); ++c) {
            double d =
                squaredDistance(data, i, result.centroids, c);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        result.assignments[i] = best;
    }
    return result;
}

} // namespace sieve::stats
