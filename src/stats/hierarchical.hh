/**
 * @file
 * Agglomerative (bottom-up) hierarchical clustering with average
 * linkage.
 *
 * TBPoint (Huang et al., IPDPS 2014) — the pre-PKS state of the art
 * the paper discusses in Section VI — groups kernel invocations with
 * hierarchical clustering. Its O(n^2) cost is exactly why PKA moved
 * to k-means "to scale to larger workloads"; the TBPoint-style
 * baseline here therefore builds the dendrogram on a bounded
 * subsample and assigns the remaining points to the nearest cluster
 * centroid, which preserves the method's behaviour at tractable cost.
 */

#ifndef SIEVE_STATS_HIERARCHICAL_HH
#define SIEVE_STATS_HIERARCHICAL_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "stats/matrix.hh"

namespace sieve::stats {

/** Result of a hierarchical clustering run. */
struct HierarchicalResult
{
    /** Cluster index per observation, in [0, k). */
    std::vector<size_t> assignments;

    /** Cluster centroids (k x features). */
    Matrix centroids;

    /** Merge distance at which clustering stopped. */
    double cutDistance = 0.0;

    size_t k() const { return centroids.rows(); }
};

/** Options for hierarchicalCluster(). */
struct HierarchicalOptions
{
    /**
     * Stop merging when the next merge's average-linkage distance
     * exceeds this value. <= 0 disables the distance criterion.
     */
    double distanceCutoff = 0.0;

    /** Stop merging when this many clusters remain (0 = ignore). */
    size_t targetClusters = 0;

    /**
     * Dendrogram subsample bound: clustering runs on at most this
     * many points; the rest are assigned to the nearest centroid.
     */
    size_t maxDendrogramPoints = 2000;

    /** Seed for the subsample draw. */
    uint64_t seed = 0x7b9017;
};

/**
 * Cluster the rows of `data` bottom-up with average linkage.
 * At least one of distanceCutoff / targetClusters must be set.
 */
HierarchicalResult hierarchicalCluster(const Matrix &data,
                                       HierarchicalOptions options);

} // namespace sieve::stats

#endif // SIEVE_STATS_HIERARCHICAL_HH
