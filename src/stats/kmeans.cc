#include "stats/kmeans.hh"

#include <algorithm>
#include <limits>
#include <span>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::stats {

double
squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                size_t row_b)
{
    SIEVE_ASSERT(a.cols() == b.cols(), "dimension mismatch ", a.cols(),
                 " vs ", b.cols());
    std::span<const double> x = a.rowSpan(row_a);
    std::span<const double> y = b.rowSpan(row_b);
    double sum = 0.0;
    for (size_t c = 0; c < x.size(); ++c) {
        double d = x[c] - y[c];
        sum += d * d;
    }
    return sum;
}

std::vector<size_t>
KMeansResult::clusterSizes() const
{
    std::vector<size_t> sizes(k(), 0);
    for (size_t c : assignments)
        ++sizes[c];
    return sizes;
}

std::vector<size_t>
KMeansResult::closestToCentroid(const Matrix &data) const
{
    std::vector<size_t> best(k(), npos);
    std::vector<double> best_dist(k(),
                                  std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < assignments.size(); ++i) {
        size_t c = assignments[i];
        double d = squaredDistance(data, i, centroids, c);
        // Explicit tie-break: on an exactly equal distance, keep the
        // lowest observation index. The strict `<` alone would only
        // achieve this as a side effect of the ascending scan; spelling
        // the invariant out keeps it true under any future reordering
        // (e.g. a parallel scan with per-chunk minima).
        if (d < best_dist[c] ||
            (d == best_dist[c] && i < best[c])) {
            best_dist[c] = d;
            best[c] = i;
        }
    }
    return best;
}

KMeansResult
kMeans(const Matrix &data, size_t k, Rng rng, size_t max_iters,
       ThreadPool *pool)
{
    SIEVE_ASSERT(data.rows() > 0, "k-means on empty data");
    k = std::clamp<size_t>(k, 1, data.rows());

    // Per-run (not per-assignment) instrumentation: assignOne is the
    // hot loop and must stay untouched.
    static obs::Counter &c_runs = obs::counter("stats.kmeans.runs");
    static obs::Counter &c_iters =
        obs::counter("stats.kmeans.iterations");
    c_runs.add();
    obs::Span span("stats", "kmeans", "k=" + std::to_string(k));

    size_t n = data.rows();
    size_t dims = data.cols();

    // --- k-means++ seeding (identical arithmetic to the reference) ---
    Matrix centroids(k, dims);
    std::vector<double> min_dist(n,
                                 std::numeric_limits<double>::infinity());

    size_t first = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    for (size_t c = 0; c < dims; ++c)
        centroids.at(0, c) = data.at(first, c);

    for (size_t centroid = 1; centroid < k; ++centroid) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double d = squaredDistance(data, i, centroids, centroid - 1);
            min_dist[i] = std::min(min_dist[i], d);
            total += min_dist[i];
        }
        size_t chosen;
        if (total <= 0.0) {
            // All points coincide with existing centroids; any pick
            // works, keep it deterministic.
            chosen = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(n) - 1));
        } else {
            double r = rng.uniform() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (size_t i = 0; i < n; ++i) {
                acc += min_dist[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        }
        for (size_t c = 0; c < dims; ++c)
            centroids.at(centroid, c) = data.at(chosen, c);
    }

    // --- Lloyd iterations ---
    // Assignment ranks centroids by the score ||c||^2 - 2 x.c (the
    // ||x||^2 term is constant across centroids, so dropping it keeps
    // the argmin — and on exactly tied scores the ascending scan keeps
    // the lowest centroid index, matching the reference's strict `<`).
    // The inertia contribution is then *re-derived* from the winning
    // centroid with the same full squared distance the reference
    // computes, so the reported inertia matches bit-for-bit.
    KMeansResult result;
    result.assignments.assign(n, 0);
    std::vector<size_t> counts(k, 0);

    std::vector<double> cent_norms(k);
    std::vector<size_t> next_assign(n);
    std::vector<double> next_dist(n);

    for (size_t iter = 0; iter < max_iters; ++iter) {
        for (size_t c = 0; c < k; ++c) {
            std::span<const double> row = centroids.rowSpan(c);
            double sum = 0.0;
            for (double v : row)
                sum += v * v;
            cent_norms[c] = sum;
        }

        auto assignOne = [&](size_t i) {
            std::span<const double> x = data.rowSpan(i);
            size_t best = 0;
            double best_score =
                std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
                std::span<const double> cent = centroids.rowSpan(c);
                double dot = 0.0;
                for (size_t d = 0; d < dims; ++d)
                    dot += x[d] * cent[d];
                double score = cent_norms[c] - 2.0 * dot;
                if (score < best_score) {
                    best_score = score;
                    best = c;
                }
            }
            next_assign[i] = best;
            next_dist[i] = squaredDistance(data, i, centroids, best);
        };
        if (pool)
            parallelFor(*pool, n, assignOne);
        else
            for (size_t i = 0; i < n; ++i)
                assignOne(i);

        // Serial in-order reduction: changed flag and inertia see the
        // observations in the same sequence as the reference loop.
        bool changed = false;
        result.inertia = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (result.assignments[i] != next_assign[i]) {
                result.assignments[i] = next_assign[i];
                changed = true;
            }
            result.inertia += next_dist[i];
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Recompute centroids; empty clusters keep their old position.
        Matrix next(k, dims);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            size_t c = result.assignments[i];
            ++counts[c];
            std::span<const double> row = data.rowSpan(i);
            std::span<double> acc = next.rowSpan(c);
            for (size_t d = 0; d < dims; ++d)
                acc[d] += row[d];
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            double inv = 1.0 / static_cast<double>(counts[c]);
            std::span<const double> acc = next.rowSpan(c);
            std::span<double> cent = centroids.rowSpan(c);
            for (size_t d = 0; d < dims; ++d)
                cent[d] = acc[d] * inv;
        }
    }

    c_iters.add(result.iterations);
    result.centroids = std::move(centroids);
    return result;
}

} // namespace sieve::stats
