#include "stats/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string_view>
#include <unordered_map>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::stats {

double
squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                size_t row_b)
{
    SIEVE_ASSERT(a.cols() == b.cols(), "dimension mismatch ", a.cols(),
                 " vs ", b.cols());
    std::span<const double> x = a.rowSpan(row_a);
    std::span<const double> y = b.rowSpan(row_b);
    double sum = 0.0;
    for (size_t c = 0; c < x.size(); ++c) {
        double d = x[c] - y[c];
        sum += d * d;
    }
    return sum;
}

std::vector<size_t>
KMeansResult::clusterSizes() const
{
    std::vector<size_t> sizes(k(), 0);
    for (size_t c : assignments)
        ++sizes[c];
    return sizes;
}

std::vector<size_t>
KMeansResult::closestToCentroid(const Matrix &data) const
{
    std::vector<size_t> best(k(), npos);
    std::vector<double> best_dist(k(),
                                  std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < assignments.size(); ++i) {
        size_t c = assignments[i];
        double d = squaredDistance(data, i, centroids, c);
        // Explicit tie-break: on an exactly equal distance, keep the
        // lowest observation index. The strict `<` alone would only
        // achieve this as a side effect of the ascending scan; spelling
        // the invariant out keeps it true under any future reordering
        // (e.g. a parallel scan with per-chunk minima).
        if (d < best_dist[c] ||
            (d == best_dist[c] && i < best[c])) {
            best_dist[c] = d;
            best[c] = i;
        }
    }
    return best;
}

KMeansContext
makeKMeansContext(const Matrix &data)
{
    KMeansContext ctx;
    size_t n = data.rows();
    size_t dims = data.cols();
    ctx.distinctOf.resize(n);

    // Bitwise row identity: keying on the raw row bytes means two rows
    // are merged only when every double compares memcmp-equal, so any
    // pure function of the row bytes (distance, argmin) provably
    // yields the same bits for both. NaN payloads and -0.0 vs +0.0
    // are treated as distinct — conservative and still correct.
    std::unordered_map<std::string_view, size_t> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::span<const double> row = data.rowSpan(i);
        std::string_view key(reinterpret_cast<const char *>(row.data()),
                             dims * sizeof(double));
        auto [it, inserted] = ids.emplace(key, ctx.firstRow.size());
        if (inserted) {
            ctx.firstRow.push_back(i);
            ctx.multiplicity.push_back(0);
        }
        ctx.distinctOf[i] = it->second;
        ++ctx.multiplicity[it->second];
    }

    ctx.pointNorms.resize(ctx.firstRow.size());
    for (size_t d = 0; d < ctx.firstRow.size(); ++d) {
        std::span<const double> row = data.rowSpan(ctx.firstRow[d]);
        double sum = 0.0;
        for (double v : row)
            sum += v * v;
        ctx.pointNorms[d] = std::sqrt(sum);
    }
    return ctx;
}

namespace {

// Conservative floating-point slack for the Hamerly bounds. Every
// certified quantity is built from correctly-rounded operations whose
// accumulated relative error is O(dims * 2^-53) ~ 1e-15; inflating
// upper bounds and deflating lower bounds by 1e-12 therefore dominates
// the rounding error by three orders of magnitude, so a bound
// comparison can never prune an assignment the exact arithmetic would
// have changed. (Pruning too *little* only costs a full scan, which
// is always exact.)
constexpr double kInflate = 1.0 + 1e-12;
constexpr double kDeflate = 1.0 - 1e-12;

/**
 * Half the distance to each centroid's nearest other centroid,
 * deflated — the classic Hamerly `s` value. A point within s of its
 * assigned centroid is provably *strictly* closer to it than to any
 * other. O(k^2 dims), negligible at PKS scale (k <= 20, dims <= 12).
 */
void
computeHalfSeparations(const Matrix &centroids, std::vector<double> &out)
{
    size_t k = centroids.rows();
    out.assign(k, std::numeric_limits<double>::infinity());
    for (size_t a = 0; a < k; ++a) {
        for (size_t b = a + 1; b < k; ++b) {
            double d = squaredDistance(centroids, a, centroids, b);
            out[a] = std::min(out[a], d);
            out[b] = std::min(out[b], d);
        }
    }
    for (size_t a = 0; a < k; ++a)
        out[a] = 0.5 * std::sqrt(out[a]) * kDeflate;
}

} // namespace

KMeansResult
kMeans(const Matrix &data, size_t k, Rng rng, size_t max_iters,
       ThreadPool *pool, const KMeansContext *context)
{
    SIEVE_ASSERT(data.rows() > 0, "k-means on empty data");
    k = std::clamp<size_t>(k, 1, data.rows());

    // Per-run (not per-assignment) instrumentation: the assignment
    // loop is the hot path and must stay untouched. All of these are
    // pure functions of the input data, so they are Stable.
    static obs::Counter &c_runs = obs::counter("stats.kmeans.runs");
    static obs::Counter &c_iters =
        obs::counter("stats.kmeans.iterations");
    static obs::Counter &c_points = obs::counter("stats.kmeans.points");
    static obs::Counter &c_distinct =
        obs::counter("stats.kmeans.distinct_points");
    static obs::Counter &c_pruned =
        obs::counter("stats.kmeans.pruned_scans");
    static obs::Counter &c_scans =
        obs::counter("stats.kmeans.full_scans");
    c_runs.add();
    obs::Span span("stats", "kmeans", "k=" + std::to_string(k));

    size_t n = data.rows();
    size_t dims = data.cols();

    KMeansContext local_context;
    if (!context) {
        local_context = makeKMeansContext(data);
        context = &local_context;
    }
    SIEVE_ASSERT(context->numPoints() == n,
                 "k-means context built for ", context->numPoints(),
                 " rows, data has ", n);
    size_t m = context->numDistinct();
    c_points.add(n);
    c_distinct.add(m);

    constexpr double kInf = std::numeric_limits<double>::infinity();

    // --- k-means++ seeding (identical arithmetic to the reference) ---
    // Distances are pure functions of the row bytes, so each round
    // evaluates the new centroid's distance once per *distinct* row
    // and fans it out; the min/total accumulation still walks the
    // observations in reference order, so every rng draw and every
    // sum is bit-identical.
    Matrix centroids(k, dims);
    std::vector<double> min_dist(n, kInf);
    std::vector<double> dist_to_new(m);

    size_t first = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    for (size_t c = 0; c < dims; ++c)
        centroids.at(0, c) = data.at(first, c);

    for (size_t centroid = 1; centroid < k; ++centroid) {
        auto distOne = [&](size_t d) {
            dist_to_new[d] = squaredDistance(
                data, context->firstRow[d], centroids, centroid - 1);
        };
        if (pool)
            parallelFor(*pool, m, distOne);
        else
            for (size_t d = 0; d < m; ++d)
                distOne(d);

        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            min_dist[i] = std::min(min_dist[i],
                                   dist_to_new[context->distinctOf[i]]);
            total += min_dist[i];
        }
        size_t chosen;
        if (total <= 0.0) {
            // All points coincide with existing centroids; any pick
            // works, keep it deterministic.
            chosen = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(n) - 1));
        } else {
            double r = rng.uniform() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (size_t i = 0; i < n; ++i) {
                acc += min_dist[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        }
        for (size_t c = 0; c < dims; ++c)
            centroids.at(centroid, c) = data.at(chosen, c);
    }

    // --- Lloyd iterations, Hamerly bounds-pruned exact assignment ---
    //
    // Per distinct row we keep the assigned centroid, its *exact*
    // squared distance (recomputed every iteration — the inertia
    // needs it regardless, so the classic Hamerly upper bound is
    // always tight and free), and a certified Euclidean lower bound
    // on the nearest *other* centroid. The full scan is skipped only
    // when inflated-exact-distance < max(lower bound, half-separation
    // of the assigned centroid): that certifies the assigned centroid
    // is the unique strict argmin, which is exactly what the
    // reference's ascending strict-< scan would select (uniqueness
    // makes the lowest-index tie-break moot). Otherwise the fallback
    // *is* the reference scan — ascending centroid order, exact
    // squaredDistance, strict `<` — with centroids skipped only when
    // the deflated norm-difference bound |  ||x|| - ||c||  |^2 already
    // proves they cannot beat the current best.
    KMeansResult result;
    result.assignments.assign(n, 0);
    std::vector<size_t> counts(k, 0);

    std::vector<size_t> assign_d(m, 0);
    std::vector<double> dist_d(m, 0.0);
    std::vector<double> lower_d(m, -kInf);
    std::vector<uint8_t> scanned_d(m, 0);

    std::vector<double> cent_norms(k); //!< Euclidean, for screening
    std::vector<double> s_half(k);
    std::vector<double> delta(k);
    Matrix prev_centroids;

    uint64_t pruned_total = 0;
    uint64_t scans_total = 0;

    for (size_t iter = 0; iter < max_iters; ++iter) {
        for (size_t c = 0; c < k; ++c) {
            std::span<const double> row = centroids.rowSpan(c);
            double sum = 0.0;
            for (double v : row)
                sum += v * v;
            cent_norms[c] = std::sqrt(sum);
        }
        computeHalfSeparations(centroids, s_half);

        auto assignOne = [&](size_t d) {
            size_t row = context->firstRow[d];
            size_t a = assign_d[d];
            double d_a = squaredDistance(data, row, centroids, a);
            double u = std::sqrt(d_a) * kInflate;
            if (u < std::max(lower_d[d], s_half[a])) {
                dist_d[d] = d_a;
                scanned_d[d] = 0;
                return;
            }

            double pnorm = context->pointNorms[d];
            size_t best = 0;
            double best_dist = kInf;
            double sec = kInf; // lower bound on the runner-up
            for (size_t c = 0; c < k; ++c) {
                // Certified reverse-triangle screen: the norms carry
                // ~1e-15 relative error each, and their *difference*
                // can cancel, so subtract an absolute guard scaled by
                // the norms before squaring. A skipped centroid
                // provably satisfies dist >= lb2 >= best_dist, so the
                // reference's strict `<` would not have updated on it
                // either; its bound still feeds the runner-up
                // tracking, keeping `sec` a true lower bound.
                double gap = std::fabs(pnorm - cent_norms[c]) -
                             1e-12 * (pnorm + cent_norms[c]);
                if (gap > 0.0) {
                    double lb2 = gap * gap * kDeflate;
                    if (lb2 >= best_dist) {
                        if (lb2 < sec)
                            sec = lb2;
                        continue;
                    }
                }
                double dist = c == a
                                  ? d_a
                                  : squaredDistance(data, row,
                                                    centroids, c);
                if (dist < best_dist) {
                    sec = best_dist;
                    best_dist = dist;
                    best = c;
                } else if (dist < sec) {
                    sec = dist;
                }
            }
            assign_d[d] = best;
            dist_d[d] = best_dist;
            lower_d[d] = std::sqrt(sec) * kDeflate;
            scanned_d[d] = 1;
        };
        if (pool)
            parallelFor(*pool, m, assignOne);
        else
            for (size_t d = 0; d < m; ++d)
                assignOne(d);

        for (size_t d = 0; d < m; ++d) {
            if (scanned_d[d])
                ++scans_total;
            else
                ++pruned_total;
        }

        // Serial in-order reduction: changed flag and inertia see the
        // observations in the same sequence as the reference loop,
        // with each duplicate contributing the identical bits its
        // distinct row computed.
        bool changed = false;
        result.inertia = 0.0;
        for (size_t i = 0; i < n; ++i) {
            size_t d = context->distinctOf[i];
            if (result.assignments[i] != assign_d[d]) {
                result.assignments[i] = assign_d[d];
                changed = true;
            }
            result.inertia += dist_d[d];
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Recompute centroids; empty clusters keep their old position.
        // Per-observation accumulation in reference order — duplicate
        // multiplicities must NOT be folded into weighted sums here,
        // because count * x and x + x + ... round differently.
        prev_centroids = centroids;
        Matrix next(k, dims);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            size_t c = result.assignments[i];
            ++counts[c];
            std::span<const double> row = data.rowSpan(i);
            std::span<double> acc = next.rowSpan(c);
            for (size_t d = 0; d < dims; ++d)
                acc[d] += row[d];
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            double inv = 1.0 / static_cast<double>(counts[c]);
            std::span<const double> acc = next.rowSpan(c);
            std::span<double> cent = centroids.rowSpan(c);
            for (size_t d = 0; d < dims; ++d)
                cent[d] = acc[d] * inv;
        }

        // Decay the lower bounds by the largest (inflated) centroid
        // movement; exact distances are recomputed next iteration, so
        // no upper bound needs maintenance.
        double max_delta = 0.0;
        for (size_t c = 0; c < k; ++c) {
            delta[c] = std::sqrt(squaredDistance(prev_centroids, c,
                                                 centroids, c)) *
                       kInflate;
            max_delta = std::max(max_delta, delta[c]);
        }
        if (max_delta > 0.0) {
            for (size_t d = 0; d < m; ++d) {
                double l = lower_d[d];
                if (std::isinf(l))
                    continue; // k == 1: no other centroid, ever
                l -= max_delta;
                // Deflating a positive bound keeps it conservative; a
                // negative bound never enables a prune, and only
                // decays further.
                lower_d[d] = l > 0.0 ? l * kDeflate : l;
            }
        }
    }

    c_iters.add(result.iterations);
    c_pruned.add(pruned_total);
    c_scans.add(scans_total);
    result.centroids = std::move(centroids);
    return result;
}

} // namespace sieve::stats
