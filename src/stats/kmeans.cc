#include "stats/kmeans.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace sieve::stats {

double
squaredDistance(const Matrix &a, size_t row_a, const Matrix &b,
                size_t row_b)
{
    SIEVE_ASSERT(a.cols() == b.cols(), "dimension mismatch ", a.cols(),
                 " vs ", b.cols());
    double sum = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
        double d = a.at(row_a, c) - b.at(row_b, c);
        sum += d * d;
    }
    return sum;
}

std::vector<size_t>
KMeansResult::clusterSizes() const
{
    std::vector<size_t> sizes(k(), 0);
    for (size_t c : assignments)
        ++sizes[c];
    return sizes;
}

std::vector<size_t>
KMeansResult::closestToCentroid(const Matrix &data) const
{
    std::vector<size_t> best(k(), npos);
    std::vector<double> best_dist(k(),
                                  std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < assignments.size(); ++i) {
        size_t c = assignments[i];
        double d = squaredDistance(data, i, centroids, c);
        if (d < best_dist[c]) {
            best_dist[c] = d;
            best[c] = i;
        }
    }
    return best;
}

KMeansResult
kMeans(const Matrix &data, size_t k, Rng rng, size_t max_iters)
{
    SIEVE_ASSERT(data.rows() > 0, "k-means on empty data");
    k = std::clamp<size_t>(k, 1, data.rows());

    size_t n = data.rows();
    size_t dims = data.cols();

    // --- k-means++ seeding ---
    Matrix centroids(k, dims);
    std::vector<double> min_dist(n,
                                 std::numeric_limits<double>::infinity());

    size_t first = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    for (size_t c = 0; c < dims; ++c)
        centroids.at(0, c) = data.at(first, c);

    for (size_t centroid = 1; centroid < k; ++centroid) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double d = squaredDistance(data, i, centroids, centroid - 1);
            min_dist[i] = std::min(min_dist[i], d);
            total += min_dist[i];
        }
        size_t chosen;
        if (total <= 0.0) {
            // All points coincide with existing centroids; any pick
            // works, keep it deterministic.
            chosen = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(n) - 1));
        } else {
            double r = rng.uniform() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (size_t i = 0; i < n; ++i) {
                acc += min_dist[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        }
        for (size_t c = 0; c < dims; ++c)
            centroids.at(centroid, c) = data.at(chosen, c);
    }

    // --- Lloyd iterations ---
    KMeansResult result;
    result.assignments.assign(n, 0);
    std::vector<size_t> counts(k, 0);

    for (size_t iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        result.inertia = 0.0;
        for (size_t i = 0; i < n; ++i) {
            size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
                double d = squaredDistance(data, i, centroids, c);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignments[i] != best) {
                result.assignments[i] = best;
                changed = true;
            }
            result.inertia += best_d;
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Recompute centroids; empty clusters keep their old position.
        Matrix next(k, dims);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            size_t c = result.assignments[i];
            ++counts[c];
            for (size_t d = 0; d < dims; ++d)
                next.at(c, d) += data.at(i, d);
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            double inv = 1.0 / static_cast<double>(counts[c]);
            for (size_t d = 0; d < dims; ++d)
                centroids.at(c, d) = next.at(c, d) * inv;
        }
    }

    result.centroids = std::move(centroids);
    return result;
}

} // namespace sieve::stats
