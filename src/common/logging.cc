#include "common/logging.hh"

#include <atomic>

namespace sieve {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(std::ostream &os, const char *tag, const std::string &msg)
{
    os << "[sieve:" << tag << "] " << msg << '\n';
}

void
fatalExit()
{
    std::exit(1);
}

void
panicAbort()
{
    std::abort();
}

} // namespace detail

} // namespace sieve
