#include "common/logging.hh"

#include <atomic>
#include <mutex>

#include "obs/trace.hh"

namespace sieve {

namespace {

LogLevel
initialLevel()
{
    if (const char *env = std::getenv("SIEVE_LOG_LEVEL")) {
        if (auto parsed = parseLogLevel(env))
            return *parsed;
        // Can't use warn() here (re-entrant); report directly.
        std::cerr << "[sieve:warn] ignoring SIEVE_LOG_LEVEL='" << env
                  << "': expected quiet|warn|info|debug\n";
    }
    return LogLevel::Info;
}

std::atomic<LogLevel> g_level{initialLevel()};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    if (name == "quiet")
        return LogLevel::Quiet;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

namespace detail {

void
emit(std::ostream &os, const char *tag, const std::string &msg)
{
    // Build the whole line first, then write it in one insertion
    // under a mutex: concurrent pool workers used to interleave
    // partial lines on std::cerr. The thread tag attributes worker
    // output ("(p0.w3)"); untagged threads keep the historic format.
    std::string line;
    line.reserve(msg.size() + 32);
    line += "[sieve:";
    line += tag;
    line += "] ";
    const std::string &thread = obs::threadTag();
    if (!thread.empty()) {
        line += '(';
        line += thread;
        line += ") ";
    }
    line += msg;
    line += '\n';

    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    os << line;
}

void
fatalExit()
{
    std::exit(1);
}

void
panicAbort()
{
    std::abort();
}

} // namespace detail

} // namespace sieve
