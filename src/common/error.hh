/**
 * @file
 * Recoverable errors: a structured taxonomy plus Expected<T>.
 *
 * The ingestion surface (profile CSVs, workload binaries, SASS
 * traces) historically reported every problem through fatal() — fine
 * for a researcher's terminal, wrong for a production pipeline where
 * one truncated profile must not abort a whole suite run. This module
 * is the alternative: parsers return Expected<T>, carrying either the
 * value or an Error that says *what* went wrong (the taxonomy),
 * *where* (source file, line, byte offset), and *why* (a message).
 * Callers that still want abort-on-error semantics unwrap through
 * unwrapOrFatal(), which preserves the old behaviour exactly.
 *
 * Taxonomy (see DESIGN.md §9):
 *   - Parse:      the bytes do not match the format grammar
 *     (bad magic, non-numeric cell, unknown opcode, trailing junk).
 *   - Io:         the operating system failed us (unreadable file,
 *     short read / truncation).
 *   - Validation: the bytes parse but violate a semantic invariant
 *     (ragged row, non-monotonic invocation ids, NaN metric,
 *     out-of-range register).
 *   - Sim:        a downstream evaluation/simulation stage failed on
 *     otherwise well-formed input (used by the quarantine layers).
 */

#ifndef SIEVE_COMMON_ERROR_HH
#define SIEVE_COMMON_ERROR_HH

#include <cstddef>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace sieve {

/** Category of a recoverable error (see file comment). */
enum class ErrorKind : uint8_t {
    Parse,      //!< bytes do not match the format grammar
    Io,         //!< file unreadable / short read / truncation
    Validation, //!< well-formed bytes violating a semantic invariant
    Sim,        //!< downstream evaluation failure (quarantine layer)
};

/** Canonical name of an error kind ("ParseError", ...). */
const char *errorKindName(ErrorKind kind);

/** A structured, recoverable error with source context. */
struct Error
{
    /** Sentinel for "no byte offset recorded". */
    static constexpr size_t kNoOffset = static_cast<size_t>(-1);

    ErrorKind kind = ErrorKind::Parse;
    std::string message;           //!< human-readable cause
    std::string source;            //!< file / stream name; may be empty
    size_t line = 0;               //!< 1-based source line; 0 = n/a
    size_t byteOffset = kNoOffset; //!< binary formats; kNoOffset = n/a

    /**
     * One-line rendering:
     *   "ParseError: <message> (<source>:<line>)"            text
     *   "IoError: <message> (<source> @ byte <offset>)"      binary
     * Context parentheses are omitted when absent.
     */
    std::string toString() const;

    /** True if the error names its source (file + line or offset). */
    bool
    hasContext() const
    {
        return !source.empty() &&
               (line > 0 || byteOffset != kNoOffset);
    }
};

/**
 * Build an ingestion-layer error and count it into the Stable
 * `ingest.errors.<kind>` counters (jobs-invariant: the same parse
 * attempts produce the same errors at any worker count). All the
 * try*-parser entry points create their errors through this helper;
 * errors that merely propagate are not re-counted.
 */
Error ingestError(ErrorKind kind, std::string message,
                  std::string source = {}, size_t line = 0,
                  size_t byte_offset = Error::kNoOffset);

/**
 * Either a value or an Error. Implicitly constructible from both, so
 * parsers `return value;` on success and `return ingestError(...);`
 * on failure. Accessing the wrong side is a panic (an internal bug,
 * not a user error).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    using value_type = T;

    Expected(T value) : _v(std::in_place_index<0>, std::move(value)) {}
    Expected(Error error) : _v(std::in_place_index<1>, std::move(error))
    {
    }

    /** True if a value is held. */
    bool ok() const { return _v.index() == 0; }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        requireOk();
        return std::get<0>(_v);
    }

    T &
    value() &
    {
        requireOk();
        return std::get<0>(_v);
    }

    T &&
    value() &&
    {
        requireOk();
        return std::get<0>(std::move(_v));
    }

    const Error &
    error() const
    {
        SIEVE_ASSERT(!ok(), "error() on an ok Expected");
        return std::get<1>(_v);
    }

    /** The value, or `fallback` if an error is held. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? std::get<0>(_v) : std::move(fallback);
    }

  private:
    void
    requireOk() const
    {
        if (!ok())
            panic("value() on failed Expected: ",
                  std::get<1>(_v).toString());
    }

    std::variant<T, Error> _v;
};

/** Expected<void>: success, or an Error. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    using value_type = void;

    Expected() = default;
    Expected(Error error) : _error(std::move(error)), _failed(true) {}

    bool ok() const { return !_failed; }
    explicit operator bool() const { return ok(); }

    const Error &
    error() const
    {
        SIEVE_ASSERT(_failed, "error() on an ok Expected");
        return _error;
    }

  private:
    Error _error;
    bool _failed = false;
};

/**
 * Unwrap, preserving the legacy abort-on-error contract: on failure
 * print the structured error through fatal() (exit code 1). The
 * pre-Expected entry points (CsvTable::readFile, loadWorkloadFile,
 * readTraceFile, ...) are these two lines around their try* twins.
 */
template <typename T>
T
unwrapOrFatal(Expected<T> expected)
{
    if (!expected.ok())
        fatal(expected.error().toString());
    return std::move(expected).value();
}

inline void
unwrapOrFatal(Expected<void> expected)
{
    if (!expected.ok())
        fatal(expected.error().toString());
}

} // namespace sieve

#endif // SIEVE_COMMON_ERROR_HH
