/**
 * @file
 * Minimal CSV reading and writing.
 *
 * The paper's workflow converts profiler output into "a readable CSV
 * file which serves as input to PKS and Sieve" (Section IV). This
 * module provides that interchange format: header row + typed column
 * access, no quoting/escaping (field values in this library never
 * contain commas or newlines).
 *
 * Ingestion is recoverable: the try* entry points return
 * Expected<...> with file/line context instead of aborting, and the
 * typed cell accessors parse strictly (no whitespace skipping, no
 * integer wrapping, no inf/nan). The historical fatal() entry points
 * remain as thin unwrapOrFatal() wrappers.
 */

#ifndef SIEVE_COMMON_CSV_HH
#define SIEVE_COMMON_CSV_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"

namespace sieve {

/** An in-memory CSV table: one header row plus data rows. */
class CsvTable
{
  public:
    CsvTable() = default;

    /** Construct with column names. */
    explicit CsvTable(std::vector<std::string> header);

    /** Column names, in order. */
    const std::vector<std::string> &header() const { return _header; }

    /** Number of data rows. */
    size_t numRows() const { return _rows.size(); }

    /** Number of columns. */
    size_t numCols() const { return _header.size(); }

    /**
     * Index of a named column.
     * @return column index, or npos if absent.
     */
    size_t columnIndex(const std::string &name) const;

    static constexpr size_t npos = static_cast<size_t>(-1);

    /** Append a row. fatal() if the width mismatches the header. */
    void addRow(std::vector<std::string> row);

    /** Raw cell access. */
    const std::string &cell(size_t row, size_t col) const;

    /**
     * Cell parsed as a strict finite double. Errors carry the cell's
     * source file and line when the table came from tryRead.
     */
    Expected<double> tryCellAsDouble(size_t row, size_t col) const;

    /** Cell parsed as a strict base-10 uint64 (no sign, no wrap). */
    Expected<uint64_t> tryCellAsUint(size_t row, size_t col) const;

    /** Cell parsed as double; fatal() on malformed content. */
    double cellAsDouble(size_t row, size_t col) const;

    /** Cell parsed as uint64; fatal() on malformed content. */
    uint64_t cellAsUint(size_t row, size_t col) const;

    /** Serialize the table to a stream. */
    void write(std::ostream &os) const;

    /**
     * Pre-PR-2 serializer, retained as the bench_perf baseline: joins
     * every row into a fresh temporary string and streams it with
     * operator<<. Byte-identical output to write() — the csvWrite
     * benchmark asserts it. Not used by the production pipeline.
     */
    void writeReference(std::ostream &os) const;

    /** Serialize the table to a file. fatal() if unwritable. */
    void writeFile(const std::string &path) const;

    /**
     * Parse a table from a stream, strictly and recoverably:
     * per-cell surrounding whitespace is trimmed, blank lines are
     * skipped, and a missing header, empty header cell, or ragged
     * row is a structured error carrying `source` and the 1-based
     * line number. The parsed table remembers each row's source line
     * so typed-access errors can point at the offending input line.
     */
    static Expected<CsvTable> tryRead(std::istream &is,
                                      const std::string &source =
                                          "<stream>");

    /** tryRead from a file; unreadable files are an IoError. */
    static Expected<CsvTable> tryReadFile(const std::string &path);

    /** Parse a table from a stream. fatal() on any error. */
    static CsvTable read(std::istream &is);

    /** Parse a table from a file. fatal() if unreadable. */
    static CsvTable readFile(const std::string &path);

    /** Source name recorded by tryRead; empty for in-memory tables. */
    const std::string &source() const { return _source; }

    /**
     * 1-based source line a data row came from; 0 for rows added in
     * memory via addRow.
     */
    size_t
    rowLine(size_t row) const
    {
        return row < _rowLines.size() ? _rowLines[row] : 0;
    }

  private:
    template <typename T>
    Expected<T> tryCellNumeric(size_t row, size_t col,
                               const char *what) const;

    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
    std::string _source;           //!< set by tryRead
    std::vector<size_t> _rowLines; //!< per-row source lines (tryRead)
};

} // namespace sieve

#endif // SIEVE_COMMON_CSV_HH
