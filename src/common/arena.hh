/**
 * @file
 * Slab bump allocator for pooled, steady-state-allocation-free hot
 * loops.
 *
 * An Arena owns a list of byte slabs and hands out aligned bump
 * allocations. reset() rewinds to the first slab without releasing
 * memory, so a loop that allocates the same working set every
 * iteration touches the allocator only during warm-up. Growth is
 * observable through growthEvents(), which lets tests assert the
 * zero-steady-state-allocation contract, and through a process-wide
 * mirror (arenaGlobalStats()) exported as a telemetry probe.
 */

#ifndef SIEVE_COMMON_ARENA_HH
#define SIEVE_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sieve {

/** Process-wide arena accounting (summed over every Arena). */
struct ArenaGlobalStats
{
    uint64_t growthEvents = 0; //!< slab allocations since start
    uint64_t residentBytes = 0; //!< bytes currently owned by arenas
};

ArenaGlobalStats arenaGlobalStats();

/** Reusable slab bump allocator. */
class Arena
{
  public:
    Arena() = default;
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate `count` default-aligned objects of type T. The storage
     * is uninitialized and stays valid until reset() or destruction.
     */
    template <typename T> T *alloc(size_t count)
    {
        return static_cast<T *>(
            allocBytes(count * sizeof(T), alignof(T)));
    }

    /** Raw aligned allocation; `align` must be a power of two. */
    void *allocBytes(size_t bytes, size_t align);

    /**
     * Rewind to empty without releasing slabs. Previously returned
     * pointers become dead.
     */
    void reset();

    /** Release every slab (used by tests; normal reuse keeps them). */
    void release();

    /** Total bytes owned across slabs. */
    size_t capacityBytes() const { return _capacity; }

    /** Bytes handed out since the last reset(). */
    size_t allocatedBytes() const { return _allocated; }

    /** Slab allocations performed over this arena's lifetime. */
    uint64_t growthEvents() const { return _growth_events; }

  private:
    struct Slab
    {
        std::vector<uint8_t> bytes;
        size_t used = 0;
    };

    void *grow(size_t bytes, size_t align);

    std::vector<Slab> _slabs;
    size_t _slab = 0; //!< current bump slab index
    size_t _capacity = 0;
    size_t _allocated = 0;
    uint64_t _growth_events = 0;
};

} // namespace sieve

#endif // SIEVE_COMMON_ARENA_HH
