#include "common/error.hh"

#include "obs/metrics.hh"

namespace sieve {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Parse:
        return "ParseError";
      case ErrorKind::Io:
        return "IoError";
      case ErrorKind::Validation:
        return "ValidationError";
      case ErrorKind::Sim:
        return "SimError";
    }
    panic("unknown ErrorKind ", static_cast<int>(kind));
}

std::string
Error::toString() const
{
    std::string out = errorKindName(kind);
    out += ": ";
    out += message;
    if (!source.empty()) {
        out += " (";
        out += source;
        if (line > 0) {
            out += ':';
            out += std::to_string(line);
        } else if (byteOffset != kNoOffset) {
            out += " @ byte ";
            out += std::to_string(byteOffset);
        }
        out += ')';
    }
    return out;
}

namespace {

obs::Counter &
ingestErrorCounter(ErrorKind kind)
{
    // Handles are process-lifetime; look each up once.
    static obs::Counter &c_parse = obs::counter("ingest.errors.parse");
    static obs::Counter &c_io = obs::counter("ingest.errors.io");
    static obs::Counter &c_validation =
        obs::counter("ingest.errors.validation");
    static obs::Counter &c_sim = obs::counter("ingest.errors.sim");
    switch (kind) {
      case ErrorKind::Parse:
        return c_parse;
      case ErrorKind::Io:
        return c_io;
      case ErrorKind::Validation:
        return c_validation;
      case ErrorKind::Sim:
        return c_sim;
    }
    panic("unknown ErrorKind ", static_cast<int>(kind));
}

} // namespace

Error
ingestError(ErrorKind kind, std::string message, std::string source,
            size_t line, size_t byte_offset)
{
    ingestErrorCounter(kind).add();
    Error error;
    error.kind = kind;
    error.message = std::move(message);
    error.source = std::move(source);
    error.line = line;
    error.byteOffset = byte_offset;
    return error;
}

} // namespace sieve
