/**
 * @file
 * Deterministic parallel-execution substrate.
 *
 * A fixed-size worker pool plus order-preserving `parallelFor` /
 * `parallelMap` helpers. The pool is the one concurrency primitive in
 * the library: the evaluation harness, the suite runner, and the
 * trace-simulation batcher all fan work out through it.
 *
 * Determinism contract: parallelism must never change results. Tasks
 * derive any randomness from the named splittable seeds attached to
 * their *inputs* (workload seed labels, invocation noise seeds) —
 * never from worker identity, scheduling order, or wall-clock time —
 * and results are always collected in submission order. A run with
 * `--jobs 8` is therefore byte-identical to a run with `--jobs 1`.
 *
 * Failure contract: `fatal()` / `panic()` terminate the whole process
 * regardless of which worker thread they fire on (they call exit /
 * abort), so user-error and invariant failures propagate exactly as
 * in serial code. C++ exceptions thrown by a task are captured and
 * rethrown on the calling thread, first failing index first.
 */

#ifndef SIEVE_COMMON_THREAD_POOL_HH
#define SIEVE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace sieve {

/**
 * Fixed-size worker pool.
 *
 * Workers are started once in the constructor and joined in the
 * destructor. `numWorkers() == 1` is the serial mode: the helpers
 * below then run entirely on the calling thread, bypassing the
 * workers, so `--jobs 1` reproduces the legacy serial execution
 * exactly (including any stdout ordering inside tasks).
 */
class ThreadPool
{
  public:
    /**
     * @param workers worker-thread count; 0 resolves through
     *        defaultJobs() (SIEVE_JOBS env var, else
     *        hardware_concurrency).
     */
    explicit ThreadPool(size_t workers = 0);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1). */
    size_t numWorkers() const { return _workers.size() ? _workers.size() : 1; }

    /**
     * Enqueue one task. Low-level building block; most callers want
     * parallelFor / parallelMap, which also wait and propagate
     * failures.
     */
    void submit(std::function<void()> task);

    /**
     * Resolve the process-wide default worker count: the SIEVE_JOBS
     * environment variable if set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (>= 1).
     */
    static size_t defaultJobs();

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::vector<std::function<void()>> _queue; //!< FIFO via head index
    size_t _queueHead = 0;
    std::mutex _mu;
    std::condition_variable _cv;
    bool _stopping = false;
};

namespace detail {

/** Shared state of one parallelFor: work distribution + completion. */
void runIndexed(ThreadPool &pool, size_t n,
                const std::function<void(size_t)> &body);

} // namespace detail

/**
 * Run `body(i)` for every i in [0, n), fanning out over the pool.
 * Blocks until all iterations finish. With one worker (or n <= 1) the
 * loop runs inline on the calling thread in index order. Exceptions
 * are rethrown on the caller, lowest failing index first.
 */
inline void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    if (pool.numWorkers() == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    detail::runIndexed(pool, n, body);
}

/**
 * Map `fn(i)` over [0, n) in parallel, returning the results in index
 * order. The result type only needs to be movable (not
 * default-constructible). Same serial-mode and failure semantics as
 * parallelFor.
 */
template <typename Fn>
auto
parallelMap(ThreadPool &pool, size_t n, Fn &&fn)
    -> std::vector<decltype(fn(size_t{}))>
{
    using R = decltype(fn(size_t{}));
    std::vector<std::optional<R>> slots(n);
    parallelFor(pool, n,
                [&](size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

} // namespace sieve

#endif // SIEVE_COMMON_THREAD_POOL_HH
