/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * Two error functions with distinct purposes:
 *   - fatal(): the run cannot continue due to a *user* error (bad
 *     configuration, invalid arguments). Exits with code 1.
 *   - panic(): something happened that should never happen regardless
 *     of what the user does (an internal bug). Calls std::abort() so a
 *     core dump / debugger break is possible.
 *
 * Two status functions that never stop the run:
 *   - inform(): normal operating messages.
 *   - warn():   something may be off; a good place to start looking if
 *     strange behaviour follows.
 */

#ifndef SIEVE_COMMON_LOGGING_HH
#define SIEVE_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace sieve {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel {
    Quiet = 0,   //!< only fatal/panic reach the console
    Warn = 1,    //!< warnings and errors
    Info = 2,    //!< informational messages too (default)
    Debug = 3,   //!< everything, including debug chatter
};

/**
 * Get the process-wide log level. The initial value comes from the
 * SIEVE_LOG_LEVEL environment variable (quiet|warn|info|debug),
 * defaulting to Info.
 */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** Parse a level name (quiet|warn|info|debug); nullopt if unknown. */
std::optional<LogLevel> parseLogLevel(std::string_view name);

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Emit one formatted log line to the given stream. The line is
 * formatted into a single string — including the thread tag from
 * obs::setThreadTag, so pool-worker output is attributable — and
 * written under a mutex so concurrent workers can never interleave
 * partial lines.
 */
void emit(std::ostream &os, const char *tag, const std::string &msg);

[[noreturn]] void fatalExit();
[[noreturn]] void panicAbort();

} // namespace detail

/** Informational message; shown at LogLevel::Info and above. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit(std::cerr, "info", detail::concat(args...));
}

/** Debug message; shown only at LogLevel::Debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit(std::cerr, "debug", detail::concat(args...));
}

/** Warning message; shown at LogLevel::Warn and above. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit(std::cerr, "warn", detail::concat(args...));
}

/**
 * Unrecoverable *user* error (bad configuration, invalid input).
 * Prints the message and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit(std::cerr, "fatal", detail::concat(args...));
    detail::fatalExit();
}

/**
 * Unrecoverable *internal* error — an invariant that can never be
 * violated unless the library itself is broken. Aborts the process.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit(std::cerr, "panic", detail::concat(args...));
    detail::panicAbort();
}

/** panic() unless the given condition holds. */
#define SIEVE_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::sieve::panic("assertion '", #cond, "' failed at ",           \
                           __FILE__, ":", __LINE__, ": ", ##__VA_ARGS__);  \
    } while (0)

} // namespace sieve

#endif // SIEVE_COMMON_LOGGING_HH
