#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve {

size_t
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("SIEVE_JOBS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed > 0)
            return static_cast<size_t>(parsed);
        warn("ignoring SIEVE_JOBS='", env,
             "': expected a positive integer");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0)
        workers = defaultJobs();
    // Pools are numbered process-wide so worker thread tags stay
    // unique in logs and traces even with several pools alive.
    static std::atomic<int> g_pool_ids{0};
    int pool_id = g_pool_ids.fetch_add(1, std::memory_order_relaxed);
    // One worker = serial mode; the helpers bypass the queue, so no
    // thread is needed. Still spawn it so submit() works uniformly.
    _workers.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
        // Built with append() rather than an operator+ chain: GCC 12
        // -O3 misanalyzes the temporary chain and raises a bogus
        // -Wrestrict, which the WERROR CI build turns fatal.
        std::string tag = "p";
        tag += std::to_string(pool_id);
        tag += ".w";
        tag += std::to_string(i);
        _workers.emplace_back([this, tag = std::move(tag)] {
            obs::setThreadTag(tag);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mu);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    SIEVE_ASSERT(task, "ThreadPool::submit called with empty task");
    // Queue depth is a scheduling artifact, never --jobs-invariant.
    static obs::Counter &c_submitted =
        obs::counter("pool.tasks.submitted", obs::Stability::Volatile);
    static obs::Gauge &g_depth = obs::gauge("pool.queue.depth");
    {
        std::lock_guard<std::mutex> lock(_mu);
        SIEVE_ASSERT(!_stopping, "submit on a stopping ThreadPool");
        _queue.push_back(std::move(task));
        g_depth.set(
            static_cast<int64_t>(_queue.size() - _queueHead));
    }
    c_submitted.add();
    _cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    static obs::Counter &c_executed =
        obs::counter("pool.tasks.executed", obs::Stability::Volatile);
    static obs::Histogram &h_task_ns =
        obs::histogram("pool.task.ns");
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mu);
            _cv.wait(lock, [this] {
                return _stopping || _queueHead < _queue.size();
            });
            if (_queueHead >= _queue.size()) {
                if (_stopping)
                    return;
                continue;
            }
            task = std::move(_queue[_queueHead++]);
            // Keep the depth gauge honest on the drain side too, so
            // the telemetry timeline sees the queue empty out rather
            // than flat-lining at the last submitted depth.
            static obs::Gauge &g_depth =
                obs::gauge("pool.queue.depth");
            g_depth.set(
                static_cast<int64_t>(_queue.size() - _queueHead));
            // Reclaim the drained prefix once it dominates the queue.
            if (_queueHead > 64 && _queueHead * 2 > _queue.size()) {
                _queue.erase(_queue.begin(),
                             _queue.begin() +
                                 static_cast<ptrdiff_t>(_queueHead));
                _queueHead = 0;
            }
        }
        // One clock pair feeds both the latency histogram and the
        // trace span; with observability off this is two branches.
        bool timed = obs::metricsEnabled() || obs::traceEnabled();
        uint64_t t0 = timed ? obs::nowNs() : 0;
        task();
        if (timed) {
            uint64_t dur = obs::nowNs() - t0;
            h_task_ns.record(dur);
            obs::emitCompleteEvent("pool", "task", t0, dur);
        }
        c_executed.add();
    }
}

namespace detail {

void
runIndexed(ThreadPool &pool, size_t n,
           const std::function<void(size_t)> &body)
{
    // Batch counters are Volatile: the serial path (--jobs 1) never
    // reaches runIndexed, so these tallies depend on the job count by
    // construction.
    static obs::Counter &c_batches =
        obs::counter("pool.batches", obs::Stability::Volatile);
    static obs::Counter &c_items =
        obs::counter("pool.batch.items", obs::Stability::Volatile);
    static obs::Counter &c_caller_iters = obs::counter(
        "pool.batch.caller_iterations", obs::Stability::Volatile);
    c_batches.add();
    c_items.add(n);
    obs::Span batch_span("pool", "batch",
                         "n=" + std::to_string(n));

    // Shared ownership: pool workers may wake on a drained batch
    // after the caller has already returned, so the batch state must
    // outlive this frame.
    struct Shared
    {
        std::function<void(size_t)> body;
        size_t n = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex mu;
        std::condition_variable cv;
        std::exception_ptr error;
        size_t errorIndex = std::numeric_limits<size_t>::max();
    };
    auto shared = std::make_shared<Shared>();
    shared->body = body;
    shared->n = n;

    auto drive = [shared](bool caller) {
        size_t executed = 0;
        for (;;) {
            size_t i = shared->next.fetch_add(1);
            if (i >= shared->n)
                break;
            ++executed;
            try {
                shared->body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared->mu);
                if (i < shared->errorIndex) {
                    shared->errorIndex = i;
                    shared->error = std::current_exception();
                }
            }
            if (shared->done.fetch_add(1) + 1 == shared->n) {
                std::lock_guard<std::mutex> lock(shared->mu);
                shared->cv.notify_all();
            }
        }
        // "Steals": iterations the caller ran itself instead of a
        // pool worker.
        if (caller && executed > 0)
            c_caller_iters.add(executed);
    };

    size_t drivers = std::min(pool.numWorkers(), n);
    for (size_t d = 0; d < drivers; ++d)
        pool.submit([drive] { drive(false); });

    // The caller participates too: steal iterations until the index
    // space is exhausted, then wait for stragglers. Self-driving also
    // makes nested fan-out safe — an inner batch never waits on pool
    // capacity held by its own ancestors.
    drive(true);
    {
        std::unique_lock<std::mutex> lock(shared->mu);
        shared->cv.wait(lock,
                        [&] { return shared->done.load() == n; });
        if (shared->error)
            std::rethrow_exception(shared->error);
    }
}

} // namespace detail

} // namespace sieve
