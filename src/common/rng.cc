#include "common/rng.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace sieve {

namespace {

/** SplitMix64 step, used to expand seeds into full generator state. */
uint64_t
splitMix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
hashLabel(std::string_view label)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

Rng::Rng(uint64_t seed)
{
    reseed(seed);
}

Rng::Rng(std::string_view label)
{
    reseed(hashLabel(label));
}

void
Rng::reseed(uint64_t seed)
{
    _seed = seed;
    uint64_t x = seed;
    for (auto &word : s)
        word = splitMix64(x);
}

Rng
Rng::split(std::string_view label) const
{
    // Mix the label hash into the parent seed; SplitMix64 in reseed()
    // decorrelates nearby seeds.
    return Rng(_seed ^ rotl(hashLabel(label), 17));
}

Rng
Rng::split(uint64_t index) const
{
    uint64_t x = _seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng(splitMix64(x));
}

uint64_t
Rng::next()
{
    // xoshiro256**
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    SIEVE_ASSERT(lo <= hi, "uniformInt range [", lo, ", ", hi, "]");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<int64_t>(next()); // full 64-bit range
    // Rejection-free modulo is fine here: span << 2^64 in practice, and
    // reproducibility matters more than the ~2^-50 modulo bias.
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    // Box-Muller without caching the second deviate: determinism across
    // call sites is worth the extra transcendental.
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    SIEVE_ASSERT(!weights.empty(), "categorical with no weights");
    double total = 0.0;
    for (double w : weights) {
        SIEVE_ASSERT(w >= 0.0, "negative categorical weight ", w);
        total += w;
    }
    SIEVE_ASSERT(total > 0.0, "categorical weights sum to zero");

    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1; // floating-point slack lands on the tail
}

} // namespace sieve
