#include "common/strings.hh"

#include <cctype>
#include <cmath>
#include <sstream>

namespace sieve {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toFixed(double value, int decimals)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(decimals);
    oss << value;
    return oss.str();
}

std::string
engineeringNotation(double value)
{
    const char *suffix = "";
    double v = value;
    double a = std::fabs(value);
    if (a >= 1e9) {
        v = value / 1e9;
        suffix = "B";
    } else if (a >= 1e6) {
        v = value / 1e6;
        suffix = "M";
    } else if (a >= 1e3) {
        v = value / 1e3;
        suffix = "K";
    }
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(*suffix ? 2 : 0);
    oss << v << suffix;
    return oss.str();
}

std::string
padLeft(std::string_view text, size_t width)
{
    std::string s(text);
    if (s.size() < width)
        s.insert(0, width - s.size(), ' ');
    return s;
}

std::string
padRight(std::string_view text, size_t width)
{
    std::string s(text);
    if (s.size() < width)
        s.append(width - s.size(), ' ');
    return s;
}

} // namespace sieve
