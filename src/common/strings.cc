#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace sieve {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    out.reserve(static_cast<size_t>(
                    std::count(text.begin(), text.end(), delim)) +
                1);
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string_view>
splitWhitespace(std::string_view text)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start)
            out.push_back(text.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    if (parts.empty())
        return out;
    size_t total = sep.size() * (parts.size() - 1);
    for (const auto &p : parts)
        total += p.size();
    out.reserve(total);
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toFixed(double value, int decimals)
{
    // snprintf "%.*f" and iostream fixed formatting are specified to
    // produce the same digits (libstdc++ delegates to the former).
    char buf[64];
    int len = std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    if (len < 0)
        return {};
    if (static_cast<size_t>(len) < sizeof(buf))
        return std::string(buf, static_cast<size_t>(len));
    std::string out(static_cast<size_t>(len), '\0');
    std::snprintf(out.data(), out.size() + 1, "%.*f", decimals, value);
    return out;
}

std::string
engineeringNotation(double value)
{
    const char *suffix = "";
    double v = value;
    double a = std::fabs(value);
    if (a >= 1e9) {
        v = value / 1e9;
        suffix = "B";
    } else if (a >= 1e6) {
        v = value / 1e6;
        suffix = "M";
    } else if (a >= 1e3) {
        v = value / 1e3;
        suffix = "K";
    }
    std::string out = toFixed(v, *suffix ? 2 : 0);
    out += suffix;
    return out;
}

std::string
padLeft(std::string_view text, size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    std::string s;
    s.reserve(width);
    s.assign(width - text.size(), ' ');
    s.append(text);
    return s;
}

const char *
numericParseMessage(NumericParse status)
{
    switch (status) {
      case NumericParse::Ok:
        return "ok";
      case NumericParse::Empty:
        return "empty field";
      case NumericParse::Malformed:
        return "malformed number";
      case NumericParse::Trailing:
        return "trailing characters after number";
      case NumericParse::OutOfRange:
        return "number out of representable range";
      case NumericParse::NonFinite:
        return "non-finite value";
    }
    panic("unknown NumericParse ", static_cast<int>(status));
}

NumericParse
parseUint64(std::string_view text, uint64_t &out)
{
    out = 0;
    if (text.empty())
        return NumericParse::Empty;
    uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec == std::errc::invalid_argument)
        return NumericParse::Malformed;
    if (ec == std::errc::result_out_of_range)
        return NumericParse::OutOfRange;
    if (ptr != text.data() + text.size())
        return NumericParse::Trailing;
    out = value;
    return NumericParse::Ok;
}

NumericParse
parseDouble(std::string_view text, double &out)
{
    out = 0.0;
    if (text.empty())
        return NumericParse::Empty;
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec == std::errc::invalid_argument)
        return NumericParse::Malformed;
    if (ec == std::errc::result_out_of_range)
        return NumericParse::OutOfRange;
    if (ptr != text.data() + text.size())
        return NumericParse::Trailing;
    if (!std::isfinite(value))
        return NumericParse::NonFinite;
    out = value;
    return NumericParse::Ok;
}

std::string
padRight(std::string_view text, size_t width)
{
    std::string s;
    s.reserve(std::max(width, text.size()));
    s.assign(text);
    if (s.size() < width)
        s.append(width - s.size(), ' ');
    return s;
}

} // namespace sieve
