#include "common/csv.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve {

CsvTable::CsvTable(std::vector<std::string> header)
    : _header(std::move(header))
{
}

size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < _header.size(); ++i) {
        if (_header[i] == name)
            return i;
    }
    return npos;
}

void
CsvTable::addRow(std::vector<std::string> row)
{
    if (row.size() != _header.size()) {
        fatal("CSV row width ", row.size(), " does not match header width ",
              _header.size());
    }
    _rows.push_back(std::move(row));
    _rowLines.push_back(0);
}

const std::string &
CsvTable::cell(size_t row, size_t col) const
{
    SIEVE_ASSERT(row < _rows.size() && col < _header.size(),
                 "CSV cell (", row, ", ", col, ") out of range");
    return _rows[row][col];
}

template <typename T>
Expected<T>
CsvTable::tryCellNumeric(size_t row, size_t col, const char *what) const
{
    const std::string &s = cell(row, col);
    T value{};
    NumericParse status;
    if constexpr (std::is_same_v<T, double>)
        status = parseDouble(s, value);
    else
        status = parseUint64(s, value);
    if (status == NumericParse::Ok)
        return value;

    std::string at = " at row ";
    at += std::to_string(row);
    at += ", column '";
    at += _header[col];
    at += '\'';

    ErrorKind kind = ErrorKind::Parse;
    std::string msg;
    switch (status) {
      case NumericParse::Empty:
        msg = std::string("empty CSV ") + what + " cell" + at;
        break;
      case NumericParse::Trailing:
        msg = std::string("trailing characters in CSV ") + what + " '" +
              s + "'" + at;
        break;
      case NumericParse::OutOfRange:
        kind = ErrorKind::Validation;
        msg = std::string("CSV ") + what + " '" + s +
              "' out of representable range" + at;
        break;
      case NumericParse::NonFinite:
        kind = ErrorKind::Validation;
        msg = std::string("non-finite CSV ") + what + " '" + s + "'" +
              at;
        break;
      case NumericParse::Malformed:
      default:
        msg = std::string("malformed CSV ") + what + " '" + s + "'" + at;
        break;
    }
    return ingestError(kind, std::move(msg), _source, rowLine(row));
}

Expected<double>
CsvTable::tryCellAsDouble(size_t row, size_t col) const
{
    return tryCellNumeric<double>(row, col, "number");
}

Expected<uint64_t>
CsvTable::tryCellAsUint(size_t row, size_t col) const
{
    return tryCellNumeric<uint64_t>(row, col, "integer");
}

double
CsvTable::cellAsDouble(size_t row, size_t col) const
{
    return unwrapOrFatal(tryCellAsDouble(row, col));
}

uint64_t
CsvTable::cellAsUint(size_t row, size_t col) const
{
    return unwrapOrFatal(tryCellAsUint(row, col));
}

void
CsvTable::write(std::ostream &os) const
{
    // One line buffer reused across every row; cells append in place
    // instead of materialising a joined temporary per row.
    std::string line;
    auto emit = [&](const std::vector<std::string> &row) {
        line.clear();
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                line += ',';
            line += row[i];
        }
        line += '\n';
        os.write(line.data(),
                 static_cast<std::streamsize>(line.size()));
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
}

void
CsvTable::writeReference(std::ostream &os) const
{
    os << join(_header, ",") << '\n';
    for (const auto &row : _rows)
        os << join(row, ",") << '\n';
}

void
CsvTable::writeFile(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    write(ofs);
}

Expected<CsvTable>
CsvTable::tryRead(std::istream &is, const std::string &source)
{
    std::string line;
    size_t line_no = 0;

    // Header: the first non-blank line.
    std::vector<std::string> header;
    size_t header_line = 0;
    while (std::getline(is, line)) {
        ++line_no;
        auto trimmed = trim(line);
        if (trimmed.empty())
            continue;
        for (auto &cell : split(trimmed, ','))
            header.emplace_back(trim(cell));
        header_line = line_no;
        break;
    }
    if (header.empty())
        return ingestError(ErrorKind::Parse,
                           "empty CSV input: missing header row",
                           source, line_no == 0 ? 1 : line_no);
    for (size_t c = 0; c < header.size(); ++c) {
        if (header[c].empty())
            return ingestError(ErrorKind::Validation,
                               "empty CSV header cell in column " +
                                   std::to_string(c),
                               source, header_line);
    }

    CsvTable table(std::move(header));
    table._source = source;

    while (std::getline(is, line)) {
        ++line_no;
        auto trimmed = trim(line);
        if (trimmed.empty())
            continue;
        auto raw = split(trimmed, ',');
        if (raw.size() != table._header.size())
            return ingestError(
                ErrorKind::Validation,
                "CSV row width " + std::to_string(raw.size()) +
                    " does not match header width " +
                    std::to_string(table._header.size()),
                source, line_no);
        std::vector<std::string> row;
        row.reserve(raw.size());
        for (auto &cell : raw)
            row.emplace_back(trim(cell));
        table._rows.push_back(std::move(row));
        table._rowLines.push_back(line_no);
    }
    if (is.bad())
        return ingestError(ErrorKind::Io,
                           "read error after line " +
                               std::to_string(line_no),
                           source, line_no);
    return table;
}

Expected<CsvTable>
CsvTable::tryReadFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        return ingestError(ErrorKind::Io,
                           "cannot open '" + path + "' for reading",
                           path, 1);
    return tryRead(ifs, path);
}

CsvTable
CsvTable::read(std::istream &is)
{
    return unwrapOrFatal(tryRead(is));
}

CsvTable
CsvTable::readFile(const std::string &path)
{
    return unwrapOrFatal(tryReadFile(path));
}

} // namespace sieve
