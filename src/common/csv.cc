#include "common/csv.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve {

CsvTable::CsvTable(std::vector<std::string> header)
    : _header(std::move(header))
{
}

size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < _header.size(); ++i) {
        if (_header[i] == name)
            return i;
    }
    return npos;
}

void
CsvTable::addRow(std::vector<std::string> row)
{
    if (row.size() != _header.size()) {
        fatal("CSV row width ", row.size(), " does not match header width ",
              _header.size());
    }
    _rows.push_back(std::move(row));
}

const std::string &
CsvTable::cell(size_t row, size_t col) const
{
    SIEVE_ASSERT(row < _rows.size() && col < _header.size(),
                 "CSV cell (", row, ", ", col, ") out of range");
    return _rows[row][col];
}

double
CsvTable::cellAsDouble(size_t row, size_t col) const
{
    const std::string &s = cell(row, col);
    try {
        size_t pos = 0;
        double v = std::stod(s, &pos);
        if (pos != s.size())
            fatal("trailing characters in CSV number '", s, "'");
        return v;
    } catch (const std::exception &) {
        fatal("malformed CSV number '", s, "' at (", row, ", ", col, ")");
    }
}

uint64_t
CsvTable::cellAsUint(size_t row, size_t col) const
{
    const std::string &s = cell(row, col);
    try {
        size_t pos = 0;
        unsigned long long v = std::stoull(s, &pos);
        if (pos != s.size())
            fatal("trailing characters in CSV integer '", s, "'");
        return static_cast<uint64_t>(v);
    } catch (const std::exception &) {
        fatal("malformed CSV integer '", s, "' at (", row, ", ", col, ")");
    }
}

void
CsvTable::write(std::ostream &os) const
{
    // One line buffer reused across every row; cells append in place
    // instead of materialising a joined temporary per row.
    std::string line;
    auto emit = [&](const std::vector<std::string> &row) {
        line.clear();
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                line += ',';
            line += row[i];
        }
        line += '\n';
        os.write(line.data(),
                 static_cast<std::streamsize>(line.size()));
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
}

void
CsvTable::writeReference(std::ostream &os) const
{
    os << join(_header, ",") << '\n';
    for (const auto &row : _rows)
        os << join(row, ",") << '\n';
}

void
CsvTable::writeFile(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    write(ofs);
}

CsvTable
CsvTable::read(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("empty CSV input: missing header row");

    CsvTable table(split(trim(line), ','));
    while (std::getline(is, line)) {
        auto trimmed = trim(line);
        if (trimmed.empty())
            continue;
        table.addRow(split(trimmed, ','));
    }
    return table;
}

CsvTable
CsvTable::readFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        fatal("cannot open '", path, "' for reading");
    return read(ifs);
}

} // namespace sieve
