/**
 * @file
 * Quarantine bookkeeping for failure-isolated batch runs.
 *
 * The isolation layers (eval::SuiteRunner::mapIsolated,
 * gpusim::simulateTraceFilesIsolated) map a recoverable per-item
 * function over a batch and keep going when one item fails: the
 * failed item is *quarantined* — its structured Error recorded here,
 * its result slot left empty — while every other item completes
 * byte-identically to a clean run. The report is filled in a serial
 * in-order pass, so its contents (and the Stable
 * `suite.quarantined` counter it feeds) are jobs-invariant.
 */

#ifndef SIEVE_COMMON_QUARANTINE_HH
#define SIEVE_COMMON_QUARANTINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hh"

namespace sieve {

/** One quarantined batch item. */
struct QuarantinedItem
{
    size_t index = 0;    //!< position in the input batch
    std::string label;   //!< spec seed label, file path, ...
    Error error;         //!< why the item was quarantined
};

/** Every item a failure-isolated batch run had to skip. */
struct QuarantineReport
{
    std::vector<QuarantinedItem> items;

    /** True if nothing was quarantined. */
    bool allOk() const { return items.empty(); }

    /** Number of quarantined items. */
    size_t numQuarantined() const { return items.size(); }

    /**
     * Record one quarantined item and bump the Stable
     * `suite.quarantined` counter.
     */
    void add(size_t index, std::string label, Error error);

    /**
     * Multi-line run summary:
     *   quarantined 2 of 37 items:
     *     [3] bench/foo: IoError: ... (foo.swl @ byte 96)
     * Empty string when nothing was quarantined.
     */
    std::string toString(size_t batch_size) const;
};

} // namespace sieve

#endif // SIEVE_COMMON_QUARANTINE_HH
