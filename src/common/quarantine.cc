#include "common/quarantine.hh"

#include "obs/metrics.hh"

namespace sieve {

void
QuarantineReport::add(size_t index, std::string label, Error error)
{
    // Stable: quarantine decisions depend only on the inputs (the
    // same items fail the same way at any --jobs), and this method is
    // only called from the serial in-order consumption pass.
    static obs::Counter &c_quarantined =
        obs::counter("suite.quarantined");
    c_quarantined.add();
    items.push_back({index, std::move(label), std::move(error)});
}

std::string
QuarantineReport::toString(size_t batch_size) const
{
    if (items.empty())
        return {};
    std::string out = "quarantined " + std::to_string(items.size()) +
                      " of " + std::to_string(batch_size) + " items:";
    for (const QuarantinedItem &item : items) {
        out += "\n  [" + std::to_string(item.index) + "] " +
               item.label + ": " + item.error.toString();
    }
    return out;
}

} // namespace sieve
