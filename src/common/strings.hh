/**
 * @file
 * Small string utilities shared across the library.
 */

#ifndef SIEVE_COMMON_STRINGS_HH
#define SIEVE_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace sieve {

/** Split a string on a delimiter character (keeps empty fields). */
std::vector<std::string> split(std::string_view text, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if text begins with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Join a vector of strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Render a double with a fixed number of decimals. */
std::string toFixed(double value, int decimals);

/**
 * Human-readable engineering notation for counts:
 * 1234 -> "1.23K", 5'600'000 -> "5.60M", 2.1e9 -> "2.10B".
 */
std::string engineeringNotation(double value);

/** Left-pad (right-justify) a string to the given width. */
std::string padLeft(std::string_view text, size_t width);

/** Right-pad (left-justify) a string to the given width. */
std::string padRight(std::string_view text, size_t width);

} // namespace sieve

#endif // SIEVE_COMMON_STRINGS_HH
