/**
 * @file
 * Small string utilities shared across the library.
 */

#ifndef SIEVE_COMMON_STRINGS_HH
#define SIEVE_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace sieve {

/** Split a string on a delimiter character (keeps empty fields). */
std::vector<std::string> split(std::string_view text, char delim);

/** Split on runs of ASCII whitespace (no empty tokens). The views
 *  alias `text` and are valid only while it is. */
std::vector<std::string_view> splitWhitespace(std::string_view text);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if text begins with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Join a vector of strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Render a double with a fixed number of decimals. */
std::string toFixed(double value, int decimals);

/**
 * Human-readable engineering notation for counts:
 * 1234 -> "1.23K", 5'600'000 -> "5.60M", 2.1e9 -> "2.10B".
 */
std::string engineeringNotation(double value);

/** Left-pad (right-justify) a string to the given width. */
std::string padLeft(std::string_view text, size_t width);

/** Right-pad (left-justify) a string to the given width. */
std::string padRight(std::string_view text, size_t width);

/**
 * Outcome of a strict numeric parse. The pre-robustness readers went
 * through std::stoull/std::stod, which silently *wrap* negative
 * integers ("-1" becomes 2^64-1), skip leading whitespace, and accept
 * locale-dependent forms; the strict parsers below reject all of
 * that with a distinct cause, so ingestion can report exactly what
 * was wrong with a field.
 */
enum class NumericParse : uint8_t {
    Ok,         //!< parsed, value stored
    Empty,      //!< empty field (e.g. a trailing "a,b," cell)
    Malformed,  //!< not a number at all (includes signs/whitespace
                //!< std::stoull used to tolerate or wrap)
    Trailing,   //!< a number followed by junk ("12x")
    OutOfRange, //!< syntactically valid but unrepresentable
    NonFinite,  //!< "inf"/"nan": valid IEEE, invalid in our data
};

/** Short human-readable cause for a failed parse status. */
const char *numericParseMessage(NumericParse status);

/**
 * Strict base-10 uint64 parse: digits only, full consumption, no
 * sign, no whitespace, no wrap. On anything but Ok, `out` is 0.
 */
NumericParse parseUint64(std::string_view text, uint64_t &out);

/**
 * Strict finite double parse (std::from_chars general format): full
 * consumption, no leading '+'/whitespace, rejects inf/nan and
 * overflow. On anything but Ok, `out` is 0.0.
 */
NumericParse parseDouble(std::string_view text, double &out);

} // namespace sieve

#endif // SIEVE_COMMON_STRINGS_HH
