/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every source of randomness in the library flows from a named
 * Rng stream so that workload generation, sampling, and benchmarks
 * are bit-for-bit reproducible run-to-run and platform-to-platform.
 *
 * The generator is xoshiro256** seeded through SplitMix64; streams
 * are split by hashing a label into the parent seed, so
 * `root.split("cactus").split("lmc")` always yields the same stream
 * regardless of how many other streams were drawn in between.
 */

#ifndef SIEVE_COMMON_RNG_HH
#define SIEVE_COMMON_RNG_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sieve {

/**
 * Deterministic splittable PRNG (xoshiro256** core).
 *
 * Not thread-safe; split per-thread streams instead of sharing one.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eedcafe);

    /** Construct from a textual seed label. */
    explicit Rng(std::string_view label);

    /**
     * Derive an independent child stream from a label.
     * Deterministic: depends only on this stream's seed and the label,
     * never on how many numbers were already drawn.
     */
    Rng split(std::string_view label) const;

    /** Derive an independent child stream from an index. */
    Rng split(uint64_t index) const;

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box-Muller, no cached spare). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal deviate parameterized by log-space mu/sigma. */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized weight vector.
     * @pre weights is non-empty with a positive sum.
     */
    size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(
                uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** The seed this stream was constructed from. */
    uint64_t seed() const { return _seed; }

  private:
    void reseed(uint64_t seed);

    uint64_t _seed;
    uint64_t s[4];
};

/** Stable 64-bit FNV-1a hash of a string (used for stream labels). */
uint64_t hashLabel(std::string_view label);

} // namespace sieve

#endif // SIEVE_COMMON_RNG_HH
