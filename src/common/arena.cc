#include "common/arena.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace sieve {

namespace {

// Slabs below this size are rounded up so tiny first allocations do
// not fragment the arena into many slabs.
constexpr size_t kMinSlabBytes = 1 << 18;

std::atomic<uint64_t> g_growth_events{0};
std::atomic<uint64_t> g_resident_bytes{0};

size_t
alignUp(size_t v, size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

ArenaGlobalStats
arenaGlobalStats()
{
    return {g_growth_events.load(std::memory_order_relaxed),
            g_resident_bytes.load(std::memory_order_relaxed)};
}

Arena::~Arena()
{
    release();
}

void *
Arena::allocBytes(size_t bytes, size_t align)
{
    SIEVE_ASSERT(align != 0 && (align & (align - 1)) == 0,
                 "arena alignment ", align, " not a power of two");
    if (bytes == 0)
        bytes = 1; // keep returned pointers distinct

    // Bump in the current slab, else advance to the first retained
    // slab that fits (mirrors DecodeArena's reuse discipline), else
    // grow.
    while (_slab < _slabs.size()) {
        Slab &s = _slabs[_slab];
        uintptr_t base = reinterpret_cast<uintptr_t>(s.bytes.data());
        size_t off = alignUp(base + s.used, align) - base;
        if (off + bytes <= s.bytes.size()) {
            s.used = off + bytes;
            _allocated += bytes;
            return s.bytes.data() + off;
        }
        ++_slab;
        if (_slab < _slabs.size())
            _slabs[_slab].used = 0;
    }
    return grow(bytes, align);
}

void *
Arena::grow(size_t bytes, size_t align)
{
    // A fresh slab is aligned to at least 16 by the vector allocator;
    // over-allocate so any power-of-two `align` up to the slab size
    // can be satisfied.
    size_t size = std::max(alignUp(bytes + align, 16), kMinSlabBytes);
    _slab = _slabs.size();
    _slabs.push_back({});
    _slabs.back().bytes.resize(size);
    _capacity += size;
    ++_growth_events;
    g_growth_events.fetch_add(1, std::memory_order_relaxed);
    g_resident_bytes.fetch_add(size, std::memory_order_relaxed);

    Slab &s = _slabs.back();
    size_t off = alignUp(
        reinterpret_cast<uintptr_t>(s.bytes.data()), align) -
        reinterpret_cast<uintptr_t>(s.bytes.data());
    s.used = off + bytes;
    _allocated += bytes;
    return s.bytes.data() + off;
}

void
Arena::reset()
{
    _slab = 0;
    if (!_slabs.empty())
        _slabs[0].used = 0;
    _allocated = 0;
}

void
Arena::release()
{
    g_resident_bytes.fetch_sub(_capacity, std::memory_order_relaxed);
    _slabs.clear();
    _slabs.shrink_to_fit();
    _slab = 0;
    _capacity = 0;
    _allocated = 0;
}

} // namespace sieve
