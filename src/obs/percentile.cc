#include "obs/percentile.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"

namespace sieve::obs {

namespace {

/**
 * Interpolated value of the sample at 1-based `pos` among `count`
 * samples inside bucket `b`: the k samples of a bucket are assumed
 * to sit at evenly spaced offsets starting at the inclusive lower
 * bound. The overflow bucket has no upper bound; reuse its lower
 * bound as the width so the formula stays total.
 */
double
valueInBucket(size_t b, uint64_t pos, uint64_t count)
{
    if (b == 0)
        return 0.0; // bucket 0 holds exact zeros
    double lower =
        static_cast<double>(Histogram::bucketLowerBound(b));
    double width = lower; // [2^(b-1), 2^b) is one lower-bound wide
    if (count <= 1)
        return lower;
    return lower + width * static_cast<double>(pos - 1) /
                       static_cast<double>(count);
}

} // namespace

double
quantileFromBuckets(const std::vector<uint64_t> &buckets, double q)
{
    uint64_t count = 0;
    for (uint64_t b : buckets)
        count += b;
    if (count == 0)
        return 0.0;

    q = std::min(1.0, std::max(0.0, q));
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::max<uint64_t>(1, std::min(rank, count));

    uint64_t seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        if (rank <= seen + buckets[b])
            return valueInBucket(b, rank - seen, buckets[b]);
        seen += buckets[b];
    }
    return 0.0; // unreachable: rank <= count
}

Quantiles
summarizeBuckets(const std::vector<uint64_t> &buckets)
{
    Quantiles out;
    out.p50 = quantileFromBuckets(buckets, 0.50);
    out.p90 = quantileFromBuckets(buckets, 0.90);
    out.p95 = quantileFromBuckets(buckets, 0.95);
    out.p99 = quantileFromBuckets(buckets, 0.99);
    return out;
}

namespace reference {

double
quantileFromSamples(const std::vector<uint64_t> &samples, double q)
{
    // Bucket exactly as Histogram::record does...
    std::vector<uint64_t> buckets(Histogram::kBuckets, 0);
    for (uint64_t v : samples)
        ++buckets[Histogram::bucketFor(v)];

    uint64_t count = samples.size();
    if (count == 0)
        return 0.0;

    // ...then re-derive the quantile naively: expand the cumulative
    // distribution one bucket at a time and stop at the target rank.
    double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    double exact = clamped * static_cast<double>(count);
    uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    uint64_t cumulative = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        uint64_t next = cumulative + buckets[b];
        if (buckets[b] > 0 && rank <= next) {
            uint64_t pos = rank - cumulative; // 1-based within bucket
            if (b == 0)
                return 0.0;
            double lower = static_cast<double>(
                Histogram::bucketLowerBound(b));
            if (buckets[b] <= 1)
                return lower;
            return lower + lower * static_cast<double>(pos - 1) /
                               static_cast<double>(buckets[b]);
        }
        cumulative = next;
    }
    return 0.0;
}

} // namespace reference

} // namespace sieve::obs
