#include "obs/telemetry.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::obs {

namespace {

/**
 * Sampler state. Probe registration and sweeps share one mutex; a
 * sweep copies the probe list and runs the probes outside the lock
 * so a slow probe (a /proc read) never blocks registration.
 */
class Sampler
{
  public:
    static Sampler &
    instance()
    {
        static Sampler *s = new Sampler; // leaked: outlives atexit
        return *s;
    }

    void
    registerProbe(std::string track, TelemetryProbe probe)
    {
        std::lock_guard<std::mutex> lock(_mu);
        _probes[std::move(track)] = std::move(probe);
    }

    bool
    running() const
    {
        return _running.load(std::memory_order_acquire);
    }

    void
    start(const TelemetryOptions &options)
    {
        std::lock_guard<std::mutex> lock(_lifecycle);
        if (_running.load(std::memory_order_acquire))
            return;
        _intervalMs = std::max<uint64_t>(1, options.intervalMs);
        _stop = false;
        _running.store(true, std::memory_order_release);
        _thread = std::thread([this] { run(); });
    }

    void
    stop()
    {
        std::lock_guard<std::mutex> lock(_lifecycle);
        if (!_running.load(std::memory_order_acquire))
            return;
        {
            std::lock_guard<std::mutex> wake(_mu);
            _stop = true;
        }
        _cv.notify_all();
        _thread.join();
        _running.store(false, std::memory_order_release);
    }

    void
    sweep()
    {
        std::vector<std::pair<std::string, TelemetryProbe>> probes;
        {
            std::lock_guard<std::mutex> lock(_mu);
            probes.assign(_probes.begin(), _probes.end());
        }
        for (auto &[track, probe] : probes)
            emitCounterSample(track, nowNs(), probe());
        _sweeps.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t
    sweeps() const
    {
        return _sweeps.load(std::memory_order_relaxed);
    }

  private:
    Sampler() = default;

    void
    run()
    {
        setThreadTag("telemetry");
        for (;;) {
            sweep();
            std::unique_lock<std::mutex> lock(_mu);
            _cv.wait_for(lock, std::chrono::milliseconds(_intervalMs),
                         [this] { return _stop; });
            if (_stop) {
                // Final sweep so the timeline ends with a settled
                // sample even when the run outpaced the interval.
                lock.unlock();
                sweep();
                return;
            }
        }
    }

    mutable std::mutex _mu; //!< probes + stop flag
    std::mutex _lifecycle;  //!< start/stop serialisation
    std::condition_variable _cv;
    std::map<std::string, TelemetryProbe> _probes;
    std::thread _thread;
    std::atomic<bool> _running{false};
    std::atomic<uint64_t> _sweeps{0};
    bool _stop = false;
    uint64_t _intervalMs = 25;
};

/**
 * Read field `index` (0-based) of /proc/self/statm, in pages;
 * -1 on failure. statm is a single line of space-separated counts.
 */
long
readStatmField(int index)
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return -1;
    long fields[7] = {0, 0, 0, 0, 0, 0, 0};
    int n = std::fscanf(f, "%ld %ld %ld %ld %ld %ld %ld", &fields[0],
                        &fields[1], &fields[2], &fields[3], &fields[4],
                        &fields[5], &fields[6]);
    std::fclose(f);
    if (index >= n)
        return -1;
    return fields[index];
}

int64_t
pagesToKb(long pages)
{
    if (pages < 0)
        return 0;
    static const long kPageKb = [] {
        long sz = sysconf(_SC_PAGESIZE);
        return sz > 0 ? sz / 1024 : 4;
    }();
    return static_cast<int64_t>(pages) * kPageKb;
}

void
registerBuiltinProbes()
{
    static std::once_flag once;
    std::call_once(once, [] {
        Sampler &s = Sampler::instance();
        s.registerProbe("process.vm_kb",
                        [] { return pagesToKb(readStatmField(0)); });
        s.registerProbe("process.rss_kb", [] { return readRssKb(); });
        s.registerProbe("process.data_kb",
                        [] { return pagesToKb(readStatmField(5)); });
        // The pool gauge already exists as a Volatile metric; reading
        // it creates nothing Stable.
        s.registerProbe("pool.queue.depth", [] {
            return gauge("pool.queue.depth").value();
        });
    });
}

} // namespace

void
registerTelemetryProbe(std::string track, TelemetryProbe probe)
{
    Sampler::instance().registerProbe(std::move(track),
                                      std::move(probe));
}

bool
telemetryEnabled()
{
    return Sampler::instance().running();
}

void
startTelemetry(const TelemetryOptions &options)
{
    registerBuiltinProbes();
    // Gauge- and rate-derived probes need live metrics to observe.
    setMetricsEnabled(true);
    Sampler::instance().start(options);
}

void
stopTelemetry()
{
    Sampler::instance().stop();
}

void
sampleTelemetryNow()
{
    registerBuiltinProbes();
    Sampler::instance().sweep();
}

uint64_t
telemetrySweeps()
{
    return Sampler::instance().sweeps();
}

int64_t
readRssKb()
{
    return pagesToKb(readStatmField(1));
}

int64_t
readPeakRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return readRssKb();
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1)
            break;
    }
    std::fclose(f);
    return kb >= 0 ? static_cast<int64_t>(kb) : readRssKb();
}

} // namespace sieve::obs
