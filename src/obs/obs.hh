/**
 * @file
 * Observability configuration: one call wires the metrics registry
 * (obs/metrics.hh), the span tracer (obs/trace.hh), the telemetry
 * sampler (obs/telemetry.hh) and the run ledger (obs/ledger.hh) to
 * output files and registers an at-exit flush.
 *
 * Activation surfaces, in precedence order (later wins):
 *   1. environment: SIEVE_TRACE=FILE, SIEVE_METRICS=FILE,
 *      SIEVE_LEDGER=FILE, SIEVE_TELEMETRY=1,
 *      SIEVE_TELEMETRY_INTERVAL_MS=N
 *   2. flags: --trace-out FILE, --metrics-out FILE, --ledger FILE,
 *      --telemetry, --telemetry-interval-ms N (parseBenchArgs and
 *      sieve_cli both route here)
 * With none of them, every subsystem stays disabled and every
 * instrumentation point is a relaxed load plus branch.
 *
 * Flush-order contract (flushObs, also the at-exit sequence):
 *   1. stop the telemetry sampler — its final sweep lands in the
 *      trace buffers and its sweep count in the manifest before
 *      anything is written;
 *   2. write the metrics file — the Stable counters are final once
 *      user code has returned, and nothing after this step touches
 *      the registry;
 *   3. write the trace file — now containing the last telemetry
 *      samples;
 *   4. append the run ledger — last, so the manifest records the
 *      same final counters the metrics file just exported and the
 *      true end-of-run wall time / peak RSS.
 * flushObs may run twice (explicit call plus atexit): steps 2 and 3
 * rewrite the same files idempotently; step 4 is once-guarded so a
 * run never appends two manifests.
 */

#ifndef SIEVE_OBS_OBS_HH
#define SIEVE_OBS_OBS_HH

#include <cstdint>
#include <string>

namespace sieve::obs {

/** Output configuration; empty path = that subsystem stays off. */
struct ObsOptions
{
    std::string traceOut;   //!< Chrome trace-event JSON path
    std::string metricsOut; //!< metrics path (.csv selects CSV)
    std::string ledgerOut;  //!< run-ledger JSONL path
    bool telemetry = false; //!< start the background sampler
    uint64_t telemetryIntervalMs = 25;
};

/**
 * Enable each subsystem with a non-empty path / set flag and
 * register the at-exit flush (once per process). Callable more than
 * once; later non-empty paths replace earlier ones. Telemetry
 * requires an armed trace stream — requesting it without traceOut
 * (or a prior trace configuration) warns and stays off.
 */
void configureObs(const ObsOptions &options);

/** configureObs from the SIEVE_* environment variables, if set. */
void configureObsFromEnv();

/**
 * Run the flush sequence documented above. Also runs automatically
 * at exit; safe to call when nothing is configured.
 */
void flushObs();

} // namespace sieve::obs

#endif // SIEVE_OBS_OBS_HH
