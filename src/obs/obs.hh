/**
 * @file
 * Observability configuration: one call wires the metrics registry
 * (obs/metrics.hh) and the span tracer (obs/trace.hh) to output
 * files and registers an at-exit flush.
 *
 * Activation surfaces, in precedence order (later wins):
 *   1. environment: SIEVE_TRACE=FILE, SIEVE_METRICS=FILE
 *   2. flags: --trace-out FILE, --metrics-out FILE (parseBenchArgs
 *      and sieve_cli both route here)
 * With neither, both subsystems stay disabled and every
 * instrumentation point is a relaxed load plus branch.
 */

#ifndef SIEVE_OBS_OBS_HH
#define SIEVE_OBS_OBS_HH

#include <string>

namespace sieve::obs {

/** Output configuration; empty path = that subsystem stays off. */
struct ObsOptions
{
    std::string traceOut;   //!< Chrome trace-event JSON path
    std::string metricsOut; //!< metrics path (.csv selects CSV)
};

/**
 * Enable tracing/metrics for every non-empty path and register the
 * at-exit flush (once per process). Callable more than once; later
 * non-empty paths replace earlier ones.
 */
void configureObs(const ObsOptions &options);

/** configureObs from SIEVE_TRACE / SIEVE_METRICS, if set. */
void configureObsFromEnv();

/**
 * Write the configured output files now (also runs automatically at
 * exit; flushing twice rewrites the same files). Safe to call when
 * nothing is configured.
 */
void flushObs();

} // namespace sieve::obs

#endif // SIEVE_OBS_OBS_HH
