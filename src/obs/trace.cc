#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace sieve::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

struct Event
{
    const char *category;
    std::string name;
    std::string detail;
    uint64_t startNs;
    uint64_t durationNs;
    char phase = 'X';  //!< 'X' complete span, 'C' counter sample
    int64_t value = 0; //!< counter samples only
};

/** One thread's private event buffer. */
struct TraceBuffer
{
    int tid = 0;
    std::string threadName;
    std::vector<Event> events;
};

/** Buffer registry: registration and flush lock; appends do not. */
class Tracer
{
  public:
    static Tracer &
    instance()
    {
        static Tracer *t = new Tracer; // leaked: outlives atexit flush
        return *t;
    }

    TraceBuffer &
    localBuffer()
    {
        thread_local TraceBuffer *tls = nullptr;
        if (!tls) {
            auto buf = std::make_shared<TraceBuffer>();
            tls = buf.get();
            std::lock_guard<std::mutex> lock(_mu);
            buf->tid = static_cast<int>(_buffers.size());
            // Buffers are retained after thread exit so the final
            // flush still sees every event.
            _buffers.push_back(std::move(buf));
        }
        return *tls;
    }

    std::vector<std::shared_ptr<TraceBuffer>>
    buffers() const
    {
        std::lock_guard<std::mutex> lock(_mu);
        return _buffers;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(_mu);
        for (auto &buf : _buffers)
            buf->events.clear();
    }

  private:
    Tracer() = default;

    mutable std::mutex _mu;
    std::vector<std::shared_ptr<TraceBuffer>> _buffers;
};

uint64_t
traceEpoch()
{
    static const uint64_t epoch = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return epoch;
}

std::string &
localThreadTag()
{
    thread_local std::string tag;
    return tag;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

bool
traceEnabled()
{
    return g_trace_enabled.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool enabled)
{
    if (enabled)
        traceEpoch(); // pin the epoch before the first span
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t
nowNs()
{
    uint64_t now = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return now - traceEpoch();
}

void
setThreadTag(std::string tag)
{
    localThreadTag() = std::move(tag);
}

const std::string &
threadTag()
{
    return localThreadTag();
}

void
emitCompleteEvent(const char *category, std::string name,
                  uint64_t start_ns, uint64_t duration_ns,
                  std::string detail)
{
    if (!traceEnabled())
        return;
    TraceBuffer &buf = Tracer::instance().localBuffer();
    if (buf.threadName.empty()) {
        const std::string &tag = threadTag();
        buf.threadName = tag.empty() ? "main" : tag;
    }
    buf.events.push_back({category, std::move(name),
                          std::move(detail), start_ns, duration_ns,
                          'X', 0});
}

void
emitCounterSample(std::string track, uint64_t ts_ns, int64_t value)
{
    if (!traceEnabled())
        return;
    TraceBuffer &buf = Tracer::instance().localBuffer();
    if (buf.threadName.empty()) {
        const std::string &tag = threadTag();
        buf.threadName = tag.empty() ? "main" : tag;
    }
    buf.events.push_back(
        {"telemetry", std::move(track), {}, ts_ns, 0, 'C', value});
}

void
writeChromeTrace(std::ostream &os)
{
    struct Flat
    {
        const Event *event;
        int tid;
    };
    std::vector<Flat> flat;
    auto buffers = Tracer::instance().buffers();

    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &buf : buffers) {
        if (buf->events.empty())
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buf->tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(buf->threadName) << "\"}}";
        for (const Event &e : buf->events)
            flat.push_back({&e, buf->tid});
    }
    std::sort(flat.begin(), flat.end(),
              [](const Flat &a, const Flat &b) {
                  return a.event->startNs < b.event->startNs;
              });

    char num[64];
    for (const Flat &f : flat) {
        const Event &e = *f.event;
        // Chrome trace timestamps are microseconds; keep ns precision
        // via the fractional part.
        std::snprintf(num, sizeof(num), "%.3f",
                      static_cast<double>(e.startNs) / 1e3);
        if (e.phase == 'C') {
            os << ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":" << f.tid
               << ",\"cat\":\"" << e.category << "\",\"name\":\""
               << jsonEscape(e.name) << "\",\"ts\":" << num
               << ",\"args\":{\"value\":" << e.value << "}}";
            continue;
        }
        os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << f.tid
           << ",\"cat\":\"" << e.category << "\",\"name\":\""
           << jsonEscape(e.name) << "\",\"ts\":" << num
           << ",\"dur\":";
        std::snprintf(num, sizeof(num), "%.3f",
                      static_cast<double>(e.durationNs) / 1e3);
        os << num;
        if (!e.detail.empty())
            os << ",\"args\":{\"detail\":\"" << jsonEscape(e.detail)
               << "\"}";
        os << '}';
    }
    // Schema 2 added counter-track ("ph":"C") events.
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
          "{\"tool\":\"sieve\",\"schema\":2}}\n";
}

bool
writeChromeTraceFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "[sieve:obs] cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

size_t
traceEventCount()
{
    size_t n = 0;
    for (const auto &buf : Tracer::instance().buffers())
        n += buf->events.size();
    return n;
}

void
resetTrace()
{
    Tracer::instance().reset();
}

namespace {

/** Extract `"key":"value"` from one event line; empty if absent. */
std::string
extractString(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":\"";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return {};
    size_t begin = at + needle.size();
    std::string out;
    for (size_t i = begin; i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
            out.push_back(line[++i]);
        } else if (line[i] == '"') {
            return out;
        } else {
            out.push_back(line[i]);
        }
    }
    return {};
}

/** Extract `"key":number`; false if absent or non-numeric. */
bool
extractNumber(const std::string &line, const std::string &key,
              double *out)
{
    std::string needle = "\"" + key + "\":";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const char *start = line.c_str() + at + needle.size();
    char *end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start)
        return false;
    *out = v;
    return true;
}

} // namespace

TraceSummary
summarizeTrace(std::istream &is, bool by_name, std::string *error)
{
    TraceSummary summary;
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return TraceSummary{};
    };

    std::string line;
    bool saw_header = false;
    double first_start = -1.0;
    double last_end = 0.0;
    std::map<std::string, StageSummary> stages;
    struct TrackState
    {
        CounterTrackSummary summary;
        double lastTs = -1.0;
    };
    std::map<std::string, TrackState> tracks;
    while (std::getline(is, line)) {
        if (line.find("\"traceEvents\"") != std::string::npos)
            saw_header = true;

        // Counter-track samples: {"ph":"C", ..., "name":TRACK,
        // "ts":T, "args":{"value":V}} — aggregated per track.
        if (line.find("\"ph\":\"C\"") != std::string::npos) {
            std::string track = extractString(line, "name");
            double ts = 0.0;
            double value = 0.0;
            if (track.empty() || !extractNumber(line, "ts", &ts) ||
                !extractNumber(line, "value", &value))
                return fail("malformed counter event: " + line);

            ++summary.counterSamples;
            if (first_start < 0.0 || ts < first_start)
                first_start = ts;
            last_end = std::max(last_end, ts);

            TrackState &state = tracks[track];
            CounterTrackSummary &t = state.summary;
            int64_t v = static_cast<int64_t>(value);
            if (t.samples == 0) {
                t.track = track;
                t.minValue = t.maxValue = t.lastValue = v;
            } else {
                t.minValue = std::min(t.minValue, v);
                t.maxValue = std::max(t.maxValue, v);
            }
            if (ts >= state.lastTs) {
                state.lastTs = ts;
                t.lastValue = v;
            }
            ++t.samples;
            continue;
        }

        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        std::string cat = extractString(line, "cat");
        std::string name = extractString(line, "name");
        double ts = 0.0;
        double dur = 0.0;
        if (cat.empty() || name.empty() ||
            !extractNumber(line, "ts", &ts) ||
            !extractNumber(line, "dur", &dur))
            return fail("malformed trace event: " + line);

        ++summary.events;
        if (first_start < 0.0 || ts < first_start)
            first_start = ts;
        last_end = std::max(last_end, ts + dur);

        const std::string &key = by_name ? name : cat;
        StageSummary &s = stages[key];
        s.stage = key;
        ++s.spans;
        double ms = dur / 1e3; // ts/dur are microseconds
        s.totalMs += ms;
        s.maxMs = std::max(s.maxMs, ms);
    }
    if (!saw_header)
        return fail("not a sieve trace file (missing traceEvents)");
    if (summary.events == 0 && summary.counterSamples == 0)
        return fail("trace file contains no spans");

    summary.wallMs = (last_end - first_start) / 1e3;
    summary.stages.reserve(stages.size());
    for (auto &[key, s] : stages)
        summary.stages.push_back(std::move(s));
    std::sort(summary.stages.begin(), summary.stages.end(),
              [](const StageSummary &a, const StageSummary &b) {
                  return a.totalMs > b.totalMs ||
                         (a.totalMs == b.totalMs && a.stage < b.stage);
              });
    summary.tracks.reserve(tracks.size());
    for (auto &[key, state] : tracks)
        summary.tracks.push_back(std::move(state.summary));
    if (error)
        error->clear();
    return summary;
}

} // namespace sieve::obs
