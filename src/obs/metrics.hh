/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * latency histograms, exportable to JSON and CSV.
 *
 * The registry is the quantitative half of the observability layer
 * (the span tracer in obs/trace.hh is the temporal half). It is
 * deliberately self-contained — no dependency on any other sieve
 * library — so even the lowest layers (logging, the thread pool) can
 * be instrumented without a link cycle.
 *
 * Fast path: each thread owns a shard of plain cache-line-local
 * atomic cells; `Counter::add` is one relaxed fetch_add on the
 * calling thread's own cell, with no lock and no sharing. A snapshot
 * merges all shards. When metrics are disabled (the default) every
 * update is a single relaxed load and a predictable branch.
 *
 * Determinism contract (see DESIGN.md §7): metrics are split into
 *   - Stability::Stable   — count-valued facts about *work done*
 *     (strata built, instructions simulated, cache builds). These
 *     must be byte-identical for every `--jobs` value; the CI obs
 *     gate diffs them between --jobs 1 and --jobs 8.
 *   - Stability::Volatile — scheduling- or time-dependent values
 *     (queue depths, caller-steal counts, latency histograms).
 *     Excluded from the determinism gate by construction.
 * Gauges and histograms are always Volatile: a gauge is an
 * instantaneous observation and the histograms bucket wall-clock
 * nanoseconds.
 *
 * Naming scheme: `subsystem.object.event`, lower-case, dot-separated
 * (`pool.tasks.executed`, `sampling.sieve.strata.tier3`,
 * `gpusim.l2.hits`). Exports are sorted by name so files diff cleanly
 * regardless of registration order.
 */

#ifndef SIEVE_OBS_METRICS_HH
#define SIEVE_OBS_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sieve::obs {

/** Determinism class of a metric (see file comment). */
enum class Stability {
    Stable,   //!< --jobs-invariant by contract; CI-diffed
    Volatile, //!< scheduling/timing dependent; excluded from the gate
};

/** Global metrics on/off switch (off by default). */
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

namespace detail {

/** Registry-internal metric record; see metrics.cc. */
struct MetricDef;

/** Registry backdoor for wiring freshly registered handles. */
struct Access;

/** Relaxed fetch_add of `delta` into the calling thread's shard. */
void shardAdd(size_t cell, uint64_t delta);

} // namespace detail

/**
 * Monotonic counter. Handles are obtained once (typically through a
 * function-local static) and are valid for the process lifetime.
 */
class Counter
{
  public:
    /** No-op unless metrics are enabled. */
    void
    add(uint64_t delta = 1)
    {
        if (metricsEnabled())
            detail::shardAdd(_cell, delta);
    }

    /** Merged total over all thread shards. */
    uint64_t value() const;

  private:
    friend struct detail::Access;
    size_t _cell = 0;
};

/**
 * Instantaneous gauge (always Volatile). `set` records the latest
 * observation and keeps a high-water mark.
 */
class Gauge
{
  public:
    void set(int64_t value);
    void add(int64_t delta);
    int64_t value() const;
    int64_t maxValue() const;

  private:
    friend struct detail::Access;
    size_t _index = 0;
};

/**
 * Fixed-bucket histogram of nanosecond durations (always Volatile).
 * Bucket i holds values in [2^(i-1), 2^i) ns — bucket 0 holds exact
 * zeros — so the boundaries are identical in every process and the
 * merge across shards is a plain per-bucket sum.
 */
class Histogram
{
  public:
    /** Power-of-two buckets; the last one absorbs the overflow. */
    static constexpr size_t kBuckets = 40;

    /** Bucket index for a value (exposed for tests). */
    static size_t bucketFor(uint64_t value);

    /** Inclusive lower bound of a bucket (for display). */
    static uint64_t bucketLowerBound(size_t bucket);

    /** No-op unless metrics are enabled. */
    void
    record(uint64_t value)
    {
        if (!metricsEnabled())
            return;
        detail::shardAdd(_cells + 0, 1);     // count
        detail::shardAdd(_cells + 1, value); // sum
        detail::shardAdd(_cells + 2 + bucketFor(value), 1);
    }

    uint64_t count() const;
    uint64_t sum() const;
    std::vector<uint64_t> buckets() const;

  private:
    friend struct detail::Access;
    size_t _cells = 0; //!< base of count, sum, kBuckets bucket cells
};

/**
 * Find-or-create a counter. If the name already exists the original
 * handle (and its original stability) is returned.
 */
Counter &counter(std::string_view name,
                 Stability stability = Stability::Stable);

/** Find-or-create a gauge (always Volatile). */
Gauge &gauge(std::string_view name);

/** Find-or-create a nanosecond histogram (always Volatile). */
Histogram &histogram(std::string_view name);

/** One metric in a merged snapshot. */
struct MetricValue
{
    std::string name;
    enum class Kind { Counter, Gauge, Histogram } kind;
    Stability stability = Stability::Volatile;
    uint64_t value = 0;            //!< counter total / gauge last
    int64_t maxValue = 0;          //!< gauges only
    uint64_t count = 0;            //!< histograms only
    uint64_t sum = 0;              //!< histograms only
    std::vector<uint64_t> buckets; //!< histograms only (kBuckets)
};

/** Merged snapshot of every registered metric, sorted by name. */
std::vector<MetricValue> snapshotMetrics();

/** Stable counters only, keyed by name — the CI-diffed surface. */
std::map<std::string, uint64_t> stableCounters();

/**
 * Write the snapshot as JSON: stable counters under "counters",
 * everything scheduling/timing-dependent under "volatile". One
 * key per line, sorted, so two exports diff line-by-line.
 */
void writeMetricsJson(std::ostream &os);

/** Write the snapshot as CSV: metric,kind,stability,value. */
void writeMetricsCsv(std::ostream &os);

/**
 * Write to a file; `.csv` suffix selects CSV, anything else JSON.
 * Returns false (with a message on stderr) if the file cannot be
 * written.
 */
bool writeMetricsFile(const std::string &path);

/**
 * Parse the "counters" object of a metrics JSON written by
 * writeMetricsJson. On malformed input returns an empty map and sets
 * *error. Used by `sieve metrics-diff` and the CI jobs-invariance
 * gate.
 */
std::map<std::string, uint64_t> parseStableCounters(std::istream &is,
                                                    std::string *error);

/** Zero every metric value (test support; handles stay valid). */
void resetMetrics();

} // namespace sieve::obs

#endif // SIEVE_OBS_METRICS_HH
