/**
 * @file
 * Deterministic quantile extraction from the fixed-bucket latency
 * histograms of obs/metrics.hh.
 *
 * A histogram's bucket array is --jobs-invariant *given identical
 * recorded values* (buckets are plain per-shard sums), so a quantile
 * derived from the buckets with a fixed formula is deterministic
 * too: the same bucket array always yields the bit-identical double.
 * The extraction is what the metrics JSON/CSV export and the run
 * ledger (obs/ledger.hh) publish as p50/p90/p95/p99.
 *
 * Formula (see quantileFromBuckets): target rank r = max(1,
 * ceil(q * count)); walk the cumulative bucket counts to the bucket
 * holding rank r; interpolate linearly inside the bucket assuming
 * its k samples sit at evenly spaced offsets from the inclusive
 * lower bound. Bucket 0 holds exact zeros, so its quantile is 0.
 *
 * The value is an *estimate* bounded by the bucket resolution
 * (power-of-two buckets => at most 2x off), which is the trade the
 * histograms already made; what matters for the regression watchdog
 * is that the estimate is reproducible.
 *
 * `reference::quantileFromSamples` is the retained serial oracle: it
 * buckets a raw sample list the same way the Histogram fast path
 * does and re-derives the quantile with an independently written
 * walk. tests/test_telemetry.cc asserts bit-identity between the
 * two at --jobs 1 and 8.
 */

#ifndef SIEVE_OBS_PERCENTILE_HH
#define SIEVE_OBS_PERCENTILE_HH

#include <cstdint>
#include <vector>

namespace sieve::obs {

/** The quantile set exported everywhere (metrics JSON/CSV, ledger). */
struct Quantiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Deterministic quantile `q` in [0, 1] from a Histogram bucket array
 * (bucket 0 = exact zeros, bucket i >= 1 = [2^(i-1), 2^i)). Returns
 * 0.0 for an empty histogram.
 */
double quantileFromBuckets(const std::vector<uint64_t> &buckets,
                           double q);

/** p50/p90/p95/p99 in one walk-per-quantile call. */
Quantiles summarizeBuckets(const std::vector<uint64_t> &buckets);

namespace reference {

/**
 * Serial oracle: bucket `samples` exactly as Histogram::record does,
 * then derive the quantile with an independent naive implementation.
 * Bit-identical to quantileFromBuckets over the same samples.
 */
double quantileFromSamples(const std::vector<uint64_t> &samples,
                           double q);

} // namespace reference

} // namespace sieve::obs

#endif // SIEVE_OBS_PERCENTILE_HH
