/**
 * @file
 * Append-only run ledger: one JSON line per CLI/bench invocation,
 * accumulating into `runs.jsonl` so a run can be compared against
 * its own history.
 *
 * The metrics export answers "what did this run do"; the ledger
 * answers "is this run like the last five". Every armed invocation
 * appends a RunManifest at exit — command, argv, seeds-bearing
 * flags, --jobs, wall time, peak RSS, the final Stable counters, and
 * p50/p90/p95/p99 summaries of every non-empty latency histogram.
 * `sieve runs list|show|diff|regress` reads it back; `regress` is
 * the perf-regression watchdog (non-zero exit when the newest run
 * exceeds its baseline window by configurable thresholds).
 *
 * Durability model: a manifest is one `write(2)` to an O_APPEND fd,
 * so concurrent writers interleave at line granularity and a crash
 * can only truncate the final line. Readers therefore skip (and
 * count) lines that fail to parse instead of failing the file, and
 * the appender starts with a newline when the file does not already
 * end in one — a torn tail line stays torn instead of corrupting
 * the next manifest.
 *
 * Stability: everything the ledger *stores* about Stable counters is
 * the already-final merged values; wall/RSS/quantiles are Volatile
 * observations and are recorded as such. The regression verdict
 * compares Stable counters exactly (any drift on an identical
 * command line is a correctness flag, not a perf one) and applies
 * percentage thresholds only to the Volatile measurements.
 *
 * The same file also hosts the bench-history types used by
 * `sieve perf-report`, which consolidates BENCH_*.json snapshots
 * into BENCH_HISTORY.jsonl with per-op speedup trajectories.
 */

#ifndef SIEVE_OBS_LEDGER_HH
#define SIEVE_OBS_LEDGER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sieve::obs {

/** Quantile summary of one latency histogram (nanoseconds). */
struct HistogramQuantiles
{
    uint64_t count = 0;
    uint64_t sum = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Everything the ledger records about one invocation. */
struct RunManifest
{
    /** Manifest line format version. */
    static constexpr int kSchema = 1;

    int schema = kSchema;
    std::string command;           //!< "bench_fig3_accuracy", "sieve"
    std::vector<std::string> argv; //!< args after the command name
    int jobs = 0;                  //!< resolved --jobs (0 = unset)
    uint64_t startedUnixMs = 0;    //!< wall-clock start (Unix ms)
    double wallMs = 0.0;           //!< start-to-append duration
    int64_t maxRssKb = 0;          //!< VmHWM at append time
    uint64_t telemetrySamples = 0; //!< sampler sweeps (0 = off)
    //! final Stable counters, exactly as the metrics export
    std::map<std::string, uint64_t> counters;
    //! non-empty latency histograms, summarised
    std::map<std::string, HistogramQuantiles> histograms;
};

/** Serialise to one canonical JSON line (no trailing newline). */
std::string manifestToJsonLine(const RunManifest &manifest);

/**
 * Parse one ledger line. Returns false and sets *error on malformed
 * input (including a torn tail line from a crashed writer).
 */
bool parseManifestLine(const std::string &line, RunManifest *out,
                       std::string *error);

/** Result of reading a ledger stream: parsed runs, oldest first. */
struct LedgerReadResult
{
    std::vector<RunManifest> runs;
    uint64_t skippedLines = 0; //!< unparseable (torn/foreign) lines
};

/** Read every parseable manifest line; never fails on content. */
LedgerReadResult readRunLedger(std::istream &is);

/** readRunLedger from a file; false + *error if unreadable. */
bool readRunLedgerFile(const std::string &path, LedgerReadResult *out,
                       std::string *error);

/**
 * Append one manifest line atomically (single O_APPEND write; a
 * leading newline is added when the file's last byte is not '\n').
 * Returns false and sets *error on I/O failure.
 */
bool appendRunLedger(const std::string &path,
                     const RunManifest &manifest, std::string *error);

/**
 * Record the invocation identity for the manifest this process will
 * append: command name, argv (after the command), resolved --jobs.
 * Also pins the wall-clock start. Call once, early in main.
 */
void setRunContext(std::string command, std::vector<std::string> argv,
                   int jobs);

/**
 * Build the manifest for this process now: the run context, elapsed
 * wall time, peak RSS, telemetry sweep count, final Stable counters
 * and histogram quantiles from the live registry. flushObs() calls
 * this after the metrics/trace files are written — see the
 * flush-order contract in obs/obs.hh.
 */
RunManifest collectRunManifest();

/**
 * Identity key for "the same invocation repeated": command plus argv
 * with observability routing flags (--ledger, --trace-out,
 * --metrics-out, --telemetry, --telemetry-interval-ms) removed, so a
 * run with telemetry on baselines against the same run with it off.
 * --jobs stays: different parallelism is a different workload shape.
 */
std::string runFingerprint(const RunManifest &manifest);

/** Thresholds for findRegressions. */
struct RegressOptions
{
    double maxLatencyPct = 10.0;   //!< per-histogram p95 growth
    double maxFootprintPct = 10.0; //!< max_rss_kb growth
    double maxWallPct = 0.0;       //!< wall_ms growth; <= 0 disables
    bool allowCounterDrift = false;
    size_t window = 5; //!< baselines considered (most recent N)
};

/** One threshold violation. */
struct Regression
{
    std::string metric;     //!< "p95(pool.task.latency_ns)", ...
    double candidate = 0.0;
    double baseline = 0.0;
    double deltaPct = 0.0;  //!< growth over baseline, percent
};

/**
 * The exact threshold rule, exposed for tests: true iff
 * `candidate > baseline * (1 + pct/100)`. A candidate exactly at
 * the boundary does NOT regress.
 */
bool exceedsThreshold(double candidate, double baseline, double pct);

/**
 * Compare `candidate` against a window of prior runs (oldest first;
 * callers pre-filter to the candidate's fingerprint). Baseline for
 * each Volatile measurement is the *minimum* over the window — the
 * best the code has demonstrably done — so a slow outlier baseline
 * cannot mask a real regression. Stable counters are compared
 * exactly against the most recent baseline unless
 * `allowCounterDrift`. Empty baselines => no regressions.
 */
std::vector<Regression>
findRegressions(const RunManifest &candidate,
                const std::vector<RunManifest> &baselines,
                const RegressOptions &options);

/** One op row of a bench_perf snapshot. */
struct BenchOpRecord
{
    std::string op;
    uint64_t n = 0;
    uint64_t reps = 0;
    double medianNs = 0.0;
    double baselineNs = 0.0; //!< 0 = not recorded (schema 1)
    double speedup = 0.0;    //!< 0 = not recorded ("null")
};

/** One BENCH_*.json snapshot, labelled by its source file. */
struct BenchSnapshot
{
    std::string label;  //!< "BENCH_PR4" — file stem
    int benchSchema = 0;
    int jobs = 0;
    std::vector<BenchOpRecord> ops;
};

/**
 * Parse a bench_perf JSON file (schemas 1..4: header fields plus
 * line-per-op "results"). `label` is stored into the snapshot.
 */
bool parseBenchSnapshot(std::istream &is, std::string label,
                        BenchSnapshot *out, std::string *error);

/** One BENCH_HISTORY.jsonl line (no trailing newline). */
std::string benchSnapshotToJsonLine(const BenchSnapshot &snapshot);

/** Parse one BENCH_HISTORY.jsonl line. */
bool parseBenchHistoryLine(const std::string &line, BenchSnapshot *out,
                           std::string *error);

/** Write every snapshot as one BENCH_HISTORY.jsonl stream. */
void writeBenchHistory(std::ostream &os,
                       const std::vector<BenchSnapshot> &snapshots);

/** Read a BENCH_HISTORY.jsonl stream; skips unparseable lines. */
std::vector<BenchSnapshot> readBenchHistory(std::istream &is,
                                            uint64_t *skipped);

} // namespace sieve::obs

#endif // SIEVE_OBS_LEDGER_HH
