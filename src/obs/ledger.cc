#include "obs/ledger.hh"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/percentile.hh"
#include "obs/telemetry.hh"

namespace sieve::obs {

namespace {

// ---------------------------------------------------------------
// JSON formatting. Numbers must round-trip: uint64 exactly, doubles
// via shortest-representation to_chars so parse(serialise(x)) is a
// fixpoint and ledger diffs are byte-stable.
// ---------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

// ---------------------------------------------------------------
// JSON parsing: a compact recursive-descent DOM, just enough for
// this tool's own single-line objects. Number values keep their raw
// token so integers stay exact (strtoull) and doubles re-parse to
// the identical bits to_chars produced.
// ---------------------------------------------------------------

struct JVal
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string num; //!< raw numeric token
    std::string str;
    std::vector<JVal> arr;
    std::vector<std::pair<std::string, JVal>> obj;

    const JVal *
    find(const char *key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    uint64_t
    asU64() const
    {
        return std::strtoull(num.c_str(), nullptr, 10);
    }

    int64_t
    asI64() const
    {
        return std::strtoll(num.c_str(), nullptr, 10);
    }

    double
    asDouble() const
    {
        return std::strtod(num.c_str(), nullptr);
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text) : _text(text) {}

    bool
    parse(JVal *out, std::string *error)
    {
        _pos = 0;
        _error.clear();
        if (!parseValue(out)) {
            if (error)
                *error = _error.empty() ? "malformed JSON" : _error;
            return false;
        }
        skipWs();
        if (_pos != _text.size()) {
            if (error)
                *error = "trailing garbage after JSON value";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    fail(const char *msg)
    {
        if (_error.empty())
            _error = msg;
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (_text.compare(_pos, len, word) != 0)
            return false;
        _pos += len;
        return true;
    }

    bool
    parseValue(JVal *out)
    {
        skipWs();
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->kind = JVal::Kind::Str;
            return parseString(&out->str);
        }
        if (literal("true")) {
            out->kind = JVal::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = JVal::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->kind = JVal::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseNumber(JVal *out)
    {
        size_t begin = _pos;
        auto isNumChar = [](char c) {
            return (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                   c == '.' || c == 'e' || c == 'E';
        };
        while (_pos < _text.size() && isNumChar(_text[_pos]))
            ++_pos;
        if (_pos == begin)
            return fail("expected a value");
        out->kind = JVal::Kind::Num;
        out->num = _text.substr(begin, _pos - begin);
        // Validate it actually parses as a number.
        const char *start = out->num.c_str();
        char *end = nullptr;
        std::strtod(start, &end);
        if (end != start + out->num.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (_text[_pos] != '"')
            return fail("expected string");
        ++_pos;
        out->clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    return fail("unterminated escape");
                char e = _text[_pos++];
                switch (e) {
                  case 'n': out->push_back('\n'); break;
                  case 't': out->push_back('\t'); break;
                  case 'r': out->push_back('\r'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = _text[_pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // Only control characters are emitted escaped by
                    // this tool; anything wider degrades to '?'.
                    out->push_back(code < 0x80
                                       ? static_cast<char>(code)
                                       : '?');
                    break;
                  }
                  default: out->push_back(e); break;
                }
            } else {
                out->push_back(c);
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JVal *out)
    {
        out->kind = JVal::Kind::Arr;
        ++_pos; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            JVal v;
            if (!parseValue(&v))
                return false;
            out->arr.push_back(std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            char c = _text[_pos++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JVal *out)
    {
        out->kind = JVal::Kind::Obj;
        ++_pos; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (_pos >= _text.size() || _text[_pos] != '"' ||
                !parseString(&key))
                return fail("expected object key");
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            JVal v;
            if (!parseValue(&v))
                return false;
            out->obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            char c = _text[_pos++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &_text;
    size_t _pos = 0;
    std::string _error;
};

// ---------------------------------------------------------------
// Run context: what main() tells us about this invocation.
// ---------------------------------------------------------------

struct RunContext
{
    std::mutex mu;
    std::string command;
    std::vector<std::string> argv;
    int jobs = 0;
    uint64_t startedUnixMs = 0;
    std::chrono::steady_clock::time_point startedAt;
    bool set = false;
};

RunContext &
runContext()
{
    static RunContext *ctx = new RunContext; // outlives atexit flush
    return *ctx;
}

} // namespace

std::string
manifestToJsonLine(const RunManifest &manifest)
{
    std::ostringstream os;
    os << "{\"schema\":" << manifest.schema << ",\"command\":\""
       << jsonEscape(manifest.command) << "\",\"argv\":[";
    for (size_t i = 0; i < manifest.argv.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << jsonEscape(manifest.argv[i]) << '"';
    }
    os << "],\"jobs\":" << manifest.jobs << ",\"started_unix_ms\":"
       << manifest.startedUnixMs << ",\"wall_ms\":"
       << formatDouble(manifest.wallMs) << ",\"max_rss_kb\":"
       << manifest.maxRssKb << ",\"telemetry_samples\":"
       << manifest.telemetrySamples << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : manifest.counters) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":" << value;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : manifest.histograms) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":{\"count\":" << h.count
           << ",\"sum\":" << h.sum << ",\"p50\":"
           << formatDouble(h.p50) << ",\"p90\":" << formatDouble(h.p90)
           << ",\"p95\":" << formatDouble(h.p95) << ",\"p99\":"
           << formatDouble(h.p99) << '}';
    }
    os << "}}";
    return os.str();
}

bool
parseManifestLine(const std::string &line, RunManifest *out,
                  std::string *error)
{
    JVal root;
    JsonParser parser(line);
    if (!parser.parse(&root, error))
        return false;
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (root.kind != JVal::Kind::Obj)
        return fail("manifest line is not a JSON object");

    const JVal *schema = root.find("schema");
    if (!schema || schema->kind != JVal::Kind::Num)
        return fail("manifest missing \"schema\"");
    RunManifest m;
    m.schema = static_cast<int>(schema->asI64());
    if (m.schema < 1 || m.schema > RunManifest::kSchema)
        return fail("unsupported manifest schema");

    const JVal *command = root.find("command");
    if (!command || command->kind != JVal::Kind::Str)
        return fail("manifest missing \"command\"");
    m.command = command->str;

    if (const JVal *argv = root.find("argv");
        argv && argv->kind == JVal::Kind::Arr) {
        for (const JVal &a : argv->arr) {
            if (a.kind != JVal::Kind::Str)
                return fail("non-string argv entry");
            m.argv.push_back(a.str);
        }
    }
    if (const JVal *v = root.find("jobs");
        v && v->kind == JVal::Kind::Num)
        m.jobs = static_cast<int>(v->asI64());
    if (const JVal *v = root.find("started_unix_ms");
        v && v->kind == JVal::Kind::Num)
        m.startedUnixMs = v->asU64();
    if (const JVal *v = root.find("wall_ms");
        v && v->kind == JVal::Kind::Num)
        m.wallMs = v->asDouble();
    if (const JVal *v = root.find("max_rss_kb");
        v && v->kind == JVal::Kind::Num)
        m.maxRssKb = v->asI64();
    if (const JVal *v = root.find("telemetry_samples");
        v && v->kind == JVal::Kind::Num)
        m.telemetrySamples = v->asU64();

    const JVal *counters = root.find("counters");
    if (!counters || counters->kind != JVal::Kind::Obj)
        return fail("manifest missing \"counters\"");
    for (const auto &[name, v] : counters->obj) {
        if (v.kind != JVal::Kind::Num)
            return fail("non-numeric counter value");
        m.counters[name] = v.asU64();
    }

    const JVal *histograms = root.find("histograms");
    if (!histograms || histograms->kind != JVal::Kind::Obj)
        return fail("manifest missing \"histograms\"");
    for (const auto &[name, v] : histograms->obj) {
        if (v.kind != JVal::Kind::Obj)
            return fail("histogram entry is not an object");
        HistogramQuantiles h;
        auto num = [&](const char *key, bool *ok) -> const JVal * {
            const JVal *f = v.find(key);
            if (!f || f->kind != JVal::Kind::Num) {
                *ok = false;
                return nullptr;
            }
            return f;
        };
        bool ok = true;
        if (const JVal *f = num("count", &ok))
            h.count = f->asU64();
        if (const JVal *f = num("sum", &ok))
            h.sum = f->asU64();
        if (const JVal *f = num("p50", &ok))
            h.p50 = f->asDouble();
        if (const JVal *f = num("p90", &ok))
            h.p90 = f->asDouble();
        if (const JVal *f = num("p95", &ok))
            h.p95 = f->asDouble();
        if (const JVal *f = num("p99", &ok))
            h.p99 = f->asDouble();
        if (!ok)
            return fail("incomplete histogram entry");
        m.histograms[name] = h;
    }

    *out = std::move(m);
    if (error)
        error->clear();
    return true;
}

LedgerReadResult
readRunLedger(std::istream &is)
{
    LedgerReadResult out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        RunManifest m;
        std::string error;
        if (parseManifestLine(line, &m, &error))
            out.runs.push_back(std::move(m));
        else
            ++out.skippedLines;
    }
    return out;
}

bool
readRunLedgerFile(const std::string &path, LedgerReadResult *out,
                  std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open ledger '" + path + "'";
        return false;
    }
    *out = readRunLedger(in);
    if (error)
        error->clear();
    return true;
}

bool
appendRunLedger(const std::string &path, const RunManifest &manifest,
                std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg + ": " + std::strerror(errno);
        return false;
    };

    // O_RDWR, not O_WRONLY: the newline guard below pread()s the
    // current last byte, which a write-only fd cannot do.
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return fail("cannot open ledger '" + path + "'");

    std::string payload = manifestToJsonLine(manifest);
    payload.push_back('\n');

    // Newline-guard: if a previous writer crashed mid-line, keep the
    // torn tail its own (skipped) line instead of fusing with it.
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        char last = '\n';
        if (::pread(fd, &last, 1, st.st_size - 1) == 1 &&
            last != '\n')
            payload.insert(payload.begin(), '\n');
    }

    // One write: O_APPEND makes concurrent appends interleave at
    // line granularity (POSIX appends are atomic per write).
    const char *data = payload.data();
    size_t remaining = payload.size();
    while (remaining > 0) {
        ssize_t n = ::write(fd, data, remaining);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return fail("write to ledger '" + path + "' failed");
        }
        data += n;
        remaining -= static_cast<size_t>(n);
    }
    ::close(fd);
    if (error)
        error->clear();
    return true;
}

void
setRunContext(std::string command, std::vector<std::string> argv,
              int jobs)
{
    RunContext &ctx = runContext();
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.command = std::move(command);
    ctx.argv = std::move(argv);
    ctx.jobs = jobs;
    ctx.startedUnixMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    ctx.startedAt = std::chrono::steady_clock::now();
    ctx.set = true;
}

RunManifest
collectRunManifest()
{
    RunManifest m;
    {
        RunContext &ctx = runContext();
        std::lock_guard<std::mutex> lock(ctx.mu);
        m.command = ctx.command;
        m.argv = ctx.argv;
        m.jobs = ctx.jobs;
        m.startedUnixMs = ctx.startedUnixMs;
        if (ctx.set) {
            m.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - ctx.startedAt)
                    .count();
        }
    }
    m.maxRssKb = readPeakRssKb();
    m.telemetrySamples = telemetrySweeps();
    m.counters = stableCounters();
    for (const MetricValue &v : snapshotMetrics()) {
        if (v.kind != MetricValue::Kind::Histogram || v.count == 0)
            continue;
        HistogramQuantiles h;
        h.count = v.count;
        h.sum = v.sum;
        Quantiles q = summarizeBuckets(v.buckets);
        h.p50 = q.p50;
        h.p90 = q.p90;
        h.p95 = q.p95;
        h.p99 = q.p99;
        m.histograms[v.name] = h;
    }
    return m;
}

std::string
runFingerprint(const RunManifest &manifest)
{
    // Flags that only route observability output; their presence must
    // not split the baseline history.
    auto isObsFlag = [](const std::string &arg) {
        return arg == "--ledger" || arg == "--trace-out" ||
               arg == "--metrics-out" ||
               arg == "--telemetry-interval-ms";
    };
    std::string fp = manifest.command;
    for (size_t i = 0; i < manifest.argv.size(); ++i) {
        const std::string &arg = manifest.argv[i];
        if (arg == "--telemetry")
            continue;
        if (isObsFlag(arg)) {
            ++i; // skip the flag's value as well
            continue;
        }
        fp.push_back('\x1f');
        fp += arg;
    }
    return fp;
}

bool
exceedsThreshold(double candidate, double baseline, double pct)
{
    return candidate > baseline * (1.0 + pct / 100.0);
}

namespace {

double
growthPct(double candidate, double baseline)
{
    if (baseline > 0.0)
        return (candidate / baseline - 1.0) * 100.0;
    return candidate > 0.0 ? std::numeric_limits<double>::infinity()
                           : 0.0;
}

} // namespace

std::vector<Regression>
findRegressions(const RunManifest &candidate,
                const std::vector<RunManifest> &baselines,
                const RegressOptions &options)
{
    std::vector<Regression> out;
    if (baselines.empty())
        return out;

    size_t window = std::max<size_t>(1, options.window);
    size_t begin =
        baselines.size() > window ? baselines.size() - window : 0;

    // Latency: per histogram, baseline = min p95 over the window.
    for (const auto &[name, h] : candidate.histograms) {
        if (h.count == 0)
            continue;
        double best = -1.0;
        for (size_t i = begin; i < baselines.size(); ++i) {
            auto it = baselines[i].histograms.find(name);
            if (it == baselines[i].histograms.end() ||
                it->second.count == 0)
                continue;
            if (best < 0.0 || it->second.p95 < best)
                best = it->second.p95;
        }
        if (best < 0.0)
            continue; // new histogram: nothing to compare against
        if (exceedsThreshold(h.p95, best, options.maxLatencyPct))
            out.push_back({"p95(" + name + ")", h.p95, best,
                           growthPct(h.p95, best)});
    }

    // Footprint: baseline = min peak RSS over the window.
    if (candidate.maxRssKb > 0) {
        int64_t best = -1;
        for (size_t i = begin; i < baselines.size(); ++i) {
            int64_t rss = baselines[i].maxRssKb;
            if (rss <= 0)
                continue;
            if (best < 0 || rss < best)
                best = rss;
        }
        if (best > 0 &&
            exceedsThreshold(static_cast<double>(candidate.maxRssKb),
                             static_cast<double>(best),
                             options.maxFootprintPct))
            out.push_back({"max_rss_kb",
                           static_cast<double>(candidate.maxRssKb),
                           static_cast<double>(best),
                           growthPct(
                               static_cast<double>(candidate.maxRssKb),
                               static_cast<double>(best))});
    }

    // Wall clock: opt-in (noisy on shared machines).
    if (options.maxWallPct > 0.0 && candidate.wallMs > 0.0) {
        double best = -1.0;
        for (size_t i = begin; i < baselines.size(); ++i) {
            double w = baselines[i].wallMs;
            if (w <= 0.0)
                continue;
            if (best < 0.0 || w < best)
                best = w;
        }
        if (best > 0.0 &&
            exceedsThreshold(candidate.wallMs, best,
                             options.maxWallPct))
            out.push_back({"wall_ms", candidate.wallMs, best,
                           growthPct(candidate.wallMs, best)});
    }

    // Stable counters: exact comparison against the most recent
    // baseline — drift on an identical command line is a correctness
    // signal, not a performance one.
    if (!options.allowCounterDrift) {
        const RunManifest &last = baselines.back();
        for (const auto &[name, value] : candidate.counters) {
            auto it = last.counters.find(name);
            uint64_t base =
                it == last.counters.end() ? 0 : it->second;
            if (it == last.counters.end() || base != value)
                out.push_back({"counter(" + name + ")",
                               static_cast<double>(value),
                               static_cast<double>(base),
                               growthPct(static_cast<double>(value),
                                         static_cast<double>(base))});
        }
        for (const auto &[name, base] : last.counters) {
            if (candidate.counters.find(name) ==
                candidate.counters.end())
                out.push_back({"counter(" + name + ")", 0.0,
                               static_cast<double>(base), -100.0});
        }
    }
    return out;
}

// ---------------------------------------------------------------
// Bench history (sieve perf-report).
// ---------------------------------------------------------------

namespace {

bool
parseBenchOp(const JVal &v, BenchOpRecord *out, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (v.kind != JVal::Kind::Obj)
        return fail("op record is not an object");
    const JVal *op = v.find("op");
    if (!op || op->kind != JVal::Kind::Str)
        return fail("op record missing \"op\"");
    BenchOpRecord r;
    r.op = op->str;
    if (const JVal *f = v.find("n"); f && f->kind == JVal::Kind::Num)
        r.n = f->asU64();
    if (const JVal *f = v.find("reps");
        f && f->kind == JVal::Kind::Num)
        r.reps = f->asU64();
    const JVal *median = v.find("median_ns");
    if (!median || median->kind != JVal::Kind::Num)
        return fail("op record missing \"median_ns\"");
    r.medianNs = median->asDouble();
    // baseline_ns absent before schema 2; speedup may be null.
    if (const JVal *f = v.find("baseline_ns");
        f && f->kind == JVal::Kind::Num)
        r.baselineNs = f->asDouble();
    if (const JVal *f = v.find("speedup");
        f && f->kind == JVal::Kind::Num)
        r.speedup = f->asDouble();
    *out = std::move(r);
    return true;
}

} // namespace

bool
parseBenchSnapshot(std::istream &is, std::string label,
                   BenchSnapshot *out, std::string *error)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    JVal root;
    JsonParser parser(text);
    if (!parser.parse(&root, error))
        return false;
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (root.kind != JVal::Kind::Obj)
        return fail("bench file is not a JSON object");

    BenchSnapshot snap;
    snap.label = std::move(label);
    if (const JVal *f = root.find("schema");
        f && f->kind == JVal::Kind::Num)
        snap.benchSchema = static_cast<int>(f->asI64());
    if (const JVal *f = root.find("jobs");
        f && f->kind == JVal::Kind::Num)
        snap.jobs = static_cast<int>(f->asI64());
    const JVal *results = root.find("results");
    if (!results || results->kind != JVal::Kind::Arr)
        return fail("bench file missing \"results\" array");
    for (const JVal &v : results->arr) {
        BenchOpRecord r;
        if (!parseBenchOp(v, &r, error))
            return false;
        snap.ops.push_back(std::move(r));
    }
    *out = std::move(snap);
    if (error)
        error->clear();
    return true;
}

std::string
benchSnapshotToJsonLine(const BenchSnapshot &snapshot)
{
    std::ostringstream os;
    os << "{\"history_schema\":1,\"label\":\""
       << jsonEscape(snapshot.label) << "\",\"bench_schema\":"
       << snapshot.benchSchema << ",\"jobs\":" << snapshot.jobs
       << ",\"ops\":[";
    for (size_t i = 0; i < snapshot.ops.size(); ++i) {
        const BenchOpRecord &r = snapshot.ops[i];
        if (i)
            os << ',';
        os << "{\"op\":\"" << jsonEscape(r.op) << "\",\"n\":" << r.n
           << ",\"reps\":" << r.reps << ",\"median_ns\":"
           << formatDouble(r.medianNs) << ",\"baseline_ns\":"
           << formatDouble(r.baselineNs) << ",\"speedup\":"
           << formatDouble(r.speedup) << '}';
    }
    os << "]}";
    return os.str();
}

bool
parseBenchHistoryLine(const std::string &line, BenchSnapshot *out,
                      std::string *error)
{
    JVal root;
    JsonParser parser(line);
    if (!parser.parse(&root, error))
        return false;
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (root.kind != JVal::Kind::Obj)
        return fail("history line is not a JSON object");
    const JVal *schema = root.find("history_schema");
    if (!schema || schema->kind != JVal::Kind::Num ||
        schema->asI64() != 1)
        return fail("unsupported bench-history schema");
    BenchSnapshot snap;
    if (const JVal *f = root.find("label");
        f && f->kind == JVal::Kind::Str)
        snap.label = f->str;
    if (const JVal *f = root.find("bench_schema");
        f && f->kind == JVal::Kind::Num)
        snap.benchSchema = static_cast<int>(f->asI64());
    if (const JVal *f = root.find("jobs");
        f && f->kind == JVal::Kind::Num)
        snap.jobs = static_cast<int>(f->asI64());
    const JVal *ops = root.find("ops");
    if (!ops || ops->kind != JVal::Kind::Arr)
        return fail("history line missing \"ops\"");
    for (const JVal &v : ops->arr) {
        BenchOpRecord r;
        if (!parseBenchOp(v, &r, error))
            return false;
        snap.ops.push_back(std::move(r));
    }
    *out = std::move(snap);
    if (error)
        error->clear();
    return true;
}

void
writeBenchHistory(std::ostream &os,
                  const std::vector<BenchSnapshot> &snapshots)
{
    for (const BenchSnapshot &snap : snapshots)
        os << benchSnapshotToJsonLine(snap) << '\n';
}

std::vector<BenchSnapshot>
readBenchHistory(std::istream &is, uint64_t *skipped)
{
    std::vector<BenchSnapshot> out;
    if (skipped)
        *skipped = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        BenchSnapshot snap;
        std::string error;
        if (parseBenchHistoryLine(line, &snap, &error))
            out.push_back(std::move(snap));
        else if (skipped)
            ++*skipped;
    }
    return out;
}

} // namespace sieve::obs
