/**
 * @file
 * RAII span tracer emitting Chrome trace-event JSON.
 *
 * The temporal half of the observability layer: a `Span` measures one
 * pipeline stage on one thread and, at destruction, appends a
 * complete ("ph":"X") trace event to the calling thread's private
 * buffer. Buffers are merged and sorted when the trace is written,
 * so tracing from pool workers is allocation-cheap and lock-free on
 * the hot path (the only locks are buffer registration — once per
 * thread — and the final flush).
 *
 * The output loads directly in `chrome://tracing` and Perfetto
 * (https://ui.perfetto.dev): one row per thread, spans nested by
 * time. `sieve trace-summary FILE` aggregates the same file into a
 * per-stage wall-clock table.
 *
 * Span categories name pipeline stages (`pool`, `eval`, `suite`,
 * `profiler`, `sampling`, `stats`, `gpusim`); span names identify the
 * unit of work ("cactus/lmc", "kmeans"). All span timing is
 * wall-clock and therefore Volatile under the determinism contract —
 * nothing in a trace file is expected to be --jobs-invariant.
 *
 * When tracing is disabled (the default) constructing a Span is one
 * relaxed load and a branch: no clock read, no buffer write, no
 * allocation beyond the caller's name argument.
 */

#ifndef SIEVE_OBS_TRACE_HH
#define SIEVE_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sieve::obs {

/** Global tracing on/off switch (off by default). */
bool traceEnabled();
void setTraceEnabled(bool enabled);

/** Monotonic nanoseconds since the process trace epoch. */
uint64_t nowNs();

/**
 * Tag the calling thread for logs and traces ("p0.w3" for pool
 * workers, "main" for the main thread). The tag shows up as the
 * Perfetto thread name and in log-line attribution.
 */
void setThreadTag(std::string tag);

/** The calling thread's tag; empty if never set. */
const std::string &threadTag();

/**
 * Append one complete trace event directly (the building block Span
 * uses; exposed for call sites that already measured the interval).
 * No-op when tracing is disabled.
 */
void emitCompleteEvent(const char *category, std::string name,
                       uint64_t start_ns, uint64_t duration_ns,
                       std::string detail = {});

/**
 * Append one counter-track sample ("ph":"C"): the value of `track`
 * at `ts_ns`. Perfetto renders all samples of one track name as a
 * counter timeline row. Counter samples are wall-clock observations
 * and therefore Volatile by construction — they live only in the
 * trace stream and never touch the Stable-counter contract. The
 * TelemetrySampler (obs/telemetry.hh) is the main producer. No-op
 * when tracing is disabled.
 */
void emitCounterSample(std::string track, uint64_t ts_ns,
                       int64_t value);

/**
 * RAII span: measures construction-to-destruction on the calling
 * thread. `category` must be a string literal (stored by pointer);
 * `name` and `detail` are owned. `detail` lands in the event's args
 * in the trace viewer.
 */
class Span
{
  public:
    explicit Span(const char *category, std::string name,
                  std::string detail = {})
        : _armed(traceEnabled()), _category(category)
    {
        if (_armed) {
            _name = std::move(name);
            _detail = std::move(detail);
            _start = nowNs();
        }
    }

    ~Span()
    {
        if (_armed)
            emitCompleteEvent(_category, std::move(_name), _start,
                              nowNs() - _start, std::move(_detail));
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool _armed;
    const char *_category;
    uint64_t _start = 0;
    std::string _name;
    std::string _detail;
};

/**
 * Write all buffered events as Chrome trace-event JSON (the
 * "traceEvents" object form), sorted by timestamp, with thread_name
 * metadata from the per-thread tags. Call when the traced threads
 * are quiescent (pools joined); the bench/CLI flush runs at exit.
 */
void writeChromeTrace(std::ostream &os);

/** writeChromeTrace to a file; false + stderr message on failure. */
bool writeChromeTraceFile(const std::string &path);

/** Number of buffered events (test support). */
size_t traceEventCount();

/** Drop all buffered events (test support). */
void resetTrace();

/** Aggregated view of one stage (category) of a trace file. */
struct StageSummary
{
    std::string stage;  //!< category, or name when keyed by name
    uint64_t spans = 0;
    double totalMs = 0.0;
    double maxMs = 0.0;
};

/** Aggregated view of one counter track ("ph":"C") of a trace. */
struct CounterTrackSummary
{
    std::string track;
    uint64_t samples = 0;
    int64_t minValue = 0;
    int64_t maxValue = 0;
    int64_t lastValue = 0; //!< sample with the largest timestamp
};

/** Whole-file aggregation produced by summarizeTrace. */
struct TraceSummary
{
    std::vector<StageSummary> stages; //!< sorted by totalMs, desc
    uint64_t events = 0;
    double wallMs = 0.0; //!< last event end minus first event start
    //! counter tracks, sorted by name (empty without telemetry)
    std::vector<CounterTrackSummary> tracks;
    uint64_t counterSamples = 0;
};

/**
 * Parse a trace file written by writeChromeTrace and aggregate the
 * spans per category (or per name with `by_name`) plus the counter
 * tracks per track name (min/max/last). Only understands this
 * tool's own line-per-event layout — not a general JSON parser. On
 * malformed input returns nullopt-like empty summary and sets
 * *error. A trace holding only counter samples (no spans) is valid.
 */
TraceSummary summarizeTrace(std::istream &is, bool by_name,
                            std::string *error);

} // namespace sieve::obs

#endif // SIEVE_OBS_TRACE_HH
