#include "obs/obs.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace sieve::obs {

namespace {

std::mutex g_mu;
ObsOptions g_options;
bool g_atexit_registered = false;
bool g_ledger_appended = false;

void
flushAtExit()
{
    flushObs();
}

} // namespace

void
configureObs(const ObsOptions &options)
{
    bool start_telemetry = false;
    uint64_t interval_ms = 25;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        if (!options.traceOut.empty()) {
            g_options.traceOut = options.traceOut;
            setTraceEnabled(true);
        }
        if (!options.metricsOut.empty()) {
            g_options.metricsOut = options.metricsOut;
            setMetricsEnabled(true);
        }
        if (!options.ledgerOut.empty())
            g_options.ledgerOut = options.ledgerOut;
        if (options.telemetry) {
            if (g_options.traceOut.empty()) {
                std::fprintf(stderr,
                             "[sieve:obs] --telemetry needs "
                             "--trace-out; sampler stays off\n");
            } else {
                g_options.telemetry = true;
                g_options.telemetryIntervalMs =
                    options.telemetryIntervalMs;
                start_telemetry = true;
                interval_ms = options.telemetryIntervalMs;
            }
        }
        bool active = !g_options.traceOut.empty() ||
                      !g_options.metricsOut.empty() ||
                      !g_options.ledgerOut.empty();
        if (active && !g_atexit_registered) {
            g_atexit_registered = true;
            std::atexit(flushAtExit);
        }
    }
    // Outside the lock: startTelemetry touches the sampler's own
    // locks and must not nest under g_mu (flushObs orders the same).
    if (start_telemetry) {
        TelemetryOptions topts;
        topts.intervalMs = interval_ms;
        startTelemetry(topts);
    }
}

void
configureObsFromEnv()
{
    ObsOptions options;
    if (const char *env = std::getenv("SIEVE_TRACE"))
        options.traceOut = env;
    if (const char *env = std::getenv("SIEVE_METRICS"))
        options.metricsOut = env;
    if (const char *env = std::getenv("SIEVE_LEDGER"))
        options.ledgerOut = env;
    if (const char *env = std::getenv("SIEVE_TELEMETRY"))
        options.telemetry = env[0] != '\0' &&
                            !(env[0] == '0' && env[1] == '\0');
    if (const char *env =
            std::getenv("SIEVE_TELEMETRY_INTERVAL_MS")) {
        long ms = std::strtol(env, nullptr, 10);
        if (ms > 0)
            options.telemetryIntervalMs =
                static_cast<uint64_t>(ms);
    }
    if (!options.traceOut.empty() || !options.metricsOut.empty() ||
        !options.ledgerOut.empty() || options.telemetry)
        configureObs(options);
}

void
flushObs()
{
    // Step 1: stop the sampler (final sweep lands in the trace
    // buffers; sweep count settles for the manifest).
    stopTelemetry();

    ObsOptions options;
    bool append_ledger = false;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        options = g_options;
        if (!g_options.ledgerOut.empty() && !g_ledger_appended) {
            g_ledger_appended = true;
            append_ledger = true;
        }
    }
    // Step 2: metrics (final Stable counters).
    if (!options.metricsOut.empty() &&
        writeMetricsFile(options.metricsOut)) {
        std::fprintf(stderr, "[sieve:obs] wrote metrics to %s\n",
                     options.metricsOut.c_str());
    }
    // Step 3: trace (now holding the last telemetry samples).
    if (!options.traceOut.empty() &&
        writeChromeTraceFile(options.traceOut)) {
        std::fprintf(stderr, "[sieve:obs] wrote trace to %s\n",
                     options.traceOut.c_str());
    }
    // Step 4: ledger, last and once — the manifest must record the
    // same counters the metrics file just exported.
    if (append_ledger) {
        RunManifest manifest = collectRunManifest();
        std::string error;
        if (appendRunLedger(options.ledgerOut, manifest, &error)) {
            std::fprintf(stderr,
                         "[sieve:obs] appended run manifest to %s\n",
                         options.ledgerOut.c_str());
        } else {
            std::fprintf(stderr, "[sieve:obs] %s\n", error.c_str());
        }
    }
}

} // namespace sieve::obs
