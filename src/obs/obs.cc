#include "obs/obs.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::obs {

namespace {

std::mutex g_mu;
ObsOptions g_options;
bool g_atexit_registered = false;

void
flushAtExit()
{
    flushObs();
}

} // namespace

void
configureObs(const ObsOptions &options)
{
    std::lock_guard<std::mutex> lock(g_mu);
    if (!options.traceOut.empty()) {
        g_options.traceOut = options.traceOut;
        setTraceEnabled(true);
    }
    if (!options.metricsOut.empty()) {
        g_options.metricsOut = options.metricsOut;
        setMetricsEnabled(true);
    }
    bool active =
        !g_options.traceOut.empty() || !g_options.metricsOut.empty();
    if (active && !g_atexit_registered) {
        g_atexit_registered = true;
        std::atexit(flushAtExit);
    }
}

void
configureObsFromEnv()
{
    ObsOptions options;
    if (const char *env = std::getenv("SIEVE_TRACE"))
        options.traceOut = env;
    if (const char *env = std::getenv("SIEVE_METRICS"))
        options.metricsOut = env;
    if (!options.traceOut.empty() || !options.metricsOut.empty())
        configureObs(options);
}

void
flushObs()
{
    ObsOptions options;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        options = g_options;
    }
    if (!options.traceOut.empty() &&
        writeChromeTraceFile(options.traceOut)) {
        std::fprintf(stderr, "[sieve:obs] wrote trace to %s\n",
                     options.traceOut.c_str());
    }
    if (!options.metricsOut.empty() &&
        writeMetricsFile(options.metricsOut)) {
        std::fprintf(stderr, "[sieve:obs] wrote metrics to %s\n",
                     options.metricsOut.c_str());
    }
}

} // namespace sieve::obs
