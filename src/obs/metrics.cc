#include "obs/metrics.hh"

#include "obs/percentile.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace sieve::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/**
 * Cell budget per thread shard. A counter takes one cell, a histogram
 * 2 + kBuckets; the whole pipeline registers a few dozen metrics, so
 * 4096 cells (32 KiB per thread) leaves an order of magnitude of
 * headroom. Exceeding it is a programming error caught at
 * registration time.
 */
constexpr size_t kMaxCells = 4096;

/** One thread's private slice of every cell-backed metric. */
struct Shard
{
    std::atomic<uint64_t> cells[kMaxCells] = {};
};

struct GaugeState
{
    std::atomic<int64_t> value{0};
    std::atomic<int64_t> maxValue{0};
};

} // namespace

namespace detail {

struct MetricDef
{
    std::string name;
    MetricValue::Kind kind = MetricValue::Kind::Counter;
    Stability stability = Stability::Volatile;
    size_t cellBase = 0;  //!< counters/histograms
    size_t gaugeIndex = 0;
};

struct Access
{
    static void setCell(Counter &c, size_t cell) { c._cell = cell; }
    static void setIndex(Gauge &g, size_t index) { g._index = index; }
    static void setCells(Histogram &h, size_t cells)
    {
        h._cells = cells;
    }
};

} // namespace detail

namespace {

/**
 * The process-wide registry. Registration and snapshots take the
 * mutex; the metric-update fast path touches only the calling
 * thread's shard.
 */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry *r = new Registry; // never destroyed: handles
        return *r;                         // outlive static teardown
    }

    Counter &
    counter(std::string_view name, Stability stability)
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (auto it = _byName.find(std::string(name));
            it != _byName.end())
            return _counters[it->second.second];
        size_t cell = allocCells(1, name);
        _defs.push_back({std::string(name),
                         MetricValue::Kind::Counter, stability, cell,
                         0});
        _counters.emplace_back();
        detail::Access::setCell(_counters.back(), cell);
        _byName.emplace(std::string(name),
                        std::pair<size_t, size_t>{_defs.size() - 1,
                                                  _counters.size() - 1});
        return _counters.back();
    }

    Gauge &
    gauge(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (auto it = _byName.find(std::string(name));
            it != _byName.end())
            return _gauges[it->second.second];
        _gaugeStates.emplace_back();
        _defs.push_back({std::string(name), MetricValue::Kind::Gauge,
                         Stability::Volatile, 0,
                         _gaugeStates.size() - 1});
        _gauges.emplace_back();
        detail::Access::setIndex(_gauges.back(),
                                 _gaugeStates.size() - 1);
        _byName.emplace(std::string(name),
                        std::pair<size_t, size_t>{_defs.size() - 1,
                                                  _gauges.size() - 1});
        return _gauges.back();
    }

    Histogram &
    histogram(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (auto it = _byName.find(std::string(name));
            it != _byName.end())
            return _histograms[it->second.second];
        size_t cells = allocCells(2 + Histogram::kBuckets, name);
        _defs.push_back({std::string(name),
                         MetricValue::Kind::Histogram,
                         Stability::Volatile, cells, 0});
        _histograms.emplace_back();
        detail::Access::setCells(_histograms.back(), cells);
        _byName.emplace(
            std::string(name),
            std::pair<size_t, size_t>{_defs.size() - 1,
                                      _histograms.size() - 1});
        return _histograms.back();
    }

    Shard &
    localShard()
    {
        thread_local Shard *tls = nullptr;
        if (!tls) {
            auto shard = std::make_shared<Shard>();
            tls = shard.get();
            std::lock_guard<std::mutex> lock(_mu);
            // Shards are retained after thread exit so their tallies
            // survive into the end-of-run snapshot.
            _shards.push_back(std::move(shard));
        }
        return *tls;
    }

    GaugeState &
    gaugeState(size_t index)
    {
        return _gaugeStates[index];
    }

    uint64_t
    mergedCell(size_t cell) const
    {
        std::lock_guard<std::mutex> lock(_mu);
        return mergedCellLocked(cell);
    }

    std::vector<MetricValue>
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(_mu);
        std::vector<MetricValue> out;
        out.reserve(_defs.size());
        for (const auto &def : _defs) {
            MetricValue v;
            v.name = def.name;
            v.kind = def.kind;
            v.stability = def.stability;
            switch (def.kind) {
              case MetricValue::Kind::Counter:
                v.value = mergedCellLocked(def.cellBase);
                break;
              case MetricValue::Kind::Gauge:
                v.value = static_cast<uint64_t>(
                    _gaugeStates[def.gaugeIndex].value.load(
                        std::memory_order_relaxed));
                v.maxValue = _gaugeStates[def.gaugeIndex].maxValue.load(
                    std::memory_order_relaxed);
                break;
              case MetricValue::Kind::Histogram:
                v.count = mergedCellLocked(def.cellBase);
                v.sum = mergedCellLocked(def.cellBase + 1);
                v.buckets.resize(Histogram::kBuckets);
                for (size_t b = 0; b < Histogram::kBuckets; ++b)
                    v.buckets[b] =
                        mergedCellLocked(def.cellBase + 2 + b);
                break;
            }
            out.push_back(std::move(v));
        }
        std::sort(out.begin(), out.end(),
                  [](const MetricValue &a, const MetricValue &b) {
                      return a.name < b.name;
                  });
        return out;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(_mu);
        for (auto &shard : _shards)
            for (auto &cell : shard->cells)
                cell.store(0, std::memory_order_relaxed);
        for (auto &g : _gaugeStates) {
            g.value.store(0, std::memory_order_relaxed);
            g.maxValue.store(0, std::memory_order_relaxed);
        }
    }

  private:
    Registry() = default;

    size_t
    allocCells(size_t n, std::string_view name)
    {
        if (_nextCell + n > kMaxCells) {
            // Registration failure is a build-time sizing bug; obs is
            // below logging, so report directly and trap.
            std::fprintf(stderr,
                         "[sieve:obs] metric cell budget exhausted "
                         "registering '%.*s'\n",
                         static_cast<int>(name.size()), name.data());
            std::abort();
        }
        size_t base = _nextCell;
        _nextCell += n;
        return base;
    }

    uint64_t
    mergedCellLocked(size_t cell) const
    {
        uint64_t total = 0;
        for (const auto &shard : _shards)
            total += shard->cells[cell].load(std::memory_order_relaxed);
        return total;
    }

    mutable std::mutex _mu;
    std::vector<detail::MetricDef> _defs;
    //! name -> (def index, per-kind handle index)
    std::map<std::string, std::pair<size_t, size_t>> _byName;
    std::deque<Counter> _counters;     //!< deque: stable addresses
    std::deque<Gauge> _gauges;
    std::deque<Histogram> _histograms;
    std::deque<GaugeState> _gaugeStates;
    std::vector<std::shared_ptr<Shard>> _shards;
    size_t _nextCell = 0;
};

} // namespace

bool
metricsEnabled()
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool enabled)
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

void
shardAdd(size_t cell, uint64_t delta)
{
    Registry::instance().localShard().cells[cell].fetch_add(
        delta, std::memory_order_relaxed);
}

} // namespace detail

uint64_t
Counter::value() const
{
    return Registry::instance().mergedCell(_cell);
}

void
Gauge::set(int64_t value)
{
    if (!metricsEnabled())
        return;
    GaugeState &g = Registry::instance().gaugeState(_index);
    g.value.store(value, std::memory_order_relaxed);
    int64_t seen = g.maxValue.load(std::memory_order_relaxed);
    while (value > seen &&
           !g.maxValue.compare_exchange_weak(
               seen, value, std::memory_order_relaxed)) {
    }
}

void
Gauge::add(int64_t delta)
{
    if (!metricsEnabled())
        return;
    GaugeState &g = Registry::instance().gaugeState(_index);
    int64_t now =
        g.value.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t seen = g.maxValue.load(std::memory_order_relaxed);
    while (now > seen &&
           !g.maxValue.compare_exchange_weak(
               seen, now, std::memory_order_relaxed)) {
    }
}

int64_t
Gauge::value() const
{
    return Registry::instance()
        .gaugeState(_index)
        .value.load(std::memory_order_relaxed);
}

int64_t
Gauge::maxValue() const
{
    return Registry::instance()
        .gaugeState(_index)
        .maxValue.load(std::memory_order_relaxed);
}

size_t
Histogram::bucketFor(uint64_t value)
{
    if (value == 0)
        return 0;
    return std::min<size_t>(kBuckets - 1,
                            static_cast<size_t>(std::bit_width(value)));
}

uint64_t
Histogram::bucketLowerBound(size_t bucket)
{
    if (bucket == 0)
        return 0;
    return uint64_t{1} << (bucket - 1);
}

uint64_t
Histogram::count() const
{
    return Registry::instance().mergedCell(_cells);
}

uint64_t
Histogram::sum() const
{
    return Registry::instance().mergedCell(_cells + 1);
}

std::vector<uint64_t>
Histogram::buckets() const
{
    std::vector<uint64_t> out(kBuckets);
    for (size_t b = 0; b < kBuckets; ++b)
        out[b] = Registry::instance().mergedCell(_cells + 2 + b);
    return out;
}

Counter &
counter(std::string_view name, Stability stability)
{
    return Registry::instance().counter(name, stability);
}

Gauge &
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(std::string_view name)
{
    return Registry::instance().histogram(name);
}

std::vector<MetricValue>
snapshotMetrics()
{
    return Registry::instance().snapshot();
}

std::map<std::string, uint64_t>
stableCounters()
{
    std::map<std::string, uint64_t> out;
    for (const auto &m : snapshotMetrics()) {
        if (m.kind == MetricValue::Kind::Counter &&
            m.stability == Stability::Stable)
            out.emplace(m.name, m.value);
    }
    return out;
}

namespace {

/** Minimal JSON string escaping for metric names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

template <typename Pred>
void
writeCounterObject(std::ostream &os, const std::vector<MetricValue> &all,
                   const char *indent, Pred pred)
{
    bool first = true;
    for (const auto &m : all) {
        if (m.kind != MetricValue::Kind::Counter || !pred(m))
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << indent << '"' << jsonEscape(m.name) << "\": " << m.value;
    }
    if (!first)
        os << '\n';
}

} // namespace

void
writeMetricsJson(std::ostream &os)
{
    std::vector<MetricValue> all = snapshotMetrics();

    os << "{\n  \"schema\": 1,\n  \"tool\": \"sieve\",\n";
    os << "  \"counters\": {\n";
    writeCounterObject(os, all, "    ", [](const MetricValue &m) {
        return m.stability == Stability::Stable;
    });
    os << "  },\n";

    os << "  \"volatile\": {\n    \"counters\": {\n";
    writeCounterObject(os, all, "      ", [](const MetricValue &m) {
        return m.stability == Stability::Volatile;
    });
    os << "    },\n    \"gauges\": {\n";
    bool first = true;
    for (const auto &m : all) {
        if (m.kind != MetricValue::Kind::Gauge)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "      \"" << jsonEscape(m.name) << "\": {\"last\": "
           << static_cast<int64_t>(m.value) << ", \"max\": "
           << m.maxValue << "}";
    }
    if (!first)
        os << '\n';
    os << "    },\n    \"histograms\": {\n";
    first = true;
    for (const auto &m : all) {
        if (m.kind != MetricValue::Kind::Histogram)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        Quantiles q = summarizeBuckets(m.buckets);
        os << "      \"" << jsonEscape(m.name) << "\": {\"count\": "
           << m.count << ", \"sum\": " << m.sum << ", \"p50\": "
           << q.p50 << ", \"p90\": " << q.p90 << ", \"p95\": "
           << q.p95 << ", \"p99\": " << q.p99 << ", \"buckets\": [";
        bool fb = true;
        for (size_t b = 0; b < m.buckets.size(); ++b) {
            if (m.buckets[b] == 0)
                continue;
            if (!fb)
                os << ", ";
            fb = false;
            os << '[' << Histogram::bucketLowerBound(b) << ", "
               << m.buckets[b] << ']';
        }
        os << "]}";
    }
    if (!first)
        os << '\n';
    os << "    }\n  }\n}\n";
}

void
writeMetricsCsv(std::ostream &os)
{
    os << "metric,kind,stability,value\n";
    for (const auto &m : snapshotMetrics()) {
        const char *stab = m.stability == Stability::Stable
                               ? "stable"
                               : "volatile";
        switch (m.kind) {
          case MetricValue::Kind::Counter:
            os << m.name << ",counter," << stab << ',' << m.value
               << '\n';
            break;
          case MetricValue::Kind::Gauge:
            os << m.name << ".last,gauge," << stab << ','
               << static_cast<int64_t>(m.value) << '\n';
            os << m.name << ".max,gauge," << stab << ',' << m.maxValue
               << '\n';
            break;
          case MetricValue::Kind::Histogram: {
            os << m.name << ".count,histogram," << stab << ','
               << m.count << '\n';
            os << m.name << ".sum,histogram," << stab << ',' << m.sum
               << '\n';
            Quantiles q = summarizeBuckets(m.buckets);
            os << m.name << ".p50,histogram," << stab << ',' << q.p50
               << '\n';
            os << m.name << ".p90,histogram," << stab << ',' << q.p90
               << '\n';
            os << m.name << ".p95,histogram," << stab << ',' << q.p95
               << '\n';
            os << m.name << ".p99,histogram," << stab << ',' << q.p99
               << '\n';
            break;
          }
        }
    }
}

bool
writeMetricsFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "[sieve:obs] cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    if (path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0)
        writeMetricsCsv(out);
    else
        writeMetricsJson(out);
    return static_cast<bool>(out);
}

std::map<std::string, uint64_t>
parseStableCounters(std::istream &is, std::string *error)
{
    std::map<std::string, uint64_t> out;
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        out.clear();
        return out;
    };

    std::string line;
    bool saw_schema = false;
    bool in_counters = false;
    bool closed = false;
    while (std::getline(is, line)) {
        if (line.find("\"schema\": 1") != std::string::npos)
            saw_schema = true;
        if (!in_counters) {
            if (line.find("\"counters\": {") != std::string::npos)
                in_counters = true;
            continue;
        }
        size_t close = line.find('}');
        if (close != std::string::npos) {
            closed = true;
            break;
        }
        // Expected shape:   "name": 123[,]
        size_t q0 = line.find('"');
        if (q0 == std::string::npos)
            return fail("malformed counter line: " + line);
        size_t q1 = line.find('"', q0 + 1);
        size_t colon = line.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos)
            return fail("malformed counter line: " + line);
        std::string name = line.substr(q0 + 1, q1 - q0 - 1);
        errno = 0;
        char *end = nullptr;
        unsigned long long v =
            std::strtoull(line.c_str() + colon + 1, &end, 10);
        if (end == line.c_str() + colon + 1)
            return fail("counter '" + name + "' has no numeric value");
        out[name] = static_cast<uint64_t>(v);
    }
    if (!saw_schema)
        return fail("not a sieve metrics file (missing \"schema\": 1)");
    if (!in_counters || !closed)
        return fail("missing or unterminated \"counters\" object");
    if (error)
        error->clear();
    return out;
}

void
resetMetrics()
{
    Registry::instance().reset();
}

} // namespace sieve::obs
