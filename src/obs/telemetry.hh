/**
 * @file
 * Opt-in background telemetry sampler: a continuous-observation
 * timeline for a run.
 *
 * The metrics registry (obs/metrics.hh) answers "how much work was
 * done"; the span tracer (obs/trace.hh) answers "when did each stage
 * run". Neither shows how the process *evolved* — resident memory,
 * queue depth, cache hit rate over time. The TelemetrySampler closes
 * that gap: a single background thread wakes at a fixed interval,
 * reads every registered probe, and emits one counter-track sample
 * ("ph":"C") per probe into the trace stream, so a Perfetto load of
 * the run shows memory/cache/queue behaviour as counter timelines
 * above the span rows.
 *
 * Determinism contract: the sampler only *reads*. Probes return the
 * current value of a gauge, a derived rate over Stable counters, or
 * a /proc self-observation; samples land exclusively in the trace
 * stream, which is Volatile in its entirety (DESIGN.md §7). Enabling
 * telemetry therefore changes no Stable counter and no byte of suite
 * stdout — the CI telemetry gate enforces both at --jobs 1/4/8.
 *
 * Built-in probes (registered on first start):
 *   process.rss_kb     resident set from /proc/self/statm
 *   process.vm_kb      virtual size from /proc/self/statm
 *   process.data_kb    data+stack segment from /proc/self/statm
 *   pool.queue.depth   the ThreadPool queue-depth gauge
 * Subsystems register derived probes at first use (sim-cache hit
 * rate, tier-pool resident bytes, shard-store bytes at rest) via
 * registerTelemetryProbe — registration from a subsystem keeps the
 * sampler from creating that subsystem's metrics in runs that never
 * touch it, which would perturb the metrics export.
 *
 * Activation: --telemetry [--telemetry-interval-ms N] on every CLI
 * and bench, or SIEVE_TELEMETRY=1 / SIEVE_TELEMETRY_INTERVAL_MS in
 * the environment (obs/obs.hh routes both). Off by default: no
 * thread is started and a registered probe is one map insert.
 */

#ifndef SIEVE_OBS_TELEMETRY_HH
#define SIEVE_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <string>

namespace sieve::obs {

/** Sampler configuration. */
struct TelemetryOptions
{
    /** Wake interval; clamped to >= 1. */
    uint64_t intervalMs = 25;
};

/**
 * Current value of one counter track. Probes must be thread-safe
 * and non-blocking in spirit (they run on the sampler thread at
 * every tick); reading an atomic, a gauge, or a /proc file is fine.
 */
using TelemetryProbe = std::function<int64_t()>;

/**
 * Register (or replace) the probe behind counter track `track`.
 * Callable at any time, including while the sampler runs; the next
 * sweep picks it up. Track names follow the metric naming scheme.
 */
void registerTelemetryProbe(std::string track, TelemetryProbe probe);

/** True while the background sampler thread is running. */
bool telemetryEnabled();

/**
 * Start the background sampler (idempotent). Forces metrics on so
 * gauge/counter-derived probes observe live values; the caller is
 * responsible for having armed the trace stream — without it the
 * emitted samples are dropped at the emit check.
 */
void startTelemetry(const TelemetryOptions &options = {});

/**
 * Stop and join the sampler thread (idempotent). The thread takes
 * one final sweep before exiting so the timeline always ends with a
 * settled sample. flushObs() calls this first — see the flush-order
 * contract in obs/obs.hh.
 */
void stopTelemetry();

/**
 * Take one probe sweep on the calling thread, regardless of whether
 * the sampler runs. Used by tests for deterministic sampling.
 */
void sampleTelemetryNow();

/** Completed probe sweeps since process start (test/ledger support). */
uint64_t telemetrySweeps();

/** Resident set size in KiB from /proc/self/statm (0 on failure). */
int64_t readRssKb();

/**
 * Peak resident set size in KiB (VmHWM from /proc/self/status;
 * falls back to current RSS when unavailable). The run ledger
 * records this as the footprint watermark.
 */
int64_t readPeakRssKb();

} // namespace sieve::obs

#endif // SIEVE_OBS_TELEMETRY_HH
