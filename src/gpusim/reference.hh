/**
 * @file
 * The tick-everything simulator core, retained as the oracle for the
 * event-driven default.
 *
 * This is the pre-event-core implementation preserved verbatim:
 * unordered_map MSHRs, array-of-structs cache ways and warp
 * contexts, a binary heap of outstanding misses, per-call allocation
 * of the memory system and SMs, and a global loop that steps every
 * busy SM at every visited cycle. It shares nothing with the
 * optimized core below the GpuSimConfig level — its own Cache, its
 * own MemorySystem, its own SM — so an old-vs-new diff exercises the
 * entire rewritten stack.
 *
 * Select it with GpuSimConfig::engine = SimEngine::Reference or
 * SIEVE_SIM_ENGINE=reference; CI diffs suite stdout and every Stable
 * counter between the engines at several pool widths.
 */

#ifndef SIEVE_GPUSIM_REFERENCE_HH
#define SIEVE_GPUSIM_REFERENCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gpu/arch_config.hh"
#include "gpusim/cache.hh"
#include "gpusim/dram.hh"
#include "gpusim/sim_core.hh"
#include "trace/columnar.hh"

namespace sieve::gpusim {

struct GpuSimConfig;

namespace reference {

/** Map-based set-associative LRU cache with MSHRs (oracle). */
class Cache
{
  public:
    Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs);

    static Cache fromCapacity(uint64_t capacity_bytes,
                              uint32_t line_bytes, uint32_t assoc,
                              uint32_t num_mshrs);

    CacheOutcome access(uint64_t line, uint64_t now);
    void fill(uint64_t line);
    size_t inflight() const { return _mshrs.size(); }
    const CacheStats &stats() const { return _stats; }
    void reset();

  private:
    struct Way
    {
        uint64_t line = ~0ULL;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint32_t _num_sets;
    uint32_t _assoc;
    uint32_t _num_mshrs;
    std::vector<Way> _ways;                 //!< num_sets x assoc
    std::unordered_map<uint64_t, uint32_t> _mshrs; //!< line -> merges
    CacheStats _stats;
};

/** Sliced L2 + channeled DRAM + atomic pipes over reference::Cache. */
class MemorySystem
{
  public:
    MemorySystem(const gpu::ArchConfig &arch, double machine_fraction);

    uint64_t accessGlobal(uint64_t line, uint32_t bytes, uint64_t now);
    uint64_t atomic(uint64_t line, uint64_t now);

    CacheStats l2Stats() const;
    DramStats dramStats() const;

  private:
    size_t sliceOf(uint64_t line) const;
    size_t channelOf(uint64_t line) const;

    double _l2_latency;
    std::vector<Cache> _slices;
    std::vector<DramModel> _channels;
    std::vector<uint64_t> _atomic_free;
};

/**
 * Run the reference tick loop over a columnar trace and hand the
 * outcome to the shared epilogue. Bit-identical to runEventCore by
 * contract.
 */
SimCoreResult simulateCore(const gpu::ArchConfig &arch,
                           const GpuSimConfig &config,
                           const trace::ColumnarTrace &trace,
                           uint32_t cpsm, uint32_t sim_sms);

} // namespace reference

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_REFERENCE_HH
