#include "gpusim/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::gpusim {

namespace {

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

// SplitMix-style mix so clustered line addresses spread over the
// open-addressed table.
size_t
mshrHash(uint64_t line)
{
    uint64_t h = line;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
}

} // namespace

Cache::Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs)
{
    configure(num_sets, assoc, num_mshrs);
}

Cache
Cache::fromCapacity(uint64_t capacity_bytes, uint32_t line_bytes,
                    uint32_t assoc, uint32_t num_mshrs)
{
    return Cache(setsForCapacity(capacity_bytes, line_bytes, assoc),
                 assoc, num_mshrs);
}

uint32_t
Cache::setsForCapacity(uint64_t capacity_bytes, uint32_t line_bytes,
                       uint32_t assoc)
{
    SIEVE_ASSERT(line_bytes > 0 && assoc > 0, "bad cache geometry");
    uint64_t lines = capacity_bytes / line_bytes;
    uint64_t sets = lines / assoc;
    // Round down to a power of two.
    uint32_t pow2 = 1;
    while (static_cast<uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    return pow2;
}

void
Cache::configure(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs)
{
    SIEVE_ASSERT(isPowerOfTwo(num_sets), "cache sets ", num_sets,
                 " not a power of two");
    SIEVE_ASSERT(assoc > 0, "zero-way cache");
    SIEVE_ASSERT(num_mshrs > 0, "cache without MSHRs");

    _num_sets = num_sets;
    _assoc = assoc;
    _num_mshrs = num_mshrs;

    size_t ways = static_cast<size_t>(num_sets) * assoc;
    if (_lines.size() < ways) {
        _lines.resize(ways);
        _last_use.resize(ways);
        _valid.resize(ways);
    }

    size_t table = 16;
    while (table < static_cast<size_t>(num_mshrs) * 2)
        table *= 2;
    if (_mshr_line.size() < table) {
        _mshr_line.resize(table);
        _mshr_merges.resize(table);
        _mshr_used.resize(table);
    }
    _mshr_mask = table - 1;

    reset();
}

CacheOutcome
Cache::access(uint64_t line, uint64_t now)
{
    ++_stats.accesses;
    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    size_t base = set * _assoc;

    // Branch-free probe: scan the whole set accumulating the match
    // index; a line is resident in at most one way, so "last match"
    // equals "the match".
    uint32_t hit_way = ~0u;
    for (uint32_t w = 0; w < _assoc; ++w) {
        bool match = _valid[base + w] != 0 && _lines[base + w] == line;
        hit_way = match ? w : hit_way;
    }
    if (hit_way != ~0u) {
        _last_use[base + hit_way] = now;
        ++_stats.hits;
        return CacheOutcome::Hit;
    }

    size_t slot = mshrSlot(line);
    if (_mshr_used[slot]) {
        ++_mshr_merges[slot];
        ++_stats.mshrMerges;
        return CacheOutcome::MshrMerge;
    }
    if (_mshr_count >= _num_mshrs) {
        ++_stats.mshrStalls;
        --_stats.accesses; // the access will retry; do not count twice
        return CacheOutcome::MshrFull;
    }
    _mshr_used[slot] = 1;
    _mshr_line[slot] = line;
    _mshr_merges[slot] = 1;
    ++_mshr_count;
    ++_stats.misses;
    return CacheOutcome::Miss;
}

void
Cache::fill(uint64_t line)
{
    mshrErase(line);

    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    size_t base = set * _assoc;

    // Install into the first invalid way, else evict the LRU way
    // (strictly older stamp wins; ties keep the lowest index —
    // identical victim choice to the reference model).
    uint32_t victim = 0;
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (!_valid[base + w]) {
            victim = w;
            break;
        }
        if (_last_use[base + w] < _last_use[base + victim])
            victim = w;
    }
    _valid[base + victim] = 1;
    _lines[base + victim] = line;
    _last_use[base + victim] = 0;
}

size_t
Cache::mshrSlot(uint64_t line) const
{
    size_t slot = mshrHash(line) & _mshr_mask;
    while (_mshr_used[slot] && _mshr_line[slot] != line)
        slot = (slot + 1) & _mshr_mask;
    return slot;
}

void
Cache::mshrErase(uint64_t line)
{
    size_t slot = mshrSlot(line);
    if (!_mshr_used[slot])
        return;
    --_mshr_count;

    // Backward-shift deletion keeps linear-probe chains contiguous
    // without tombstones: walk forward and pull back any entry whose
    // home slot lies outside the gap we would otherwise leave.
    size_t gap = slot;
    size_t probe = slot;
    for (;;) {
        probe = (probe + 1) & _mshr_mask;
        if (!_mshr_used[probe])
            break;
        size_t home = mshrHash(_mshr_line[probe]) & _mshr_mask;
        // Move when `home` is not cyclically inside (gap, probe].
        bool movable = gap <= probe
                           ? (home <= gap || home > probe)
                           : (home <= gap && home > probe);
        if (movable) {
            _mshr_line[gap] = _mshr_line[probe];
            _mshr_merges[gap] = _mshr_merges[probe];
            gap = probe;
        }
    }
    _mshr_used[gap] = 0;
}

void
Cache::reset()
{
    std::fill(_valid.begin(), _valid.end(), uint8_t{0});
    std::fill(_mshr_used.begin(), _mshr_used.end(), uint8_t{0});
    _mshr_count = 0;
    _stats = CacheStats{};
}

} // namespace sieve::gpusim
