#include "gpusim/cache.hh"

#include "common/logging.hh"

namespace sieve::gpusim {

namespace {

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs)
    : _num_sets(num_sets), _assoc(assoc), _num_mshrs(num_mshrs),
      _ways(static_cast<size_t>(num_sets) * assoc)
{
    SIEVE_ASSERT(isPowerOfTwo(num_sets), "cache sets ", num_sets,
                 " not a power of two");
    SIEVE_ASSERT(assoc > 0, "zero-way cache");
    SIEVE_ASSERT(num_mshrs > 0, "cache without MSHRs");
}

Cache
Cache::fromCapacity(uint64_t capacity_bytes, uint32_t line_bytes,
                    uint32_t assoc, uint32_t num_mshrs)
{
    SIEVE_ASSERT(line_bytes > 0 && assoc > 0, "bad cache geometry");
    uint64_t lines = capacity_bytes / line_bytes;
    uint64_t sets = lines / assoc;
    // Round down to a power of two.
    uint32_t pow2 = 1;
    while (static_cast<uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    return Cache(pow2, assoc, num_mshrs);
}

CacheOutcome
Cache::access(uint64_t line, uint64_t now)
{
    ++_stats.accesses;
    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    Way *base = &_ways[set * _assoc];

    for (uint32_t w = 0; w < _assoc; ++w) {
        if (base[w].valid && base[w].line == line) {
            base[w].lastUse = now;
            ++_stats.hits;
            return CacheOutcome::Hit;
        }
    }

    auto it = _mshrs.find(line);
    if (it != _mshrs.end()) {
        ++it->second;
        ++_stats.mshrMerges;
        return CacheOutcome::MshrMerge;
    }
    if (_mshrs.size() >= _num_mshrs) {
        ++_stats.mshrStalls;
        --_stats.accesses; // the access will retry; do not count twice
        return CacheOutcome::MshrFull;
    }
    _mshrs.emplace(line, 1);
    ++_stats.misses;
    return CacheOutcome::Miss;
}

void
Cache::fill(uint64_t line)
{
    _mshrs.erase(line);

    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    Way *base = &_ways[set * _assoc];

    // Install into an invalid way, else evict LRU.
    Way *victim = &base[0];
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->line = line;
    victim->lastUse = 0;
}

void
Cache::reset()
{
    for (auto &way : _ways)
        way = Way{};
    _mshrs.clear();
    _stats = CacheStats{};
}

} // namespace sieve::gpusim
