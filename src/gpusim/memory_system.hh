/**
 * @file
 * The GPU-wide shared memory system of the cycle-level simulator.
 *
 * Modern GPUs split the L2 into address-interleaved slices, each with
 * its own tag array and bandwidth, and stripe DRAM traffic across
 * independent channels. The model here follows that organization:
 * line addresses select an L2 slice and a DRAM channel by
 * interleaving, so hot channels/slices serialize while spread traffic
 * enjoys the aggregate bandwidth — first-order NoC/DRAM contention
 * without modelling the crossbar itself. A serialized atomic pipe
 * per slice handles global atomics.
 *
 * Fills are installed immediately while the data-ready time is
 * returned to the requesting warp ("instant fill, delayed data"):
 * hit-rate behaviour stays faithful without a full event queue.
 */

#ifndef SIEVE_GPUSIM_MEMORY_SYSTEM_HH
#define SIEVE_GPUSIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "gpu/arch_config.hh"
#include "gpusim/cache.hh"
#include "gpusim/dram.hh"

namespace sieve::gpusim {

/** Shared sliced-L2 + multi-channel DRAM + atomic pipes. */
class MemorySystem
{
  public:
    /**
     * @param arch architecture parameters
     * @param machine_fraction fraction of the real machine being
     *        simulated (simulated SMs / total SMs); scales slice
     *        count, capacity, and channel bandwidth so per-SM
     *        pressure matches the full machine
     */
    MemorySystem(const gpu::ArchConfig &arch, double machine_fraction);

    /** An unconfigured system; configure() must run before use. */
    MemorySystem() = default;

    /**
     * (Re)build the sliced L2, DRAM channels, and atomic pipes in
     * place for a new kernel invocation. Slice/channel storage grows
     * once to the largest geometry seen and is reused afterwards, so
     * pooled owners perform no steady-state allocation.
     */
    void configure(const gpu::ArchConfig &arch,
                   double machine_fraction);

    /**
     * Service an L1 miss for a line of `bytes` at cycle `now`.
     * @return the cycle the data is available at the SM.
     */
    uint64_t accessGlobal(uint64_t line, uint32_t bytes, uint64_t now);

    /**
     * Execute a global atomic: always reaches its L2 slice,
     * serialized through the slice's atomic pipe.
     * @return the cycle the result is available.
     */
    uint64_t atomic(uint64_t line, uint64_t now);

    /** Aggregated L2 statistics across slices. */
    CacheStats l2Stats() const;

    /** Aggregated DRAM statistics across channels. */
    DramStats dramStats() const;

    size_t numSlices() const { return _n_slices; }
    size_t numChannels() const { return _n_channels; }

    void reset();

  private:
    size_t sliceOf(uint64_t line) const;
    size_t channelOf(uint64_t line) const;

    double _l2_latency = 0.0;
    // Grow-only pools; the first _n_slices / _n_channels entries are
    // active for the current configuration.
    std::vector<Cache> _slices;
    std::vector<DramModel> _channels;
    std::vector<uint64_t> _atomic_free; //!< per-slice atomic pipe
    size_t _n_slices = 0;
    size_t _n_channels = 0;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_MEMORY_SYSTEM_HH
