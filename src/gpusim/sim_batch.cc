#include "gpusim/sim_batch.hh"

#include <algorithm>
#include <chrono>

#include "gpusim/sim_core.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::gpusim {

double
BatchSimResult::serialSeconds() const
{
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.wallSeconds;
    return sum;
}

double
BatchSimResult::criticalPathSeconds() const
{
    double longest = 0.0;
    for (const auto &r : results)
        longest = std::max(longest, r.wallSeconds);
    return longest;
}

namespace {

BatchSimResult
runBatch(size_t n, ThreadPool &pool,
         const std::function<KernelSimResult(size_t)> &simulateOne)
{
    static obs::Counter &c_batches = obs::counter("gpusim.batches");
    static obs::Counter &c_traces =
        obs::counter("gpusim.batch.traces");
    // Workspace growth during a batch is Volatile: it depends on
    // which pool worker drew which trace. A warmed suite keeps it at
    // zero — the pooled-arena contract (see gpusim/sim_core.hh).
    static obs::Counter &c_arena_growth = obs::counter(
        "gpusim.batch.arena_growth", obs::Stability::Volatile);
    c_batches.add();
    c_traces.add(n);
    obs::Span span("gpusim", "batch", "traces=" + std::to_string(n));

    uint64_t growth_before = simArenaGrowthEvents();
    BatchSimResult batch;
    auto begin = std::chrono::steady_clock::now();
    batch.results = parallelMap(pool, n, simulateOne);
    batch.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - begin)
            .count();
    batch.uniqueTraces = batch.results.size();
    c_arena_growth.add(simArenaGrowthEvents() - growth_before);
    return batch;
}

/** runBatch through a cache, attributing the dedup delta to us. */
BatchSimResult
runBatchCached(const SimCache &cache, size_t n, ThreadPool &pool,
               const std::function<KernelSimResult(size_t)> &simulateOne)
{
    SimCacheStats before = cache.stats();
    BatchSimResult batch = runBatch(n, pool, simulateOne);
    SimCacheStats after = cache.stats();
    batch.uniqueTraces = after.unique - before.unique;
    batch.cacheHits = after.hits - before.hits;
    return batch;
}

} // namespace

BatchSimResult
simulateBatch(const GpuSimulator &simulator,
              const std::vector<trace::KernelTrace> &traces,
              ThreadPool &pool)
{
    return runBatch(traces.size(), pool, [&](size_t i) {
        return simulator.simulate(traces[i]);
    });
}

BatchSimResult
simulateTraceFiles(const GpuSimulator &simulator,
                   const std::vector<std::string> &paths,
                   ThreadPool &pool)
{
    return runBatch(paths.size(), pool, [&](size_t i) {
        return simulator.simulate(trace::readTraceFile(paths[i]));
    });
}

BatchSimResult
simulateBatchCached(const SimCache &cache,
                    const std::vector<trace::KernelTrace> &traces,
                    ThreadPool &pool)
{
    return runBatchCached(cache, traces.size(), pool, [&](size_t i) {
        return cache.simulate(traces[i]);
    });
}

BatchSimResult
simulateTraceFilesCached(const SimCache &cache,
                         const std::vector<std::string> &paths,
                         ThreadPool &pool)
{
    return runBatchCached(cache, paths.size(), pool, [&](size_t i) {
        return cache.simulate(trace::readTraceFile(paths[i]));
    });
}

namespace {

/** Pin every handle serially, in input order (see header). */
std::vector<trace::TraceHandle::Pin>
pinAll(const std::vector<trace::TraceHandle> &handles)
{
    std::vector<trace::TraceHandle::Pin> pins;
    pins.reserve(handles.size());
    for (const trace::TraceHandle &handle : handles)
        pins.push_back(handle.pin());
    return pins;
}

} // namespace

BatchSimResult
simulateHandles(const GpuSimulator &simulator,
                const std::vector<trace::TraceHandle> &handles,
                ThreadPool &pool)
{
    std::vector<trace::TraceHandle::Pin> pins = pinAll(handles);
    return runBatch(pins.size(), pool, [&](size_t i) {
        return simulator.simulate(*pins[i]);
    });
}

BatchSimResult
simulateHandlesCached(const SimCache &cache,
                      const std::vector<trace::TraceHandle> &handles,
                      ThreadPool &pool)
{
    std::vector<trace::TraceHandle::Pin> pins = pinAll(handles);
    return runBatchCached(cache, pins.size(), pool, [&](size_t i) {
        return cache.simulate(*pins[i]);
    });
}

size_t
IsolatedBatchSimResult::numSimulated() const
{
    size_t n = 0;
    for (const auto &r : results)
        n += r.has_value();
    return n;
}

IsolatedBatchSimResult
simulateTraceFilesIsolated(const GpuSimulator &simulator,
                           const std::vector<std::string> &paths,
                           ThreadPool &pool)
{
    static obs::Counter &c_batches = obs::counter("gpusim.batches");
    static obs::Counter &c_traces =
        obs::counter("gpusim.batch.traces");
    c_batches.add();
    c_traces.add(paths.size());
    obs::Span span("gpusim", "batch-isolated",
                   "traces=" + std::to_string(paths.size()));

    IsolatedBatchSimResult out;
    auto begin = std::chrono::steady_clock::now();
    auto attempts = parallelMap(
        pool, paths.size(),
        [&](size_t i) -> Expected<KernelSimResult> {
            auto kt = trace::tryReadTraceFile(paths[i]);
            if (!kt)
                return kt.error();
            try {
                return simulator.simulate(kt.value());
            } catch (const std::exception &ex) {
                return ingestError(ErrorKind::Sim, ex.what(),
                                   paths[i]);
            }
        });
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count();

    out.results.reserve(paths.size());
    for (size_t i = 0; i < paths.size(); ++i) {
        if (attempts[i].ok()) {
            out.results.emplace_back(std::move(attempts[i]).value());
        } else {
            out.quarantine.add(i, paths[i], attempts[i].error());
            out.results.emplace_back(std::nullopt);
        }
    }
    return out;
}

} // namespace sieve::gpusim
