/**
 * @file
 * Streaming multiprocessor model: resident CTAs, per-warp program
 * state, register scoreboards, warp schedulers with per-pipe issue
 * throughput, an L1 data cache, and MSHR-bounded outstanding misses.
 *
 * This is the event-driven core. Warp state lives in
 * structure-of-arrays blocks carved from a caller-owned Arena per CTA
 * wave, outstanding misses live in a bucketed timing wheel, and every
 * step() reports the SM's next wake-up time so the scheduler can skip
 * it entirely while it is stalled. Issue semantics are bit-identical
 * to the tick-everything reference model (`gpusim::reference`):
 *
 *  - step(now, tick) is only ever called at the same visited cycles
 *    (`now` values) at which the reference would have stepped a busy
 *    SM, identified by a global visited-cycle counter (`tick`).
 *    Per-pipe issue tokens refill once per visited cycle in the
 *    reference, so the event core replays the owed `tick` deltas
 *    sequentially before issuing — replay is exact in floating point
 *    because each refill saturates at the cap by assignment (a
 *    closed-form multiply would not be bit-exact).
 *  - A warp's earliest issue time (max of branch stall and its two
 *    source-scoreboard release times) only changes when that warp
 *    itself issues, so it is cached per warp (`hint`) and reused both
 *    to skip blocked warps during scheduling and to compute the SM
 *    wake-up time without a second pass. Pipe-token stalls are
 *    per-cycle volatile (tokens refill next cycle) and pin the hint
 *    to now + 1; a warp blocked only by a full MSHR table cannot
 *    issue before the earliest outstanding miss retires, so its hint
 *    is the wheel's next ready time — while the wheel is full no new
 *    miss can be pushed, so that bound stays valid until the SM is
 *    stepped again.
 *  - The reference's next-event scan returns now + 1 whenever any
 *    scoreboard-ready warp exists, even one that is structurally
 *    blocked for hundreds of cycles — which makes the global
 *    visited-cycle chain dense there. A failed step() therefore
 *    reports that condition (`StepOutcome::dense`) separately from
 *    the SM's true wake-up time: the driver replays the reference's
 *    now + 1 chain (preserving byte-identity of the visited-cycle
 *    count that keys token refills) without stepping the SM, whose
 *    probes would all fail until the wake-up time arrives anyway.
 *  - The round-robin cursor walk, scheduler partitioning, and the
 *    order of memory-system calls are preserved verbatim, so the
 *    shared L2/DRAM state sees the identical access sequence.
 */

#ifndef SIEVE_GPUSIM_SM_HH
#define SIEVE_GPUSIM_SM_HH

#include <cstdint>

#include "common/arena.hh"
#include "gpu/arch_config.hh"
#include "gpusim/cache.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/timing_wheel.hh"
#include "trace/columnar.hh"

namespace sieve::gpusim {

/** Per-SM statistics. */
struct SmStats
{
    uint64_t warpInstructions = 0;
    uint64_t divergenceReplays = 0; //!< extra issues for split paths
    uint64_t issueCyclesUsed = 0;
    uint64_t ctasCompleted = 0;
};

/** One simulated streaming multiprocessor (event-driven). */
class StreamingMultiprocessor
{
  public:
    /** Result of stepping one visited cycle. */
    struct StepOutcome
    {
        bool issued = false;
        /**
         * True when some live warp was scoreboard-ready but blocked
         * on a pipe token or a full MSHR table: the reference's
         * nextEventAfter(now) returns now + 1 for as long as that
         * holds, so the driver must advance the visited-cycle chain
         * one cycle at a time (without re-stepping this SM before
         * `nextEvent`). Only meaningful when `issued` is false.
         */
        bool dense = false;
        /**
         * Earliest future cycle at which this SM could issue again;
         * only meaningful when `issued` is false. When `dense` is
         * false this matches the reference model's
         * nextEventAfter(now) exactly.
         */
        uint64_t nextEvent = 0;
    };

    StreamingMultiprocessor() = default;

    /**
     * (Re)bind to an architecture and shared memory system for one
     * kernel invocation. Cache and wheel storage is retained across
     * calls; all simulation state resets.
     */
    void configure(const gpu::ArchConfig *arch, MemorySystem *memsys);

    /**
     * Start a CTA wave at global visited-cycle counter `tick`:
     * carve structure-of-arrays warp state for up to `warp_capacity`
     * warps out of `arena` (whose storage must stay valid until
     * clearResidency()) and arm the lazy token-refill clock so the
     * first step of the wave replays exactly one refill, as the
     * reference does.
     */
    void beginWave(Arena &arena, size_t warp_capacity, uint64_t tick);

    /**
     * Place a decoded CTA's warps on this SM. The instruction spans
     * must stay valid until clearResidency(). @pre capacity left
     */
    void assignCta(const trace::DecodedWarp *warps, size_t count);

    /**
     * Drop completed residency between CTA waves (caches and
     * statistics persist). @pre !busy()
     */
    void clearResidency();

    /**
     * Advance one visited cycle: each scheduler issues at most one
     * warp instruction, subject to scoreboard, pipe-throughput, and
     * MSHR constraints. `tick` is the global count of visited cycles;
     * owed token refills since the last step replay first.
     */
    StepOutcome step(uint64_t now, uint64_t tick);

    /** Resident CTA count. */
    size_t residentCtas() const { return _resident_ctas; }

    /** True while any resident warp has instructions left. */
    bool busy() const { return _active_warps > 0; }

    const SmStats &stats() const { return _stats; }
    const CacheStats &l1Stats() const { return _l1.stats(); }

  private:
    bool tryIssue(size_t idx, uint64_t now);

    const gpu::ArchConfig *_arch = nullptr;
    MemorySystem *_memsys = nullptr;
    Cache _l1;
    TimingWheel _inflight_misses;

    // Warp state, structure-of-arrays, arena-backed per wave.
    const trace::SassInstruction **_insts = nullptr;
    uint64_t *_inst_count = nullptr;
    uint64_t *_pc = nullptr;
    uint64_t *_reg_ready = nullptr; //!< 32 per warp
    uint64_t *_stall_until = nullptr;
    uint64_t *_hint = nullptr; //!< cached earliest-issue bound
    uint32_t *_diverged_for = nullptr;
    uint8_t *_flags = nullptr; //!< bit 0 done, bit 1 replay pending
    size_t _capacity = 0;
    size_t _count = 0;

    size_t _resident_ctas = 0;
    size_t _active_warps = 0;
    uint32_t _rr_cursor = 0; //!< round-robin scheduling cursor
    bool _structural_stall = false; //!< see StepOutcome::dense

    // Per-cycle issue budgets (token accumulators for sub-1/cycle
    // throughputs) and the lazy-refill clock.
    double _fp32_tokens = 0.0;
    double _sfu_tokens = 0.0;
    double _mem_tokens = 0.0;
    double _shared_tokens = 0.0;
    double _fp32_rate = 0.0;
    double _sfu_rate = 0.0;
    double _fp32_cap = 0.0;
    double _sfu_cap = 0.0;
    uint64_t _last_tick = 0;

    SmStats _stats;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_SM_HH
