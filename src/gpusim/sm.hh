/**
 * @file
 * Streaming multiprocessor model: resident CTAs, per-warp program
 * state, register scoreboards, warp schedulers with per-pipe issue
 * throughput, an L1 data cache, and MSHR-bounded outstanding misses.
 */

#ifndef SIEVE_GPUSIM_SM_HH
#define SIEVE_GPUSIM_SM_HH

#include <cstdint>
#include <vector>

#include "gpu/arch_config.hh"
#include "gpusim/cache.hh"
#include "gpusim/memory_system.hh"
#include "trace/columnar.hh"

namespace sieve::gpusim {

/** Per-SM statistics. */
struct SmStats
{
    uint64_t warpInstructions = 0;
    uint64_t divergenceReplays = 0; //!< extra issues for split paths
    uint64_t issueCyclesUsed = 0;
    uint64_t ctasCompleted = 0;
};

/** One simulated streaming multiprocessor. */
class StreamingMultiprocessor
{
  public:
    /**
     * @param arch architecture parameters
     * @param memsys the shared L2/DRAM system (not owned)
     */
    StreamingMultiprocessor(const gpu::ArchConfig &arch,
                            MemorySystem *memsys);

    /** Resident CTA count. */
    size_t residentCtas() const { return _resident_ctas; }

    /** True while any resident warp has instructions left. */
    bool busy() const { return _active_warps > 0; }

    /**
     * Place a decoded CTA's warps on this SM. The instruction spans
     * must stay valid until clearResidency() (they normally live in
     * the caller's DecodeArena). @pre there is a free slot
     */
    void assignCta(const trace::DecodedWarp *warps, size_t count);

    /**
     * Drop completed residency between CTA waves (caches and
     * statistics persist). @pre !busy()
     */
    void clearResidency();

    /**
     * Advance one cycle: each scheduler issues at most one warp
     * instruction, subject to scoreboard, pipe-throughput, and MSHR
     * constraints.
     * @return true if at least one instruction issued
     */
    bool step(uint64_t now);

    /**
     * Earliest future cycle at which any stalled warp could issue
     * (for fast-forwarding idle stretches). Returns now + 1 when
     * nothing better is known.
     */
    uint64_t nextEventAfter(uint64_t now) const;

    const SmStats &stats() const { return _stats; }
    const CacheStats &l1Stats() const { return _l1.stats(); }

  private:
    struct WarpContext
    {
        const trace::SassInstruction *insts = nullptr;
        size_t instCount = 0;
        size_t pc = 0;
        uint64_t regReady[32] = {};
        uint64_t stallUntil = 0;
        /** Instructions left under divergence serialization. */
        uint32_t divergedFor = 0;
        /** Replay pass pending for the current instruction. */
        bool replayPending = false;
        bool done = true;
    };

    bool tryIssue(WarpContext &warp, uint64_t now);
    void retireExpiredMisses(uint64_t now);

    const gpu::ArchConfig &_arch;
    MemorySystem *_memsys;
    Cache _l1;
    std::vector<WarpContext> _warps;
    std::vector<uint64_t> _inflight_misses; //!< min-heap of ready times
    size_t _resident_ctas = 0;
    size_t _active_warps = 0;
    uint32_t _rr_cursor = 0; //!< round-robin scheduling cursor

    // Per-cycle issue budgets (token accumulators for sub-1/cycle
    // throughputs).
    double _fp32_tokens = 0.0;
    double _sfu_tokens = 0.0;
    double _mem_tokens = 0.0;
    double _shared_tokens = 0.0;
    uint64_t _token_cycle = ~0ULL;

    SmStats _stats;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_SM_HH
