/**
 * @file
 * Concurrent simulation of independent kernel traces.
 *
 * The paper's §V-G observation — each Sieve representative is an
 * independent trace file, so detailed simulation "parallelizes
 * trivially" (serial time = sum of per-trace times, parallel time ≈
 * longest trace) — made concrete: fan a batch of traces out over the
 * common thread pool and *measure* the batch wall time instead of
 * modelling it. Results come back in input order and are identical
 * to serial simulation (the simulator is const/thread-compatible and
 * seeds nothing from scheduling).
 */

#ifndef SIEVE_GPUSIM_SIM_BATCH_HH
#define SIEVE_GPUSIM_SIM_BATCH_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/quarantine.hh"
#include "common/thread_pool.hh"
#include "gpusim/gpu_simulator.hh"
#include "gpusim/sim_cache.hh"
#include "trace/sass_trace.hh"
#include "trace/tier.hh"

namespace sieve::gpusim {

/** Outcome of simulating a batch of traces. */
struct BatchSimResult
{
    /** Per-trace results, in input order. */
    std::vector<KernelSimResult> results;

    /** Measured wall-clock seconds for the whole batch. */
    double wallSeconds = 0.0;

    /**
     * Distinct traces actually simulated. Equals results.size() for
     * the uncached entry points; for the *Cached variants it is the
     * batch's contribution to the cache's unique count — the dedup
     * win is results.size() / uniqueTraces.
     */
    size_t uniqueTraces = 0;

    /** Lookups this batch served from the cache (0 when uncached). */
    size_t cacheHits = 0;

    /** Sum of per-trace simulation times (the serial-cost model). */
    double serialSeconds() const;

    /**
     * Longest single trace (the paper's modeled parallel-time lower
     * bound; the measured `wallSeconds` of a parallel batch can only
     * approach this from above).
     */
    double criticalPathSeconds() const;
};

/**
 * Simulate every trace in the batch, fanning out over `pool` and
 * measuring the end-to-end wall time. With a one-worker pool this
 * degrades to (and measures) the serial pass.
 */
BatchSimResult simulateBatch(
    const GpuSimulator &simulator,
    const std::vector<trace::KernelTrace> &traces, ThreadPool &pool);

/**
 * Trace-file variant: each worker reads its trace file back from
 * disk and simulates it, mirroring the paper's farm-out-one-per-core
 * deployment where the simulator processes are fed files. Paths are
 * simulated in input order.
 */
BatchSimResult simulateTraceFiles(
    const GpuSimulator &simulator,
    const std::vector<std::string> &paths, ThreadPool &pool);

/**
 * Memoized batch simulation: duplicate traces (by content digest) are
 * simulated once and the result fanned out to every duplicate slot.
 * Per-trace results are byte-identical to the uncached entry points
 * except for the duplicates' `wallSeconds`, which reflect the single
 * real simulation. The batch's dedup outcome is reported in
 * `uniqueTraces` / `cacheHits`.
 */
BatchSimResult simulateBatchCached(
    const SimCache &cache,
    const std::vector<trace::KernelTrace> &traces, ThreadPool &pool);

/** Trace-file variant of the memoized batch. */
BatchSimResult simulateTraceFilesCached(
    const SimCache &cache, const std::vector<std::string> &paths,
    ThreadPool &pool);

/**
 * Tier-aware batch: simulate the traces behind a set of TraceHandles
 * (see trace/tier.hh). Handles are pinned *serially in input order*
 * before the fan-out — so the rehydration sequence (and therefore
 * the Stable trace.* counters) is a pure function of the input,
 * independent of --jobs — and unpinned when the batch completes.
 */
BatchSimResult simulateHandles(
    const GpuSimulator &simulator,
    const std::vector<trace::TraceHandle> &handles, ThreadPool &pool);

/** Memoized variant of simulateHandles(). */
BatchSimResult simulateHandlesCached(
    const SimCache &cache,
    const std::vector<trace::TraceHandle> &handles, ThreadPool &pool);

/** Outcome of a failure-isolated trace-file batch. */
struct IsolatedBatchSimResult
{
    /** Per-path results in input order; nullopt = quarantined. */
    std::vector<std::optional<KernelSimResult>> results;
    QuarantineReport quarantine;

    /** Measured wall-clock seconds for the whole batch. */
    double wallSeconds = 0.0;

    /** Paths that simulated successfully. */
    size_t numSimulated() const;
};

/**
 * Failure-isolated simulateTraceFiles(): each trace file is read
 * through the recoverable parser, and an unreadable, malformed, or
 * invalid file is quarantined (with its structured error and path in
 * the report) instead of aborting, while every other trace's result
 * stays byte-identical to the plain batch.
 */
IsolatedBatchSimResult simulateTraceFilesIsolated(
    const GpuSimulator &simulator,
    const std::vector<std::string> &paths, ThreadPool &pool);

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_SIM_BATCH_HH
