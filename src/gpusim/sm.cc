#include "gpusim/sm.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace sieve::gpusim {

namespace {

constexpr uint32_t kLineBytes = 128;
constexpr uint32_t kL1Assoc = 8;
constexpr uint32_t kL1Mshrs = 32;

// Pipeline latencies (cycles) per instruction class.
constexpr uint64_t kAluLatency = 4;
constexpr uint64_t kFmaLatency = 4;
constexpr uint64_t kSfuLatency = 16;
constexpr uint64_t kDfmaLatency = 48;
constexpr uint64_t kSharedLatency = 24;
constexpr uint64_t kL1HitLatency = 32;
constexpr uint64_t kBranchLatency = 2;
// Instructions serialized after a divergent branch (approximate
// distance to the reconvergence point).
constexpr uint32_t kDivergenceWindow = 12;

constexpr uint8_t kDone = 1;
constexpr uint8_t kReplayPending = 2;

} // namespace

void
StreamingMultiprocessor::configure(const gpu::ArchConfig *arch,
                                   MemorySystem *memsys)
{
    SIEVE_ASSERT(arch != nullptr, "SM without an architecture");
    SIEVE_ASSERT(memsys != nullptr, "SM without a memory system");
    _arch = arch;
    _memsys = memsys;
    _l1.configure(Cache::setsForCapacity(arch->l1SizeBytes, kLineBytes,
                                         kL1Assoc),
                  kL1Assoc, kL1Mshrs);
    _inflight_misses.clear();

    _capacity = 0;
    _count = 0;
    _resident_ctas = 0;
    _active_warps = 0;
    _rr_cursor = 0;

    // Same expressions the reference evaluates on every refill; the
    // values are bitwise equal because the arithmetic is identical.
    _fp32_rate = static_cast<double>(arch->fp32LanesPerSm) /
                 arch->warpSize;
    _sfu_rate = static_cast<double>(arch->sfuLanesPerSm) /
                arch->warpSize;
    _fp32_cap = 2.0 * _fp32_rate + 1.0;
    _sfu_cap = 2.0 * _sfu_rate + 1.0;
    _fp32_tokens = 0.0;
    _sfu_tokens = 0.0;
    _mem_tokens = 0.0;
    _shared_tokens = 0.0;
    _last_tick = 0;

    _stats = SmStats{};
}

void
StreamingMultiprocessor::beginWave(Arena &arena, size_t warp_capacity,
                                   uint64_t tick)
{
    SIEVE_ASSERT(_count == 0 && _active_warps == 0,
                 "beginWave with residency in place");
    _capacity = warp_capacity;
    _insts = arena.alloc<const trace::SassInstruction *>(warp_capacity);
    _inst_count = arena.alloc<uint64_t>(warp_capacity);
    _pc = arena.alloc<uint64_t>(warp_capacity);
    _reg_ready = arena.alloc<uint64_t>(warp_capacity * 32);
    _stall_until = arena.alloc<uint64_t>(warp_capacity);
    _hint = arena.alloc<uint64_t>(warp_capacity);
    _diverged_for = arena.alloc<uint32_t>(warp_capacity);
    _flags = arena.alloc<uint8_t>(warp_capacity);
    // The reference refills tokens once at the first visited cycle of
    // the wave (its per-cycle guard fires on the new `now`); arm the
    // lazy clock one tick back so exactly one refill replays then.
    _last_tick = tick;
}

void
StreamingMultiprocessor::assignCta(const trace::DecodedWarp *warps,
                                   size_t count)
{
    SIEVE_ASSERT(warps != nullptr || count == 0, "null CTA");
    SIEVE_ASSERT(_count + count <= _capacity,
                 "CTA overflows the wave's warp capacity");
    for (size_t w = 0; w < count; ++w) {
        size_t idx = _count++;
        _insts[idx] = warps[w].insts;
        _inst_count[idx] = warps[w].count;
        _pc[idx] = 0;
        std::memset(_reg_ready + idx * 32, 0, 32 * sizeof(uint64_t));
        _stall_until[idx] = 0;
        _hint[idx] = 0;
        _diverged_for[idx] = 0;
        if (warps[w].count == 0) {
            _flags[idx] = kDone;
        } else {
            _flags[idx] = 0;
            ++_active_warps;
        }
    }
    ++_resident_ctas;
}

void
StreamingMultiprocessor::clearResidency()
{
    SIEVE_ASSERT(_active_warps == 0,
                 "clearing residency with warps in flight");
    _stats.ctasCompleted += _resident_ctas;
    _resident_ctas = 0;
    _count = 0;
    _capacity = 0;
    _rr_cursor = 0;
    _inflight_misses.clear();
}

bool
StreamingMultiprocessor::tryIssue(size_t idx, uint64_t now)
{
    using trace::Opcode;

    uint64_t *reg_ready = _reg_ready + idx * 32;
    const trace::SassInstruction &inst = _insts[idx][_pc[idx]];

    // Scoreboard: the branch stall and both sources must be ready.
    // This bound is stable until the warp itself issues, so cache it
    // for the scheduler's skip scan and the SM wake-up computation.
    uint64_t blocked = std::max({_stall_until[idx],
                                 reg_ready[inst.srcReg0],
                                 reg_ready[inst.srcReg1]});
    if (blocked > now) {
        _hint[idx] = blocked;
        return false;
    }

    // Per-pipe throughput tokens. Token stalls are per-cycle volatile
    // (tokens refill next cycle), so the hint pins to now + 1. Either
    // way the warp is scoreboard-ready, which makes the reference's
    // next-event scan return now + 1 — record that for
    // StepOutcome::dense.
    switch (inst.opcode) {
      case Opcode::FFma:
      case Opcode::DFma:
        if (_fp32_tokens < 1.0) {
            _hint[idx] = now + 1;
            _structural_stall = true;
            return false;
        }
        break;
      case Opcode::Mufu:
        if (_sfu_tokens < 1.0) {
            _hint[idx] = now + 1;
            _structural_stall = true;
            return false;
        }
        break;
      case Opcode::Lds:
      case Opcode::Sts:
        if (_shared_tokens < 1.0) {
            _hint[idx] = now + 1;
            _structural_stall = true;
            return false;
        }
        break;
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::Ldl:
      case Opcode::Stl:
      case Opcode::Atom:
        if (_mem_tokens < 1.0) {
            _hint[idx] = now + 1;
            _structural_stall = true;
            return false;
        }
        if (_inflight_misses.size() >= kL1Mshrs) {
            // Every MSHR is occupied and no new miss can be pushed
            // while that holds, so the earliest outstanding retire
            // time is a sound lower bound on this warp's next issue —
            // the SM sleeps through the stall instead of re-probing
            // every cycle.
            _hint[idx] = _inflight_misses.nextReady();
            _structural_stall = true;
            return false;
        }
        break;
      default:
        break;
    }

    // Issue.
    uint64_t ready = now;
    switch (inst.opcode) {
      case Opcode::IAdd:
        ready = now + kAluLatency;
        break;
      case Opcode::FFma:
        _fp32_tokens -= 1.0;
        ready = now + kFmaLatency;
        break;
      case Opcode::DFma:
        _fp32_tokens -= 1.0;
        ready = now + kDfmaLatency;
        break;
      case Opcode::Mufu:
        _sfu_tokens -= 1.0;
        ready = now + kSfuLatency;
        break;
      case Opcode::Lds:
      case Opcode::Sts:
        _shared_tokens -= 1.0;
        ready = now + kSharedLatency;
        break;
      case Opcode::Bra:
        ready = now + kBranchLatency;
        _stall_until[idx] = ready;
        if (inst.isDivergentBranch()) {
            // SIMT divergence: until reconvergence (approximated as
            // the next basic block), the warp walks both paths
            // serially — every instruction costs an extra issue slot.
            _diverged_for[idx] = kDivergenceWindow;
        }
        break;
      case Opcode::Exit:
        _flags[idx] |= kDone;
        SIEVE_ASSERT(_active_warps > 0, "warp underflow");
        --_active_warps;
        break;
      case Opcode::Ldg:
      case Opcode::Ldl:
      case Opcode::Stl: {
        _mem_tokens -= 1.0;
        CacheOutcome outcome = _l1.access(inst.lineAddress, now);
        if (outcome == CacheOutcome::Hit) {
            ready = now + kL1HitLatency;
        } else {
            _l1.fill(inst.lineAddress);
            uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                             _arch->sectorBytes;
            ready = _memsys->accessGlobal(inst.lineAddress,
                                          std::max(bytes, 32u), now);
            _inflight_misses.push(ready);
        }
        break;
      }
      case Opcode::Stg: {
        _mem_tokens -= 1.0;
        // Write-through, fire-and-forget: consumes bandwidth but
        // does not block the warp.
        uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                         _arch->sectorBytes;
        _memsys->accessGlobal(inst.lineAddress, std::max(bytes, 32u),
                              now);
        ready = now;
        break;
      }
      case Opcode::Atom: {
        _mem_tokens -= 1.0;
        ready = _memsys->atomic(inst.lineAddress, now);
        _inflight_misses.push(ready);
        break;
      }
    }

    if (inst.destReg != 0)
        reg_ready[inst.destReg] = ready;

    // The warp's cached issue bound is stale after any issue — the
    // next probe recomputes it from the next instruction's sources.
    _hint[idx] = 0;

    if (_diverged_for[idx] > 0 && inst.opcode != Opcode::Bra) {
        // SIMT path serialization: each instruction in the divergent
        // region issues twice (once per path), consuming a second
        // scheduler slot before the warp's pc advances.
        if (!(_flags[idx] & kReplayPending)) {
            _flags[idx] |= kReplayPending;
            ++_stats.divergenceReplays;
            return true; // slot consumed; pc stays for the replay
        }
        _flags[idx] &= static_cast<uint8_t>(~kReplayPending);
        --_diverged_for[idx];
    }

    ++_pc[idx];
    ++_stats.warpInstructions;
    if (!(_flags[idx] & kDone) && _pc[idx] >= _inst_count[idx]) {
        _flags[idx] |= kDone;
        SIEVE_ASSERT(_active_warps > 0, "warp underflow");
        --_active_warps;
    }
    return true;
}

StreamingMultiprocessor::StepOutcome
StreamingMultiprocessor::step(uint64_t now, uint64_t tick)
{
    SIEVE_ASSERT(_active_warps > 0, "stepping an idle SM");

    _inflight_misses.advanceTo(now);

    // Replay the per-visited-cycle token refills owed since the last
    // step. Each iteration is the reference's refill verbatim; the
    // loop ends early once every accumulator sits exactly at its cap,
    // after which further refills are no-ops. Replay stays bounded:
    // the caps are at most two refills away.
    uint64_t owed = tick - _last_tick;
    _last_tick = tick;
    for (uint64_t i = 0; i < owed; ++i) {
        _fp32_tokens = std::min(_fp32_tokens + _fp32_rate, _fp32_cap);
        _sfu_tokens = std::min(_sfu_tokens + _sfu_rate, _sfu_cap);
        _mem_tokens = std::min(_mem_tokens + 1.0, 2.0);
        _shared_tokens = std::min(_shared_tokens + 1.0, 2.0);
        if (_fp32_tokens == _fp32_cap && _sfu_tokens == _sfu_cap &&
            _mem_tokens == 2.0 && _shared_tokens == 2.0)
            break;
    }

    // Greedy-oldest round robin: each scheduler issues at most one
    // instruction; warps are statically partitioned by index. Warps
    // whose cached issue bound lies in the future are skipped without
    // a full probe.
    uint32_t issued = 0;
    uint32_t schedulers = _arch->schedulersPerSm;
    size_t n = _count;
    _structural_stall = false;

    for (uint32_t s = 0; s < schedulers; ++s) {
        for (size_t probe = 0; probe < n; ++probe) {
            size_t idx = (_rr_cursor + probe) % n;
            if (idx % schedulers != s)
                continue;
            if (_flags[idx] & kDone)
                continue;
            if (_hint[idx] > now)
                continue;
            if (tryIssue(idx, now)) {
                ++issued;
                _rr_cursor = static_cast<uint32_t>((idx + 1) % n);
                break;
            }
        }
    }

    if (issued > 0) {
        ++_stats.issueCyclesUsed;
        return {true, false, 0};
    }

    // Nothing issued, so every live warp was either probed this cycle
    // or skipped on a still-valid cached bound: the minimum hint plus
    // the earliest outstanding miss is the SM's true wake-up time.
    // When no structural stall was seen this equals the reference's
    // nextEventAfter(now); otherwise the reference would have said
    // now + 1 and the caller consults `dense` for the chain.
    uint64_t next = ~0ULL;
    for (size_t w = 0; w < n; ++w) {
        if (!(_flags[w] & kDone) && _hint[w] < next)
            next = _hint[w];
    }
    if (!_inflight_misses.empty())
        next = std::min(next, _inflight_misses.nextReady());
    return {false, _structural_stall,
            next == ~0ULL ? now + 1 : next};
}

} // namespace sieve::gpusim
