#include "gpusim/sm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::gpusim {

namespace {

constexpr uint32_t kLineBytes = 128;
constexpr uint32_t kL1Assoc = 8;
constexpr uint32_t kL1Mshrs = 32;

// Pipeline latencies (cycles) per instruction class.
constexpr uint64_t kAluLatency = 4;
constexpr uint64_t kFmaLatency = 4;
constexpr uint64_t kSfuLatency = 16;
constexpr uint64_t kDfmaLatency = 48;
constexpr uint64_t kSharedLatency = 24;
constexpr uint64_t kL1HitLatency = 32;
constexpr uint64_t kBranchLatency = 2;
// Instructions serialized after a divergent branch (approximate
// distance to the reconvergence point).
constexpr uint32_t kDivergenceWindow = 12;

} // namespace

StreamingMultiprocessor::StreamingMultiprocessor(
    const gpu::ArchConfig &arch, MemorySystem *memsys)
    : _arch(arch), _memsys(memsys),
      _l1(Cache::fromCapacity(arch.l1SizeBytes, kLineBytes, kL1Assoc,
                              kL1Mshrs))
{
    SIEVE_ASSERT(memsys != nullptr, "SM without a memory system");
}

void
StreamingMultiprocessor::assignCta(const trace::DecodedWarp *warps,
                                   size_t count)
{
    SIEVE_ASSERT(warps != nullptr || count == 0, "null CTA");
    for (size_t w = 0; w < count; ++w) {
        WarpContext ctx;
        ctx.insts = warps[w].insts;
        ctx.instCount = warps[w].count;
        ctx.pc = 0;
        ctx.done = ctx.instCount == 0;
        if (!ctx.done)
            ++_active_warps;
        _warps.push_back(std::move(ctx));
    }
    ++_resident_ctas;
}

void
StreamingMultiprocessor::clearResidency()
{
    SIEVE_ASSERT(_active_warps == 0,
                 "clearing residency with warps in flight");
    _stats.ctasCompleted += _resident_ctas;
    _warps.clear();
    _resident_ctas = 0;
    _rr_cursor = 0;
    _inflight_misses.clear();
}

void
StreamingMultiprocessor::retireExpiredMisses(uint64_t now)
{
    while (!_inflight_misses.empty() && _inflight_misses.front() <= now) {
        std::pop_heap(_inflight_misses.begin(), _inflight_misses.end(),
                      std::greater<>());
        _inflight_misses.pop_back();
    }
}

bool
StreamingMultiprocessor::tryIssue(WarpContext &warp, uint64_t now)
{
    using trace::Opcode;

    if (warp.done || warp.stallUntil > now)
        return false;

    const trace::SassInstruction &inst = warp.insts[warp.pc];

    // Scoreboard: both sources must be ready.
    if (warp.regReady[inst.srcReg0] > now ||
        warp.regReady[inst.srcReg1] > now)
        return false;

    // Per-pipe throughput tokens.
    switch (inst.opcode) {
      case Opcode::FFma:
      case Opcode::DFma:
        if (_fp32_tokens < 1.0)
            return false;
        break;
      case Opcode::Mufu:
        if (_sfu_tokens < 1.0)
            return false;
        break;
      case Opcode::Lds:
      case Opcode::Sts:
        if (_shared_tokens < 1.0)
            return false;
        break;
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::Ldl:
      case Opcode::Stl:
      case Opcode::Atom:
        if (_mem_tokens < 1.0)
            return false;
        if (_inflight_misses.size() >= kL1Mshrs)
            return false; // structural: MSHRs exhausted
        break;
      default:
        break;
    }

    // Issue.
    uint64_t ready = now;
    switch (inst.opcode) {
      case Opcode::IAdd:
        ready = now + kAluLatency;
        break;
      case Opcode::FFma:
        _fp32_tokens -= 1.0;
        ready = now + kFmaLatency;
        break;
      case Opcode::DFma:
        _fp32_tokens -= 1.0;
        ready = now + kDfmaLatency;
        break;
      case Opcode::Mufu:
        _sfu_tokens -= 1.0;
        ready = now + kSfuLatency;
        break;
      case Opcode::Lds:
      case Opcode::Sts:
        _shared_tokens -= 1.0;
        ready = now + kSharedLatency;
        break;
      case Opcode::Bra:
        ready = now + kBranchLatency;
        warp.stallUntil = ready;
        if (inst.isDivergentBranch()) {
            // SIMT divergence: until reconvergence (approximated as
            // the next basic block), the warp walks both paths
            // serially — every instruction costs an extra issue slot.
            warp.divergedFor = kDivergenceWindow;
        }
        break;
      case Opcode::Exit:
        warp.done = true;
        SIEVE_ASSERT(_active_warps > 0, "warp underflow");
        --_active_warps;
        break;
      case Opcode::Ldg:
      case Opcode::Ldl:
      case Opcode::Stl: {
        _mem_tokens -= 1.0;
        CacheOutcome outcome = _l1.access(inst.lineAddress, now);
        if (outcome == CacheOutcome::Hit) {
            ready = now + kL1HitLatency;
        } else {
            _l1.fill(inst.lineAddress);
            uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                             _arch.sectorBytes;
            ready = _memsys->accessGlobal(inst.lineAddress,
                                          std::max(bytes, 32u), now);
            _inflight_misses.push_back(ready);
            std::push_heap(_inflight_misses.begin(),
                           _inflight_misses.end(), std::greater<>());
        }
        break;
      }
      case Opcode::Stg: {
        _mem_tokens -= 1.0;
        // Write-through, fire-and-forget: consumes bandwidth but
        // does not block the warp.
        uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                         _arch.sectorBytes;
        _memsys->accessGlobal(inst.lineAddress, std::max(bytes, 32u),
                              now);
        ready = now;
        break;
      }
      case Opcode::Atom: {
        _mem_tokens -= 1.0;
        ready = _memsys->atomic(inst.lineAddress, now);
        _inflight_misses.push_back(ready);
        std::push_heap(_inflight_misses.begin(),
                       _inflight_misses.end(), std::greater<>());
        break;
      }
    }

    if (inst.destReg != 0)
        warp.regReady[inst.destReg] = ready;

    if (warp.divergedFor > 0 && inst.opcode != Opcode::Bra) {
        // SIMT path serialization: each instruction in the divergent
        // region issues twice (once per path), consuming a second
        // scheduler slot before the warp's pc advances.
        if (!warp.replayPending) {
            warp.replayPending = true;
            ++_stats.divergenceReplays;
            return true; // slot consumed; pc stays for the replay
        }
        warp.replayPending = false;
        --warp.divergedFor;
    }

    ++warp.pc;
    ++_stats.warpInstructions;
    if (!warp.done && warp.pc >= warp.instCount) {
        warp.done = true;
        SIEVE_ASSERT(_active_warps > 0, "warp underflow");
        --_active_warps;
    }
    return true;
}

bool
StreamingMultiprocessor::step(uint64_t now)
{
    if (_active_warps == 0)
        return false;

    retireExpiredMisses(now);

    // Refill per-cycle issue tokens (accumulators allow sub-1/cycle
    // rates for the SFU pipe; caps prevent unbounded hoarding).
    if (_token_cycle != now) {
        double fp32_rate =
            static_cast<double>(_arch.fp32LanesPerSm) / _arch.warpSize;
        double sfu_rate =
            static_cast<double>(_arch.sfuLanesPerSm) / _arch.warpSize;
        _fp32_tokens = std::min(_fp32_tokens + fp32_rate,
                                2.0 * fp32_rate + 1.0);
        _sfu_tokens = std::min(_sfu_tokens + sfu_rate,
                               2.0 * sfu_rate + 1.0);
        _mem_tokens = std::min(_mem_tokens + 1.0, 2.0);
        _shared_tokens = std::min(_shared_tokens + 1.0, 2.0);
        _token_cycle = now;
    }

    // Greedy-oldest round robin: each scheduler issues at most one
    // instruction; warps are statically partitioned by index.
    uint32_t issued = 0;
    uint32_t schedulers = _arch.schedulersPerSm;
    size_t n = _warps.size();
    if (n == 0)
        return false;

    for (uint32_t s = 0; s < schedulers; ++s) {
        for (size_t probe = 0; probe < n; ++probe) {
            size_t idx = (_rr_cursor + probe) % n;
            if (idx % schedulers != s)
                continue;
            if (tryIssue(_warps[idx], now)) {
                ++issued;
                _rr_cursor = static_cast<uint32_t>((idx + 1) % n);
                break;
            }
        }
    }

    if (issued > 0)
        ++_stats.issueCyclesUsed;
    return issued > 0;
}

uint64_t
StreamingMultiprocessor::nextEventAfter(uint64_t now) const
{
    uint64_t next = ~0ULL;
    for (const WarpContext &warp : _warps) {
        if (warp.done)
            continue;
        uint64_t candidate = warp.stallUntil;
        const trace::SassInstruction &inst = warp.insts[warp.pc];
        candidate = std::max({candidate, warp.regReady[inst.srcReg0],
                              warp.regReady[inst.srcReg1]});
        if (candidate > now)
            next = std::min(next, candidate);
        else
            return now + 1; // this warp is issuable next cycle
    }
    if (!_inflight_misses.empty())
        next = std::min(next, _inflight_misses.front());
    return next == ~0ULL ? now + 1 : next;
}

} // namespace sieve::gpusim
