#include "gpusim/memory_system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sieve::gpusim {

namespace {

constexpr uint32_t kLineBytes = 128;
constexpr uint32_t kL2Assoc = 16;
constexpr uint32_t kL2MshrsPerSlice = 32;

// Full-machine organization the scaled model derives from.
constexpr size_t kFullMachineSlices = 32;
constexpr size_t kFullMachineChannels = 8;

size_t
scaledCount(size_t full, double fraction)
{
    return std::max<size_t>(
        static_cast<size_t>(std::round(static_cast<double>(full) *
                                       fraction)),
        1);
}

} // namespace

MemorySystem::MemorySystem(const gpu::ArchConfig &arch,
                           double machine_fraction)
{
    configure(arch, machine_fraction);
}

void
MemorySystem::configure(const gpu::ArchConfig &arch,
                        double machine_fraction)
{
    SIEVE_ASSERT(machine_fraction > 0.0 && machine_fraction <= 1.0,
                 "machine fraction ", machine_fraction,
                 " out of (0, 1]");
    _l2_latency = arch.l2LatencyCycles;

    _n_slices = scaledCount(kFullMachineSlices, machine_fraction);
    _n_channels = scaledCount(kFullMachineChannels, machine_fraction);

    uint64_t slice_capacity = static_cast<uint64_t>(
        static_cast<double>(arch.l2SizeBytes) * machine_fraction /
        static_cast<double>(_n_slices));
    uint32_t sets = Cache::setsForCapacity(
        std::max<uint64_t>(slice_capacity, 16 * kLineBytes),
        kLineBytes, kL2Assoc);
    if (_slices.size() < _n_slices)
        _slices.resize(_n_slices);
    for (size_t s = 0; s < _n_slices; ++s)
        _slices[s].configure(sets, kL2Assoc, kL2MshrsPerSlice);
    if (_atomic_free.size() < _n_slices)
        _atomic_free.resize(_n_slices);
    std::fill(_atomic_free.begin(), _atomic_free.end(), 0);

    double channel_bw = arch.dramBytesPerClk() * machine_fraction /
                        static_cast<double>(_n_channels);
    if (_channels.size() < _n_channels)
        _channels.resize(_n_channels);
    for (size_t c = 0; c < _n_channels; ++c)
        _channels[c].configure(channel_bw, arch.dramLatencyCycles);
}

size_t
MemorySystem::sliceOf(uint64_t line) const
{
    // Mix bits so strided streams still spread across slices.
    uint64_t h = line ^ (line >> 7);
    return static_cast<size_t>(h % _n_slices);
}

size_t
MemorySystem::channelOf(uint64_t line) const
{
    uint64_t h = (line >> 2) ^ (line >> 11);
    return static_cast<size_t>(h % _n_channels);
}

uint64_t
MemorySystem::accessGlobal(uint64_t line, uint32_t bytes, uint64_t now)
{
    Cache &slice = _slices[sliceOf(line)];
    CacheOutcome outcome = slice.access(line, now);
    if (outcome == CacheOutcome::Hit) {
        return now + static_cast<uint64_t>(_l2_latency);
    }
    // Miss (or structural pressure treated as miss): fetch through
    // the line's DRAM channel and install.
    slice.fill(line);
    uint64_t ready = _channels[channelOf(line)].request(bytes, now);
    return ready + static_cast<uint64_t>(_l2_latency) / 4;
}

uint64_t
MemorySystem::atomic(uint64_t line, uint64_t now)
{
    size_t s = sliceOf(line);
    // Atomics serialize on the slice's atomic pipe: 4 cycles each.
    uint64_t start = std::max(_atomic_free[s], now);
    _atomic_free[s] = start + 4;

    Cache &slice = _slices[s];
    CacheOutcome outcome = slice.access(line, now);
    if (outcome != CacheOutcome::Hit) {
        slice.fill(line);
        return _channels[channelOf(line)].request(kLineBytes / 4,
                                                  start) +
               static_cast<uint64_t>(_l2_latency);
    }
    return start + static_cast<uint64_t>(_l2_latency);
}

CacheStats
MemorySystem::l2Stats() const
{
    CacheStats total;
    for (size_t i = 0; i < _n_slices; ++i) {
        const CacheStats &s = _slices[i].stats();
        total.accesses += s.accesses;
        total.hits += s.hits;
        total.misses += s.misses;
        total.mshrMerges += s.mshrMerges;
        total.mshrStalls += s.mshrStalls;
    }
    return total;
}

DramStats
MemorySystem::dramStats() const
{
    DramStats total;
    for (size_t i = 0; i < _n_channels; ++i) {
        const DramStats &s = _channels[i].stats();
        total.requests += s.requests;
        total.bytes += s.bytes;
        total.busyCycles += s.busyCycles;
    }
    return total;
}

void
MemorySystem::reset()
{
    for (size_t i = 0; i < _n_slices; ++i)
        _slices[i].reset();
    for (size_t i = 0; i < _n_channels; ++i)
        _channels[i].reset();
    std::fill(_atomic_free.begin(), _atomic_free.end(), 0);
}

} // namespace sieve::gpusim
