/**
 * @file
 * Set-associative cache model with LRU replacement and a bounded
 * miss-status holding register (MSHR) file.
 *
 * Used for the per-SM L1 data caches and the GPU-wide shared L2 in
 * the cycle-level simulator. Timing is handled by the caller; the
 * cache answers hit/miss (with MSHR merging for in-flight lines) and
 * tracks statistics.
 */

#ifndef SIEVE_GPUSIM_CACHE_HH
#define SIEVE_GPUSIM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sieve::gpusim {

/** Outcome of a cache access. */
enum class CacheOutcome : uint8_t {
    Hit,        //!< line present
    Miss,       //!< line allocated an MSHR; fill from the next level
    MshrMerge,  //!< miss on a line already in flight (no new request)
    MshrFull,   //!< structural stall: retry later
};

/** Aggregate cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t mshrMerges = 0;
    uint64_t mshrStalls = 0;

    /** Hit rate over completed (non-stalled) accesses. */
    double hitRate() const
    {
        uint64_t done = hits + misses + mshrMerges;
        return done > 0 ? static_cast<double>(hits) /
                              static_cast<double>(done)
                        : 0.0;
    }
};

/**
 * Set-associative, line-addressed LRU cache with MSHRs.
 * Addresses are line indexes (the trace is already line-granular).
 */
class Cache
{
  public:
    /**
     * @param num_sets sets; must be a power of two
     * @param assoc ways per set
     * @param num_mshrs maximum outstanding missed lines
     */
    Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs);

    /** Build a cache from a byte capacity and line size. */
    static Cache fromCapacity(uint64_t capacity_bytes,
                              uint32_t line_bytes, uint32_t assoc,
                              uint32_t num_mshrs);

    /**
     * Access a line at the given cycle.
     * Miss outcomes allocate an MSHR; the caller must later call
     * fill() when the next level delivers the line.
     */
    CacheOutcome access(uint64_t line, uint64_t now);

    /** Deliver a previously missed line: install and free its MSHR. */
    void fill(uint64_t line);

    /** Number of MSHRs currently in flight. */
    size_t inflight() const { return _mshrs.size(); }

    const CacheStats &stats() const { return _stats; }

    /** Drop all content and statistics (fresh kernel launch). */
    void reset();

  private:
    struct Way
    {
        uint64_t line = ~0ULL;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint32_t _num_sets;
    uint32_t _assoc;
    uint32_t _num_mshrs;
    std::vector<Way> _ways;                 //!< num_sets x assoc
    std::unordered_map<uint64_t, uint32_t> _mshrs; //!< line -> merges
    CacheStats _stats;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_CACHE_HH
