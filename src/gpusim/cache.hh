/**
 * @file
 * Set-associative cache model with LRU replacement and a bounded
 * miss-status holding register (MSHR) file.
 *
 * Used for the per-SM L1 data caches and the GPU-wide shared L2 in
 * the cycle-level simulator. Timing is handled by the caller; the
 * cache answers hit/miss (with MSHR merging for in-flight lines) and
 * tracks statistics.
 *
 * Layout is structure-of-arrays: tags, last-use stamps, and validity
 * live in separate set-major flat arrays so a set probe touches one
 * short contiguous run per array and the hit scan compiles to
 * branch-free compares. MSHRs are a flat open-addressed table
 * (linear probing, backward-shift deletion) instead of an
 * unordered_map, which removes the per-miss node allocation from the
 * simulator hot loop. Results are bit-identical to the map-based
 * reference (`gpusim::reference::Cache`): outcome order, statistics,
 * and LRU victim choice depend only on set/way contents, never on
 * table layout.
 */

#ifndef SIEVE_GPUSIM_CACHE_HH
#define SIEVE_GPUSIM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sieve::gpusim {

/** Outcome of a cache access. */
enum class CacheOutcome : uint8_t {
    Hit,        //!< line present
    Miss,       //!< line allocated an MSHR; fill from the next level
    MshrMerge,  //!< miss on a line already in flight (no new request)
    MshrFull,   //!< structural stall: retry later
};

/** Aggregate cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t mshrMerges = 0;
    uint64_t mshrStalls = 0;

    /** Hit rate over completed (non-stalled) accesses. */
    double hitRate() const
    {
        uint64_t done = hits + misses + mshrMerges;
        return done > 0 ? static_cast<double>(hits) /
                              static_cast<double>(done)
                        : 0.0;
    }
};

/**
 * Set-associative, line-addressed LRU cache with MSHRs.
 * Addresses are line indexes (the trace is already line-granular).
 */
class Cache
{
  public:
    /**
     * An unconfigured cache; configure() must run before use. Lets
     * pooled owners (MemorySystem slices, SM workspaces) hold caches
     * by value and rebuild them in place without reallocating.
     */
    Cache() = default;

    /**
     * @param num_sets sets; must be a power of two
     * @param assoc ways per set
     * @param num_mshrs maximum outstanding missed lines
     */
    Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs);

    /** Build a cache from a byte capacity and line size. */
    static Cache fromCapacity(uint64_t capacity_bytes,
                              uint32_t line_bytes, uint32_t assoc,
                              uint32_t num_mshrs);

    /**
     * Number of power-of-two sets fromCapacity() would choose
     * (exposed so configure() callers reuse the same geometry math).
     */
    static uint32_t setsForCapacity(uint64_t capacity_bytes,
                                    uint32_t line_bytes,
                                    uint32_t assoc);

    /**
     * (Re)build geometry in place: arrays grow once to the largest
     * geometry seen and are reused afterwards; content and statistics
     * reset. Safe to call on every kernel invocation.
     */
    void configure(uint32_t num_sets, uint32_t assoc,
                   uint32_t num_mshrs);

    /**
     * Access a line at the given cycle.
     * Miss outcomes allocate an MSHR; the caller must later call
     * fill() when the next level delivers the line.
     */
    CacheOutcome access(uint64_t line, uint64_t now);

    /** Deliver a previously missed line: install and free its MSHR. */
    void fill(uint64_t line);

    /** Number of MSHRs currently in flight. */
    size_t inflight() const { return _mshr_count; }

    const CacheStats &stats() const { return _stats; }

    /** Drop all content and statistics (fresh kernel launch). */
    void reset();

  private:
    size_t mshrSlot(uint64_t line) const;
    void mshrErase(uint64_t line);

    uint32_t _num_sets = 0;
    uint32_t _assoc = 0;
    uint32_t _num_mshrs = 0;

    // Set-major tag/stamp/valid arrays, num_sets x assoc each.
    std::vector<uint64_t> _lines;
    std::vector<uint64_t> _last_use;
    std::vector<uint8_t> _valid;

    // Open-addressed MSHR table (linear probing). Capacity is a
    // power of two of at least 2 x num_mshrs, so the load factor
    // stays below one half and probes stay short.
    std::vector<uint64_t> _mshr_line;
    std::vector<uint32_t> _mshr_merges;
    std::vector<uint8_t> _mshr_used;
    size_t _mshr_mask = 0;
    size_t _mshr_count = 0;

    CacheStats _stats;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_CACHE_HH
