/**
 * @file
 * Trace-driven cycle-level GPU simulator — the Accel-sim stand-in.
 *
 * Simulates a kernel trace on a configurable number of detailed SMs
 * sharing an L2/DRAM system scaled to the simulated machine fraction,
 * then extrapolates to the full grid on the full machine via CTA-wave
 * scaling (each traced CTA stands for `ctaReplication` launched
 * CTAs). The simulated slice is cycle-accurate with respect to the
 * model: warp scheduling, register scoreboards, per-pipe issue
 * throughput, L1/L2 caches with LRU and bounded MSHRs, and a DRAM
 * bandwidth/latency pipe.
 */

#ifndef SIEVE_GPUSIM_GPU_SIMULATOR_HH
#define SIEVE_GPUSIM_GPU_SIMULATOR_HH

#include <cstdint>

#include "gpu/arch_config.hh"
#include "gpusim/cache.hh"
#include "gpusim/dram.hh"
#include "gpusim/trace_synth.hh"
#include "trace/columnar.hh"
#include "trace/sass_trace.hh"

namespace sieve::gpusim {

/**
 * Which scheduling core runs the simulation. Both produce
 * byte-identical results by contract (CI diffs suite stdout and
 * every Stable counter between them); the event-driven core is the
 * fast default, the reference tick loop is the oracle.
 */
enum class SimEngine : uint8_t {
    EventDriven, //!< cycle-skipping SoA core (default)
    Reference,   //!< retained tick-everything oracle
};

/** Simulator configuration. */
struct GpuSimConfig
{
    /**
     * Detailed SMs simulated. The memory system is scaled by
     * simSms / arch.numSms so per-SM bandwidth pressure matches the
     * full machine.
     */
    uint32_t simSms = 4;

    /**
     * Principal Kernel Projection (Baddouh et al.; paper Section
     * II-A): stop simulating once the windowed IPC has converged and
     * extrapolate the remainder at the converged rate. Orthogonal to
     * the sampling method — the paper notes it can speed up both
     * Sieve and PKS, and is the remedy for gst-style dominant
     * invocations.
     */
    bool pkpEnabled = false;

    /** Relative wave-to-wave IPC delta treated as converged. */
    double pkpTolerance = 0.03;

    /** Consecutive converged CTA waves required before stopping. */
    uint32_t pkpPatience = 2;

    /**
     * Scheduling core. Overridable per process with the
     * SIEVE_SIM_ENGINE environment variable ("event" or
     * "reference"), which wins over this field — that is how CI runs
     * the whole suite on the oracle without plumbing flags through
     * every tool.
     */
    SimEngine engine = SimEngine::EventDriven;
};

/** Result of simulating one kernel trace. */
struct KernelSimResult
{
    /** Cycles to execute the traced CTAs on the simulated SMs. */
    uint64_t simCycles = 0;

    /** Extrapolated cycles for the full grid on the full machine. */
    double estimatedKernelCycles = 0.0;

    /** Warp instructions actually simulated. */
    uint64_t instructionsSimulated = 0;

    /** Simulated-slice IPC (instructions / simCycles). */
    double ipc = 0.0;

    /** Estimated full-kernel IPC (represented insts / est. cycles). */
    double estimatedIpc = 0.0;

    CacheStats l1;     //!< aggregated over simulated SMs
    CacheStats l2;
    DramStats dram;

    /** CTA waves actually simulated. */
    uint64_t wavesSimulated = 0;

    /** True if PKP stopped the simulation before trace exhaustion. */
    bool pkpStoppedEarly = false;

    /** Fraction of traced instructions actually simulated. */
    double fractionSimulated = 1.0;

    /** Host wall-clock seconds spent simulating. */
    double wallSeconds = 0.0;
};

/** The trace-driven simulator for one architecture configuration. */
class GpuSimulator
{
  public:
    explicit GpuSimulator(gpu::ArchConfig arch, GpuSimConfig config = {});

    const gpu::ArchConfig &arch() const { return _arch; }

    /**
     * Simulate one columnar kernel trace. Warps are decoded one CTA
     * wave at a time into a reused arena, so the steady-state loop
     * does not allocate.
     */
    KernelSimResult simulate(const trace::ColumnarTrace &trace) const;

    /**
     * Simulate one AoS kernel trace (converts to the columnar form;
     * results are identical because the conversion is lossless).
     */
    KernelSimResult simulate(const trace::KernelTrace &trace) const;

  private:
    gpu::ArchConfig _arch;
    GpuSimConfig _config;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_GPU_SIMULATOR_HH
