/**
 * @file
 * SASS trace synthesis from the workload IR.
 *
 * Section V-G of the paper modifies the Accel-sim/NVBit tracer to
 * dump the SASS streams of only the selected kernel invocations. The
 * equivalent here synthesizes a trace::KernelTrace from a
 * KernelInvocation: per-warp instruction streams whose class mix
 * matches the invocation's InstructionMix, whose register dependency
 * spacing matches the kernel's ILP, and whose memory address stream
 * reproduces the kernel's hidden locality (so the cycle-level cache
 * hierarchy sees realistic hit rates).
 *
 * Large grids are traced CTA-representatively: only maxTracedCtas
 * distinct CTAs are materialized and trace.ctaReplication records how
 * many launched CTAs each stands for — the standard CTA-sampling
 * device that keeps trace files and simulation times tractable.
 */

#ifndef SIEVE_GPUSIM_TRACE_SYNTH_HH
#define SIEVE_GPUSIM_TRACE_SYNTH_HH

#include <cstdint>

#include "trace/sass_trace.hh"
#include "trace/workload.hh"

namespace sieve::gpusim {

/** Options controlling trace synthesis. */
struct TraceSynthOptions
{
    /** Maximum distinct CTAs materialized in the trace. */
    uint64_t maxTracedCtas = 32;

    /** Instructions per basic block (branch spacing). */
    uint32_t basicBlockSize = 12;

    /** Cache-line granularity of the synthesized address stream. */
    uint32_t lineBytes = 128;

    /**
     * Seed the synthesis stream from the invocation's *content*
     * (kernel name, launch config, instruction mix, memory profile)
     * instead of its per-invocation noiseSeed. Content-identical
     * invocations then synthesize byte-identical traces, which a
     * SimCache can deduplicate — the golden-simulation memoization
     * path. Off by default: the historical noiseSeed seeding keeps
     * every invocation's trace distinct, and existing benches depend
     * on those exact bytes.
     */
    bool contentSeeded = false;
};

/**
 * Synthesize the SASS trace of one kernel invocation.
 *
 * @param workload the owning workload (for the kernel name)
 * @param invocation_index index into workload.invocations()
 */
trace::KernelTrace synthesizeTrace(const trace::Workload &workload,
                                   size_t invocation_index,
                                   TraceSynthOptions options = {});

/**
 * Synthesize from a bare invocation record plus its kernel name —
 * the out-of-core path, where no resident Workload exists. For the
 * same (name, record) pair this produces byte-identical traces to
 * the Workload overload (which delegates here).
 */
trace::KernelTrace synthesizeTrace(const std::string &kernel_name,
                                   const trace::KernelInvocation &inv,
                                   TraceSynthOptions options = {});

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_TRACE_SYNTH_HH
