#include "gpusim/sim_cache.hh"

#include "obs/metrics.hh"
#include "obs/telemetry.hh"

namespace sieve::gpusim {

namespace {

/**
 * Two-lane word-at-a-time digest. Lane `a` is word-wise FNV-1a; lane
 * `b` runs the same words through a SplitMix64-style finalizer chained
 * into the accumulator. The lanes share no constants, so a collision
 * requires both 64-bit states to collide on the same input.
 */
struct Digester
{
    uint64_t a = 0xcbf29ce484222325ULL; //!< FNV-1a offset basis
    uint64_t b = 0x9e3779b97f4a7c15ULL;

    void
    u64(uint64_t v)
    {
        a = (a ^ v) * 0x100000001b3ULL;

        uint64_t z = b + v + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        b = z ^ (z >> 31);
    }
};

} // namespace

TraceDigest
digestTrace(const trace::KernelTrace &trace)
{
    Digester d;
    // Canonical field order; every length is hashed before the
    // elements so concatenation ambiguities cannot alias two traces.
    d.u64(trace.launch.grid.x);
    d.u64(trace.launch.grid.y);
    d.u64(trace.launch.grid.z);
    d.u64(trace.launch.cta.x);
    d.u64(trace.launch.cta.y);
    d.u64(trace.launch.cta.z);
    d.u64(trace.launch.sharedMemBytes);
    d.u64(trace.launch.regsPerThread);
    d.u64(trace.ctaReplication);
    d.u64(trace.ctas.size());
    for (const trace::CtaTrace &cta : trace.ctas) {
        d.u64(cta.warps.size());
        for (const trace::WarpTrace &warp : cta.warps) {
            d.u64(warp.instructions.size());
            for (const trace::SassInstruction &inst : warp.instructions) {
                // Pack the six byte-sized fields into one word.
                uint64_t packed =
                    static_cast<uint64_t>(inst.opcode) |
                    (static_cast<uint64_t>(inst.destReg) << 8) |
                    (static_cast<uint64_t>(inst.srcReg0) << 16) |
                    (static_cast<uint64_t>(inst.srcReg1) << 24) |
                    (static_cast<uint64_t>(inst.activeLanes) << 32) |
                    (static_cast<uint64_t>(inst.sectors) << 40);
                d.u64(packed);
                d.u64(inst.lineAddress);
            }
        }
    }
    return {d.a, d.b};
}

TraceDigest
digestTrace(const trace::ColumnarTrace &trace)
{
    Digester d;
    // The exact word sequence of the AoS digestTrace(), replayed
    // from the columnar streams: same fields, same order, same
    // packing — so digests survive the representation change.
    d.u64(trace.launch.grid.x);
    d.u64(trace.launch.grid.y);
    d.u64(trace.launch.grid.z);
    d.u64(trace.launch.cta.x);
    d.u64(trace.launch.cta.y);
    d.u64(trace.launch.cta.z);
    d.u64(trace.launch.sharedMemBytes);
    d.u64(trace.launch.regsPerThread);
    d.u64(trace.ctaReplication);
    d.u64(trace.numCtas());
    for (size_t c = 0; c < trace.numCtas(); ++c) {
        size_t wbegin = trace.ctaWarpOffsets[c];
        size_t wend = trace.ctaWarpOffsets[c + 1];
        d.u64(wend - wbegin);
        for (size_t w = wbegin; w < wend; ++w) {
            trace::WarpDecoder dec(trace, w);
            d.u64(dec.count());
            for (size_t i = 0, n = dec.count(); i < n; ++i) {
                trace::SassInstruction inst = dec.next();
                uint64_t packed =
                    static_cast<uint64_t>(inst.opcode) |
                    (static_cast<uint64_t>(inst.destReg) << 8) |
                    (static_cast<uint64_t>(inst.srcReg0) << 16) |
                    (static_cast<uint64_t>(inst.srcReg1) << 24) |
                    (static_cast<uint64_t>(inst.activeLanes) << 32) |
                    (static_cast<uint64_t>(inst.sectors) << 40);
                d.u64(packed);
                d.u64(inst.lineAddress);
            }
        }
    }
    return {d.a, d.b};
}

SimCache::SimCache(const GpuSimulator &simulator) : _simulator(simulator)
{
}

SimCache::Entry *
SimCache::lookup(TraceDigest digest) const
{
    static obs::Counter &c_lookups = obs::counter("gpusim.cache.lookups");
    static obs::Counter &c_hits = obs::counter("gpusim.cache.hits");
    static obs::Counter &c_unique = obs::counter("gpusim.cache.unique");
    // Derived-rate telemetry track, registered here (not in the
    // sampler) so runs that never simulate don't grow cache metrics.
    static const bool probe_registered = [] {
        obs::registerTelemetryProbe("gpusim.cache.hit_permille", [] {
            uint64_t lookups = c_lookups.value();
            if (lookups == 0)
                return int64_t{0};
            return static_cast<int64_t>(c_hits.value() * 1000 /
                                        lookups);
        });
        return true;
    }();
    (void)probe_registered;

    Entry *entry = nullptr;
    bool created = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_lookups;
        auto it = _entries.find(digest);
        if (it == _entries.end()) {
            it = _entries
                     .emplace(digest, std::make_unique<Entry>())
                     .first;
            created = true;
        } else {
            ++_hits;
        }
        entry = it->second.get();
    }

    // Which caller gets `created` is scheduling-dependent, but exactly
    // one caller per digest does — so the unique/hit totals are pure
    // functions of the input traces and stay Stable across --jobs.
    c_lookups.add();
    if (created)
        c_unique.add();
    else
        c_hits.add();
    return entry;
}

KernelSimResult
SimCache::simulate(const trace::KernelTrace &trace) const
{
    Entry *entry = lookup(digestTrace(trace));
    std::call_once(entry->once, [&] {
        entry->result = _simulator.simulate(trace);
    });
    return entry->result;
}

KernelSimResult
SimCache::simulate(const trace::ColumnarTrace &trace) const
{
    Entry *entry = lookup(digestTrace(trace));
    std::call_once(entry->once, [&] {
        entry->result = _simulator.simulate(trace);
    });
    return entry->result;
}

SimCacheStats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return {_lookups, _hits, _lookups - _hits};
}

} // namespace sieve::gpusim
