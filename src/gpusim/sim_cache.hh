/**
 * @file
 * Content-addressed memoization of kernel-trace simulation.
 *
 * The golden-reference half of the evaluation critical path simulates
 * *every* invocation, yet a deterministic simulator is guaranteed to
 * score byte-identical traces identically — re-simulating them is pure
 * waste (the redundancy Sieve itself exists to avoid, paper §1). The
 * SimCache closes that loop: a canonical 128-bit digest over the
 * simulator-visible content of a trace::KernelTrace keys a thread-safe
 * map of KernelSimResults, so a batch of traces with duplicates
 * simulates each distinct trace exactly once and fans the result out.
 *
 * The digest covers precisely what GpuSimulator::simulate reads:
 * the launch configuration, ctaReplication, and the full CTA/warp
 * instruction streams (opcode, registers, lane mask, sectors, line
 * address). It deliberately *excludes* kernelName (only used to label
 * the tracing span) and invocationId (never read), so two invocations
 * of the same kernel with identical traced content collide — which is
 * the whole point.
 *
 * The digest deliberately does not cover GpuSimConfig::engine: both
 * scheduling cores are byte-identical by contract, so a shared
 * SimCache never mixes observable behavior across engines.
 *
 * Determinism: which thread performs the one real simulation of a
 * digest is scheduling-dependent, but the *number* of distinct digests
 * is a pure function of the input traces — so the Stable counters
 * `gpusim.cache.{lookups,hits,unique}` are --jobs-invariant by
 * construction (hits = lookups - unique).
 */

#ifndef SIEVE_GPUSIM_SIM_CACHE_HH
#define SIEVE_GPUSIM_SIM_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "gpusim/gpu_simulator.hh"
#include "trace/columnar.hh"
#include "trace/sass_trace.hh"
#include "trace/shard_store.hh"

namespace sieve::gpusim {

/**
 * Canonical 128-bit content digest of a kernel trace (two independent
 * 64-bit FNV-style lanes, so accidental collisions are negligible at
 * any realistic batch size).
 */
struct TraceDigest
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const TraceDigest &) const = default;
};

/** Hash adaptor so TraceDigest can key unordered containers. */
struct TraceDigestHash
{
    size_t
    operator()(const TraceDigest &d) const
    {
        // The digest lanes are already well-mixed; fold them.
        return static_cast<size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
    }
};

/**
 * Digest the simulator-visible content of a trace: launch config,
 * ctaReplication, and every instruction of every traced warp. The
 * kernel name and invocation id are *not* hashed (the simulator never
 * reads them), so content-identical invocations share a digest.
 */
TraceDigest digestTrace(const trace::KernelTrace &trace);

/**
 * Digest a columnar trace. Replays the exact word sequence of the
 * AoS digestTrace() from the columnar streams, so for any trace `t`,
 * digestTrace(toColumnar(t)) == digestTrace(t): digest values (and
 * therefore cache keys and the Stable gpusim.cache.* counters) are
 * preserved across the representation change.
 */
TraceDigest digestTrace(const trace::ColumnarTrace &trace);

/**
 * The same digest as the shard store's key type. The store (in
 * sieve_trace, which cannot link this library) is content-addressed
 * by exactly this digest; callers that hold a trace compute it here
 * and hand it down.
 */
inline trace::BlobDigest
toBlobDigest(const TraceDigest &digest)
{
    return trace::BlobDigest{digest.lo, digest.hi};
}

/** Aggregate cache statistics (monotonic over the cache's lifetime). */
struct SimCacheStats
{
    uint64_t lookups = 0; //!< total simulate() calls
    uint64_t hits = 0;    //!< calls served from a prior simulation
    uint64_t unique = 0;  //!< distinct traces actually simulated
};

/**
 * Thread-safe memoizing front-end to a GpuSimulator.
 *
 * Concurrent lookups of the same digest are serialized per-entry with
 * std::call_once: exactly one caller simulates, the rest block on the
 * entry and then share the result. Distinct digests never contend
 * beyond the brief map lookup.
 */
class SimCache
{
  public:
    explicit SimCache(const GpuSimulator &simulator);

    /** The wrapped simulator. */
    const GpuSimulator &simulator() const { return _simulator; }

    /**
     * Simulate a trace, memoized by content digest. Duplicate traces
     * return the stored KernelSimResult of the one real simulation —
     * byte-identical to simulating the duplicate directly (the
     * simulator is a pure function of the digested content), except
     * that `wallSeconds` reflects the single real simulation rather
     * than a fresh measurement.
     */
    KernelSimResult simulate(const trace::KernelTrace &trace) const;

    /**
     * Columnar-path equivalent of simulate(KernelTrace): identical
     * digests (see digestTrace overload) mean the two entry points
     * share cache entries freely.
     */
    KernelSimResult simulate(const trace::ColumnarTrace &trace) const;

    /** Lifetime lookup/hit/unique totals. */
    SimCacheStats stats() const;

  private:
    struct Entry
    {
        std::once_flag once;
        KernelSimResult result;
    };

    /** Find-or-create the entry for `digest`, counting the lookup. */
    Entry *lookup(TraceDigest digest) const;

    const GpuSimulator &_simulator;
    mutable std::mutex _mutex; //!< guards the map structure only
    mutable std::unordered_map<TraceDigest, std::unique_ptr<Entry>,
                               TraceDigestHash>
        _entries;
    mutable uint64_t _lookups = 0;
    mutable uint64_t _hits = 0;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_SIM_CACHE_HH
