#include "gpusim/reference.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "gpusim/gpu_simulator.hh"

namespace sieve::gpusim::reference {

namespace {

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

constexpr uint32_t kLineBytes = 128;

// L1 geometry and pipeline latencies, identical to the event core's.
constexpr uint32_t kL1Assoc = 8;
constexpr uint32_t kL1Mshrs = 32;
constexpr uint64_t kAluLatency = 4;
constexpr uint64_t kFmaLatency = 4;
constexpr uint64_t kSfuLatency = 16;
constexpr uint64_t kDfmaLatency = 48;
constexpr uint64_t kSharedLatency = 24;
constexpr uint64_t kL1HitLatency = 32;
constexpr uint64_t kBranchLatency = 2;
constexpr uint32_t kDivergenceWindow = 12;

// L2 organization, identical to gpusim::MemorySystem's.
constexpr uint32_t kL2Assoc = 16;
constexpr uint32_t kL2MshrsPerSlice = 32;
constexpr size_t kFullMachineSlices = 32;
constexpr size_t kFullMachineChannels = 8;

size_t
scaledCount(size_t full, double fraction)
{
    return std::max<size_t>(
        static_cast<size_t>(std::round(static_cast<double>(full) *
                                       fraction)),
        1);
}

} // namespace

Cache::Cache(uint32_t num_sets, uint32_t assoc, uint32_t num_mshrs)
    : _num_sets(num_sets), _assoc(assoc), _num_mshrs(num_mshrs),
      _ways(static_cast<size_t>(num_sets) * assoc)
{
    SIEVE_ASSERT(isPowerOfTwo(num_sets), "cache sets ", num_sets,
                 " not a power of two");
    SIEVE_ASSERT(assoc > 0, "zero-way cache");
    SIEVE_ASSERT(num_mshrs > 0, "cache without MSHRs");
}

Cache
Cache::fromCapacity(uint64_t capacity_bytes, uint32_t line_bytes,
                    uint32_t assoc, uint32_t num_mshrs)
{
    SIEVE_ASSERT(line_bytes > 0 && assoc > 0, "bad cache geometry");
    uint64_t lines = capacity_bytes / line_bytes;
    uint64_t sets = lines / assoc;
    // Round down to a power of two.
    uint32_t pow2 = 1;
    while (static_cast<uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    return Cache(pow2, assoc, num_mshrs);
}

CacheOutcome
Cache::access(uint64_t line, uint64_t now)
{
    ++_stats.accesses;
    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    Way *base = &_ways[set * _assoc];

    for (uint32_t w = 0; w < _assoc; ++w) {
        if (base[w].valid && base[w].line == line) {
            base[w].lastUse = now;
            ++_stats.hits;
            return CacheOutcome::Hit;
        }
    }

    auto it = _mshrs.find(line);
    if (it != _mshrs.end()) {
        ++it->second;
        ++_stats.mshrMerges;
        return CacheOutcome::MshrMerge;
    }
    if (_mshrs.size() >= _num_mshrs) {
        ++_stats.mshrStalls;
        --_stats.accesses; // the access will retry; do not count twice
        return CacheOutcome::MshrFull;
    }
    _mshrs.emplace(line, 1);
    ++_stats.misses;
    return CacheOutcome::Miss;
}

void
Cache::fill(uint64_t line)
{
    _mshrs.erase(line);

    size_t set = static_cast<size_t>(line & (_num_sets - 1));
    Way *base = &_ways[set * _assoc];

    // Install into an invalid way, else evict LRU.
    Way *victim = &base[0];
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->line = line;
    victim->lastUse = 0;
}

void
Cache::reset()
{
    for (auto &way : _ways)
        way = Way{};
    _mshrs.clear();
    _stats = CacheStats{};
}

MemorySystem::MemorySystem(const gpu::ArchConfig &arch,
                           double machine_fraction)
    : _l2_latency(arch.l2LatencyCycles)
{
    SIEVE_ASSERT(machine_fraction > 0.0 && machine_fraction <= 1.0,
                 "machine fraction ", machine_fraction,
                 " out of (0, 1]");

    size_t n_slices = scaledCount(kFullMachineSlices, machine_fraction);
    size_t n_channels =
        scaledCount(kFullMachineChannels, machine_fraction);

    uint64_t slice_capacity = static_cast<uint64_t>(
        static_cast<double>(arch.l2SizeBytes) * machine_fraction /
        static_cast<double>(n_slices));
    for (size_t s = 0; s < n_slices; ++s) {
        _slices.push_back(Cache::fromCapacity(
            std::max<uint64_t>(slice_capacity, 16 * kLineBytes),
            kLineBytes, kL2Assoc, kL2MshrsPerSlice));
    }
    _atomic_free.assign(n_slices, 0);

    double channel_bw = arch.dramBytesPerClk() * machine_fraction /
                        static_cast<double>(n_channels);
    for (size_t c = 0; c < n_channels; ++c)
        _channels.emplace_back(channel_bw, arch.dramLatencyCycles);
}

size_t
MemorySystem::sliceOf(uint64_t line) const
{
    uint64_t h = line ^ (line >> 7);
    return static_cast<size_t>(h % _slices.size());
}

size_t
MemorySystem::channelOf(uint64_t line) const
{
    uint64_t h = (line >> 2) ^ (line >> 11);
    return static_cast<size_t>(h % _channels.size());
}

uint64_t
MemorySystem::accessGlobal(uint64_t line, uint32_t bytes, uint64_t now)
{
    Cache &slice = _slices[sliceOf(line)];
    CacheOutcome outcome = slice.access(line, now);
    if (outcome == CacheOutcome::Hit) {
        return now + static_cast<uint64_t>(_l2_latency);
    }
    slice.fill(line);
    uint64_t ready = _channels[channelOf(line)].request(bytes, now);
    return ready + static_cast<uint64_t>(_l2_latency) / 4;
}

uint64_t
MemorySystem::atomic(uint64_t line, uint64_t now)
{
    size_t s = sliceOf(line);
    uint64_t start = std::max(_atomic_free[s], now);
    _atomic_free[s] = start + 4;

    Cache &slice = _slices[s];
    CacheOutcome outcome = slice.access(line, now);
    if (outcome != CacheOutcome::Hit) {
        slice.fill(line);
        return _channels[channelOf(line)].request(kLineBytes / 4,
                                                  start) +
               static_cast<uint64_t>(_l2_latency);
    }
    return start + static_cast<uint64_t>(_l2_latency);
}

CacheStats
MemorySystem::l2Stats() const
{
    CacheStats total;
    for (const Cache &slice : _slices) {
        const CacheStats &s = slice.stats();
        total.accesses += s.accesses;
        total.hits += s.hits;
        total.misses += s.misses;
        total.mshrMerges += s.mshrMerges;
        total.mshrStalls += s.mshrStalls;
    }
    return total;
}

DramStats
MemorySystem::dramStats() const
{
    DramStats total;
    for (const DramModel &channel : _channels) {
        const DramStats &s = channel.stats();
        total.requests += s.requests;
        total.bytes += s.bytes;
        total.busyCycles += s.busyCycles;
    }
    return total;
}

namespace {

/** One simulated SM, array-of-structs warp state (oracle). */
class Sm
{
  public:
    Sm(const gpu::ArchConfig &arch, MemorySystem *memsys)
        : _arch(arch), _memsys(memsys),
          _l1(Cache::fromCapacity(arch.l1SizeBytes, kLineBytes,
                                  kL1Assoc, kL1Mshrs))
    {
        SIEVE_ASSERT(memsys != nullptr, "SM without a memory system");
    }

    size_t residentCtas() const { return _resident_ctas; }
    bool busy() const { return _active_warps > 0; }

    void assignCta(const trace::DecodedWarp *warps, size_t count)
    {
        SIEVE_ASSERT(warps != nullptr || count == 0, "null CTA");
        for (size_t w = 0; w < count; ++w) {
            WarpContext ctx;
            ctx.insts = warps[w].insts;
            ctx.instCount = warps[w].count;
            ctx.pc = 0;
            ctx.done = ctx.instCount == 0;
            if (!ctx.done)
                ++_active_warps;
            _warps.push_back(std::move(ctx));
        }
        ++_resident_ctas;
    }

    void clearResidency()
    {
        SIEVE_ASSERT(_active_warps == 0,
                     "clearing residency with warps in flight");
        _stats.ctasCompleted += _resident_ctas;
        _warps.clear();
        _resident_ctas = 0;
        _rr_cursor = 0;
        _inflight_misses.clear();
    }

    bool step(uint64_t now)
    {
        if (_active_warps == 0)
            return false;

        retireExpiredMisses(now);

        // Refill per-cycle issue tokens (accumulators allow
        // sub-1/cycle rates for the SFU pipe; caps prevent unbounded
        // hoarding).
        if (_token_cycle != now) {
            double fp32_rate =
                static_cast<double>(_arch.fp32LanesPerSm) /
                _arch.warpSize;
            double sfu_rate =
                static_cast<double>(_arch.sfuLanesPerSm) /
                _arch.warpSize;
            _fp32_tokens = std::min(_fp32_tokens + fp32_rate,
                                    2.0 * fp32_rate + 1.0);
            _sfu_tokens = std::min(_sfu_tokens + sfu_rate,
                                   2.0 * sfu_rate + 1.0);
            _mem_tokens = std::min(_mem_tokens + 1.0, 2.0);
            _shared_tokens = std::min(_shared_tokens + 1.0, 2.0);
            _token_cycle = now;
        }

        // Greedy-oldest round robin: each scheduler issues at most
        // one instruction; warps are statically partitioned by index.
        uint32_t issued = 0;
        uint32_t schedulers = _arch.schedulersPerSm;
        size_t n = _warps.size();
        if (n == 0)
            return false;

        for (uint32_t s = 0; s < schedulers; ++s) {
            for (size_t probe = 0; probe < n; ++probe) {
                size_t idx = (_rr_cursor + probe) % n;
                if (idx % schedulers != s)
                    continue;
                if (tryIssue(_warps[idx], now)) {
                    ++issued;
                    _rr_cursor =
                        static_cast<uint32_t>((idx + 1) % n);
                    break;
                }
            }
        }

        if (issued > 0)
            ++_stats.issueCyclesUsed;
        return issued > 0;
    }

    uint64_t nextEventAfter(uint64_t now) const
    {
        uint64_t next = ~0ULL;
        for (const WarpContext &warp : _warps) {
            if (warp.done)
                continue;
            uint64_t candidate = warp.stallUntil;
            const trace::SassInstruction &inst = warp.insts[warp.pc];
            candidate =
                std::max({candidate, warp.regReady[inst.srcReg0],
                          warp.regReady[inst.srcReg1]});
            if (candidate > now)
                next = std::min(next, candidate);
            else
                return now + 1; // this warp is issuable next cycle
        }
        if (!_inflight_misses.empty())
            next = std::min(next, _inflight_misses.front());
        return next == ~0ULL ? now + 1 : next;
    }

    const SmStats &stats() const { return _stats; }
    const CacheStats &l1Stats() const { return _l1.stats(); }

  private:
    struct WarpContext
    {
        const trace::SassInstruction *insts = nullptr;
        size_t instCount = 0;
        size_t pc = 0;
        uint64_t regReady[32] = {};
        uint64_t stallUntil = 0;
        uint32_t divergedFor = 0;
        bool replayPending = false;
        bool done = true;
    };

    void retireExpiredMisses(uint64_t now)
    {
        while (!_inflight_misses.empty() &&
               _inflight_misses.front() <= now) {
            std::pop_heap(_inflight_misses.begin(),
                          _inflight_misses.end(), std::greater<>());
            _inflight_misses.pop_back();
        }
    }

    bool tryIssue(WarpContext &warp, uint64_t now)
    {
        using trace::Opcode;

        if (warp.done || warp.stallUntil > now)
            return false;

        const trace::SassInstruction &inst = warp.insts[warp.pc];

        // Scoreboard: both sources must be ready.
        if (warp.regReady[inst.srcReg0] > now ||
            warp.regReady[inst.srcReg1] > now)
            return false;

        // Per-pipe throughput tokens.
        switch (inst.opcode) {
          case Opcode::FFma:
          case Opcode::DFma:
            if (_fp32_tokens < 1.0)
                return false;
            break;
          case Opcode::Mufu:
            if (_sfu_tokens < 1.0)
                return false;
            break;
          case Opcode::Lds:
          case Opcode::Sts:
            if (_shared_tokens < 1.0)
                return false;
            break;
          case Opcode::Ldg:
          case Opcode::Stg:
          case Opcode::Ldl:
          case Opcode::Stl:
          case Opcode::Atom:
            if (_mem_tokens < 1.0)
                return false;
            if (_inflight_misses.size() >= kL1Mshrs)
                return false; // structural: MSHRs exhausted
            break;
          default:
            break;
        }

        // Issue.
        uint64_t ready = now;
        switch (inst.opcode) {
          case Opcode::IAdd:
            ready = now + kAluLatency;
            break;
          case Opcode::FFma:
            _fp32_tokens -= 1.0;
            ready = now + kFmaLatency;
            break;
          case Opcode::DFma:
            _fp32_tokens -= 1.0;
            ready = now + kDfmaLatency;
            break;
          case Opcode::Mufu:
            _sfu_tokens -= 1.0;
            ready = now + kSfuLatency;
            break;
          case Opcode::Lds:
          case Opcode::Sts:
            _shared_tokens -= 1.0;
            ready = now + kSharedLatency;
            break;
          case Opcode::Bra:
            ready = now + kBranchLatency;
            warp.stallUntil = ready;
            if (inst.isDivergentBranch())
                warp.divergedFor = kDivergenceWindow;
            break;
          case Opcode::Exit:
            warp.done = true;
            SIEVE_ASSERT(_active_warps > 0, "warp underflow");
            --_active_warps;
            break;
          case Opcode::Ldg:
          case Opcode::Ldl:
          case Opcode::Stl: {
            _mem_tokens -= 1.0;
            CacheOutcome outcome = _l1.access(inst.lineAddress, now);
            if (outcome == CacheOutcome::Hit) {
                ready = now + kL1HitLatency;
            } else {
                _l1.fill(inst.lineAddress);
                uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                                 _arch.sectorBytes;
                ready = _memsys->accessGlobal(inst.lineAddress,
                                              std::max(bytes, 32u),
                                              now);
                _inflight_misses.push_back(ready);
                std::push_heap(_inflight_misses.begin(),
                               _inflight_misses.end(),
                               std::greater<>());
            }
            break;
          }
          case Opcode::Stg: {
            _mem_tokens -= 1.0;
            // Write-through, fire-and-forget: consumes bandwidth but
            // does not block the warp.
            uint32_t bytes = static_cast<uint32_t>(inst.sectors) *
                             _arch.sectorBytes;
            _memsys->accessGlobal(inst.lineAddress,
                                  std::max(bytes, 32u), now);
            ready = now;
            break;
          }
          case Opcode::Atom: {
            _mem_tokens -= 1.0;
            ready = _memsys->atomic(inst.lineAddress, now);
            _inflight_misses.push_back(ready);
            std::push_heap(_inflight_misses.begin(),
                           _inflight_misses.end(), std::greater<>());
            break;
          }
        }

        if (inst.destReg != 0)
            warp.regReady[inst.destReg] = ready;

        if (warp.divergedFor > 0 && inst.opcode != Opcode::Bra) {
            // SIMT path serialization: each instruction in the
            // divergent region issues twice (once per path).
            if (!warp.replayPending) {
                warp.replayPending = true;
                ++_stats.divergenceReplays;
                return true; // slot consumed; pc stays for the replay
            }
            warp.replayPending = false;
            --warp.divergedFor;
        }

        ++warp.pc;
        ++_stats.warpInstructions;
        if (!warp.done && warp.pc >= warp.instCount) {
            warp.done = true;
            SIEVE_ASSERT(_active_warps > 0, "warp underflow");
            --_active_warps;
        }
        return true;
    }

    const gpu::ArchConfig &_arch;
    MemorySystem *_memsys;
    Cache _l1;
    std::vector<WarpContext> _warps;
    std::vector<uint64_t> _inflight_misses; //!< min-heap of ready times
    size_t _resident_ctas = 0;
    size_t _active_warps = 0;
    uint32_t _rr_cursor = 0;

    double _fp32_tokens = 0.0;
    double _sfu_tokens = 0.0;
    double _mem_tokens = 0.0;
    double _shared_tokens = 0.0;
    uint64_t _token_cycle = ~0ULL;

    SmStats _stats;
};

} // namespace

SimCoreResult
simulateCore(const gpu::ArchConfig &arch, const GpuSimConfig &config,
             const trace::ColumnarTrace &trace, uint32_t cpsm,
             uint32_t sim_sms)
{
    size_t num_ctas = trace.numCtas();
    double machine_fraction = static_cast<double>(sim_sms) /
                              static_cast<double>(arch.numSms);

    MemorySystem memsys(arch, machine_fraction);
    std::vector<Sm> sms;
    sms.reserve(sim_sms);
    for (uint32_t s = 0; s < sim_sms; ++s)
        sms.emplace_back(arch, &memsys);

    // Wave-synchronous CTA scheduling: fill every SM to its residency
    // limit, run the wave to completion, then launch the next wave.
    uint64_t now = 0;
    size_t next_cta = 0;
    uint64_t waves_sim = 0;

    auto issued_so_far = [&sms] {
        uint64_t total = 0;
        for (const auto &sm : sms)
            total += sm.stats().warpInstructions;
        return total;
    };
    uint64_t pkp_window_insts = 0;
    uint64_t pkp_window_start = 0;
    double pkp_prev_ipc = -1.0;
    uint32_t pkp_streak = 0;
    bool pkp_stop = false;

    // Per-wave decode state: arena slabs and the warp-view scratch
    // vector are reused across waves. The scratch is reserved once
    // from the columnar extent tables — the widest CTA bounds every
    // later push_back.
    trace::DecodeArena arena;
    std::vector<trace::DecodedWarp> cta_warps;
    size_t max_cta_warps = 0;
    for (size_t c = 0; c < num_ctas; ++c)
        max_cta_warps = std::max<size_t>(
            max_cta_warps,
            trace.ctaWarpOffsets[c + 1] - trace.ctaWarpOffsets[c]);
    cta_warps.reserve(max_cta_warps);

    while (next_cta < num_ctas && !pkp_stop) {
        arena.clear();
        for (auto &sm : sms) {
            for (uint32_t slot = 0;
                 slot < cpsm && next_cta < num_ctas; ++slot) {
                size_t c = next_cta++;
                cta_warps.clear();
                for (size_t w = trace.ctaWarpOffsets[c];
                     w < trace.ctaWarpOffsets[c + 1]; ++w) {
                    size_t n = trace::warpInstructionCount(trace, w);
                    trace::SassInstruction *buf = arena.alloc(n);
                    trace::decodeWarp(trace, w, buf);
                    cta_warps.push_back({buf, n});
                }
                sm.assignCta(cta_warps.data(), cta_warps.size());
            }
        }
        ++waves_sim;

        bool any_busy = true;
        while (any_busy) {
            bool issued = false;
            any_busy = false;
            for (auto &sm : sms) {
                if (sm.busy()) {
                    any_busy = true;
                    issued |= sm.step(now);
                }
            }
            if (!any_busy)
                break;
            if (issued) {
                ++now;
            } else {
                // Nothing issued: fast-forward to the earliest event.
                uint64_t next = ~0ULL;
                for (auto &sm : sms) {
                    if (sm.busy())
                        next = std::min(next, sm.nextEventAfter(now));
                }
                now = std::max(next == ~0ULL ? now + 1 : next,
                               now + 1);
            }
        }
        for (auto &sm : sms)
            sm.clearResidency();

        // PKP convergence at CTA-wave granularity.
        if (config.pkpEnabled) {
            uint64_t done = issued_so_far();
            double span = static_cast<double>(now - pkp_window_start);
            double wave_ipc =
                static_cast<double>(done - pkp_window_insts) /
                std::max(span, 1.0);
            pkp_window_insts = done;
            pkp_window_start = now;

            if (pkp_prev_ipc > 0.0 && wave_ipc > 0.0) {
                double delta = std::fabs(wave_ipc - pkp_prev_ipc) /
                               pkp_prev_ipc;
                pkp_streak = delta < config.pkpTolerance
                                 ? pkp_streak + 1
                                 : 0;
                if (pkp_streak >= config.pkpPatience)
                    pkp_stop = true;
            }
            pkp_prev_ipc = wave_ipc;
        }
    }

    SimCoreResult core;
    core.simCycles = now;
    core.wavesSimulated = waves_sim;
    core.instructionsIssued = issued_so_far();
    core.pkpStopped = pkp_stop;
    core.pkpLastIpc = pkp_prev_ipc;
    for (const auto &sm : sms) {
        const CacheStats &l1 = sm.l1Stats();
        core.l1.accesses += l1.accesses;
        core.l1.hits += l1.hits;
        core.l1.misses += l1.misses;
        core.l1.mshrMerges += l1.mshrMerges;
        core.l1.mshrStalls += l1.mshrStalls;
    }
    core.l2 = memsys.l2Stats();
    core.dram = memsys.dramStats();
    return core;
}

} // namespace sieve::gpusim::reference
