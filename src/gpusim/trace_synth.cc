#include "gpusim/trace_synth.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sieve::gpusim {

namespace {

using trace::Opcode;
using trace::SassInstruction;

/** Per-warp synthesis state. */
struct WarpSynth
{
    Rng rng;
    uint8_t next_reg = 8;      //!< cycling destination registers
    uint64_t recent_lines[4] = {0, 0, 0, 0};
    size_t recent_pos = 0;

    explicit WarpSynth(Rng r) : rng(std::move(r)) {}

    uint8_t
    allocReg()
    {
        uint8_t r = next_reg;
        next_reg = next_reg >= 30 ? 8 : next_reg + 1;
        return r;
    }
};

/**
 * FNV-1a over the invocation fields that shape the synthesized trace.
 * Two invocations with equal launch/mix/memory content hash equally,
 * so contentSeeded synthesis gives them byte-identical traces.
 */
uint64_t
contentSeed(const trace::KernelInvocation &inv)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix_in = [&h](uint64_t v) {
        h = (h ^ v) * 0x100000001b3ULL;
    };
    auto mix_double = [&](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix_in(bits);
    };
    mix_in(inv.launch.grid.x);
    mix_in(inv.launch.grid.y);
    mix_in(inv.launch.grid.z);
    mix_in(inv.launch.cta.x);
    mix_in(inv.launch.cta.y);
    mix_in(inv.launch.cta.z);
    mix_in(inv.launch.sharedMemBytes);
    mix_in(inv.launch.regsPerThread);
    mix_in(inv.mix.coalescedGlobalLoads);
    mix_in(inv.mix.coalescedGlobalStores);
    mix_in(inv.mix.coalescedLocalLoads);
    mix_in(inv.mix.threadGlobalLoads);
    mix_in(inv.mix.threadGlobalStores);
    mix_in(inv.mix.threadLocalLoads);
    mix_in(inv.mix.threadSharedLoads);
    mix_in(inv.mix.threadSharedStores);
    mix_in(inv.mix.threadGlobalAtomics);
    mix_in(inv.mix.instructionCount);
    mix_double(inv.mix.divergenceEfficiency);
    mix_in(inv.mix.numThreadBlocks);
    mix_double(inv.memory.l1Locality);
    mix_double(inv.memory.l2Locality);
    mix_in(inv.memory.workingSetBytes);
    mix_double(inv.memory.bankConflictRate);
    mix_double(inv.memory.longLatencyFrac);
    mix_double(inv.memory.ilp);
    return h;
}

} // namespace

trace::KernelTrace
synthesizeTrace(const trace::Workload &workload, size_t invocation_index,
                TraceSynthOptions options)
{
    const trace::KernelInvocation &inv =
        workload.invocation(invocation_index);
    return synthesizeTrace(workload.kernel(inv.kernelId).name, inv,
                           options);
}

trace::KernelTrace
synthesizeTrace(const std::string &kernel_name,
                const trace::KernelInvocation &inv,
                TraceSynthOptions options)
{
    const trace::InstructionMix &mix = inv.mix;
    const trace::MemoryProfile &mem = inv.memory;

    trace::KernelTrace out;
    out.kernelName = kernel_name;
    out.invocationId = inv.invocationId;
    out.launch = inv.launch;

    uint64_t total_ctas = std::max<uint64_t>(inv.launch.numCtas(), 1);
    uint64_t traced_ctas =
        std::min<uint64_t>(total_ctas, options.maxTracedCtas);
    out.ctaReplication = (total_ctas + traced_ctas - 1) / traced_ctas;

    uint32_t warps_per_cta = std::max(inv.launch.warpsPerCta(), 1u);
    uint64_t total_warps = total_ctas * warps_per_cta;
    uint64_t insts_per_warp = std::max<uint64_t>(
        mix.instructionCount / std::max<uint64_t>(total_warps, 1), 4);

    // Class probabilities per warp instruction, from the mix. The
    // thread-level counters divide by the active lane count to give
    // warp-level op counts.
    double wi = static_cast<double>(mix.instructionCount);
    double lanes = std::max(mix.divergenceEfficiency * 32.0, 1.0);
    auto frac = [&](uint64_t thread_count) {
        return std::min(static_cast<double>(thread_count) / lanes / wi,
                        0.45);
    };
    double p_ldg = frac(mix.threadGlobalLoads);
    double p_stg = frac(mix.threadGlobalStores);
    double p_ldl = frac(mix.threadLocalLoads);
    double p_lds = frac(mix.threadSharedLoads);
    double p_sts = frac(mix.threadSharedStores);
    double p_atom = frac(mix.threadGlobalAtomics);
    double p_long = std::max(0.0, (1.0 - p_ldg - p_stg - p_ldl - p_lds -
                                   p_sts - p_atom)) *
                    mem.longLatencyFrac;

    // Average sectors per global access, recovered from the mix.
    double accesses =
        static_cast<double>(mix.threadGlobalLoads +
                            mix.threadGlobalStores) / lanes;
    double sectors_per_access =
        accesses > 0.0
            ? std::clamp(static_cast<double>(mix.coalescedGlobalLoads +
                                             mix.coalescedGlobalStores) /
                             accesses,
                         1.0, 32.0)
            : 1.0;

    uint64_t ws_lines = std::max<uint64_t>(
        mem.workingSetBytes / options.lineBytes, 16);
    uint8_t active_lanes = static_cast<uint8_t>(
        std::clamp(mix.divergenceEfficiency * 32.0, 1.0, 32.0));
    // Dependency distance approximates the kernel's ILP: a source
    // register produced `ilp` instructions ago stalls only when the
    // pipeline is longer than the gap.
    uint32_t dep_distance = static_cast<uint32_t>(
        std::clamp(mem.ilp, 1.0, 8.0));

    uint64_t stream_seed =
        options.contentSeeded ? contentSeed(inv) : inv.noiseSeed;
    Rng base_rng(hashLabel(out.kernelName) ^ stream_seed);

    out.ctas.reserve(traced_ctas);
    for (uint64_t c = 0; c < traced_ctas; ++c) {
        trace::CtaTrace cta;
        cta.warps.reserve(warps_per_cta);
        // CTA-private slice of the working set plus a shared region,
        // so both intra-CTA reuse and cross-CTA sharing exist.
        uint64_t cta_base = (c * ws_lines) / traced_ctas;

        for (uint32_t w = 0; w < warps_per_cta; ++w) {
            trace::WarpTrace warp;
            warp.instructions.reserve(insts_per_warp + 2);
            WarpSynth synth(base_rng.split(c * 1024 + w));

            std::vector<uint8_t> recent_dests;
            recent_dests.reserve(dep_distance + 1);

            for (uint64_t i = 0; i < insts_per_warp; ++i) {
                SassInstruction inst;
                inst.activeLanes = active_lanes;

                double r = synth.rng.uniform();
                double acc = 0.0;
                auto in_class = [&](double p) {
                    acc += p;
                    return r < acc;
                };

                if (in_class(p_ldg)) {
                    inst.opcode = Opcode::Ldg;
                } else if (in_class(p_stg)) {
                    inst.opcode = Opcode::Stg;
                } else if (in_class(p_ldl)) {
                    inst.opcode = Opcode::Ldl;
                } else if (in_class(p_lds)) {
                    inst.opcode = Opcode::Lds;
                } else if (in_class(p_sts)) {
                    inst.opcode = Opcode::Sts;
                } else if (in_class(p_atom)) {
                    inst.opcode = Opcode::Atom;
                } else if (in_class(p_long)) {
                    inst.opcode = synth.rng.bernoulli(0.5)
                                      ? Opcode::Mufu
                                      : Opcode::DFma;
                } else if (options.basicBlockSize > 0 &&
                           (i + 1) % options.basicBlockSize == 0) {
                    inst.opcode = Opcode::Bra;
                    // Low lane efficiency means the kernel's branches
                    // split the warp: mark a fraction of branches
                    // divergent with a proportional taken-mask.
                    double div = 1.0 - mix.divergenceEfficiency;
                    if (div > 0.01 && synth.rng.bernoulli(
                                          std::min(2.0 * div, 0.9))) {
                        inst.sectors = static_cast<uint8_t>(std::clamp(
                            static_cast<int>(active_lanes / 2), 1,
                            static_cast<int>(active_lanes) - 1));
                    } else {
                        inst.sectors =
                            active_lanes; // uniform branch
                    }
                } else {
                    inst.opcode = synth.rng.bernoulli(0.6)
                                      ? Opcode::FFma
                                      : Opcode::IAdd;
                }

                // Register dependencies: read a value produced about
                // dep_distance instructions ago.
                if (inst.opcode != Opcode::Bra) {
                    inst.destReg = synth.allocReg();
                    if (!recent_dests.empty()) {
                        size_t back = std::min<size_t>(
                            dep_distance, recent_dests.size());
                        inst.srcReg0 =
                            recent_dests[recent_dests.size() - back];
                        inst.srcReg1 = recent_dests.back();
                    }
                    recent_dests.push_back(inst.destReg);
                    if (recent_dests.size() > 16) {
                        recent_dests.erase(recent_dests.begin(),
                                           recent_dests.begin() + 8);
                    }
                }

                // Memory addresses: reuse a recent line with the
                // kernel's locality probability, else touch a fresh
                // line of the CTA's working-set slice.
                if (isGlobalMemory(inst.opcode)) {
                    inst.sectors = static_cast<uint8_t>(std::clamp(
                        sectors_per_access +
                            synth.rng.uniform(-0.49, 0.49),
                        1.0, 32.0));
                    if (synth.rng.bernoulli(mem.l1Locality)) {
                        inst.lineAddress =
                            synth.recent_lines[synth.recent_pos % 4];
                    } else if (synth.rng.bernoulli(mem.l2Locality)) {
                        // Shared region: same lines across CTAs.
                        inst.lineAddress =
                            synth.rng.next() % (ws_lines / 4 + 1);
                    } else {
                        inst.lineAddress =
                            cta_base + synth.rng.next() % ws_lines;
                    }
                    synth.recent_pos =
                        (synth.recent_pos + 1) % 4;
                    synth.recent_lines[synth.recent_pos] =
                        inst.lineAddress;
                }

                warp.instructions.push_back(inst);
            }

            SassInstruction exit;
            exit.opcode = Opcode::Exit;
            exit.activeLanes = active_lanes;
            warp.instructions.push_back(exit);
            cta.warps.push_back(std::move(warp));
        }
        out.ctas.push_back(std::move(cta));
    }
    return out;
}

} // namespace sieve::gpusim
