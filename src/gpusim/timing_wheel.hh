/**
 * @file
 * Bucketed timing wheel for MSHR fill / DRAM return times.
 *
 * The SM's outstanding-miss set only ever needs three queries: how
 * many entries are in flight (structural MSHR bound), drop everything
 * that has retired by `now`, and the earliest outstanding ready time
 * (for cycle skipping). A binary heap answers those with branchy
 * pointer-chasing pops; the wheel answers them with counters in a
 * power-of-two ring of time slots. Entries beyond the ring's horizon
 * go to a small overflow list (the population is bounded by the MSHR
 * count, so the list stays tiny) and migrate into the ring as the
 * base advances past them.
 *
 * Time never moves backwards: advanceTo() must be called with
 * monotonically non-decreasing `now`, and push() must be at or after
 * the current base. Both hold in the simulator, where ready times are
 * always in the future of the issuing cycle.
 */

#ifndef SIEVE_GPUSIM_TIMING_WHEEL_HH
#define SIEVE_GPUSIM_TIMING_WHEEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace sieve::gpusim {

/** Counting timing wheel over absolute cycle times. */
class TimingWheel
{
  public:
    /** @param slots ring size; must be a power of two */
    explicit TimingWheel(size_t slots = 4096)
    {
        SIEVE_ASSERT(slots != 0 && (slots & (slots - 1)) == 0,
                     "wheel slots ", slots, " not a power of two");
        _mask = slots - 1;
        _bucket.assign(slots, 0);
        _overflow.reserve(64);
    }

    /** Number of outstanding entries. */
    size_t size() const { return _size; }

    bool empty() const { return _size == 0; }

    /** Insert a ready time. @pre time >= base (no past inserts) */
    void push(uint64_t time)
    {
        SIEVE_ASSERT(time >= _base, "wheel push into the past: ", time,
                     " < base ", _base);
        if (time - _base <= _mask) {
            ++_bucket[time & _mask];
            ++_in_ring;
        } else {
            _overflow.push_back(time);
        }
        if (time < _min)
            _min = time;
        ++_size;
    }

    /**
     * Retire every entry with time <= now and advance the base so
     * future pushes may land anywhere in (now, now + slots].
     * @return number of entries retired
     */
    size_t advanceTo(uint64_t now)
    {
        SIEVE_ASSERT(now + 1 >= _base, "wheel time moved backwards");
        size_t retired = 0;
        // Drain ring slots in [base, now]; stop early once the ring
        // is empty (big skips cross mostly-empty regions).
        uint64_t stop = _base + _mask < now ? _base + _mask : now;
        for (uint64_t t = _base; t <= stop && _in_ring > 0; ++t) {
            uint32_t &b = _bucket[t & _mask];
            retired += b;
            _in_ring -= b;
            b = 0;
        }
        _base = now + 1;
        // Retire overflow entries that are due, and migrate the rest
        // into the ring if the new base brings them within horizon.
        for (size_t i = 0; i < _overflow.size();) {
            uint64_t t = _overflow[i];
            if (t <= now) {
                ++retired;
                _overflow[i] = _overflow.back();
                _overflow.pop_back();
            } else if (t - _base <= _mask) {
                ++_bucket[t & _mask];
                ++_in_ring;
                _overflow[i] = _overflow.back();
                _overflow.pop_back();
            } else {
                ++i;
            }
        }
        _size -= retired;
        if (_size == 0)
            _min = ~0ULL;
        else if (_min <= now)
            _min_dirty = true; // old minimum retired; rescan lazily
        return retired;
    }

    /**
     * Earliest outstanding ready time. @pre !empty()
     */
    uint64_t nextReady() const
    {
        SIEVE_ASSERT(_size != 0, "nextReady on empty wheel");
        if (_min_dirty)
            rescanMin();
        return _min;
    }

    /** Drop all entries; keeps capacity. */
    void clear()
    {
        if (_in_ring > 0)
            std::fill(_bucket.begin(), _bucket.end(), 0u);
        _overflow.clear();
        _size = 0;
        _in_ring = 0;
        _base = 0;
        _min = ~0ULL;
        _min_dirty = false;
    }

  private:
    void rescanMin() const
    {
        uint64_t best = ~0ULL;
        if (_in_ring > 0) {
            for (uint64_t t = _base; t <= _base + _mask; ++t) {
                if (_bucket[t & _mask] != 0) {
                    best = t;
                    break;
                }
            }
            SIEVE_ASSERT(best != ~0ULL, "wheel ring population desynced");
        }
        for (uint64_t t : _overflow)
            best = t < best ? t : best;
        _min = best;
        _min_dirty = false;
    }

    std::vector<uint32_t> _bucket;
    std::vector<uint64_t> _overflow; //!< times beyond the horizon
    uint64_t _mask = 0;
    uint64_t _base = 0; //!< earliest time representable in the ring
    size_t _size = 0;
    size_t _in_ring = 0;
    mutable uint64_t _min = ~0ULL;
    mutable bool _min_dirty = false;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_TIMING_WHEEL_HH
