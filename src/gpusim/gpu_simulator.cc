#include "gpusim/gpu_simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "gpu/occupancy.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/sm.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::gpusim {

GpuSimulator::GpuSimulator(gpu::ArchConfig arch, GpuSimConfig config)
    : _arch(std::move(arch)), _config(config)
{
    if (_config.simSms == 0 || _config.simSms > _arch.numSms)
        fatal("simSms ", _config.simSms, " out of [1, ", _arch.numSms,
              "]");
}

KernelSimResult
GpuSimulator::simulate(const trace::KernelTrace &trace) const
{
    return simulate(trace::toColumnar(trace));
}

KernelSimResult
GpuSimulator::simulate(const trace::ColumnarTrace &trace) const
{
    size_t num_ctas = trace.numCtas();
    SIEVE_ASSERT(num_ctas != 0, "empty kernel trace");
    obs::Span span("gpusim", "sim:" + trace.kernelName);
    auto wall_start = std::chrono::steady_clock::now();

    uint32_t cpsm = gpu::maxResidentCtas(_arch, trace.launch);

    // Use only as many SMs as the traced CTAs can fill at full
    // residency: a half-empty simulated wave would run at lower
    // occupancy than the real machine and bias the extrapolation.
    uint32_t sim_sms = std::clamp<uint32_t>(
        static_cast<uint32_t>(num_ctas / cpsm), 1, _config.simSms);
    double machine_fraction = static_cast<double>(sim_sms) /
                              static_cast<double>(_arch.numSms);

    MemorySystem memsys(_arch, machine_fraction);
    std::vector<StreamingMultiprocessor> sms;
    sms.reserve(sim_sms);
    for (uint32_t s = 0; s < sim_sms; ++s)
        sms.emplace_back(_arch, &memsys);

    // Wave-synchronous CTA scheduling: fill every SM to its residency
    // limit, run the wave to completion, then launch the next wave.
    uint64_t now = 0;
    size_t next_cta = 0;
    size_t waves_sim = 0;

    // PKP state: windowed IPC convergence detection.
    auto issued_so_far = [&sms] {
        uint64_t total = 0;
        for (const auto &sm : sms)
            total += sm.stats().warpInstructions;
        return total;
    };
    uint64_t pkp_window_insts = 0;
    uint64_t pkp_window_start = 0;
    double pkp_prev_ipc = -1.0;
    uint32_t pkp_streak = 0;
    bool pkp_stop = false;

    // Per-wave decode state: arena slabs and the warp-view scratch
    // vector are reused across waves, so the loop below performs no
    // steady-state allocation.
    trace::DecodeArena arena;
    std::vector<trace::DecodedWarp> cta_warps;

    while (next_cta < num_ctas && !pkp_stop) {
        arena.clear();
        for (auto &sm : sms) {
            for (uint32_t slot = 0;
                 slot < cpsm && next_cta < num_ctas; ++slot) {
                size_t c = next_cta++;
                cta_warps.clear();
                for (size_t w = trace.ctaWarpOffsets[c];
                     w < trace.ctaWarpOffsets[c + 1]; ++w) {
                    size_t n = trace::warpInstructionCount(trace, w);
                    trace::SassInstruction *buf = arena.alloc(n);
                    trace::decodeWarp(trace, w, buf);
                    cta_warps.push_back({buf, n});
                }
                sm.assignCta(cta_warps.data(), cta_warps.size());
            }
        }
        ++waves_sim;

        bool any_busy = true;
        while (any_busy) {
            bool issued = false;
            any_busy = false;
            for (auto &sm : sms) {
                if (sm.busy()) {
                    any_busy = true;
                    issued |= sm.step(now);
                }
            }
            if (!any_busy)
                break;
            if (issued) {
                ++now;
            } else {
                // Nothing issued: fast-forward to the earliest event.
                uint64_t next = ~0ULL;
                for (auto &sm : sms) {
                    if (sm.busy())
                        next = std::min(next, sm.nextEventAfter(now));
                }
                now = std::max(next == ~0ULL ? now + 1 : next, now + 1);
            }

        }
        for (auto &sm : sms)
            sm.clearResidency();

        // PKP convergence is checked at CTA-wave granularity: a wave
        // is the natural repeating unit of a kernel's execution, and
        // measuring across the wave boundary includes the drain
        // overhead that mid-wave windows would miss.
        if (_config.pkpEnabled) {
            uint64_t done = issued_so_far();
            double span = static_cast<double>(now - pkp_window_start);
            double wave_ipc =
                static_cast<double>(done - pkp_window_insts) /
                std::max(span, 1.0);
            pkp_window_insts = done;
            pkp_window_start = now;

            if (pkp_prev_ipc > 0.0 && wave_ipc > 0.0) {
                double delta = std::fabs(wave_ipc - pkp_prev_ipc) /
                               pkp_prev_ipc;
                pkp_streak = delta < _config.pkpTolerance
                                 ? pkp_streak + 1
                                 : 0;
                if (pkp_streak >= _config.pkpPatience)
                    pkp_stop = true;
            }
            pkp_prev_ipc = wave_ipc;
        }
    }

    KernelSimResult result;
    result.simCycles = now;

    // PKP extrapolation: charge the unsimulated remainder of the
    // trace at the converged IPC.
    uint64_t traced_total = trace.tracedInstructions();
    uint64_t done = issued_so_far();
    if (pkp_stop && done < traced_total && pkp_prev_ipc > 0.0) {
        result.pkpStoppedEarly = true;
        result.simCycles +=
            static_cast<uint64_t>(static_cast<double>(
                                      traced_total - done) /
                                  pkp_prev_ipc);
    }
    result.fractionSimulated =
        traced_total > 0
            ? static_cast<double>(done) /
                  static_cast<double>(traced_total)
            : 1.0;

    for (const auto &sm : sms) {
        result.instructionsSimulated += sm.stats().warpInstructions;
        const CacheStats &l1 = sm.l1Stats();
        result.l1.accesses += l1.accesses;
        result.l1.hits += l1.hits;
        result.l1.misses += l1.misses;
        result.l1.mshrMerges += l1.mshrMerges;
        result.l1.mshrStalls += l1.mshrStalls;
    }
    result.l2 = memsys.l2Stats();
    result.dram = memsys.dramStats();
    result.ipc = result.simCycles > 0
                     ? static_cast<double>(result.instructionsSimulated) /
                           static_cast<double>(result.simCycles)
                     : 0.0;

    // Extrapolate to the full grid on the full machine: cycles scale
    // with the number of full-residency CTA waves each configuration
    // needs.
    double total_ctas = static_cast<double>(
        std::max<uint64_t>(trace.launch.numCtas(), 1));
    double traced_ctas = static_cast<double>(num_ctas);
    double waves_real = std::ceil(
        total_ctas /
        (static_cast<double>(_arch.numSms) * static_cast<double>(cpsm)));
    double waves_traced = std::ceil(
        traced_ctas /
        (static_cast<double>(sim_sms) * static_cast<double>(cpsm)));
    double scale = std::max(waves_real / waves_traced, 1.0);
    result.estimatedKernelCycles =
        static_cast<double>(result.simCycles) * scale +
        _arch.launchOverheadCycles;

    double represented_insts =
        static_cast<double>(result.instructionsSimulated) *
        (total_ctas / traced_ctas);
    result.estimatedIpc =
        represented_insts / result.estimatedKernelCycles;

    // Simulation-fact counters, all derived from the result of the
    // deterministic single-kernel simulation above, so every one is
    // Stable regardless of how many kernels simulate concurrently.
    static obs::Counter &c_kernels = obs::counter("gpusim.kernels");
    static obs::Counter &c_insts = obs::counter("gpusim.insts");
    static obs::Counter &c_cycles = obs::counter("gpusim.cycles");
    static obs::Counter &c_waves = obs::counter("gpusim.waves");
    static obs::Counter &c_l1_hits = obs::counter("gpusim.l1.hits");
    static obs::Counter &c_l1_misses =
        obs::counter("gpusim.l1.misses");
    static obs::Counter &c_l2_hits = obs::counter("gpusim.l2.hits");
    static obs::Counter &c_l2_misses =
        obs::counter("gpusim.l2.misses");
    static obs::Counter &c_dram_reqs =
        obs::counter("gpusim.dram.accesses");
    static obs::Counter &c_dram_bytes =
        obs::counter("gpusim.dram.bytes");
    static obs::Counter &c_pkp_stops =
        obs::counter("gpusim.pkp.early_stops");
    c_kernels.add();
    c_insts.add(result.instructionsSimulated);
    c_cycles.add(result.simCycles);
    c_waves.add(waves_sim);
    c_l1_hits.add(result.l1.hits);
    c_l1_misses.add(result.l1.misses);
    c_l2_hits.add(result.l2.hits);
    c_l2_misses.add(result.l2.misses);
    c_dram_reqs.add(result.dram.requests);
    c_dram_bytes.add(result.dram.bytes);
    if (result.pkpStoppedEarly)
        c_pkp_stops.add();

    auto wall_end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    return result;
}

} // namespace sieve::gpusim
