#include "gpusim/gpu_simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "gpu/occupancy.hh"
#include "gpusim/reference.hh"
#include "gpusim/sim_core.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::gpusim {

namespace {

/**
 * Process-wide engine override: SIEVE_SIM_ENGINE=event|reference.
 * Read once; CI flips it to run an entire suite on the oracle.
 */
const SimEngine *
engineOverride()
{
    static const SimEngine *override_engine = [] () -> SimEngine * {
        const char *env = std::getenv("SIEVE_SIM_ENGINE");
        if (env == nullptr || *env == '\0')
            return nullptr;
        static SimEngine engine;
        if (std::strcmp(env, "event") == 0)
            engine = SimEngine::EventDriven;
        else if (std::strcmp(env, "reference") == 0)
            engine = SimEngine::Reference;
        else
            fatal("SIEVE_SIM_ENGINE='", env,
                  "' (expected 'event' or 'reference')");
        return &engine;
    }();
    return override_engine;
}

} // namespace

GpuSimulator::GpuSimulator(gpu::ArchConfig arch, GpuSimConfig config)
    : _arch(std::move(arch)), _config(config)
{
    if (_config.simSms == 0 || _config.simSms > _arch.numSms)
        fatal("simSms ", _config.simSms, " out of [1, ", _arch.numSms,
              "]");
    if (const SimEngine *forced = engineOverride())
        _config.engine = *forced;
}

KernelSimResult
GpuSimulator::simulate(const trace::KernelTrace &trace) const
{
    return simulate(trace::toColumnar(trace));
}

KernelSimResult
GpuSimulator::simulate(const trace::ColumnarTrace &trace) const
{
    size_t num_ctas = trace.numCtas();
    SIEVE_ASSERT(num_ctas != 0, "empty kernel trace");
    obs::Span span("gpusim", "sim:" + trace.kernelName);
    auto wall_start = std::chrono::steady_clock::now();

    uint32_t cpsm = gpu::maxResidentCtas(_arch, trace.launch);

    // Use only as many SMs as the traced CTAs can fill at full
    // residency: a half-empty simulated wave would run at lower
    // occupancy than the real machine and bias the extrapolation.
    uint32_t sim_sms = std::clamp<uint32_t>(
        static_cast<uint32_t>(num_ctas / cpsm), 1, _config.simSms);

    // Run the selected scheduling core; everything below this call is
    // engine-independent, so a result mismatch is always the core's.
    SimCoreResult core =
        _config.engine == SimEngine::Reference
            ? reference::simulateCore(_arch, _config, trace, cpsm,
                                      sim_sms)
            : runEventCore(_arch, _config, trace, cpsm, sim_sms);

    KernelSimResult result;
    result.simCycles = core.simCycles;
    result.wavesSimulated = core.wavesSimulated;

    // PKP extrapolation: charge the unsimulated remainder of the
    // trace at the converged IPC.
    uint64_t traced_total = trace.tracedInstructions();
    uint64_t done = core.instructionsIssued;
    if (core.pkpStopped && done < traced_total &&
        core.pkpLastIpc > 0.0) {
        result.pkpStoppedEarly = true;
        result.simCycles +=
            static_cast<uint64_t>(static_cast<double>(
                                      traced_total - done) /
                                  core.pkpLastIpc);
    }
    result.fractionSimulated =
        traced_total > 0
            ? static_cast<double>(done) /
                  static_cast<double>(traced_total)
            : 1.0;

    result.instructionsSimulated = core.instructionsIssued;
    result.l1 = core.l1;
    result.l2 = core.l2;
    result.dram = core.dram;
    result.ipc = result.simCycles > 0
                     ? static_cast<double>(result.instructionsSimulated) /
                           static_cast<double>(result.simCycles)
                     : 0.0;

    // Extrapolate to the full grid on the full machine: cycles scale
    // with the number of full-residency CTA waves each configuration
    // needs.
    double total_ctas = static_cast<double>(
        std::max<uint64_t>(trace.launch.numCtas(), 1));
    double traced_ctas = static_cast<double>(num_ctas);
    double waves_real = std::ceil(
        total_ctas /
        (static_cast<double>(_arch.numSms) * static_cast<double>(cpsm)));
    double waves_traced = std::ceil(
        traced_ctas /
        (static_cast<double>(sim_sms) * static_cast<double>(cpsm)));
    double scale = std::max(waves_real / waves_traced, 1.0);
    result.estimatedKernelCycles =
        static_cast<double>(result.simCycles) * scale +
        _arch.launchOverheadCycles;

    double represented_insts =
        static_cast<double>(result.instructionsSimulated) *
        (total_ctas / traced_ctas);
    result.estimatedIpc =
        represented_insts / result.estimatedKernelCycles;

    // Simulation-fact counters, all flushed once per kernel from the
    // result of the deterministic single-kernel simulation above, so
    // every one is Stable regardless of how many kernels simulate
    // concurrently — and identical across engines because the result
    // is.
    static obs::Counter &c_kernels = obs::counter("gpusim.kernels");
    static obs::Counter &c_insts = obs::counter("gpusim.insts");
    static obs::Counter &c_cycles = obs::counter("gpusim.cycles");
    static obs::Counter &c_waves = obs::counter("gpusim.waves");
    static obs::Counter &c_l1_hits = obs::counter("gpusim.l1.hits");
    static obs::Counter &c_l1_misses =
        obs::counter("gpusim.l1.misses");
    static obs::Counter &c_l2_hits = obs::counter("gpusim.l2.hits");
    static obs::Counter &c_l2_misses =
        obs::counter("gpusim.l2.misses");
    static obs::Counter &c_dram_reqs =
        obs::counter("gpusim.dram.accesses");
    static obs::Counter &c_dram_bytes =
        obs::counter("gpusim.dram.bytes");
    static obs::Counter &c_pkp_stops =
        obs::counter("gpusim.pkp.early_stops");
    c_kernels.add();
    c_insts.add(result.instructionsSimulated);
    c_cycles.add(result.simCycles);
    c_waves.add(result.wavesSimulated);
    c_l1_hits.add(result.l1.hits);
    c_l1_misses.add(result.l1.misses);
    c_l2_hits.add(result.l2.hits);
    c_l2_misses.add(result.l2.misses);
    c_dram_reqs.add(result.dram.requests);
    c_dram_bytes.add(result.dram.bytes);
    if (result.pkpStoppedEarly)
        c_pkp_stops.add();

    auto wall_end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    return result;
}

} // namespace sieve::gpusim
