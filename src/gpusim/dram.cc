#include "gpusim/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::gpusim {

DramModel::DramModel(double bytes_per_cycle, double latency_cycles)
{
    configure(bytes_per_cycle, latency_cycles);
}

void
DramModel::configure(double bytes_per_cycle, double latency_cycles)
{
    SIEVE_ASSERT(bytes_per_cycle > 0.0, "non-positive DRAM bandwidth");
    SIEVE_ASSERT(latency_cycles >= 0.0, "negative DRAM latency");
    _bytes_per_cycle = bytes_per_cycle;
    _latency = latency_cycles;
    reset();
}

uint64_t
DramModel::request(uint64_t bytes, uint64_t now)
{
    double start = std::max(_pipe_free, static_cast<double>(now));
    double service = static_cast<double>(bytes) / _bytes_per_cycle;
    _pipe_free = start + service;

    ++_stats.requests;
    _stats.bytes += bytes;
    _stats.busyCycles += static_cast<uint64_t>(service);

    return static_cast<uint64_t>(_pipe_free + _latency);
}

void
DramModel::reset()
{
    _pipe_free = 0.0;
    _stats = DramStats{};
}

} // namespace sieve::gpusim
