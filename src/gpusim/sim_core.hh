/**
 * @file
 * Shared plumbing between the two simulator cores.
 *
 * GpuSimulator::simulate() splits into a prologue (occupancy and
 * machine-fraction math), a core (the scheduling loop), and an
 * epilogue (PKP extrapolation, wave scaling, counter flush). Both
 * cores — the event-driven default and the tick-everything
 * `gpusim::reference` oracle — produce a SimCoreResult; the epilogue
 * is engine-independent, so any result divergence is attributable to
 * the core alone.
 *
 * SimWorkspace is the pooled arena state behind the event core: one
 * per thread, owning the wave arena (decoded instructions plus
 * structure-of-arrays warp state), the CTA warp-view scratch vector,
 * the shared memory system, and the SM pool. Everything is grow-only
 * and reused across invocations, so a warmed suite run performs zero
 * steady-state simulator allocations — asserted in test_sim_core via
 * simArenaGrowthEvents().
 */

#ifndef SIEVE_GPUSIM_SIM_CORE_HH
#define SIEVE_GPUSIM_SIM_CORE_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "gpusim/cache.hh"
#include "gpusim/dram.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/sm.hh"
#include "trace/columnar.hh"

namespace sieve::gpusim {

struct GpuSimConfig;

/** What a scheduling core hands back to the shared epilogue. */
struct SimCoreResult
{
    uint64_t simCycles = 0;
    uint64_t wavesSimulated = 0;
    uint64_t instructionsIssued = 0;
    bool pkpStopped = false;
    /** Last wave-window IPC observed by PKP (-1 before any wave). */
    double pkpLastIpc = -1.0;
    CacheStats l1; //!< aggregated over simulated SMs
    CacheStats l2;
    DramStats dram;
};

/** Per-thread pooled state for the event-driven core. */
class SimWorkspace
{
  public:
    /** The calling thread's workspace (created on first use). */
    static SimWorkspace &local();

    Arena waveArena; //!< decoded insts + warp SoA, reset per wave
    std::vector<trace::DecodedWarp> ctaWarps; //!< per-CTA warp views
    MemorySystem memsys;
    std::vector<StreamingMultiprocessor> sms;
    std::vector<uint64_t> smWake; //!< per-SM wake-up times
    std::vector<uint8_t> smDense; //!< per-SM StepOutcome::dense

    /** Grow the SM pool to `count` without shrinking. */
    void reserveSms(size_t count);

  private:
    SimWorkspace();
};

/**
 * Process-wide count of workspace/arena growth events (slab or pool
 * allocations attributable to simulator workspaces). Flat across
 * repeated invocations once warmed — the zero-steady-state-allocation
 * contract.
 */
uint64_t simArenaGrowthEvents();

/**
 * Run the event-driven core. `cpsm` and `sim_sms` come from the
 * prologue's occupancy math.
 */
SimCoreResult runEventCore(const gpu::ArchConfig &arch,
                           const GpuSimConfig &config,
                           const trace::ColumnarTrace &trace,
                           uint32_t cpsm, uint32_t sim_sms);

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_SIM_CORE_HH
