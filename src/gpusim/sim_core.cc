#include "gpusim/sim_core.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.hh"
#include "gpusim/gpu_simulator.hh"
#include "obs/telemetry.hh"

namespace sieve::gpusim {

namespace {

// Workspace growth accounting: wave-arena slab allocations plus pool
// (SM vector / CTA scratch) growth, mirrored process-wide so tests
// can assert the warmed steady state performs none.
std::atomic<uint64_t> g_ws_growth{0};

} // namespace

uint64_t
simArenaGrowthEvents()
{
    return g_ws_growth.load(std::memory_order_relaxed);
}

SimWorkspace::SimWorkspace()
{
    // Arena residency for the whole process, visible on the telemetry
    // timeline next to the sim-cache hit-rate track. Registered at
    // first workspace construction so runs that never simulate don't
    // grow metrics.
    static const bool probe_registered = [] {
        obs::registerTelemetryProbe("gpusim.arena.resident_bytes", [] {
            return static_cast<int64_t>(
                arenaGlobalStats().residentBytes);
        });
        return true;
    }();
    (void)probe_registered;
}

SimWorkspace &
SimWorkspace::local()
{
    thread_local SimWorkspace ws;
    return ws;
}

void
SimWorkspace::reserveSms(size_t count)
{
    if (sms.size() < count) {
        sms.resize(count);
        smWake.resize(count);
        smDense.resize(count);
        g_ws_growth.fetch_add(1, std::memory_order_relaxed);
    }
}

SimCoreResult
runEventCore(const gpu::ArchConfig &arch, const GpuSimConfig &config,
             const trace::ColumnarTrace &trace, uint32_t cpsm,
             uint32_t sim_sms)
{
    size_t num_ctas = trace.numCtas();
    double machine_fraction = static_cast<double>(sim_sms) /
                              static_cast<double>(arch.numSms);

    SimWorkspace &ws = SimWorkspace::local();
    uint64_t arena_growth_before = ws.waveArena.growthEvents();
    ws.memsys.configure(arch, machine_fraction);
    ws.reserveSms(sim_sms);
    StreamingMultiprocessor *sms = ws.sms.data();
    for (uint32_t s = 0; s < sim_sms; ++s)
        sms[s].configure(&arch, &ws.memsys);

    // The widest CTA in the trace bounds every per-wave buffer; one
    // reserve here keeps the scratch vector and the per-SM SoA blocks
    // allocation-free across CTAs and waves.
    size_t max_cta_warps = 0;
    for (size_t c = 0; c < num_ctas; ++c)
        max_cta_warps = std::max<size_t>(
            max_cta_warps,
            trace.ctaWarpOffsets[c + 1] - trace.ctaWarpOffsets[c]);
    if (ws.ctaWarps.capacity() < max_cta_warps) {
        ws.ctaWarps.reserve(max_cta_warps);
        g_ws_growth.fetch_add(1, std::memory_order_relaxed);
    }
    size_t warp_capacity = static_cast<size_t>(cpsm) * max_cta_warps;

    uint64_t now = 0;
    size_t next_cta = 0;
    uint64_t waves_sim = 0;
    // Global visited-cycle counter: increments once per iteration of
    // the inner loop below, i.e. once per distinct `now` the
    // reference would have stepped busy SMs at. Keys the lazy token
    // replay.
    uint64_t tick = 0;

    // Per-SM wake-up times. An SM whose wake time lies in the future
    // is skipped without stepping: its state can only change through
    // its own issues, so the wake value stays exact until then. The
    // dense bit carries the SM's last StepOutcome::dense — while any
    // busy SM holds it, the reference's next-event scan returns
    // now + 1 and the visited-cycle chain advances one cycle at a
    // time even though no SM needs stepping.
    uint64_t *wake = ws.smWake.data();
    uint8_t *dense = ws.smDense.data();

    auto issued_so_far = [&] {
        uint64_t total = 0;
        for (uint32_t s = 0; s < sim_sms; ++s)
            total += sms[s].stats().warpInstructions;
        return total;
    };
    uint64_t pkp_window_insts = 0;
    uint64_t pkp_window_start = 0;
    double pkp_prev_ipc = -1.0;
    uint32_t pkp_streak = 0;
    bool pkp_stop = false;

    while (next_cta < num_ctas && !pkp_stop) {
        ws.waveArena.reset();
        for (uint32_t s = 0; s < sim_sms; ++s) {
            sms[s].beginWave(ws.waveArena, warp_capacity, tick);
            wake[s] = now;
            dense[s] = 0;
            for (uint32_t slot = 0;
                 slot < cpsm && next_cta < num_ctas; ++slot) {
                size_t c = next_cta++;
                ws.ctaWarps.clear();
                for (size_t w = trace.ctaWarpOffsets[c];
                     w < trace.ctaWarpOffsets[c + 1]; ++w) {
                    size_t n = trace::warpInstructionCount(trace, w);
                    trace::SassInstruction *buf =
                        ws.waveArena.alloc<trace::SassInstruction>(n);
                    trace::decodeWarp(trace, w, buf);
                    ws.ctaWarps.push_back({buf, n});
                }
                sms[s].assignCta(ws.ctaWarps.data(),
                                 ws.ctaWarps.size());
            }
        }
        ++waves_sim;

        for (;;) {
            ++tick;
            bool issued = false;
            bool any_busy = false;
            bool any_dense = false;
            uint64_t min_wake = ~0ULL;
            for (uint32_t s = 0; s < sim_sms; ++s) {
                StreamingMultiprocessor &sm = sms[s];
                if (!sm.busy())
                    continue;
                any_busy = true;
                if (wake[s] <= now) {
                    StreamingMultiprocessor::StepOutcome out =
                        sm.step(now, tick);
                    if (out.issued) {
                        issued = true;
                        wake[s] = now + 1;
                        dense[s] = 0;
                    } else {
                        wake[s] = out.nextEvent;
                        dense[s] = out.dense;
                    }
                }
                if (sm.busy()) {
                    if (wake[s] < min_wake)
                        min_wake = wake[s];
                    any_dense |= dense[s] != 0;
                }
            }
            if (!any_busy)
                break;
            if (issued || any_dense) {
                // Some SM issued, or some SM holds a scoreboard-ready
                // warp behind a structural stall — in both cases the
                // reference's chain advances exactly one cycle.
                ++now;
            } else {
                // Nothing can issue anywhere: jump to the earliest
                // wake-up. Stored wakes equal the reference's fresh
                // nextEventAfter(now) (see sm.hh), so this is the
                // reference's fast-forward, byte for byte.
                now = std::max(min_wake == ~0ULL ? now + 1 : min_wake,
                               now + 1);
            }
        }
        for (uint32_t s = 0; s < sim_sms; ++s)
            sms[s].clearResidency();

        // PKP convergence is checked at CTA-wave granularity: a wave
        // is the natural repeating unit of a kernel's execution, and
        // measuring across the wave boundary includes the drain
        // overhead that mid-wave windows would miss.
        if (config.pkpEnabled) {
            uint64_t done = issued_so_far();
            double span = static_cast<double>(now - pkp_window_start);
            double wave_ipc =
                static_cast<double>(done - pkp_window_insts) /
                std::max(span, 1.0);
            pkp_window_insts = done;
            pkp_window_start = now;

            if (pkp_prev_ipc > 0.0 && wave_ipc > 0.0) {
                double delta = std::fabs(wave_ipc - pkp_prev_ipc) /
                               pkp_prev_ipc;
                pkp_streak = delta < config.pkpTolerance
                                 ? pkp_streak + 1
                                 : 0;
                if (pkp_streak >= config.pkpPatience)
                    pkp_stop = true;
            }
            pkp_prev_ipc = wave_ipc;
        }
    }

    SimCoreResult core;
    core.simCycles = now;
    core.wavesSimulated = waves_sim;
    core.instructionsIssued = issued_so_far();
    core.pkpStopped = pkp_stop;
    core.pkpLastIpc = pkp_prev_ipc;
    for (uint32_t s = 0; s < sim_sms; ++s) {
        const CacheStats &l1 = sms[s].l1Stats();
        core.l1.accesses += l1.accesses;
        core.l1.hits += l1.hits;
        core.l1.misses += l1.misses;
        core.l1.mshrMerges += l1.mshrMerges;
        core.l1.mshrStalls += l1.mshrStalls;
    }
    core.l2 = ws.memsys.l2Stats();
    core.dram = ws.memsys.dramStats();

    uint64_t arena_growth = ws.waveArena.growthEvents() -
                            arena_growth_before;
    if (arena_growth != 0)
        g_ws_growth.fetch_add(arena_growth,
                              std::memory_order_relaxed);
    return core;
}

} // namespace sieve::gpusim
