/**
 * @file
 * DRAM bandwidth/latency model for the cycle-level simulator.
 *
 * Requests are serviced in order through a bandwidth pipe: each
 * request occupies the pipe for bytes/bytes-per-cycle cycles, and the
 * data returns a fixed access latency after service. This captures
 * the two first-order DRAM effects — queueing under bandwidth
 * saturation and raw access latency — without modelling banks,
 * channels, or scheduling policy.
 */

#ifndef SIEVE_GPUSIM_DRAM_HH
#define SIEVE_GPUSIM_DRAM_HH

#include <cstdint>

namespace sieve::gpusim {

/** Aggregate DRAM statistics. */
struct DramStats
{
    uint64_t requests = 0;
    uint64_t bytes = 0;
    uint64_t busyCycles = 0;
};

/** In-order bandwidth pipe with fixed access latency. */
class DramModel
{
  public:
    /** An unconfigured channel; configure() must run before use. */
    DramModel() = default;

    /**
     * @param bytes_per_cycle deliverable bandwidth per core cycle
     * @param latency_cycles fixed access latency
     */
    DramModel(double bytes_per_cycle, double latency_cycles);

    /**
     * Rebind bandwidth/latency in place and clear queue state and
     * statistics; lets pooled owners reuse channels across kernels.
     */
    void configure(double bytes_per_cycle, double latency_cycles);

    /**
     * Enqueue a request of the given size at cycle `now`.
     * @return the cycle at which the data is available.
     */
    uint64_t request(uint64_t bytes, uint64_t now);

    const DramStats &stats() const { return _stats; }

    /** Clear queue state and statistics. */
    void reset();

  private:
    double _bytes_per_cycle = 0.0;
    double _latency = 0.0;
    double _pipe_free = 0.0; //!< cycle the pipe next frees up
    DramStats _stats;
};

} // namespace sieve::gpusim

#endif // SIEVE_GPUSIM_DRAM_HH
