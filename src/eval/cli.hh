/**
 * @file
 * Shared command-line parsing for the bench binaries and examples.
 *
 * Every bench used to hand-roll its own argv walk (or take no
 * arguments at all); this helper gives all of them one contract:
 *
 *   --jobs N    worker threads for the SuiteRunner fan-out
 *               (default: SIEVE_JOBS env var, else hardware
 *               concurrency; 1 = legacy serial execution)
 *   --theta X   Sieve stratification threshold override
 *   --top N     row limit for the inspector-style tools
 *   NAME...     positional workload names restricting a registry
 *               suite to the named subset (registry order is kept)
 *
 * Output is --jobs-invariant by the library-wide determinism rule,
 * so the flags never change a table, only the wall-clock to print it.
 */

#ifndef SIEVE_EVAL_CLI_HH
#define SIEVE_EVAL_CLI_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/suites.hh"

namespace sieve::eval {

/** Parsed common bench/example options. */
struct BenchOptions
{
    /** Worker count for SuiteRunner (0 = resolve default). */
    size_t jobs = 0;

    /** Sieve theta override, when the tool exposes one. */
    std::optional<double> theta;

    /** Row limit for inspector tools (0 = tool default). */
    size_t topN = 0;

    /** Positional arguments (workload names, usually). */
    std::vector<std::string> positional;
};

/**
 * Parse the common options from argv. Unknown `--flags` are a user
 * error (fatal). `--help` prints the shared contract plus the
 * tool-specific `usage` line and exits 0.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            std::string_view usage = "");

/**
 * Restrict a registry suite to the named workloads, keeping registry
 * order. An empty name list returns `specs` unchanged; a name that
 * matches nothing is a user error (fatal) — catching typos beats
 * silently printing an empty table.
 */
std::vector<workloads::WorkloadSpec> filterSpecs(
    std::vector<workloads::WorkloadSpec> specs,
    const std::vector<std::string> &names);

} // namespace sieve::eval

#endif // SIEVE_EVAL_CLI_HH
