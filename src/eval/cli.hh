/**
 * @file
 * Shared command-line parsing for the bench binaries and examples.
 *
 * Every bench used to hand-roll its own argv walk (or take no
 * arguments at all); this helper gives all of them one contract:
 *
 *   --jobs N          worker threads for the SuiteRunner fan-out
 *                     (default: SIEVE_JOBS env var, else hardware
 *                     concurrency; 1 = legacy serial execution)
 *   --theta X         Sieve stratification threshold override
 *   --top N           row limit for the inspector-style tools
 *   --trace-out FILE  write a Chrome trace-event JSON of the run
 *                     (also: SIEVE_TRACE env var)
 *   --metrics-out F   write the metrics registry as JSON (or CSV if
 *                     F ends in .csv; also: SIEVE_METRICS env var)
 *   --ledger F        append a run manifest to F at exit (also:
 *                     SIEVE_LEDGER env var)
 *   --telemetry       sample counter tracks into the trace stream
 *                     (needs --trace-out; also: SIEVE_TELEMETRY)
 *   --telemetry-interval-ms N
 *                     sampling period (default 25; also:
 *                     SIEVE_TELEMETRY_INTERVAL_MS)
 *   --log-level L     quiet|warn|info|debug (also: SIEVE_LOG_LEVEL)
 *   NAME...           positional workload names restricting a
 *                     registry suite to the named subset (registry
 *                     order is kept)
 *
 * Table output is --jobs-invariant by the library-wide determinism
 * rule, so the flags never change a table, only the wall-clock to
 * print it. The same split holds inside the observability outputs:
 * stable counters are --jobs-invariant, trace timings are not (see
 * DESIGN.md §7).
 */

#ifndef SIEVE_EVAL_CLI_HH
#define SIEVE_EVAL_CLI_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/suites.hh"

namespace sieve::eval {

/** Parsed common bench/example options. */
struct BenchOptions
{
    /** Worker count for SuiteRunner (0 = resolve default). */
    size_t jobs = 0;

    /** Sieve theta override, when the tool exposes one. */
    std::optional<double> theta;

    /** Row limit for inspector tools (0 = tool default). */
    size_t topN = 0;

    /** Chrome-trace output path ("" = tracing off). */
    std::string traceOut;

    /** Metrics output path, .csv or .json ("" = metrics off). */
    std::string metricsOut;

    /** Run-ledger JSONL path ("" = no manifest appended). */
    std::string ledgerOut;

    /** Start the background telemetry sampler (needs traceOut). */
    bool telemetry = false;

    /** Telemetry sampling interval in milliseconds. */
    uint64_t telemetryIntervalMs = 25;

    /** Positional arguments (workload names, usually). */
    std::vector<std::string> positional;
};

/**
 * Parse the common options from argv. Unknown `--flags` are a user
 * error (fatal). `--help` prints the shared contract plus the
 * tool-specific `usage` line and exits 0.
 *
 * Side effects: applies --log-level immediately and arms the
 * observability layer — SIEVE_TRACE/SIEVE_METRICS first, then the
 * explicit flags — so the trace/metrics files are written when the
 * tool exits.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            std::string_view usage = "");

/**
 * Restrict a registry suite to the named workloads, keeping registry
 * order. An empty name list returns `specs` unchanged; a name that
 * matches nothing is a user error (fatal) — catching typos beats
 * silently printing an empty table.
 */
std::vector<workloads::WorkloadSpec> filterSpecs(
    std::vector<workloads::WorkloadSpec> specs,
    const std::vector<std::string> &names);

} // namespace sieve::eval

#endif // SIEVE_EVAL_CLI_HH
