/**
 * @file
 * Fixed-width console tables for the benchmark binaries.
 *
 * Every table/figure reproduction prints its rows through this so
 * output is uniform and grep-able (one row per workload, a summary
 * row at the bottom, column headers matching the paper's axes).
 */

#ifndef SIEVE_EVAL_REPORT_HH
#define SIEVE_EVAL_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace sieve::eval {

/** A simple fixed-width table writer. */
class Report
{
  public:
    /** @param title printed above the table with a rule. */
    explicit Report(std::string title);

    /** Set column headers; call before the first row. */
    void setColumns(std::vector<std::string> headers);

    /** Append one row; width must match the headers. */
    void addRow(std::vector<std::string> cells);

    /**
     * Append one per-workload row, inserting a separator rule
     * whenever `suite` differs from the previous call's suite — the
     * idiom every multi-suite table uses between Cactus and MLPerf.
     */
    void addSuiteRow(const std::string &suite,
                     std::vector<std::string> cells);

    /** Append a separator rule before the next row. */
    void addRule();

    /**
     * Render the table to stdout. If the SIEVE_REPORT_CSV_DIR
     * environment variable names a directory, a machine-readable CSV
     * copy (slugified title as the file name) is written there too —
     * the hook plotting scripts use to consume bench output.
     */
    void print() const;

    /**
     * Render the table to a stream — exactly the bytes print() sends
     * to stdout. The serving layer answers requests with this, which
     * is how a served response stays byte-identical to the
     * equivalent CLI invocation (DESIGN.md §14).
     */
    void render(std::ostream &os) const;

    /** render() into a string. */
    std::string toString() const;

    /** Write the table as CSV (rule rows are skipped). */
    void writeCsv(std::ostream &os) const;

    /** File-name-safe slug of the report title. */
    std::string slug() const;

    // --- cell formatting helpers ---

    /** "12.3%" */
    static std::string percent(double fraction, int decimals = 1);

    /** "1234.5x" */
    static std::string times(double factor, int decimals = 1);

    /** Fixed-decimal number. */
    static std::string num(double value, int decimals = 2);

    /** Engineering notation for counts ("1.23M"). */
    static std::string count(double value);

  private:
    std::string _title;
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows; //!< empty row = rule
    std::string _lastSuite; //!< addSuiteRow rule tracking
};

} // namespace sieve::eval

#endif // SIEVE_EVAL_REPORT_HH
