#include "eval/experiment.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workloads/generator.hh"

namespace sieve::eval {

ExperimentContext::ExperimentContext(gpu::ArchConfig arch)
    : _executor(std::move(arch))
{
}

const trace::Workload &
ExperimentContext::workload(const workloads::WorkloadSpec &spec)
{
    // Requests and builds are both facts about work requested/done,
    // not about scheduling: with N specs each evaluated once, every
    // --jobs value requests each key the same number of times and
    // call_once builds it exactly once.
    static obs::Counter &c_requests =
        obs::counter("eval.cache.workload.requests");
    static obs::Counter &c_builds =
        obs::counter("eval.cache.workload.builds");
    c_requests.add();
    Slot<trace::Workload> &slot =
        slotFor(_workloads, spec.seedLabel());
    std::call_once(slot.once, [&] {
        obs::Span span("eval", "workload:" + spec.seedLabel());
        slot.value.emplace(workloads::generateWorkload(spec));
        c_builds.add();
    });
    return *slot.value;
}

const gpu::WorkloadResult &
ExperimentContext::golden(const workloads::WorkloadSpec &spec)
{
    static obs::Counter &c_requests =
        obs::counter("eval.cache.golden.requests");
    static obs::Counter &c_builds =
        obs::counter("eval.cache.golden.builds");
    c_requests.add();
    Slot<gpu::WorkloadResult> &slot =
        slotFor(_golden, spec.seedLabel());
    std::call_once(slot.once, [&] {
        obs::Span span("eval", "golden:" + spec.seedLabel());
        slot.value.emplace(_executor.runWorkload(workload(spec)));
        c_builds.add();
    });
    return *slot.value;
}

WorkloadOutcome
evaluateWorkload(const trace::Workload &wl,
                 const gpu::WorkloadResult &golden,
                 sampling::SieveConfig sieve_cfg,
                 sampling::PksConfig pks_cfg, ThreadPool *pool)
{
    WorkloadOutcome outcome;
    outcome.suite = wl.suite();
    outcome.name = wl.name();
    outcome.numKernels = wl.numKernels();
    outcome.numInvocations = wl.numInvocations();
    outcome.paperInvocations = wl.paperInvocations();

    sampling::SieveSampler sieve(sieve_cfg);
    outcome.sieveResult = sieve.sample(wl, pool);
    double sieve_pred = sieve.predictCycles(outcome.sieveResult, wl,
                                            golden.perInvocation);
    outcome.sieve = sampling::evaluate(outcome.sieveResult, sieve_pred,
                                       golden.perInvocation);

    sampling::PksSampler pks(pks_cfg);
    outcome.pksResult = pks.sample(wl, golden.perInvocation, pool);
    double pks_pred =
        pks.predictCycles(outcome.pksResult, golden.perInvocation);
    outcome.pks = sampling::evaluate(outcome.pksResult, pks_pred,
                                     golden.perInvocation);

    return outcome;
}

WorkloadOutcome
evaluateWorkload(const gpu::HardwareExecutor &executor,
                 const trace::Workload &wl,
                 sampling::SieveConfig sieve_cfg,
                 sampling::PksConfig pks_cfg, ThreadPool *pool)
{
    gpu::WorkloadResult golden = executor.runWorkload(wl);
    return evaluateWorkload(wl, golden, sieve_cfg, pks_cfg, pool);
}

WorkloadOutcome
ExperimentContext::run(const workloads::WorkloadSpec &spec,
                       sampling::SieveConfig sieve_cfg,
                       sampling::PksConfig pks_cfg, ThreadPool *pool)
{
    static obs::Counter &c_runs = obs::counter("eval.runs");
    obs::Span span("eval", spec.suite + "/" + spec.name);
    c_runs.add();

    const trace::Workload &wl = workload(spec);
    const gpu::WorkloadResult &gold = golden(spec);

    WorkloadOutcome outcome =
        evaluateWorkload(wl, gold, sieve_cfg, pks_cfg, pool);
    outcome.suite = spec.suite;
    outcome.name = spec.name;
    outcome.paperInvocations = spec.paperInvocations;
    return outcome;
}

} // namespace sieve::eval
