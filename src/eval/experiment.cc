#include "eval/experiment.hh"

#include "common/logging.hh"
#include "workloads/generator.hh"

namespace sieve::eval {

ExperimentContext::ExperimentContext(gpu::ArchConfig arch)
    : _executor(std::move(arch))
{
}

const trace::Workload &
ExperimentContext::workload(const workloads::WorkloadSpec &spec)
{
    Slot<trace::Workload> &slot =
        slotFor(_workloads, spec.seedLabel());
    std::call_once(slot.once, [&] {
        slot.value.emplace(workloads::generateWorkload(spec));
    });
    return *slot.value;
}

const gpu::WorkloadResult &
ExperimentContext::golden(const workloads::WorkloadSpec &spec)
{
    Slot<gpu::WorkloadResult> &slot =
        slotFor(_golden, spec.seedLabel());
    std::call_once(slot.once, [&] {
        slot.value.emplace(_executor.runWorkload(workload(spec)));
    });
    return *slot.value;
}

WorkloadOutcome
ExperimentContext::run(const workloads::WorkloadSpec &spec,
                       sampling::SieveConfig sieve_cfg,
                       sampling::PksConfig pks_cfg, ThreadPool *pool)
{
    const trace::Workload &wl = workload(spec);
    const gpu::WorkloadResult &gold = golden(spec);

    WorkloadOutcome outcome;
    outcome.suite = spec.suite;
    outcome.name = spec.name;
    outcome.numKernels = wl.numKernels();
    outcome.numInvocations = wl.numInvocations();
    outcome.paperInvocations = spec.paperInvocations;

    sampling::SieveSampler sieve(sieve_cfg);
    outcome.sieveResult = sieve.sample(wl, pool);
    double sieve_pred = sieve.predictCycles(outcome.sieveResult, wl,
                                            gold.perInvocation);
    outcome.sieve = sampling::evaluate(outcome.sieveResult, sieve_pred,
                                       gold.perInvocation);

    sampling::PksSampler pks(pks_cfg);
    outcome.pksResult = pks.sample(wl, gold.perInvocation, pool);
    double pks_pred =
        pks.predictCycles(outcome.pksResult, gold.perInvocation);
    outcome.pks = sampling::evaluate(outcome.pksResult, pks_pred,
                                     gold.perInvocation);

    return outcome;
}

} // namespace sieve::eval
