/**
 * @file
 * Out-of-core evaluation: profile → sample → evaluate a workload
 * straight from its .swl file, one bounded window of invocation
 * records at a time, without ever materializing a resident
 * trace::Workload.
 *
 * Memory contract: the pipeline holds (a) one decode window of at
 * most `IngestBudget::windowInvocations()` KernelInvocation records,
 * (b) the per-invocation profile columns (~20 B/invocation — an
 * order of magnitude under the 196 B/invocation file records), and
 * (c) during the golden pass, a 4 B/invocation stratum index plus
 * the per-window results. Nothing else scales with workload size;
 * the file itself stays on disk behind the mmap reader.
 *
 * Determinism contract: every result field is byte-identical to the
 * resident pipeline (loadWorkloadFile → SieveSampler::sample →
 * HardwareExecutor::runWorkload → sampling::evaluate) on any
 * workload both can hold, at any `pool` worker count and any window
 * size. The golden pass preserves invocation order: windows are
 * scored with order-preserving parallelMap and every accumulation
 * (measured cycles, per-stratum dispersion, representative pick-out)
 * runs in the same sequence as the resident loops, so the floating-
 * point sums are bitwise equal, not just close.
 */

#ifndef SIEVE_EVAL_STREAMING_HH
#define SIEVE_EVAL_STREAMING_HH

#include <string>
#include <vector>

#include "common/error.hh"
#include "common/thread_pool.hh"
#include "gpu/arch_config.hh"
#include "sampling/evaluation.hh"
#include "sampling/profile_view.hh"
#include "sampling/sieve.hh"
#include "trace/workload_stream.hh"

namespace sieve::eval {

/** Configuration of the streaming pipeline. */
struct StreamConfig
{
    sampling::SieveConfig sieve;
    trace::IngestBudget budget;
    gpu::ArchConfig arch = gpu::ArchConfig::ampereRtx3080();
};

/** Profile + sampling result of one streamed workload. */
struct StreamSample
{
    sampling::WorkloadProfile profile;
    sampling::SamplingResult result;
};

/** Full evaluation of one streamed workload. */
struct StreamEvaluation
{
    sampling::WorkloadProfile profile;
    sampling::SamplingResult result;
    sampling::MethodEvaluation eval;
};

/**
 * Stream a .swl file through profiling and Sieve stratification.
 * The profile's identity fields and the sampling result are byte-
 * identical to the resident `sampler.sample(loadWorkloadFile(path))`.
 */
Expected<StreamSample> streamSample(const std::string &path,
                                    const StreamConfig &cfg,
                                    ThreadPool *pool = nullptr);

/**
 * Full out-of-core evaluation: streamSample, then a second bounded
 * pass scoring every invocation on the analytical hardware model
 * (windows fanned over `pool`, order preserved), accumulating the
 * error / speedup / dispersion metrics of sampling::evaluate.
 */
Expected<StreamEvaluation> streamEvaluate(const std::string &path,
                                          const StreamConfig &cfg,
                                          ThreadPool *pool = nullptr);

/**
 * Bounded second-pass record fetch: re-stream `path` and return the
 * full KernelInvocation records at `indexes` (any order, duplicates
 * allowed), aligned with the input order. The trace-export path uses
 * this to materialize only the representatives.
 */
Expected<std::vector<trace::KernelInvocation>>
fetchInvocations(const std::string &path,
                 const std::vector<size_t> &indexes,
                 const trace::IngestBudget &budget);

} // namespace sieve::eval

#endif // SIEVE_EVAL_STREAMING_HH
