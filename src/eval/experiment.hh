/**
 * @file
 * Experiment harness shared by the benchmark binaries.
 *
 * Wraps the full evaluation pipeline of Section IV: generate (stand
 * in for "build and run") a workload, collect the golden
 * per-invocation cycle counts on a hardware model, run Sieve and PKS,
 * and compute the error/speedup/dispersion metrics. Workloads and
 * golden runs are cached per (workload, architecture) so the many
 * figures that share inputs do not recompute them.
 */

#ifndef SIEVE_EVAL_EXPERIMENT_HH
#define SIEVE_EVAL_EXPERIMENT_HH

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "gpu/hardware_executor.hh"
#include "sampling/evaluation.hh"
#include "sampling/pks.hh"
#include "sampling/sieve.hh"
#include "trace/workload.hh"
#include "workloads/suites.hh"

namespace sieve::eval {

/** Complete outcome of running both methods on one workload. */
struct WorkloadOutcome
{
    std::string suite;
    std::string name;
    size_t numKernels = 0;
    size_t numInvocations = 0;
    uint64_t paperInvocations = 0;

    sampling::SamplingResult sieveResult;
    sampling::SamplingResult pksResult;
    sampling::MethodEvaluation sieve;
    sampling::MethodEvaluation pks;
};

/**
 * Evaluate Sieve + PKS on an already-materialized workload against
 * precomputed golden results. Identity fields (suite, name, paper
 * invocation count) come from the workload itself, so this also
 * serves workloads loaded from .swl files rather than generated from
 * a registry spec. `pool` is handed down to the samplers' inner
 * fan-outs; output is byte-identical at any worker count.
 */
WorkloadOutcome evaluateWorkload(const trace::Workload &workload,
                                 const gpu::WorkloadResult &golden,
                                 sampling::SieveConfig sieve_cfg = {},
                                 sampling::PksConfig pks_cfg = {},
                                 ThreadPool *pool = nullptr);

/** evaluateWorkload, running the golden pass on `executor` first. */
WorkloadOutcome evaluateWorkload(const gpu::HardwareExecutor &executor,
                                 const trace::Workload &workload,
                                 sampling::SieveConfig sieve_cfg = {},
                                 sampling::PksConfig pks_cfg = {},
                                 ThreadPool *pool = nullptr);

/**
 * Caching context for experiments against one architecture.
 *
 * Thread-safe: one context may be shared by every worker of a
 * SuiteRunner fan-out. Each cache entry is built exactly once (the
 * first requester builds it, concurrent requesters for the same key
 * wait), distinct keys build concurrently, and the returned
 * references stay valid and stable for the context's lifetime.
 */
class ExperimentContext
{
  public:
    explicit ExperimentContext(
        gpu::ArchConfig arch = gpu::ArchConfig::ampereRtx3080());

    const gpu::HardwareExecutor &executor() const { return _executor; }

    /** Generated workload for a spec (cached). */
    const trace::Workload &workload(const workloads::WorkloadSpec &spec);

    /** Golden full-run results for a spec (cached). */
    const gpu::WorkloadResult &golden(
        const workloads::WorkloadSpec &spec);

    /**
     * Run Sieve + PKS on one workload and evaluate both.
     *
     * @param pool optional worker pool handed down to the samplers'
     *        inner fan-outs (KDE grid, PKS k sweep); nested use from
     *        a SuiteRunner worker is safe (the pool self-drives) and
     *        byte-identical at any worker count.
     */
    WorkloadOutcome run(const workloads::WorkloadSpec &spec,
                        sampling::SieveConfig sieve_cfg = {},
                        sampling::PksConfig pks_cfg = {},
                        ThreadPool *pool = nullptr);

  private:
    /**
     * One build-once cache slot. The slot address is pinned by a
     * unique_ptr in the node-based map, so the per-slot once_flag and
     * the cached value survive concurrent map growth and the handed
     * out `const&`s never move.
     */
    template <typename T>
    struct Slot
    {
        std::once_flag once;
        std::optional<T> value;
    };

    /** Find-or-create the slot for a key under the map mutex. */
    template <typename T>
    Slot<T> &
    slotFor(std::map<std::string, std::unique_ptr<Slot<T>>> &cache,
            const std::string &key)
    {
        std::lock_guard<std::mutex> lock(_mu);
        auto &slot = cache[key];
        if (!slot)
            slot = std::make_unique<Slot<T>>();
        return *slot;
    }

    gpu::HardwareExecutor _executor;
    std::mutex _mu; //!< guards the cache maps, not the slot builds
    std::map<std::string, std::unique_ptr<Slot<trace::Workload>>>
        _workloads;
    std::map<std::string, std::unique_ptr<Slot<gpu::WorkloadResult>>>
        _golden;
};

} // namespace sieve::eval

#endif // SIEVE_EVAL_EXPERIMENT_HH
