#include "eval/suite_runner.hh"

namespace sieve::eval {

SuiteRunner::SuiteRunner(ExperimentContext &ctx,
                         SuiteRunnerOptions opts)
    : _ctx(ctx), _pool(opts.jobs)
{
}

std::vector<WorkloadOutcome>
SuiteRunner::runSuite(
    const std::vector<workloads::WorkloadSpec> &specs,
    sampling::SieveConfig sieve_cfg, sampling::PksConfig pks_cfg)
{
    // The samplers' inner fan-outs share this runner's pool; nested
    // batches self-drive, so workers never deadlock on their own
    // ancestors, and every write is order-preserving.
    return map(specs, [&](const workloads::WorkloadSpec &spec) {
        return _ctx.run(spec, sieve_cfg, pks_cfg, &_pool);
    });
}

} // namespace sieve::eval
