#include "eval/suite_runner.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sieve::eval {

SuiteRunner::FanOutScope::FanOutScope(size_t workloads)
{
    static obs::Counter &c_suites = obs::counter("eval.suites");
    static obs::Counter &c_workloads =
        obs::counter("eval.suite.workloads");
    c_suites.add();
    c_workloads.add(workloads);
    if (obs::traceEnabled()) {
        _span = new obs::Span(
            "suite", "fan-out",
            "workloads=" + std::to_string(workloads));
    }
}

SuiteRunner::FanOutScope::~FanOutScope()
{
    delete static_cast<obs::Span *>(_span);
}

SuiteRunner::SuiteRunner(ExperimentContext &ctx,
                         SuiteRunnerOptions opts)
    : _ctx(ctx), _pool(opts.jobs)
{
}

std::vector<WorkloadOutcome>
SuiteRunner::runSuite(
    const std::vector<workloads::WorkloadSpec> &specs,
    sampling::SieveConfig sieve_cfg, sampling::PksConfig pks_cfg)
{
    // The samplers' inner fan-outs share this runner's pool; nested
    // batches self-drive, so workers never deadlock on their own
    // ancestors, and every write is order-preserving.
    return map(specs, [&](const workloads::WorkloadSpec &spec) {
        return _ctx.run(spec, sieve_cfg, pks_cfg, &_pool);
    });
}

std::vector<WorkloadTraceStats>
SuiteRunner::traceStats(
    const std::vector<workloads::WorkloadSpec> &specs,
    sampling::SieveConfig sieve_cfg, gpusim::TraceSynthOptions synth,
    trace::TierConfig tier)
{
    sampling::SieveSampler sampler(sieve_cfg);
    return map(specs, [&](const workloads::WorkloadSpec &spec) {
        const trace::Workload &workload = _ctx.workload(spec);
        sampling::SamplingResult sampled =
            sampler.sample(workload, &_pool);
        // A pool per workload: its insert sequence (stratum order) is
        // a pure function of the sampling result, so the Stable
        // trace.* counters stay jobs-invariant.
        sampling::RepresentativeTraces reps(workload, sampled, synth,
                                            tier);
        return WorkloadTraceStats{spec.suite, spec.name, reps.stats()};
    });
}

IsolatedSuiteResult
SuiteRunner::runSuiteIsolated(
    const std::vector<workloads::WorkloadSpec> &specs,
    sampling::SieveConfig sieve_cfg, sampling::PksConfig pks_cfg)
{
    IsolatedSuiteResult result;
    result.outcomes = mapIsolated(
        specs,
        [&](const workloads::WorkloadSpec &spec)
            -> Expected<WorkloadOutcome> {
            return _ctx.run(spec, sieve_cfg, pks_cfg, &_pool);
        },
        result.quarantine);
    return result;
}

} // namespace sieve::eval
