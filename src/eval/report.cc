#include "eval/report.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve::eval {

Report::Report(std::string title) : _title(std::move(title)) {}

void
Report::setColumns(std::vector<std::string> headers)
{
    SIEVE_ASSERT(_rows.empty(), "setColumns after rows were added");
    _headers = std::move(headers);
}

void
Report::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size()) {
        fatal("report row width ", cells.size(),
              " does not match header width ", _headers.size());
    }
    _rows.push_back(std::move(cells));
}

void
Report::addSuiteRow(const std::string &suite,
                    std::vector<std::string> cells)
{
    if (!_lastSuite.empty() && suite != _lastSuite)
        addRule();
    _lastSuite = suite;
    addRow(std::move(cells));
}

void
Report::addRule()
{
    _rows.emplace_back(); // sentinel
}

std::string
Report::slug() const
{
    std::string out;
    for (char c : _title) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out.empty() ? "report" : out;
}

void
Report::writeCsv(std::ostream &os) const
{
    CsvTable table(_headers);
    for (const auto &row : _rows) {
        if (!row.empty())
            table.addRow(row);
    }
    table.write(os);
}

void
Report::print() const
{
    if (const char *dir = std::getenv("SIEVE_REPORT_CSV_DIR")) {
        std::string path = std::string(dir) + "/" + slug() + ".csv";
        std::ofstream ofs(path);
        if (ofs)
            writeCsv(ofs);
        else
            warn("cannot write report CSV to ", path);
    }
    render(std::cout);
}

void
Report::render(std::ostream &os) const
{
    std::vector<size_t> widths(_headers.size());
    for (size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;

    auto rule = [&] { os << std::string(total, '-') << '\n'; };

    os << '\n' << _title << '\n';
    rule();
    for (size_t c = 0; c < _headers.size(); ++c)
        os << padRight(_headers[c], widths[c]) << "  ";
    os << '\n';
    rule();
    for (const auto &row : _rows) {
        if (row.empty()) {
            rule();
            continue;
        }
        for (size_t c = 0; c < row.size(); ++c) {
            // Left-justify the first (label) column, right-justify
            // numeric columns.
            os << (c == 0 ? padRight(row[c], widths[c])
                          : padLeft(row[c], widths[c]))
               << "  ";
        }
        os << '\n';
    }
    rule();
}

std::string
Report::toString() const
{
    std::ostringstream os;
    render(os);
    return os.str();
}

std::string
Report::percent(double fraction, int decimals)
{
    return toFixed(fraction * 100.0, decimals) + "%";
}

std::string
Report::times(double factor, int decimals)
{
    return toFixed(factor, decimals) + "x";
}

std::string
Report::num(double value, int decimals)
{
    return toFixed(value, decimals);
}

std::string
Report::count(double value)
{
    return engineeringNotation(value);
}

} // namespace sieve::eval
