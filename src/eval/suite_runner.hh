/**
 * @file
 * Deterministic parallel suite runner — the one evaluation engine
 * behind every bench binary and example.
 *
 * Every figure/table reproduction used to walk the workload registry
 * with its own serial loop; SuiteRunner replaces those loops with a
 * single pipeline: fan the per-workload evaluation (generate →
 * golden → Sieve/PKS sample → evaluate, or any caller-supplied
 * stage) out over a common::ThreadPool, and hand the results back in
 * registry order. Because all per-workload randomness derives from
 * the workload's named seed label — never from worker identity or
 * scheduling — the output is byte-identical for any `--jobs` value.
 *
 * The paper itself motivates the shape (§V-G: sampled-invocation
 * simulation "parallelizes trivially"; serial time is the sum of
 * per-trace times, parallel time the longest trace) — SuiteRunner is
 * that observation applied to the whole evaluation harness.
 */

#ifndef SIEVE_EVAL_SUITE_RUNNER_HH
#define SIEVE_EVAL_SUITE_RUNNER_HH

#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "common/quarantine.hh"
#include "common/thread_pool.hh"
#include "eval/experiment.hh"
#include "sampling/rep_traces.hh"
#include "workloads/suites.hh"

namespace sieve::eval {

/** One workload's row in a trace-footprint census (trace-stats). */
struct WorkloadTraceStats
{
    std::string suite;
    std::string name;
    sampling::RepTraceSetStats stats;
};

/** Outcome of a failure-isolated suite run. */
struct IsolatedSuiteResult
{
    /** Per-spec outcomes in registry order; nullopt = quarantined. */
    std::vector<std::optional<WorkloadOutcome>> outcomes;
    QuarantineReport quarantine;
};

/** SuiteRunner configuration. */
struct SuiteRunnerOptions
{
    /**
     * Worker count: 0 resolves through ThreadPool::defaultJobs()
     * (`SIEVE_JOBS` env var, else hardware concurrency); 1 runs the
     * legacy serial path on the calling thread.
     */
    size_t jobs = 0;
};

/**
 * Parallel evaluation engine over a workload-spec list.
 *
 * Holds the thread pool and a shared (thread-safe) ExperimentContext
 * reference; per-call lambdas receive `const WorkloadSpec &` and may
 * freely use the context's cached workload/golden handles from any
 * worker.
 */
class SuiteRunner
{
  public:
    /**
     * Observability hook for one suite fan-out: counts the batch and
     * its workloads and holds a "suite" trace span open for the
     * duration of the map. Non-template so the obs dependency stays
     * in the .cc; near-zero cost when observability is off.
     */
    class FanOutScope
    {
      public:
        explicit FanOutScope(size_t workloads);
        ~FanOutScope();

        FanOutScope(const FanOutScope &) = delete;
        FanOutScope &operator=(const FanOutScope &) = delete;

      private:
        void *_span = nullptr; //!< obs::Span, opaque to the header
    };

    explicit SuiteRunner(ExperimentContext &ctx,
                         SuiteRunnerOptions opts = {});

    /** The shared experiment context. */
    ExperimentContext &context() { return _ctx; }

    /** Resolved worker count. */
    size_t jobs() const { return _pool.numWorkers(); }

    /** The underlying pool, for batches outside the spec shape. */
    ThreadPool &pool() { return _pool; }

    /**
     * Full Sieve-vs-PKS pipeline on every spec; outcomes in registry
     * order.
     */
    std::vector<WorkloadOutcome> runSuite(
        const std::vector<workloads::WorkloadSpec> &specs,
        sampling::SieveConfig sieve_cfg = {},
        sampling::PksConfig pks_cfg = {});

    /**
     * Fan an arbitrary per-workload evaluation over the pool;
     * results in spec order. `fn` must not write to shared state and
     * must derive randomness only from the spec (the library-wide
     * determinism rule); the result type needs to be movable.
     */
    template <typename Fn>
    auto
    map(const std::vector<workloads::WorkloadSpec> &specs, Fn &&fn)
        -> std::vector<decltype(fn(specs[size_t{}]))>
    {
        FanOutScope scope(specs.size());
        return parallelMap(_pool, specs.size(),
                           [&](size_t i) { return fn(specs[i]); });
    }

    /**
     * Failure-isolated map(): `fn` returns Expected<R>; items whose
     * attempt fails (a structured error, or an exception — converted
     * to a SimError) are quarantined into `report` instead of taking
     * the batch down, and their result slot is nullopt. All other
     * items complete byte-identically to a plain map(). The report is
     * filled in a serial in-order pass after the fan-out, so report
     * contents and the `suite.quarantined` Stable counter are
     * jobs-invariant.
     */
    template <typename Fn>
    auto
    mapIsolated(const std::vector<workloads::WorkloadSpec> &specs,
                Fn &&fn, QuarantineReport &report)
        -> std::vector<std::optional<
            typename decltype(fn(specs[size_t{}]))::value_type>>
    {
        using E = decltype(fn(specs[size_t{}]));
        using R = typename E::value_type;
        FanOutScope scope(specs.size());
        auto attempts =
            parallelMap(_pool, specs.size(), [&](size_t i) -> E {
                try {
                    return fn(specs[i]);
                } catch (const std::exception &ex) {
                    return ingestError(ErrorKind::Sim, ex.what(),
                                       specs[i].seedLabel());
                }
            });
        std::vector<std::optional<R>> out;
        out.reserve(specs.size());
        for (size_t i = 0; i < specs.size(); ++i) {
            if (attempts[i].ok()) {
                out.emplace_back(std::move(attempts[i]).value());
            } else {
                report.add(i, specs[i].seedLabel(),
                           attempts[i].error());
                out.emplace_back(std::nullopt);
            }
        }
        return out;
    }

    /**
     * Per-workload trace-footprint census: sample every spec with
     * Sieve, build its tiered representative traces (a private
     * trace::TraceTierPool per workload, so the Stable trace.*
     * counters stay jobs-invariant), and report footprint and tier
     * occupancy in registry order.
     */
    std::vector<WorkloadTraceStats> traceStats(
        const std::vector<workloads::WorkloadSpec> &specs,
        sampling::SieveConfig sieve_cfg = {},
        gpusim::TraceSynthOptions synth = {},
        trace::TierConfig tier = trace::TierConfig::fromEnv());

    /**
     * Failure-isolated runSuite(): one bad workload is quarantined
     * and reported while the rest of the suite completes with
     * byte-identical outcomes.
     */
    IsolatedSuiteResult runSuiteIsolated(
        const std::vector<workloads::WorkloadSpec> &specs,
        sampling::SieveConfig sieve_cfg = {},
        sampling::PksConfig pks_cfg = {});

    /**
     * map() followed by an in-order serial consumption pass —
     * evaluation fans out, presentation (report rows, accumulators)
     * stays sequential and deterministic. `consume(spec, result)` is
     * called on the calling thread, in registry order.
     */
    template <typename Fn, typename Consume>
    void
    forEach(const std::vector<workloads::WorkloadSpec> &specs,
            Fn &&fn, Consume &&consume)
    {
        auto results = map(specs, std::forward<Fn>(fn));
        for (size_t i = 0; i < specs.size(); ++i)
            consume(specs[i], std::move(results[i]));
    }

  private:
    ExperimentContext &_ctx;
    ThreadPool _pool;
};

} // namespace sieve::eval

#endif // SIEVE_EVAL_SUITE_RUNNER_HH
