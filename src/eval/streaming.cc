#include "eval/streaming.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/logging.hh"
#include "gpu/hardware_executor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "stats/error_metrics.hh"

namespace sieve::eval {

Expected<StreamSample>
streamSample(const std::string &path, const StreamConfig &cfg,
             ThreadPool *pool)
{
    Expected<trace::WorkloadStreamReader> reader =
        trace::WorkloadStreamReader::tryOpen(path);
    if (!reader.ok())
        return reader.error();

    Expected<sampling::WorkloadProfile> profile =
        sampling::profileStream(reader.value(), cfg.budget);
    if (!profile.ok())
        return profile.error();

    sampling::SieveSampler sampler(cfg.sieve);
    StreamSample out;
    out.result = sampler.sampleProfile(profile.value(), pool);
    out.profile = std::move(profile).value();
    return out;
}

namespace {

constexpr uint32_t kNoStratum =
    std::numeric_limits<uint32_t>::max();

/**
 * Golden pass over the stream: score every invocation window by
 * window (order-preserving fan-out over `pool`) and fold the results
 * into the exact accumulation sequences of sampling::evaluate /
 * simulationSpeedup / weightedClusterCycleCov — one serial scan in
 * global invocation order, which within any stratum visits members
 * in ascending order, i.e. the resident iteration order.
 */
struct GoldenFold
{
    double measured = 0.0;
    std::vector<stats::Accumulator> covAcc;
    std::vector<std::optional<gpu::KernelResult>> repResults;

    explicit GoldenFold(size_t strata)
        : covAcc(strata), repResults(strata)
    {
    }
};

} // namespace

Expected<StreamEvaluation>
streamEvaluate(const std::string &path, const StreamConfig &cfg,
               ThreadPool *pool)
{
    // Pass count, not scheduling: Stable and --jobs-invariant.
    static obs::Counter &c_evals =
        obs::counter("ingest.stream.evaluations");

    Expected<StreamSample> sampled = streamSample(path, cfg, pool);
    if (!sampled.ok())
        return sampled.error();

    StreamEvaluation out;
    out.profile = std::move(sampled.value().profile);
    out.result = std::move(sampled.value().result);

    c_evals.add();
    obs::Span span("eval", "stream:" + out.profile.name);

    // Invert the strata into a per-invocation stratum index so the
    // single golden scan can route each result without a search.
    // 4 B/invocation — part of the documented resident floor.
    std::vector<uint32_t> stratumOf(out.profile.numInvocations,
                                    kNoStratum);
    for (size_t s = 0; s < out.result.strata.size(); ++s) {
        for (size_t idx : out.result.strata[s].members) {
            SIEVE_ASSERT(idx < stratumOf.size(),
                         "stratum member out of range");
            stratumOf[idx] = static_cast<uint32_t>(s);
        }
    }

    Expected<trace::WorkloadStreamReader> reopened =
        trace::WorkloadStreamReader::tryOpen(path);
    if (!reopened.ok())
        return reopened.error();
    trace::WorkloadStreamReader &reader = reopened.value();

    gpu::HardwareExecutor hw(cfg.arch);
    GoldenFold fold(out.result.strata.size());
    std::vector<trace::KernelInvocation> window;
    std::vector<gpu::KernelResult> results;
    size_t max_window = cfg.budget.windowInvocations();

    while (true) {
        size_t base = reader.position();
        Expected<size_t> got = reader.nextWindow(window, max_window);
        if (!got.ok())
            return got.error();
        if (got.value() == 0)
            break;

        size_t n = got.value();
        if (pool != nullptr && pool->numWorkers() > 1) {
            results = parallelMap(*pool, n, [&](size_t i) {
                return hw.run(window[i]);
            });
        } else {
            results.clear();
            results.reserve(n);
            for (size_t i = 0; i < n; ++i)
                results.push_back(hw.run(window[i]));
        }

        // Serial fold in global invocation order — the resident
        // accumulation sequence, window boundaries invisible.
        for (size_t i = 0; i < n; ++i) {
            const gpu::KernelResult &r = results[i];
            size_t gi = base + i;
            fold.measured += r.cycles;
            uint32_t s = stratumOf[gi];
            if (s == kNoStratum)
                continue;
            fold.covAcc[s].add(r.cycles);
            if (gi == out.result.strata[s].representative)
                fold.repResults[s] = r;
        }
    }

    // Fold the per-stratum state in strata order, mirroring
    // simulationSpeedup / weightedClusterCycleCov line for line.
    double rep_cycles = 0.0;
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    std::vector<gpu::KernelResult> reps;
    reps.reserve(out.result.strata.size());
    for (size_t s = 0; s < out.result.strata.size(); ++s) {
        SIEVE_ASSERT(fold.repResults[s].has_value(),
                     "representative out of range");
        reps.push_back(*fold.repResults[s]);
        rep_cycles += fold.repResults[s]->cycles;
        double w = static_cast<double>(
            out.result.strata[s].members.size());
        weighted_sum += w * fold.covAcc[s].cov();
        weight_total += w;
    }
    SIEVE_ASSERT(rep_cycles > 0.0, "zero representative cycles");

    sampling::SieveSampler sampler(cfg.sieve);
    double predicted = sampler.predictCyclesFromReps(
        out.result, out.profile.totalInstructions, reps);

    out.eval.method = out.result.method;
    out.eval.predictedCycles = predicted;
    out.eval.measuredCycles = fold.measured;
    out.eval.error = stats::relativeError(predicted, fold.measured);
    out.eval.speedup = fold.measured / rep_cycles;
    out.eval.numRepresentatives = out.result.numRepresentatives();
    out.eval.weightedClusterCov =
        weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
    return out;
}

Expected<std::vector<trace::KernelInvocation>>
fetchInvocations(const std::string &path,
                 const std::vector<size_t> &indexes,
                 const trace::IngestBudget &budget)
{
    Expected<trace::WorkloadStreamReader> opened =
        trace::WorkloadStreamReader::tryOpen(path);
    if (!opened.ok())
        return opened.error();
    trace::WorkloadStreamReader &reader = opened.value();

    // Sort (index, output slot) so one forward pass serves requests
    // in any order, duplicates included.
    std::vector<std::pair<size_t, size_t>> wanted;
    wanted.reserve(indexes.size());
    for (size_t slot = 0; slot < indexes.size(); ++slot) {
        if (indexes[slot] >= reader.numInvocations())
            return ingestError(
                ErrorKind::Validation,
                "invocation index " +
                    std::to_string(indexes[slot]) +
                    " out of range (workload has " +
                    std::to_string(reader.numInvocations()) + ")",
                path);
        wanted.emplace_back(indexes[slot], slot);
    }
    std::sort(wanted.begin(), wanted.end());

    std::vector<trace::KernelInvocation> out(indexes.size());
    std::vector<trace::KernelInvocation> window;
    size_t next = 0;
    while (next < wanted.size()) {
        size_t base = reader.position();
        Expected<size_t> got = reader.nextWindow(
            window, budget.windowInvocations());
        if (!got.ok())
            return got.error();
        SIEVE_ASSERT(got.value() > 0,
                     "requested invocation past end of stream");
        while (next < wanted.size() &&
               wanted[next].first < base + got.value()) {
            out[wanted[next].second] =
                window[wanted[next].first - base];
            ++next;
        }
    }
    return out;
}

} // namespace sieve::eval
