/**
 * @file
 * Shared result renderers for the CLI and the serving layer.
 *
 * `sieved` promises that a served response is byte-identical to the
 * stdout of the equivalent CLI invocation (DESIGN.md §14). The only
 * way to keep that promise cheap is to make it true by construction:
 * both sides build their tables through the functions here, the CLI
 * prints them with Report::print() and the server ships
 * Report::toString() over the wire.
 */

#ifndef SIEVE_EVAL_RENDER_HH
#define SIEVE_EVAL_RENDER_HH

#include <string>
#include <vector>

#include "common/csv.hh"
#include "eval/report.hh"
#include "eval/suite_runner.hh"
#include "gpusim/gpu_simulator.hh"
#include "sampling/evaluation.hh"
#include "sampling/sample.hh"
#include "trace/sass_trace.hh"
#include "trace/workload.hh"

namespace sieve::eval {

/** The "Evaluation: ..." table printed by `sieve evaluate`. */
Report evaluationReport(const std::string &method,
                        const std::string &suite,
                        const std::string &name,
                        const sampling::MethodEvaluation &eval);

/**
 * The per-trace "Simulation: ..." table printed by `sieve simulate`
 * with one file. Excludes the wall-time line — that is volatile
 * timing, which the CLI prints separately after the table and CI
 * strips before comparing outputs.
 */
Report simulationReport(const trace::KernelTrace &kt,
                        const gpusim::KernelSimResult &result);

/** The representative-selection CSV written by `sieve sample`. */
CsvTable representativesCsv(const trace::Workload &wl,
                            const sampling::SamplingResult &result);

/** The per-workload census CSV of `sieve trace-stats --csv`. */
CsvTable traceStatsCsv(const std::vector<WorkloadTraceStats> &rows);

} // namespace sieve::eval

#endif // SIEVE_EVAL_RENDER_HH
