#include "eval/cli.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/ledger.hh"
#include "obs/obs.hh"

namespace sieve::eval {

namespace {

/** Parse the value of --flag, either "--flag=V" or the next argv. */
std::string
flagValue(std::string_view flag, std::string_view arg, int argc,
          char **argv, int &i)
{
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos)
        return std::string(arg.substr(eq + 1));
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

size_t
parseCount(std::string_view flag, const std::string &value)
{
    char *end = nullptr;
    long parsed = std::strtol(value.c_str(), &end, 10);
    if (!end || *end != '\0' || parsed <= 0)
        fatal(flag, " expects a positive integer, got '", value, "'");
    return static_cast<size_t>(parsed);
}

double
parseReal(std::string_view flag, const std::string &value)
{
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || !(parsed > 0.0))
        fatal(flag, " expects a positive number, got '", value, "'");
    return parsed;
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv, std::string_view usage)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [options]%s%.*s\n"
                "  --jobs N          worker threads (default: "
                "SIEVE_JOBS env, else hardware concurrency; "
                "1 = serial)\n"
                "  --theta X         Sieve stratification threshold\n"
                "  --top N           limit detail rows (inspector "
                "tools)\n"
                "  --trace-out FILE  write a Chrome trace of the run "
                "(env: SIEVE_TRACE)\n"
                "  --metrics-out F   write pipeline metrics as JSON, "
                "or CSV for *.csv (env: SIEVE_METRICS)\n"
                "  --ledger F        append a run manifest to F at "
                "exit (env: SIEVE_LEDGER)\n"
                "  --telemetry       sample counter tracks into the "
                "trace (needs --trace-out; env: SIEVE_TELEMETRY)\n"
                "  --telemetry-interval-ms N  sampling period, "
                "default 25 (env: SIEVE_TELEMETRY_INTERVAL_MS)\n"
                "  --log-level L     quiet|warn|info|debug (env: "
                "SIEVE_LOG_LEVEL)\n"
                "  NAME...           restrict to the named workloads\n"
                "Table output is byte-identical for every --jobs "
                "value;\nso are the stable counters in the metrics "
                "export.\n",
                argv[0], usage.empty() ? "" : "\n  ",
                static_cast<int>(usage.size()), usage.data());
            std::exit(0);
        } else if (arg.rfind("--jobs", 0) == 0) {
            opts.jobs = parseCount(
                "--jobs", flagValue("--jobs", arg, argc, argv, i));
        } else if (arg.rfind("--theta", 0) == 0) {
            opts.theta = parseReal(
                "--theta", flagValue("--theta", arg, argc, argv, i));
        } else if (arg.rfind("--trace-out", 0) == 0) {
            opts.traceOut =
                flagValue("--trace-out", arg, argc, argv, i);
        } else if (arg.rfind("--metrics-out", 0) == 0) {
            opts.metricsOut =
                flagValue("--metrics-out", arg, argc, argv, i);
        } else if (arg.rfind("--ledger", 0) == 0) {
            opts.ledgerOut =
                flagValue("--ledger", arg, argc, argv, i);
        } else if (arg.rfind("--telemetry-interval-ms", 0) == 0) {
            opts.telemetryIntervalMs = parseCount(
                "--telemetry-interval-ms",
                flagValue("--telemetry-interval-ms", arg, argc, argv,
                          i));
        } else if (arg == "--telemetry") {
            opts.telemetry = true;
        } else if (arg.rfind("--log-level", 0) == 0) {
            std::string value =
                flagValue("--log-level", arg, argc, argv, i);
            auto level = parseLogLevel(value);
            if (!level)
                fatal("--log-level expects quiet|warn|info|debug, "
                      "got '", value, "'");
            setLogLevel(*level);
        } else if (arg.rfind("--top", 0) == 0) {
            opts.topN = parseCount(
                "--top", flagValue("--top", arg, argc, argv, i));
        } else if (arg.rfind("--", 0) == 0) {
            fatal("unknown option '", arg, "' (see --help)");
        } else {
            opts.positional.emplace_back(arg);
        }
    }

    // Record the invocation identity for the run ledger before the
    // tool does any work, so the manifest's wall time covers the
    // whole run.
    {
        std::string command = argv[0];
        size_t slash = command.find_last_of('/');
        if (slash != std::string::npos)
            command.erase(0, slash + 1);
        std::vector<std::string> args(argv + 1, argv + argc);
        obs::setRunContext(std::move(command), std::move(args),
                           static_cast<int>(opts.jobs));
    }

    // Arm observability: env first, explicit flags override.
    obs::configureObsFromEnv();
    if (!opts.traceOut.empty() || !opts.metricsOut.empty() ||
        !opts.ledgerOut.empty() || opts.telemetry) {
        obs::ObsOptions obs_opts;
        obs_opts.traceOut = opts.traceOut;
        obs_opts.metricsOut = opts.metricsOut;
        obs_opts.ledgerOut = opts.ledgerOut;
        obs_opts.telemetry = opts.telemetry;
        obs_opts.telemetryIntervalMs = opts.telemetryIntervalMs;
        obs::configureObs(obs_opts);
    }
    return opts;
}

std::vector<workloads::WorkloadSpec>
filterSpecs(std::vector<workloads::WorkloadSpec> specs,
            const std::vector<std::string> &names)
{
    if (names.empty())
        return specs;

    for (const auto &name : names) {
        bool known = std::any_of(
            specs.begin(), specs.end(),
            [&](const workloads::WorkloadSpec &s) {
                return s.name == name ||
                       s.suite + "/" + s.name == name;
            });
        if (!known)
            fatal("workload '", name, "' is not in this suite");
    }

    std::vector<workloads::WorkloadSpec> kept;
    for (auto &spec : specs) {
        bool wanted = std::any_of(
            names.begin(), names.end(), [&](const std::string &n) {
                return spec.name == n ||
                       spec.suite + "/" + spec.name == n;
            });
        if (wanted)
            kept.push_back(std::move(spec));
    }
    return kept;
}

} // namespace sieve::eval
