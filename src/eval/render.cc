#include "eval/render.hh"

namespace sieve::eval {

Report
evaluationReport(const std::string &method, const std::string &suite,
                 const std::string &name,
                 const sampling::MethodEvaluation &eval)
{
    Report report("Evaluation: " + method + " on " + suite + "/" +
                  name);
    report.setColumns({"metric", "value"});
    report.addRow({"representatives",
                   std::to_string(eval.numRepresentatives)});
    report.addRow({"predicted cycles",
                   Report::count(eval.predictedCycles)});
    report.addRow({"measured cycles",
                   Report::count(eval.measuredCycles)});
    report.addRow({"error", Report::percent(eval.error, 2)});
    report.addRow({"simulation speedup", Report::times(eval.speedup)});
    report.addRow({"intra-cluster cycle CoV",
                   Report::num(eval.weightedClusterCov)});
    return report;
}

Report
simulationReport(const trace::KernelTrace &kt,
                 const gpusim::KernelSimResult &result)
{
    Report report("Simulation: " + kt.kernelName + " invocation " +
                  std::to_string(kt.invocationId));
    report.setColumns({"metric", "value"});
    report.addRow({"traced instructions",
                   Report::count(static_cast<double>(
                       result.instructionsSimulated))});
    report.addRow({"slice cycles",
                   Report::count(
                       static_cast<double>(result.simCycles))});
    report.addRow({"estimated kernel cycles",
                   Report::count(result.estimatedKernelCycles)});
    report.addRow({"estimated IPC",
                   Report::num(result.estimatedIpc)});
    report.addRow({"L1 hit rate",
                   Report::percent(result.l1.hitRate())});
    report.addRow({"L2 hit rate",
                   Report::percent(result.l2.hitRate())});
    report.addRow({"DRAM bytes",
                   Report::count(
                       static_cast<double>(result.dram.bytes))});
    if (result.pkpStoppedEarly) {
        report.addRow({"PKP simulated fraction",
                       Report::percent(result.fractionSimulated)});
    }
    return report;
}

CsvTable
representativesCsv(const trace::Workload &wl,
                   const sampling::SamplingResult &result)
{
    CsvTable table({"stratum", "kernel", "invocation", "tier",
                    "members", "weight", "cta_size",
                    "instruction_count"});
    for (size_t s = 0; s < result.strata.size(); ++s) {
        const auto &stratum = result.strata[s];
        const auto &inv = wl.invocation(stratum.representative);
        table.addRow({
            std::to_string(s),
            stratum.kernelId == sampling::Stratum::kNoKernel
                ? std::string("-")
                : wl.kernel(stratum.kernelId).name,
            std::to_string(stratum.representative),
            sampling::tierName(stratum.tier),
            std::to_string(stratum.members.size()),
            Report::num(stratum.weight, 8),
            std::to_string(inv.launch.ctaSize()),
            std::to_string(inv.instructions()),
        });
    }
    return table;
}

CsvTable
traceStatsCsv(const std::vector<WorkloadTraceStats> &rows)
{
    CsvTable table({"workload", "strata", "instructions", "aos_bytes",
                    "columnar_bytes", "blob_bytes", "bytes_per_inst",
                    "dict_entries", "hot", "cold"});
    for (const auto &row : rows) {
        const auto &s = row.stats;
        table.addRow({row.name, std::to_string(s.strata),
                      std::to_string(s.instructions),
                      std::to_string(s.aosBytes),
                      std::to_string(s.columnarBytes),
                      std::to_string(s.blobBytes),
                      Report::num(s.bytesPerInstruction(), 3),
                      std::to_string(s.dictionaryEntries),
                      std::to_string(s.hotTraces),
                      std::to_string(s.coldTraces)});
    }
    return table;
}

} // namespace sieve::eval
