#include "trace/workload.hh"

#include "common/logging.hh"

namespace sieve::trace {

Workload::Workload(std::string suite, std::string name)
    : _suite(std::move(suite)), _name(std::move(name))
{
}

uint32_t
Workload::addKernel(std::string name)
{
    uint32_t id = static_cast<uint32_t>(_kernels.size());
    _kernels.push_back({id, std::move(name)});
    return id;
}

void
Workload::addInvocation(KernelInvocation inv)
{
    SIEVE_ASSERT(inv.kernelId < _kernels.size(),
                 "invocation references unknown kernel ", inv.kernelId);
    inv.invocationId = _invocations.size();
    _invocations.push_back(std::move(inv));
}

void
Workload::reserve(size_t kernels, size_t invocations)
{
    _kernels.reserve(kernels);
    _invocations.reserve(invocations);
}

const Kernel &
Workload::kernel(uint32_t id) const
{
    SIEVE_ASSERT(id < _kernels.size(), "kernel id ", id, " out of range");
    return _kernels[id];
}

const KernelInvocation &
Workload::invocation(size_t idx) const
{
    SIEVE_ASSERT(idx < _invocations.size(), "invocation ", idx,
                 " out of range");
    return _invocations[idx];
}

std::vector<size_t>
Workload::invocationsOfKernel(uint32_t kernel_id) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < _invocations.size(); ++i) {
        if (_invocations[i].kernelId == kernel_id)
            out.push_back(i);
    }
    return out;
}

uint64_t
Workload::totalInstructions() const
{
    uint64_t total = 0;
    for (const auto &inv : _invocations)
        total += inv.mix.instructionCount;
    return total;
}

} // namespace sieve::trace
