/**
 * @file
 * Out-of-core workload ingestion: windowed streaming over a mapped
 * .swl file.
 *
 * The resident loader materializes every invocation record into a
 * vector, which caps end-to-end runs at what fits in memory. The
 * stream reader removes that cap: it memory-maps the file
 * (io::MmapFile), parses and validates the header + kernel table
 * once, and then hands out *windows* of invocation records — at most
 * `IngestBudget::windowInvocations()` at a time — so the pipeline's
 * peak record memory is bounded by `--ingest-budget-mb` regardless
 * of workload size. Because the file is mapped, a window costs page
 * faults on first touch and nothing on re-streaming (`rewind()`).
 *
 * Validation parity: records go through the exact same
 * wlfmt::readInvocation template as the resident loader, including
 * the dangling-kernel and chronology checks, so a corrupt file
 * yields the identical structured Error (text and byte offset) on
 * either path. tryOpen() additionally checks that the record region
 * is exactly `numInvocations * 196` bytes, which the resident loader
 * discovers only while reading.
 *
 * Stable counters `ingest.stream.windows` and
 * `ingest.stream.invocations` count window traffic. They depend only
 * on file content and budget — never on --jobs — so they gate
 * jobs-invariance in CI.
 */

#ifndef SIEVE_TRACE_WORKLOAD_STREAM_HH
#define SIEVE_TRACE_WORKLOAD_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "io/mmap_file.hh"
#include "trace/workload.hh"

namespace sieve::trace {

/** Memory bound for streaming ingestion. */
struct IngestBudget
{
    /** Peak bytes of invocation records held at once. */
    size_t budgetBytes = size_t{64} << 20;

    /**
     * IngestBudget with the bound taken from SIEVE_INGEST_BUDGET_MB
     * (unset or unparsable values keep the default).
     */
    static IngestBudget fromEnv();

    /** Records per window under the budget (always at least 1). */
    size_t
    windowInvocations() const
    {
        const size_t per = sizeof(KernelInvocation);
        const size_t n = budgetBytes / per;
        return n > 0 ? n : 1;
    }
};

/**
 * Windowed reader over one workload file. Header and kernel table
 * are resident (small); invocation records stream in bounded
 * windows. Not thread-safe; one reader per pipeline pass.
 */
class WorkloadStreamReader
{
  public:
    /**
     * Map `path`, parse + validate the header, and verify the record
     * region is exactly the declared length. Structured Error on any
     * problem.
     */
    static Expected<WorkloadStreamReader> tryOpen(
        const std::string &path);

    const std::string &suite() const { return _suite; }
    const std::string &name() const { return _name; }
    uint64_t paperInvocations() const { return _paper_invocations; }

    const std::vector<std::string> &kernelNames() const
    {
        return _kernel_names;
    }
    size_t numKernels() const { return _kernel_names.size(); }
    uint64_t numInvocations() const { return _num_invocations; }

    /** Index of the next record nextWindow() will yield. */
    uint64_t position() const { return _next; }

    /** True when the underlying view is a zero-copy mapping. */
    bool zeroCopy() const { return _file.mapped(); }

    /**
     * Fill `out` (cleared first) with the next up-to-`max_count`
     * records, validated exactly like the resident loader. Returns
     * the number of records yielded; 0 at end of stream.
     */
    Expected<size_t> nextWindow(std::vector<KernelInvocation> &out,
                                size_t max_count);

    /** Restart streaming from the first invocation. */
    void rewind() { _next = 0; }

  private:
    WorkloadStreamReader() = default;

    io::MmapFile _file;
    std::string _path;
    std::string _suite;
    std::string _name;
    uint64_t _paper_invocations = 0;
    std::vector<std::string> _kernel_names;
    uint64_t _num_invocations = 0;
    size_t _records_offset = 0; //!< byte offset of the first record
    uint64_t _next = 0;         //!< next record index
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_WORKLOAD_STREAM_HH
