/**
 * @file
 * Kernel launch geometry: grid and CTA (thread block) dimensions.
 *
 * In Nvidia terminology a Cooperative Thread Array (CTA) is a thread
 * block; Sieve's representative selection for Tier-2/3 strata picks
 * the first-chronological invocation with the *most dominant CTA
 * size* within the stratum (paper Section III-C), so CTA geometry is
 * a first-class part of the invocation record.
 */

#ifndef SIEVE_TRACE_LAUNCH_CONFIG_HH
#define SIEVE_TRACE_LAUNCH_CONFIG_HH

#include <cstdint>
#include <string>

namespace sieve::trace {

/** Three-dimensional extent, CUDA dim3-style. */
struct Dim3
{
    uint32_t x = 1;
    uint32_t y = 1;
    uint32_t z = 1;

    /** Total element count, x*y*z. */
    uint64_t count() const
    {
        return static_cast<uint64_t>(x) * y * z;
    }

    bool operator==(const Dim3 &) const = default;
};

/** Launch geometry of one kernel invocation. */
struct LaunchConfig
{
    Dim3 grid;               //!< CTAs per grid
    Dim3 cta;                //!< threads per CTA
    uint32_t sharedMemBytes = 0;  //!< dynamic shared memory per CTA
    uint32_t regsPerThread = 32;  //!< registers per thread

    /** Threads per CTA (the "CTA size" Sieve keys on). */
    uint32_t ctaSize() const
    {
        return static_cast<uint32_t>(cta.count());
    }

    /** CTAs in the grid. */
    uint64_t numCtas() const { return grid.count(); }

    /** Total threads launched. */
    uint64_t totalThreads() const { return numCtas() * ctaSize(); }

    /** Warps per CTA for the given warp width. */
    uint32_t warpsPerCta(uint32_t warp_size = 32) const
    {
        return (ctaSize() + warp_size - 1) / warp_size;
    }

    /** "(gx,gy,gz)x(bx,by,bz)" rendering for logs and traces. */
    std::string toString() const;

    bool operator==(const LaunchConfig &) const = default;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_LAUNCH_CONFIG_HH
