/**
 * @file
 * SASS-like instruction traces.
 *
 * Section V-G of the paper modifies the Accel-sim tracer (built on
 * NVBit) to emit "simple plain text files" containing the SASS trace
 * of only the selected kernel invocations, which Accel-sim then
 * simulates. This module defines the equivalent trace representation
 * for this repository's cycle-level simulator: per-warp instruction
 * streams with register dependencies, lane masks, and line-granular
 * memory addresses, plus the plain-text (de)serialization.
 *
 * Parsing is recoverable: tryReadTrace() returns Expected with the
 * source name and 1-based line number of the first problem — bad
 * mnemonics, wrong field counts, values outside hardware ranges
 * (registers > 255, lanes outside 1..32, > 32 sectors), structural
 * violations (instructions outside a warp block), or a missing
 * header. The fatal() entry points wrap it.
 */

#ifndef SIEVE_TRACE_SASS_TRACE_HH
#define SIEVE_TRACE_SASS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/launch_config.hh"

namespace sieve::trace {

/** Instruction classes modelled by the simulator. */
enum class Opcode : uint8_t {
    IAdd,    //!< single-cycle integer ALU
    FFma,    //!< FP32 fused multiply-add (FMA pipe)
    Mufu,    //!< special-function unit (rsqrt, sin, ...)
    DFma,    //!< FP64 / long-latency arithmetic
    Ldg,     //!< global load
    Stg,     //!< global store
    Lds,     //!< shared-memory load
    Sts,     //!< shared-memory store
    Ldl,     //!< local-space load
    Stl,     //!< local-space store
    Atom,    //!< global atomic
    Bra,     //!< branch
    Exit,    //!< warp termination
};

/** Name of an opcode ("FFMA", "LDG", ...). */
const char *opcodeName(Opcode op);

/** Parse an opcode name; ParseError on unknown mnemonics. */
Expected<Opcode> tryParseOpcode(const std::string &name);

/** Parse an opcode name; fatal() on unknown mnemonics. */
Opcode parseOpcode(const std::string &name);

/**
 * True for opcodes that access global/local memory (through caches).
 * Inline: the simulator issue loop and the columnar warp decoder
 * test this per instruction.
 */
inline bool
isGlobalMemory(Opcode op)
{
    constexpr uint32_t mask =
        (1u << static_cast<uint8_t>(Opcode::Ldg)) |
        (1u << static_cast<uint8_t>(Opcode::Stg)) |
        (1u << static_cast<uint8_t>(Opcode::Ldl)) |
        (1u << static_cast<uint8_t>(Opcode::Stl)) |
        (1u << static_cast<uint8_t>(Opcode::Atom));
    return ((1u << static_cast<uint8_t>(op)) & mask) != 0;
}

/** True for shared-memory opcodes. */
inline bool
isSharedMemory(Opcode op)
{
    return op == Opcode::Lds || op == Opcode::Sts;
}

/** One warp-level instruction in a trace. */
struct SassInstruction
{
    Opcode opcode = Opcode::IAdd;
    uint8_t destReg = 0;      //!< destination register (0 = none)
    uint8_t srcReg0 = 0;      //!< first source register (0 = none)
    uint8_t srcReg1 = 0;      //!< second source register (0 = none)
    uint8_t activeLanes = 32; //!< SIMT lanes active, 1..32
    /**
     * For memory ops: number of 32B sectors the warp's accesses
     * coalesce into (1 = perfectly coalesced, 32 = fully scattered).
     * For BRA: the number of lanes that take the branch — a value
     * strictly between 0 and activeLanes marks a *divergent* branch
     * whose paths the SIMT hardware must serialize.
     */
    uint8_t sectors = 1;

    /** True for a BRA on which the warp diverges. */
    bool
    isDivergentBranch() const
    {
        return opcode == Opcode::Bra && sectors > 0 &&
               sectors < activeLanes;
    }
    /** For global/local memory ops: first cache-line index touched. */
    uint64_t lineAddress = 0;
};

/** The instruction stream of one warp. */
struct WarpTrace
{
    std::vector<SassInstruction> instructions;
};

/** The traced warps of one CTA. */
struct CtaTrace
{
    std::vector<WarpTrace> warps;
};

/**
 * The trace of one kernel invocation.
 *
 * Large grids are traced CTA-representatively: `ctas` holds the
 * distinct traced CTAs and `ctaReplication` says how many launched
 * CTAs each traced CTA stands for, so total work is
 * ctas.size() * ctaReplication CTAs.
 */
struct KernelTrace
{
    std::string kernelName;
    uint64_t invocationId = 0;
    LaunchConfig launch;
    uint64_t ctaReplication = 1;
    std::vector<CtaTrace> ctas;

    /** Warp instructions across traced CTAs (without replication). */
    uint64_t tracedInstructions() const;

    /** Total warp instructions the trace stands for. */
    uint64_t representedInstructions() const;
};

/** Serialize a kernel trace to the plain-text format. */
void writeTrace(const KernelTrace &trace, std::ostream &os);

/** Serialize a kernel trace to a file. fatal() if unwritable. */
void writeTraceFile(const KernelTrace &trace, const std::string &path);

/**
 * Parse and validate a kernel trace. Errors carry `source` and the
 * 1-based line number of the offending input line.
 */
Expected<KernelTrace> tryReadTrace(std::istream &is,
                                   const std::string &source =
                                       "<stream>");

/** tryReadTrace from a file; unreadable files are an IoError. */
Expected<KernelTrace> tryReadTraceFile(const std::string &path);

/** Parse a kernel trace from the plain-text format. fatal() on error. */
KernelTrace readTrace(std::istream &is);

/** Parse a kernel trace from a file. fatal() if unreadable. */
KernelTrace readTraceFile(const std::string &path);

} // namespace sieve::trace

#endif // SIEVE_TRACE_SASS_TRACE_HH
