#include "trace/profile_io.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve::trace {

namespace {

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

/** "<source>, " prefix for messages when the table knows its file. */
std::string
where(const CsvTable &table, size_t row)
{
    std::string out = "row ";
    out += std::to_string(row);
    if (size_t line = table.rowLine(row))
        out += " (line " + std::to_string(line) + ")";
    return out;
}

} // namespace

CsvTable
emptySieveProfileTable()
{
    return CsvTable({"kernel", "invocation", "instruction_count",
                     "cta_size"});
}

void
appendSieveProfileRow(CsvTable &table, const std::string &kernel_name,
                      const KernelInvocation &inv)
{
    table.addRow({
        kernel_name,
        u64(inv.invocationId),
        u64(inv.mix.instructionCount),
        u64(inv.launch.ctaSize()),
    });
}

CsvTable
sieveProfileTable(const Workload &workload)
{
    CsvTable table = emptySieveProfileTable();
    for (const auto &inv : workload.invocations())
        appendSieveProfileRow(table, workload.kernel(inv.kernelId).name,
                              inv);
    return table;
}

Expected<std::vector<SieveProfileRow>>
tryParseSieveProfile(const CsvTable &table)
{
    size_t kernel_col = table.columnIndex("kernel");
    size_t inv_col = table.columnIndex("invocation");
    size_t inst_col = table.columnIndex("instruction_count");
    size_t cta_col = table.columnIndex("cta_size");
    if (kernel_col == CsvTable::npos || inv_col == CsvTable::npos ||
        inst_col == CsvTable::npos || cta_col == CsvTable::npos)
        return ingestError(ErrorKind::Validation,
                           "Sieve profile CSV is missing a required "
                           "column (kernel, invocation, "
                           "instruction_count, cta_size)",
                           table.source(), 1);

    std::vector<SieveProfileRow> rows;
    rows.reserve(table.numRows());
    bool have_prev = false;
    uint64_t prev_inv = 0;
    for (size_t r = 0; r < table.numRows(); ++r) {
        SieveProfileRow row;
        row.kernelName = table.cell(r, kernel_col);
        if (row.kernelName.empty())
            return ingestError(ErrorKind::Validation,
                               "empty kernel name at " + where(table, r),
                               table.source(), table.rowLine(r));

        auto inv = table.tryCellAsUint(r, inv_col);
        if (!inv)
            return inv.error();
        row.invocationId = inv.value();
        if (have_prev && row.invocationId <= prev_inv)
            return ingestError(
                ErrorKind::Validation,
                "invocation ids must increase chronologically: " +
                    std::to_string(row.invocationId) + " after " +
                    std::to_string(prev_inv) + " at " + where(table, r),
                table.source(), table.rowLine(r));
        prev_inv = row.invocationId;
        have_prev = true;

        auto insts = table.tryCellAsUint(r, inst_col);
        if (!insts)
            return insts.error();
        row.instructionCount = insts.value();
        if (row.instructionCount == 0)
            return ingestError(ErrorKind::Validation,
                               "zero instruction count at " +
                                   where(table, r),
                               table.source(), table.rowLine(r));

        auto cta = table.tryCellAsUint(r, cta_col);
        if (!cta)
            return cta.error();
        if (cta.value() < 1 || cta.value() > 1024)
            return ingestError(ErrorKind::Validation,
                               "CTA size " + std::to_string(cta.value()) +
                                   " outside [1, 1024] at " +
                                   where(table, r),
                               table.source(), table.rowLine(r));
        row.ctaSize = static_cast<uint32_t>(cta.value());
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<SieveProfileRow>
parseSieveProfile(const CsvTable &table)
{
    return unwrapOrFatal(tryParseSieveProfile(table));
}

CsvTable
pksProfileTable(const Workload &workload)
{
    std::vector<std::string> header = {"kernel", "invocation"};
    for (const auto &name : InstructionMix::metricNames())
        header.push_back(name);

    CsvTable table(std::move(header));
    for (const auto &inv : workload.invocations()) {
        std::vector<std::string> row = {
            workload.kernel(inv.kernelId).name,
            u64(inv.invocationId),
        };
        for (double v : inv.mix.featureVector()) {
            std::ostringstream oss;
            oss << v;
            row.push_back(oss.str());
        }
        table.addRow(std::move(row));
    }
    return table;
}

Expected<std::vector<std::vector<double>>>
tryParsePksProfile(const CsvTable &table)
{
    std::vector<size_t> cols;
    for (const auto &name : InstructionMix::metricNames()) {
        size_t c = table.columnIndex(name);
        if (c == CsvTable::npos)
            return ingestError(ErrorKind::Validation,
                               "PKS profile CSV is missing metric "
                               "column '" + name + "'",
                               table.source(), 1);
        cols.push_back(c);
    }

    std::vector<std::vector<double>> rows;
    rows.reserve(table.numRows());
    for (size_t r = 0; r < table.numRows(); ++r) {
        std::vector<double> features;
        features.reserve(cols.size());
        for (size_t c : cols) {
            auto v = table.tryCellAsDouble(r, c);
            if (!v)
                return v.error();
            // Table II metrics are counts and fractions; a negative
            // value means the profile is corrupt, not unusual.
            if (v.value() < 0.0)
                return ingestError(
                    ErrorKind::Validation,
                    "negative PKS metric " + table.header()[c] + " = " +
                        table.cell(r, c) + " at " + where(table, r),
                    table.source(), table.rowLine(r));
            features.push_back(v.value());
        }
        rows.push_back(std::move(features));
    }
    return rows;
}

std::vector<std::vector<double>>
parsePksProfile(const CsvTable &table)
{
    return unwrapOrFatal(tryParsePksProfile(table));
}

} // namespace sieve::trace
