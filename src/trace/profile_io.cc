#include "trace/profile_io.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve::trace {

namespace {

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

CsvTable
sieveProfileTable(const Workload &workload)
{
    CsvTable table({"kernel", "invocation", "instruction_count",
                    "cta_size"});
    for (const auto &inv : workload.invocations()) {
        table.addRow({
            workload.kernel(inv.kernelId).name,
            u64(inv.invocationId),
            u64(inv.mix.instructionCount),
            u64(inv.launch.ctaSize()),
        });
    }
    return table;
}

std::vector<SieveProfileRow>
parseSieveProfile(const CsvTable &table)
{
    size_t kernel_col = table.columnIndex("kernel");
    size_t inv_col = table.columnIndex("invocation");
    size_t inst_col = table.columnIndex("instruction_count");
    size_t cta_col = table.columnIndex("cta_size");
    if (kernel_col == CsvTable::npos || inv_col == CsvTable::npos ||
        inst_col == CsvTable::npos || cta_col == CsvTable::npos)
        fatal("Sieve profile CSV is missing a required column");

    std::vector<SieveProfileRow> rows;
    rows.reserve(table.numRows());
    for (size_t r = 0; r < table.numRows(); ++r) {
        SieveProfileRow row;
        row.kernelName = table.cell(r, kernel_col);
        row.invocationId = table.cellAsUint(r, inv_col);
        row.instructionCount = table.cellAsUint(r, inst_col);
        row.ctaSize = static_cast<uint32_t>(table.cellAsUint(r, cta_col));
        rows.push_back(std::move(row));
    }
    return rows;
}

CsvTable
pksProfileTable(const Workload &workload)
{
    std::vector<std::string> header = {"kernel", "invocation"};
    for (const auto &name : InstructionMix::metricNames())
        header.push_back(name);

    CsvTable table(std::move(header));
    for (const auto &inv : workload.invocations()) {
        std::vector<std::string> row = {
            workload.kernel(inv.kernelId).name,
            u64(inv.invocationId),
        };
        for (double v : inv.mix.featureVector()) {
            std::ostringstream oss;
            oss << v;
            row.push_back(oss.str());
        }
        table.addRow(std::move(row));
    }
    return table;
}

std::vector<std::vector<double>>
parsePksProfile(const CsvTable &table)
{
    std::vector<size_t> cols;
    for (const auto &name : InstructionMix::metricNames()) {
        size_t c = table.columnIndex(name);
        if (c == CsvTable::npos)
            fatal("PKS profile CSV is missing metric column '", name, "'");
        cols.push_back(c);
    }

    std::vector<std::vector<double>> rows;
    rows.reserve(table.numRows());
    for (size_t r = 0; r < table.numRows(); ++r) {
        std::vector<double> features;
        features.reserve(cols.size());
        for (size_t c : cols)
            features.push_back(table.cellAsDouble(r, c));
        rows.push_back(std::move(features));
    }
    return rows;
}

} // namespace sieve::trace
