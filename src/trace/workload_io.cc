#include "trace/workload_io.hh"

#include <cstring>
#include <fstream>
#include <optional>

#include "common/logging.hh"
#include "io/mmap_file.hh"
#include "io/span_reader.hh"
#include "trace/workload_format.hh"

namespace sieve::trace {

namespace {

// --- little-endian primitive writers ---

template <typename T>
void
writePod(std::ostream &os, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void
writeInvocation(std::ostream &os, const KernelInvocation &inv)
{
    writePod<uint32_t>(os, inv.kernelId);
    writePod<uint64_t>(os, inv.invocationId);

    writePod<uint32_t>(os, inv.launch.grid.x);
    writePod<uint32_t>(os, inv.launch.grid.y);
    writePod<uint32_t>(os, inv.launch.grid.z);
    writePod<uint32_t>(os, inv.launch.cta.x);
    writePod<uint32_t>(os, inv.launch.cta.y);
    writePod<uint32_t>(os, inv.launch.cta.z);
    writePod<uint32_t>(os, inv.launch.sharedMemBytes);
    writePod<uint32_t>(os, inv.launch.regsPerThread);

    writePod<uint64_t>(os, inv.mix.coalescedGlobalLoads);
    writePod<uint64_t>(os, inv.mix.coalescedGlobalStores);
    writePod<uint64_t>(os, inv.mix.coalescedLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalStores);
    writePod<uint64_t>(os, inv.mix.threadLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedStores);
    writePod<uint64_t>(os, inv.mix.threadGlobalAtomics);
    writePod<uint64_t>(os, inv.mix.instructionCount);
    writePod<double>(os, inv.mix.divergenceEfficiency);
    writePod<uint64_t>(os, inv.mix.numThreadBlocks);

    writePod<double>(os, inv.memory.l1Locality);
    writePod<double>(os, inv.memory.l2Locality);
    writePod<uint64_t>(os, inv.memory.workingSetBytes);
    writePod<double>(os, inv.memory.bankConflictRate);
    writePod<double>(os, inv.memory.longLatencyFrac);
    writePod<double>(os, inv.memory.ilp);

    writePod<uint64_t>(os, inv.noiseSeed);
}

/**
 * Offset-tracking binary reader over an istream: the buffered twin
 * of io::SpanReader, implementing the same reader concept the shared
 * wlfmt:: parse templates are written against (every read either
 * succeeds or records a structured error, first error wins).
 */
class BinReader
{
  public:
    BinReader(std::istream &is, const std::string &source)
        : _is(is), _source(source)
    {
    }

    size_t offset() const { return _offset; }
    bool failed() const { return _error.has_value(); }
    Error takeError() { return std::move(*_error); }

    template <typename T>
    T
    read(const char *what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        if (_error)
            return value;
        _is.read(reinterpret_cast<char *>(&value), sizeof(T));
        if (!_is) {
            fail(ErrorKind::Io, std::string("truncated workload file: "
                                            "short read of ") +
                                    what);
            return T{};
        }
        _offset += sizeof(T);
        return value;
    }

    void
    readBytes(void *dst, size_t len, const char *what)
    {
        if (_error)
            return;
        _is.read(static_cast<char *>(dst),
                 static_cast<std::streamsize>(len));
        if (!_is) {
            fail(ErrorKind::Io, std::string("truncated workload file: "
                                            "short read of ") +
                                    what);
            return;
        }
        _offset += len;
    }

    /** Record a validation failure at the current offset. */
    void
    fail(ErrorKind kind, std::string message)
    {
        if (!_error)
            _error = ingestError(kind, std::move(message), _source, 0,
                                 _offset);
    }

    /** True when all declared data was consumed and nothing follows. */
    bool
    atEnd()
    {
        return _is.peek() == std::char_traits<char>::eof();
    }

  private:
    std::istream &_is;
    const std::string &_source;
    size_t _offset = 0;
    std::optional<Error> _error;
};

/**
 * Bytes from the current position to the end of a seekable stream;
 * nullopt for non-seekable streams (reserve hints are then skipped).
 */
std::optional<uint64_t>
streamRemaining(std::istream &is)
{
    const std::streampos cur = is.tellg();
    if (cur == std::streampos(-1)) {
        is.clear();
        return std::nullopt;
    }
    is.seekg(0, std::ios::end);
    if (!is) {
        is.clear();
        is.seekg(cur);
        return std::nullopt;
    }
    const std::streampos end = is.tellg();
    is.seekg(cur);
    if (!is || end == std::streampos(-1)) {
        is.clear();
        is.seekg(cur);
        return std::nullopt;
    }
    return static_cast<uint64_t>(end - cur);
}

/**
 * The whole-file parse, shared by the buffered (BinReader) and
 * zero-copy (io::SpanReader) paths: identical byte layout, identical
 * error text and offsets. `total_bytes` — when the source's size is
 * known — lets header-declared counts be validated against the file
 * size and then reserved in one allocation.
 */
template <typename Reader>
Expected<Workload>
parseWorkload(Reader &in, const std::string &source,
              std::optional<uint64_t> total_bytes)
{
    wlfmt::HeaderInfo hdr;
    if (auto err = wlfmt::readHeader(in, source, total_bytes, hdr))
        return std::move(*err);

    Workload workload(std::move(hdr.suite), std::move(hdr.name));
    workload.setPaperInvocations(hdr.paperInvocations);
    workload.reserve(
        hdr.kernelNames.size(),
        wlfmt::plausibleReserve(hdr.numInvocations,
                                wlfmt::kInvocationRecordBytes,
                                total_bytes, in.offset()));
    for (std::string &kernel_name : hdr.kernelNames)
        workload.addKernel(std::move(kernel_name));

    for (uint64_t i = 0; i < hdr.numInvocations; ++i) {
        KernelInvocation inv = wlfmt::readInvocation(in);
        if (in.failed())
            return in.takeError();
        // addInvocation() panics on a dangling kernel reference; a
        // corrupt file must be an error, not an abort.
        if (inv.kernelId >= workload.numKernels())
            return wlfmt::danglingKernelError(source, i, inv.kernelId,
                                              workload.numKernels(),
                                              in.offset());
        if (inv.invocationId != i)
            return wlfmt::chronologyError(source, i, inv.invocationId,
                                          in.offset());
        workload.addInvocation(std::move(inv));
    }

    if (!in.failed() && !in.atEnd())
        in.fail(ErrorKind::Validation,
                "trailing bytes after workload data");
    if (in.failed())
        return in.takeError();
    return workload;
}

} // namespace

void
saveWorkload(const Workload &workload, std::ostream &os)
{
    os.write(wlfmt::kMagic, sizeof(wlfmt::kMagic));
    writePod<uint32_t>(os, kWorkloadFormatVersion);
    writeString(os, workload.suite());
    writeString(os, workload.name());
    writePod<uint64_t>(os, workload.paperInvocations());

    writePod<uint32_t>(os,
                       static_cast<uint32_t>(workload.numKernels()));
    for (const Kernel &kernel : workload.kernels())
        writeString(os, kernel.name);

    writePod<uint64_t>(os, workload.numInvocations());
    for (const KernelInvocation &inv : workload.invocations())
        writeInvocation(os, inv);
}

void
saveWorkloadFile(const Workload &workload, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    saveWorkload(workload, ofs);
    if (!ofs)
        fatal("write to '", path, "' failed");
}

Expected<Workload>
tryLoadWorkload(std::istream &is, const std::string &source)
{
    std::optional<uint64_t> total_bytes = streamRemaining(is);
    BinReader in(is, source);
    return parseWorkload(in, source, total_bytes);
}

Expected<Workload>
tryLoadWorkloadBytes(const uint8_t *data, size_t size,
                     const std::string &source)
{
    io::SpanReader in(data, size, source);
    return parseWorkload(in, source, size);
}

Expected<Workload>
tryLoadWorkloadFile(const std::string &path)
{
    auto file = io::MmapFile::tryOpen(path);
    if (!file)
        return ingestError(ErrorKind::Io,
                           "cannot open '" + path + "' for reading",
                           path, 0, 0);
    const io::MmapFile &view = file.value();
    return tryLoadWorkloadBytes(view.data(), view.size(), path);
}

Workload
loadWorkload(std::istream &is)
{
    return unwrapOrFatal(tryLoadWorkload(is));
}

Workload
loadWorkloadFile(const std::string &path)
{
    return unwrapOrFatal(tryLoadWorkloadFile(path));
}

} // namespace sieve::trace
