#include "trace/workload_io.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>

#include "common/logging.hh"

namespace sieve::trace {

namespace {

constexpr char kMagic[8] = {'S', 'I', 'E', 'V', 'E', 'W', 'L', '\0'};

/** Sanity caps: anything larger is a corrupt header, not a workload. */
constexpr uint32_t kMaxKernels = 1u << 20;
constexpr uint64_t kMaxInvocations = 1ull << 28;
constexpr uint32_t kMaxStringLen = 64u << 20;

// --- little-endian primitive writers ---

template <typename T>
void
writePod(std::ostream &os, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void
writeInvocation(std::ostream &os, const KernelInvocation &inv)
{
    writePod<uint32_t>(os, inv.kernelId);
    writePod<uint64_t>(os, inv.invocationId);

    writePod<uint32_t>(os, inv.launch.grid.x);
    writePod<uint32_t>(os, inv.launch.grid.y);
    writePod<uint32_t>(os, inv.launch.grid.z);
    writePod<uint32_t>(os, inv.launch.cta.x);
    writePod<uint32_t>(os, inv.launch.cta.y);
    writePod<uint32_t>(os, inv.launch.cta.z);
    writePod<uint32_t>(os, inv.launch.sharedMemBytes);
    writePod<uint32_t>(os, inv.launch.regsPerThread);

    writePod<uint64_t>(os, inv.mix.coalescedGlobalLoads);
    writePod<uint64_t>(os, inv.mix.coalescedGlobalStores);
    writePod<uint64_t>(os, inv.mix.coalescedLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalStores);
    writePod<uint64_t>(os, inv.mix.threadLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedStores);
    writePod<uint64_t>(os, inv.mix.threadGlobalAtomics);
    writePod<uint64_t>(os, inv.mix.instructionCount);
    writePod<double>(os, inv.mix.divergenceEfficiency);
    writePod<uint64_t>(os, inv.mix.numThreadBlocks);

    writePod<double>(os, inv.memory.l1Locality);
    writePod<double>(os, inv.memory.l2Locality);
    writePod<uint64_t>(os, inv.memory.workingSetBytes);
    writePod<double>(os, inv.memory.bankConflictRate);
    writePod<double>(os, inv.memory.longLatencyFrac);
    writePod<double>(os, inv.memory.ilp);

    writePod<uint64_t>(os, inv.noiseSeed);
}

/**
 * Offset-tracking binary reader. Every read either succeeds or
 * records a structured error (first error wins) so parse code can
 * read a whole record and check once.
 */
class BinReader
{
  public:
    BinReader(std::istream &is, const std::string &source,
              size_t initial_offset = 0)
        : _is(is), _source(source), _offset(initial_offset)
    {
    }

    size_t offset() const { return _offset; }
    bool failed() const { return _error.has_value(); }
    Error takeError() { return std::move(*_error); }

    template <typename T>
    T
    read(const char *what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        if (_error)
            return value;
        _is.read(reinterpret_cast<char *>(&value), sizeof(T));
        if (!_is) {
            fail(ErrorKind::Io, std::string("truncated workload file: "
                                            "short read of ") +
                                    what);
            return T{};
        }
        _offset += sizeof(T);
        return value;
    }

    std::string
    readString(const char *what)
    {
        if (_error)
            return {};
        uint32_t len = read<uint32_t>(what);
        if (_error)
            return {};
        if (len > kMaxStringLen) {
            fail(ErrorKind::Validation,
                 "implausible string length " + std::to_string(len) +
                     " for " + what);
            return {};
        }
        std::string s(len, '\0');
        _is.read(s.data(), len);
        if (!_is) {
            fail(ErrorKind::Io, std::string("truncated workload file: "
                                            "short read of ") +
                                    what);
            return {};
        }
        _offset += len;
        return s;
    }

    /** Record a validation failure at the current offset. */
    void
    fail(ErrorKind kind, std::string message)
    {
        if (!_error)
            _error = ingestError(kind, std::move(message), _source, 0,
                                 _offset);
    }

    /** True when all declared data was consumed and nothing follows. */
    void
    requireEof()
    {
        if (_error)
            return;
        if (_is.peek() != std::char_traits<char>::eof())
            fail(ErrorKind::Validation,
                 "trailing bytes after workload data");
    }

  private:
    std::istream &_is;
    const std::string &_source;
    size_t _offset = 0;
    std::optional<Error> _error;
};

/** Reject NaN/Inf and out-of-range fractions from hostile files. */
bool
validFraction(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

KernelInvocation
readInvocation(BinReader &in)
{
    KernelInvocation inv;
    inv.kernelId = in.read<uint32_t>("kernel id");
    inv.invocationId = in.read<uint64_t>("invocation id");

    inv.launch.grid.x = in.read<uint32_t>("grid.x");
    inv.launch.grid.y = in.read<uint32_t>("grid.y");
    inv.launch.grid.z = in.read<uint32_t>("grid.z");
    inv.launch.cta.x = in.read<uint32_t>("cta.x");
    inv.launch.cta.y = in.read<uint32_t>("cta.y");
    inv.launch.cta.z = in.read<uint32_t>("cta.z");
    inv.launch.sharedMemBytes = in.read<uint32_t>("shared mem");
    inv.launch.regsPerThread = in.read<uint32_t>("regs per thread");

    inv.mix.coalescedGlobalLoads = in.read<uint64_t>("mix field");
    inv.mix.coalescedGlobalStores = in.read<uint64_t>("mix field");
    inv.mix.coalescedLocalLoads = in.read<uint64_t>("mix field");
    inv.mix.threadGlobalLoads = in.read<uint64_t>("mix field");
    inv.mix.threadGlobalStores = in.read<uint64_t>("mix field");
    inv.mix.threadLocalLoads = in.read<uint64_t>("mix field");
    inv.mix.threadSharedLoads = in.read<uint64_t>("mix field");
    inv.mix.threadSharedStores = in.read<uint64_t>("mix field");
    inv.mix.threadGlobalAtomics = in.read<uint64_t>("mix field");
    inv.mix.instructionCount = in.read<uint64_t>("instruction count");
    inv.mix.divergenceEfficiency =
        in.read<double>("divergence efficiency");
    inv.mix.numThreadBlocks = in.read<uint64_t>("thread blocks");

    inv.memory.l1Locality = in.read<double>("l1 locality");
    inv.memory.l2Locality = in.read<double>("l2 locality");
    inv.memory.workingSetBytes = in.read<uint64_t>("working set");
    inv.memory.bankConflictRate = in.read<double>("bank conflicts");
    inv.memory.longLatencyFrac = in.read<double>("long-latency frac");
    inv.memory.ilp = in.read<double>("ilp");

    inv.noiseSeed = in.read<uint64_t>("noise seed");
    if (in.failed())
        return inv;

    if (inv.launch.grid.x == 0 || inv.launch.grid.y == 0 ||
        inv.launch.grid.z == 0 || inv.launch.cta.x == 0 ||
        inv.launch.cta.y == 0 || inv.launch.cta.z == 0) {
        in.fail(ErrorKind::Validation,
                "zero launch geometry dimension in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    if (!validFraction(inv.mix.divergenceEfficiency) ||
        !validFraction(inv.memory.l1Locality) ||
        !validFraction(inv.memory.l2Locality) ||
        !validFraction(inv.memory.bankConflictRate) ||
        !validFraction(inv.memory.longLatencyFrac)) {
        in.fail(ErrorKind::Validation,
                "non-finite or out-of-range fraction in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    if (!std::isfinite(inv.memory.ilp) || inv.memory.ilp < 0.0) {
        in.fail(ErrorKind::Validation,
                "invalid ilp in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    return inv;
}

} // namespace

void
saveWorkload(const Workload &workload, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writePod<uint32_t>(os, kWorkloadFormatVersion);
    writeString(os, workload.suite());
    writeString(os, workload.name());
    writePod<uint64_t>(os, workload.paperInvocations());

    writePod<uint32_t>(os,
                       static_cast<uint32_t>(workload.numKernels()));
    for (const Kernel &kernel : workload.kernels())
        writeString(os, kernel.name);

    writePod<uint64_t>(os, workload.numInvocations());
    for (const KernelInvocation &inv : workload.invocations())
        writeInvocation(os, inv);
}

void
saveWorkloadFile(const Workload &workload, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    saveWorkload(workload, ofs);
    if (!ofs)
        fatal("write to '", path, "' failed");
}

Expected<Workload>
tryLoadWorkload(std::istream &is, const std::string &source)
{
    char magic[sizeof(kMagic)];
    is.read(magic, sizeof(magic));
    if (!is)
        return ingestError(ErrorKind::Io,
                           "truncated workload file: short read of "
                           "magic",
                           source, 0, 0);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return ingestError(ErrorKind::Parse,
                           "not a sieve workload file (bad magic)",
                           source, 0, 0);

    BinReader in(is, source, sizeof(kMagic));
    uint32_t version = in.read<uint32_t>("format version");
    if (!in.failed() && version != kWorkloadFormatVersion)
        in.fail(ErrorKind::Validation,
                "workload file version " + std::to_string(version) +
                    " unsupported (want " +
                    std::to_string(kWorkloadFormatVersion) + ")");

    std::string suite = in.readString("suite name");
    std::string name = in.readString("workload name");
    uint64_t paper_invocations = in.read<uint64_t>("paper invocations");
    if (in.failed())
        return in.takeError();

    Workload workload(suite, name);
    workload.setPaperInvocations(paper_invocations);

    uint32_t num_kernels = in.read<uint32_t>("kernel count");
    if (!in.failed() && num_kernels > kMaxKernels)
        in.fail(ErrorKind::Validation,
                "implausible kernel count " +
                    std::to_string(num_kernels));
    if (in.failed())
        return in.takeError();
    for (uint32_t k = 0; k < num_kernels; ++k) {
        std::string kernel_name = in.readString("kernel name");
        if (in.failed())
            return in.takeError();
        workload.addKernel(std::move(kernel_name));
    }

    uint64_t num_invocations = in.read<uint64_t>("invocation count");
    if (!in.failed() && num_invocations > kMaxInvocations)
        in.fail(ErrorKind::Validation,
                "implausible invocation count " +
                    std::to_string(num_invocations));
    if (in.failed())
        return in.takeError();
    for (uint64_t i = 0; i < num_invocations; ++i) {
        KernelInvocation inv = readInvocation(in);
        if (in.failed())
            return in.takeError();
        // addInvocation() panics on a dangling kernel reference; a
        // corrupt file must be an error, not an abort.
        if (inv.kernelId >= workload.numKernels())
            return ingestError(
                ErrorKind::Validation,
                "invocation " + std::to_string(i) +
                    " references unknown kernel " +
                    std::to_string(inv.kernelId) + " (of " +
                    std::to_string(workload.numKernels()) + ")",
                source, 0, in.offset());
        if (inv.invocationId != i)
            return ingestError(
                ErrorKind::Validation,
                "invocation ids must be chronological: expected " +
                    std::to_string(i) + ", found " +
                    std::to_string(inv.invocationId),
                source, 0, in.offset());
        workload.addInvocation(std::move(inv));
    }

    in.requireEof();
    if (in.failed())
        return in.takeError();
    return workload;
}

Expected<Workload>
tryLoadWorkloadFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        return ingestError(ErrorKind::Io,
                           "cannot open '" + path + "' for reading",
                           path, 0, 0);
    return tryLoadWorkload(ifs, path);
}

Workload
loadWorkload(std::istream &is)
{
    return unwrapOrFatal(tryLoadWorkload(is));
}

Workload
loadWorkloadFile(const std::string &path)
{
    return unwrapOrFatal(tryLoadWorkloadFile(path));
}

} // namespace sieve::trace
