#include "trace/workload_io.hh"

#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace sieve::trace {

namespace {

constexpr char kMagic[8] = {'S', 'I', 'E', 'V', 'E', 'W', 'L', '\0'};

// --- little-endian primitive writers/readers ---

template <typename T>
void
writePod(std::ostream &os, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("truncated workload file");
    return value;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    uint32_t len = readPod<uint32_t>(is);
    if (len > (64u << 20))
        fatal("implausible string length ", len, " in workload file");
    std::string s(len, '\0');
    is.read(s.data(), len);
    if (!is)
        fatal("truncated workload file");
    return s;
}

void
writeInvocation(std::ostream &os, const KernelInvocation &inv)
{
    writePod<uint32_t>(os, inv.kernelId);
    writePod<uint64_t>(os, inv.invocationId);

    writePod<uint32_t>(os, inv.launch.grid.x);
    writePod<uint32_t>(os, inv.launch.grid.y);
    writePod<uint32_t>(os, inv.launch.grid.z);
    writePod<uint32_t>(os, inv.launch.cta.x);
    writePod<uint32_t>(os, inv.launch.cta.y);
    writePod<uint32_t>(os, inv.launch.cta.z);
    writePod<uint32_t>(os, inv.launch.sharedMemBytes);
    writePod<uint32_t>(os, inv.launch.regsPerThread);

    writePod<uint64_t>(os, inv.mix.coalescedGlobalLoads);
    writePod<uint64_t>(os, inv.mix.coalescedGlobalStores);
    writePod<uint64_t>(os, inv.mix.coalescedLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalLoads);
    writePod<uint64_t>(os, inv.mix.threadGlobalStores);
    writePod<uint64_t>(os, inv.mix.threadLocalLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedLoads);
    writePod<uint64_t>(os, inv.mix.threadSharedStores);
    writePod<uint64_t>(os, inv.mix.threadGlobalAtomics);
    writePod<uint64_t>(os, inv.mix.instructionCount);
    writePod<double>(os, inv.mix.divergenceEfficiency);
    writePod<uint64_t>(os, inv.mix.numThreadBlocks);

    writePod<double>(os, inv.memory.l1Locality);
    writePod<double>(os, inv.memory.l2Locality);
    writePod<uint64_t>(os, inv.memory.workingSetBytes);
    writePod<double>(os, inv.memory.bankConflictRate);
    writePod<double>(os, inv.memory.longLatencyFrac);
    writePod<double>(os, inv.memory.ilp);

    writePod<uint64_t>(os, inv.noiseSeed);
}

KernelInvocation
readInvocation(std::istream &is)
{
    KernelInvocation inv;
    inv.kernelId = readPod<uint32_t>(is);
    inv.invocationId = readPod<uint64_t>(is);

    inv.launch.grid.x = readPod<uint32_t>(is);
    inv.launch.grid.y = readPod<uint32_t>(is);
    inv.launch.grid.z = readPod<uint32_t>(is);
    inv.launch.cta.x = readPod<uint32_t>(is);
    inv.launch.cta.y = readPod<uint32_t>(is);
    inv.launch.cta.z = readPod<uint32_t>(is);
    inv.launch.sharedMemBytes = readPod<uint32_t>(is);
    inv.launch.regsPerThread = readPod<uint32_t>(is);

    inv.mix.coalescedGlobalLoads = readPod<uint64_t>(is);
    inv.mix.coalescedGlobalStores = readPod<uint64_t>(is);
    inv.mix.coalescedLocalLoads = readPod<uint64_t>(is);
    inv.mix.threadGlobalLoads = readPod<uint64_t>(is);
    inv.mix.threadGlobalStores = readPod<uint64_t>(is);
    inv.mix.threadLocalLoads = readPod<uint64_t>(is);
    inv.mix.threadSharedLoads = readPod<uint64_t>(is);
    inv.mix.threadSharedStores = readPod<uint64_t>(is);
    inv.mix.threadGlobalAtomics = readPod<uint64_t>(is);
    inv.mix.instructionCount = readPod<uint64_t>(is);
    inv.mix.divergenceEfficiency = readPod<double>(is);
    inv.mix.numThreadBlocks = readPod<uint64_t>(is);

    inv.memory.l1Locality = readPod<double>(is);
    inv.memory.l2Locality = readPod<double>(is);
    inv.memory.workingSetBytes = readPod<uint64_t>(is);
    inv.memory.bankConflictRate = readPod<double>(is);
    inv.memory.longLatencyFrac = readPod<double>(is);
    inv.memory.ilp = readPod<double>(is);

    inv.noiseSeed = readPod<uint64_t>(is);
    return inv;
}

} // namespace

void
saveWorkload(const Workload &workload, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writePod<uint32_t>(os, kWorkloadFormatVersion);
    writeString(os, workload.suite());
    writeString(os, workload.name());
    writePod<uint64_t>(os, workload.paperInvocations());

    writePod<uint32_t>(os,
                       static_cast<uint32_t>(workload.numKernels()));
    for (const Kernel &kernel : workload.kernels())
        writeString(os, kernel.name);

    writePod<uint64_t>(os, workload.numInvocations());
    for (const KernelInvocation &inv : workload.invocations())
        writeInvocation(os, inv);
}

void
saveWorkloadFile(const Workload &workload, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    saveWorkload(workload, ofs);
    if (!ofs)
        fatal("write to '", path, "' failed");
}

Workload
loadWorkload(std::istream &is)
{
    char magic[sizeof(kMagic)];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("not a sieve workload file (bad magic)");
    uint32_t version = readPod<uint32_t>(is);
    if (version != kWorkloadFormatVersion)
        fatal("workload file version ", version, " unsupported (want ",
              kWorkloadFormatVersion, ")");

    std::string suite = readString(is);
    std::string name = readString(is);
    Workload workload(suite, name);
    workload.setPaperInvocations(readPod<uint64_t>(is));

    uint32_t num_kernels = readPod<uint32_t>(is);
    for (uint32_t k = 0; k < num_kernels; ++k)
        workload.addKernel(readString(is));

    uint64_t num_invocations = readPod<uint64_t>(is);
    for (uint64_t i = 0; i < num_invocations; ++i)
        workload.addInvocation(readInvocation(is));
    return workload;
}

Workload
loadWorkloadFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        fatal("cannot open '", path, "' for reading");
    return loadWorkload(ifs);
}

} // namespace sieve::trace
