/**
 * @file
 * Shared internals of the .swl workload file format.
 *
 * The resident loader (workload_io.cc, over an istream `BinReader`
 * or an mmapped `io::SpanReader`) and the out-of-core stream reader
 * (workload_stream.cc, windows of records over a mapped file) must
 * agree bit-for-bit on both the byte layout and the error text/
 * offsets they produce. This header is that single source of truth:
 * the format constants, the per-record reader, and the header parser
 * are function templates over the reader concept (`read<T>`,
 * `readBytes`, `fail`, `failed`, `takeError`, `offset`, `atEnd`), so
 * there is exactly one implementation to validate against hostile
 * input.
 *
 * Internal to sieve_trace — not part of the public trace API.
 */

#ifndef SIEVE_TRACE_WORKLOAD_FORMAT_HH
#define SIEVE_TRACE_WORKLOAD_FORMAT_HH

#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/workload.hh"
#include "trace/workload_io.hh"

namespace sieve::trace::wlfmt {

inline constexpr char kMagic[8] = {'S', 'I', 'E', 'V', 'E',
                                   'W', 'L', '\0'};

/** Sanity caps: anything larger is a corrupt header, not a workload. */
inline constexpr uint32_t kMaxKernels = 1u << 20;
inline constexpr uint64_t kMaxInvocations = 1ull << 28;
inline constexpr uint32_t kMaxStringLen = 64u << 20;

/**
 * Exact on-disk size of one invocation record: kernel id (4) +
 * invocation id (8) + 8 launch u32s (32) + mix (9 u64 counters,
 * instruction count, divergence double, thread blocks = 96) +
 * memory (3 doubles, working set, 2 doubles = 48) + noise seed (8).
 */
inline constexpr uint64_t kInvocationRecordBytes = 196;

/** Reject NaN/Inf and out-of-range fractions from hostile files. */
inline bool
validFraction(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

/**
 * The number of elements it is safe to reserve() for a
 * header-declared count: `count` only when the remainder of the file
 * could actually hold that many entries of at least
 * `min_bytes_each`, else 0 (grow incrementally; the reads themselves
 * will report truncation). Never a validation failure — the byte
 * stream stays the sole arbiter of what errors say.
 */
inline size_t
plausibleReserve(uint64_t count, uint64_t min_bytes_each,
                 std::optional<uint64_t> total_bytes, size_t offset)
{
    if (!total_bytes || *total_bytes < offset)
        return 0;
    const uint64_t remaining = *total_bytes - offset;
    if (min_bytes_each == 0 || count > remaining / min_bytes_each)
        return 0;
    return static_cast<size_t>(count);
}

/** Length-prefixed string with the format's plausibility cap. */
template <typename Reader>
std::string
readString(Reader &in, const char *what)
{
    if (in.failed())
        return {};
    uint32_t len = in.template read<uint32_t>(what);
    if (in.failed())
        return {};
    if (len > kMaxStringLen) {
        in.fail(ErrorKind::Validation,
                "implausible string length " + std::to_string(len) +
                    " for " + what);
        return {};
    }
    std::string s(len, '\0');
    in.readBytes(s.data(), len, what);
    if (in.failed())
        return {};
    return s;
}

/**
 * One invocation record, fully validated (launch geometry, fraction
 * ranges, ilp). On failure the reader carries the error.
 */
template <typename Reader>
KernelInvocation
readInvocation(Reader &in)
{
    KernelInvocation inv;
    inv.kernelId = in.template read<uint32_t>("kernel id");
    inv.invocationId = in.template read<uint64_t>("invocation id");

    inv.launch.grid.x = in.template read<uint32_t>("grid.x");
    inv.launch.grid.y = in.template read<uint32_t>("grid.y");
    inv.launch.grid.z = in.template read<uint32_t>("grid.z");
    inv.launch.cta.x = in.template read<uint32_t>("cta.x");
    inv.launch.cta.y = in.template read<uint32_t>("cta.y");
    inv.launch.cta.z = in.template read<uint32_t>("cta.z");
    inv.launch.sharedMemBytes = in.template read<uint32_t>("shared mem");
    inv.launch.regsPerThread =
        in.template read<uint32_t>("regs per thread");

    inv.mix.coalescedGlobalLoads =
        in.template read<uint64_t>("mix field");
    inv.mix.coalescedGlobalStores =
        in.template read<uint64_t>("mix field");
    inv.mix.coalescedLocalLoads =
        in.template read<uint64_t>("mix field");
    inv.mix.threadGlobalLoads = in.template read<uint64_t>("mix field");
    inv.mix.threadGlobalStores = in.template read<uint64_t>("mix field");
    inv.mix.threadLocalLoads = in.template read<uint64_t>("mix field");
    inv.mix.threadSharedLoads = in.template read<uint64_t>("mix field");
    inv.mix.threadSharedStores = in.template read<uint64_t>("mix field");
    inv.mix.threadGlobalAtomics =
        in.template read<uint64_t>("mix field");
    inv.mix.instructionCount =
        in.template read<uint64_t>("instruction count");
    inv.mix.divergenceEfficiency =
        in.template read<double>("divergence efficiency");
    inv.mix.numThreadBlocks =
        in.template read<uint64_t>("thread blocks");

    inv.memory.l1Locality = in.template read<double>("l1 locality");
    inv.memory.l2Locality = in.template read<double>("l2 locality");
    inv.memory.workingSetBytes =
        in.template read<uint64_t>("working set");
    inv.memory.bankConflictRate =
        in.template read<double>("bank conflicts");
    inv.memory.longLatencyFrac =
        in.template read<double>("long-latency frac");
    inv.memory.ilp = in.template read<double>("ilp");

    inv.noiseSeed = in.template read<uint64_t>("noise seed");
    if (in.failed())
        return inv;

    if (inv.launch.grid.x == 0 || inv.launch.grid.y == 0 ||
        inv.launch.grid.z == 0 || inv.launch.cta.x == 0 ||
        inv.launch.cta.y == 0 || inv.launch.cta.z == 0) {
        in.fail(ErrorKind::Validation,
                "zero launch geometry dimension in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    if (!validFraction(inv.mix.divergenceEfficiency) ||
        !validFraction(inv.memory.l1Locality) ||
        !validFraction(inv.memory.l2Locality) ||
        !validFraction(inv.memory.bankConflictRate) ||
        !validFraction(inv.memory.longLatencyFrac)) {
        in.fail(ErrorKind::Validation,
                "non-finite or out-of-range fraction in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    if (!std::isfinite(inv.memory.ilp) || inv.memory.ilp < 0.0) {
        in.fail(ErrorKind::Validation,
                "invalid ilp in invocation " +
                    std::to_string(inv.invocationId));
        return inv;
    }
    return inv;
}

/** Everything that precedes the invocation records. */
struct HeaderInfo
{
    std::string suite;
    std::string name;
    uint64_t paperInvocations = 0;
    std::vector<std::string> kernelNames;
    uint64_t numInvocations = 0;
};

/**
 * Parse magic through invocation count. Returns the error (if any);
 * on success the reader is positioned at the first record.
 * `total_bytes` (when known) gates reserve() of the kernel table —
 * see plausibleReserve().
 */
template <typename Reader>
std::optional<Error>
readHeader(Reader &in, const std::string &source,
           std::optional<uint64_t> total_bytes, HeaderInfo &out)
{
    char magic[sizeof(kMagic)];
    in.readBytes(magic, sizeof(magic), "magic");
    if (in.failed())
        return in.takeError();
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return ingestError(ErrorKind::Parse,
                           "not a sieve workload file (bad magic)",
                           source, 0, 0);

    uint32_t version = in.template read<uint32_t>("format version");
    if (!in.failed() && version != kWorkloadFormatVersion)
        in.fail(ErrorKind::Validation,
                "workload file version " + std::to_string(version) +
                    " unsupported (want " +
                    std::to_string(kWorkloadFormatVersion) + ")");

    out.suite = readString(in, "suite name");
    out.name = readString(in, "workload name");
    out.paperInvocations =
        in.template read<uint64_t>("paper invocations");
    if (in.failed())
        return in.takeError();

    uint32_t num_kernels = in.template read<uint32_t>("kernel count");
    if (!in.failed() && num_kernels > kMaxKernels)
        in.fail(ErrorKind::Validation,
                "implausible kernel count " +
                    std::to_string(num_kernels));
    if (in.failed())
        return in.takeError();
    // Each kernel entry is at least its 4-byte length prefix.
    out.kernelNames.reserve(
        plausibleReserve(num_kernels, 4, total_bytes, in.offset()));
    for (uint32_t k = 0; k < num_kernels; ++k) {
        std::string kernel_name = readString(in, "kernel name");
        if (in.failed())
            return in.takeError();
        out.kernelNames.push_back(std::move(kernel_name));
    }

    out.numInvocations = in.template read<uint64_t>("invocation count");
    if (!in.failed() && out.numInvocations > kMaxInvocations)
        in.fail(ErrorKind::Validation,
                "implausible invocation count " +
                    std::to_string(out.numInvocations));
    if (in.failed())
        return in.takeError();
    return std::nullopt;
}

/** Exact error for a record referencing a kernel id out of range. */
inline Error
danglingKernelError(const std::string &source, uint64_t index,
                    uint32_t kernel_id, size_t num_kernels,
                    size_t offset)
{
    return ingestError(ErrorKind::Validation,
                       "invocation " + std::to_string(index) +
                           " references unknown kernel " +
                           std::to_string(kernel_id) + " (of " +
                           std::to_string(num_kernels) + ")",
                       source, 0, offset);
}

/** Exact error for an out-of-order invocation id. */
inline Error
chronologyError(const std::string &source, uint64_t expected,
                uint64_t found, size_t offset)
{
    return ingestError(
        ErrorKind::Validation,
        "invocation ids must be chronological: expected " +
            std::to_string(expected) + ", found " +
            std::to_string(found),
        source, 0, offset);
}

} // namespace sieve::trace::wlfmt

#endif // SIEVE_TRACE_WORKLOAD_FORMAT_HH
