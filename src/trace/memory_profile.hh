/**
 * @file
 * Hidden memory/execution behaviour of a kernel invocation.
 *
 * These parameters drive the timing models but are deliberately *not*
 * part of any profiler's output: they stand in for the aspects of
 * real-kernel behaviour (cache locality, bank conflicts, instruction
 * latency mix) that the 12 microarchitecture-independent PKS metrics
 * do not capture. This under-determination is the honest mechanism
 * behind the intra-cluster cycle-count variability the paper reports
 * for PKS (Fig. 4): invocations from different kernels can share a
 * feature vector yet differ in performance.
 */

#ifndef SIEVE_TRACE_MEMORY_PROFILE_HH
#define SIEVE_TRACE_MEMORY_PROFILE_HH

#include <cstdint>

namespace sieve::trace {

/**
 * Locality and latency behaviour invisible to the profilers.
 * All fractions are in [0, 1].
 */
struct MemoryProfile
{
    /** Fraction of global accesses that hit in a warmed L1. */
    double l1Locality = 0.5;

    /** Fraction of L1 misses that hit in a warmed, large-enough L2. */
    double l2Locality = 0.5;

    /** Resident working set; drives capacity misses vs L2 size. */
    uint64_t workingSetBytes = 1ULL << 20;

    /** Shared-memory bank conflict degree (0 = none, 1 = worst). */
    double bankConflictRate = 0.0;

    /**
     * Fraction of compute instructions that are long-latency
     * (FP64 / SFU / tensor-like) rather than single-issue ALU.
     */
    double longLatencyFrac = 0.1;

    /**
     * Instruction-level parallelism within a warp's stream; higher
     * means latency hides better at low occupancy.
     */
    double ilp = 2.0;

    bool operator==(const MemoryProfile &) const = default;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_MEMORY_PROFILE_HH
