/**
 * @file
 * Digest-sharded on-disk trace store: content-addressed columnar
 * blobs, deduplicated at rest.
 *
 * Representative traces are bulky and — once synthesis is
 * content-seeded — frequently identical: many strata collapse onto
 * the same canonical trace. The shard store exploits that on disk
 * the way the sim-cache (PR 4) does in memory. A trace is keyed by
 * its content digest (`BlobDigest`, the 128-bit digest the gpusim
 * layer computes over canonical columnar bytes); the key picks one
 * of N shard files (`lo % N`, in the spirit of deltafs' per-shard
 * partitioned logs), and the blob — `compressBytes(encodeColumnar(t))`,
 * the exact hibernation payload of the tier layer — is appended to
 * that shard exactly once. A second put of the same digest is a
 * metadata hit: *identical traces dedup at rest*.
 *
 * On-disk layout (`dir/`):
 *
 *     manifest.swm     "SVSM" | u32 version | u32 numShards
 *     shard_<k>.blobs  frames: "SVB1" | digest lo,hi (u64 each)
 *                      | u32 payload length | payload
 *     shard_<k>.idx    "SVIX" | u32 version | u32 shard | u64 count
 *                      | count x {lo, hi, offset, length (u64 each)}
 *                      | u64 FNV-1a checksum of the entry bytes
 *
 * Offsets address the payload (not the frame header), so a get is
 * one pread + tryRehydrate. Every layer is checksummed: the index
 * carries its own FNV trailer, the frame header pins the digest, and
 * the payload is the tier layer's checksummed compressed columnar
 * encoding — corruption anywhere yields a structured Error, never a
 * silently-wrong trace (validate() sweeps all three layers).
 *
 * Stable counters `store.shard.puts`, `store.shard.dedup_hits`,
 * `store.shard.stored_blobs`, `store.shard.stored_bytes`, and
 * `store.shard.gets` are sums over the put/get multiset — order
 * independent, hence --jobs-invariant.
 *
 * Thread-safe (one mutex; see DESIGN.md §11 for why that is enough).
 */

#ifndef SIEVE_TRACE_SHARD_STORE_HH
#define SIEVE_TRACE_SHARD_STORE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/columnar.hh"

namespace sieve::trace {

/**
 * 128-bit content digest key. Interconvertible with the gpusim
 * layer's TraceDigest (sieve_trace cannot link sieve_gpusim, so the
 * key type lives here and callers hand digests down).
 */
struct BlobDigest
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const BlobDigest &other) const = default;
};

struct BlobDigestHash
{
    size_t
    operator()(const BlobDigest &d) const
    {
        return static_cast<size_t>(d.lo ^
                                   (d.hi * 0x9e3779b97f4a7c15ull));
    }
};

/** Store shape. */
struct ShardStoreConfig
{
    size_t numShards = 8;
};

/**
 * One sharded store rooted at a directory. Copyable handle (shared
 * state); create/open are the only constructors.
 */
class ShardStore
{
  public:
    /** Outcome of a put: freshly stored, or deduplicated. */
    struct PutResult
    {
        bool inserted = false; //!< false = digest already at rest
        size_t blobBytes = 0;  //!< compressed payload size
    };

    /** Per-shard census for `sieve shard-stats`. */
    struct ShardInfo
    {
        size_t shard = 0;
        size_t blobs = 0;      //!< unique blobs at rest
        size_t blobBytes = 0;  //!< payload bytes at rest
        uint64_t puts = 0;     //!< logical puts routed here

        /** Logical puts per stored blob (1.0 = no dedup). */
        double
        dedupRatio() const
        {
            return blobs == 0
                       ? 1.0
                       : static_cast<double>(puts) /
                             static_cast<double>(blobs);
        }
    };

    /** One problem found by validate(). */
    struct HealthIssue
    {
        size_t shard = 0;
        std::string problem;
    };

    /**
     * Initialize a fresh store at `dir` (created if missing; must
     * not already contain a store).
     */
    static Expected<ShardStore> tryCreate(const std::string &dir,
                                          ShardStoreConfig config = {});

    /** Open an existing store, loading and verifying all indexes. */
    static Expected<ShardStore> tryOpen(const std::string &dir);

    /**
     * Store `trace` under `digest`. A repeat digest never re-writes:
     * it returns `{inserted = false}` with the at-rest size.
     */
    Expected<PutResult> tryPut(const BlobDigest &digest,
                               const ColumnarTrace &trace);

    /**
     * Read back and decode the blob stored under `digest`. The key
     * is the gpusim simulation-equivalence digest, which excludes
     * kernelName/invocationId — so when several identity-differing
     * traces deduped onto one blob, the decoded trace carries the
     * *first* put's identity fields. Callers that need exact
     * identity keep it themselves and re-stamp it (the tier pool's
     * store-backed slots do).
     */
    Expected<ColumnarTrace> tryGet(const BlobDigest &digest) const;

    bool contains(const BlobDigest &digest) const;

    /** At-rest compressed size of a stored blob, if present. */
    std::optional<size_t> blobBytes(const BlobDigest &digest) const;

    /**
     * Rewrite every shard's index file to match the in-memory entry
     * table. Call after a batch of puts; a store opened without a
     * flush sees only the last flushed state.
     */
    Expected<void> flushIndex() const;

    /**
     * Deep scan of the on-disk state: manifest, per-shard index
     * (magic, version, checksum, bounds), and every frame header
     * against its index entry. Returns the issues found (empty =
     * healthy); only an unreadable manifest is an outright Error.
     */
    Expected<std::vector<HealthIssue>> validate() const;

    size_t numShards() const;
    size_t numBlobs() const;
    const std::string &directory() const;
    std::vector<ShardInfo> shardInfo() const;

  private:
    struct State;
    explicit ShardStore(std::shared_ptr<State> state)
        : _state(std::move(state))
    {
    }

    std::shared_ptr<State> _state;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_SHARD_STORE_HH
