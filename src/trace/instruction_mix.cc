#include "trace/instruction_mix.hh"

namespace sieve::trace {

std::array<double, kNumPksMetrics>
InstructionMix::featureVector() const
{
    return {
        static_cast<double>(coalescedGlobalLoads),
        static_cast<double>(coalescedGlobalStores),
        static_cast<double>(coalescedLocalLoads),
        static_cast<double>(threadGlobalLoads),
        static_cast<double>(threadGlobalStores),
        static_cast<double>(threadLocalLoads),
        static_cast<double>(threadSharedLoads),
        static_cast<double>(threadSharedStores),
        static_cast<double>(threadGlobalAtomics),
        static_cast<double>(instructionCount),
        divergenceEfficiency,
        static_cast<double>(numThreadBlocks),
    };
}

const std::array<std::string, kNumPksMetrics> &
InstructionMix::metricNames()
{
    static const std::array<std::string, kNumPksMetrics> names = {
        "coalesced_global_loads",
        "coalesced_global_stores",
        "coalesced_local_loads",
        "thread_global_loads",
        "thread_global_stores",
        "thread_local_loads",
        "thread_shared_loads",
        "thread_shared_stores",
        "thread_global_atomics",
        "instruction_count",
        "divergence_efficiency",
        "num_thread_blocks",
    };
    return names;
}

uint64_t
InstructionMix::totalMemoryInstructions() const
{
    return threadGlobalLoads + threadGlobalStores + threadLocalLoads +
           threadSharedLoads + threadSharedStores + threadGlobalAtomics;
}

double
InstructionMix::memoryIntensity() const
{
    if (instructionCount == 0)
        return 0.0;
    double mem = static_cast<double>(totalMemoryInstructions());
    return mem / static_cast<double>(instructionCount);
}

} // namespace sieve::trace
