/**
 * @file
 * Tiered residency for columnar traces: hot / hibernated strata.
 *
 * A sampling run keeps one representative trace per stratum alive,
 * but the simulator only ever looks at a few of them at a time. The
 * tier layer exploits that: every trace inserted into a
 * `TraceTierPool` is eagerly serialized to a compressed blob (the
 * cold form, always kept), while the decoded `ColumnarTrace` (the
 * hot form) lives under an LRU byte budget. When the budget
 * overflows, the least-recently-used unpinned trace *hibernates* —
 * its decoded form is dropped, leaving only the blob. `TraceHandle`
 * is the stable reference: `pin()` rehydrates a hibernated trace on
 * demand (decompress + decode) and protects it from eviction for the
 * pin's lifetime.
 *
 * Compression is a self-contained LZSS variant (no external deps):
 * greedy byte matcher with a 4 KiB window, 12-bit offsets and match
 * lengths 3..18, framed with magic, raw size, and the columnar
 * payload's own checksum downstream. `tryDecompressBytes` is fully
 * bounds-checked and returns a structured Error on any malformed
 * input; combined with `tryDecodeColumnar`'s validation, corruption
 * of a hibernated blob can never produce a silently-wrong trace.
 *
 * Budget knob: `--trace-budget-mb` on the CLIs, or the
 * `SIEVE_TRACE_BUDGET_MB` environment variable (default 64 MiB; 0
 * hibernates everything that is not pinned).
 *
 * Determinism contract: the Stable counters `trace.bytes_resident`,
 * `trace.bytes_per_instruction`, and `trace.rehydrations` (see
 * DESIGN.md §7) are driven purely by the insert/pin sequence of a
 * pool. Pools are therefore *per pipeline instance* (one per
 * workload), never shared across concurrently-scheduled tasks, so a
 * `--jobs N` fan-out replays each pool's access sequence identically
 * and the counters stay jobs-invariant.
 */

#ifndef SIEVE_TRACE_TIER_HH
#define SIEVE_TRACE_TIER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hh"
#include "trace/columnar.hh"
#include "trace/shard_store.hh"

namespace sieve::trace {

/** Tier-layer tuning. */
struct TierConfig
{
    /** LRU budget for decoded (hot) traces, in bytes. */
    size_t budgetBytes = size_t{64} << 20;

    /**
     * TierConfig with the budget taken from SIEVE_TRACE_BUDGET_MB
     * (unset or unparsable values keep the default).
     */
    static TierConfig fromEnv();
};

/**
 * LZSS-compress a byte buffer (framed: magic, raw size, tokens).
 */
std::vector<uint8_t> compressBytes(const uint8_t *data, size_t size);

/**
 * Decompress a compressBytes() frame. Fully bounds-checked: any
 * malformed frame (bad magic, out-of-window match, length mismatch,
 * trailing bytes) is a structured Error.
 */
Expected<std::vector<uint8_t>> tryDecompressBytes(
    const uint8_t *data, size_t size,
    const std::string &source = "<blob>");

/** Compress the canonical columnar bytes of `trace` (cold form). */
std::vector<uint8_t> hibernate(const ColumnarTrace &trace);

/**
 * Decompress + decode a hibernate() blob. Structured Error on any
 * corruption (never a crash, never a silently-wrong trace).
 */
Expected<ColumnarTrace> tryRehydrate(
    const uint8_t *data, size_t size,
    const std::string &source = "<blob>");

namespace detail {
struct TraceSlot;
struct PoolState;
} // namespace detail

/**
 * Reference to a trace owned by a TraceTierPool. Copyable, cheap,
 * and stable across hibernation; outlives the pool object itself
 * (the shared pool state is kept alive by its handles).
 */
class TraceHandle
{
  public:
    TraceHandle() = default;

    /**
     * RAII access to the decoded trace: rehydrates if hibernated and
     * blocks eviction while alive.
     */
    class Pin
    {
      public:
        Pin() = default;
        Pin(Pin &&other) noexcept
            : _state(std::move(other._state)),
              _slot(std::move(other._slot))
        {
        }
        Pin &operator=(Pin &&other) noexcept;
        Pin(const Pin &) = delete;
        Pin &operator=(const Pin &) = delete;
        ~Pin();

        const ColumnarTrace &operator*() const;
        const ColumnarTrace *operator->() const { return &**this; }

      private:
        friend class TraceHandle;
        Pin(std::shared_ptr<detail::PoolState> state,
            std::shared_ptr<detail::TraceSlot> slot)
            : _state(std::move(state)), _slot(std::move(slot))
        {
        }

        /** Unpin and drop the references (used by dtor and move). */
        void release();

        std::shared_ptr<detail::PoolState> _state;
        std::shared_ptr<detail::TraceSlot> _slot;
    };

    /** True once attached to a pool slot. */
    bool valid() const { return _slot != nullptr; }

    /** Rehydrate if needed and pin the decoded trace. */
    Pin pin() const;

    /** True while the decoded (hot) form is resident. */
    bool resident() const;

    /** Size of the compressed cold form. */
    size_t blobBytes() const;

    /** residentBytes() of the decoded form (resident or not). */
    size_t hotBytes() const;

    /** Instruction count (available without rehydrating). */
    uint64_t instructions() const;

  private:
    friend class TraceTierPool;
    TraceHandle(std::shared_ptr<detail::PoolState> state,
                std::shared_ptr<detail::TraceSlot> slot)
        : _state(std::move(state)), _slot(std::move(slot))
    {
    }

    // Handles (and pins) co-own the pool state alongside their slot;
    // slots themselves only point back non-owningly. This is what
    // breaks the state <-> slot ownership cycle while still letting
    // a handle outlive the TraceTierPool object.
    std::shared_ptr<detail::PoolState> _state;
    std::shared_ptr<detail::TraceSlot> _slot;
};

/**
 * Owner of a set of tiered traces. insert() compresses the cold form
 * eagerly and keeps the trace hot under the LRU budget. Thread-safe,
 * but see the determinism contract in the file comment: use one pool
 * per pipeline instance, not one shared pool across parallel tasks.
 */
class TraceTierPool
{
  public:
    explicit TraceTierPool(TierConfig config = TierConfig::fromEnv());

    /**
     * Store-backed pool: cold forms live in `store` (content
     * addressed, deduplicated at rest) instead of private per-slot
     * blobs. Insert via the digest overload; `store` is a shared
     * handle, so the pool keeps the underlying store state alive.
     */
    TraceTierPool(TierConfig config, ShardStore store);

    /** Take ownership of a trace; returns its stable handle. */
    TraceHandle insert(ColumnarTrace trace);

    /**
     * Store-backed insert: the cold form is put into the shard store
     * under `digest` (a repeat digest writes nothing — dedup at
     * rest) and the slot rehydrates from the store on demand. The
     * digest excludes the trace's identity fields (kernelName,
     * invocationId); the slot keeps them resident and re-stamps them
     * on rehydration, so pins always observe the inserted trace
     * exactly even when several identities share one blob. Only
     * valid on a pool constructed with a store.
     */
    TraceHandle insert(ColumnarTrace trace, const BlobDigest &digest);

    /** Point-in-time tier census. */
    struct Occupancy
    {
        size_t hotTraces = 0;  //!< decoded traces
        size_t coldTraces = 0; //!< hibernated (blob-only) traces
        size_t hotBytes = 0;   //!< resident bytes of decoded traces
        size_t blobBytes = 0;  //!< compressed bytes (all traces)
    };

    Occupancy occupancy() const;

    size_t budgetBytes() const;
    size_t size() const;

  private:
    std::shared_ptr<detail::PoolState> _state;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_TIER_HH
