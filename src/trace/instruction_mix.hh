/**
 * @file
 * The microarchitecture-independent execution characteristics of one
 * kernel invocation.
 *
 * Table II of the paper lists the twelve characteristics PKS profiles
 * versus the single one (instruction count) Sieve profiles. This
 * struct carries all twelve so that either profiler model can expose
 * its own subset.
 */

#ifndef SIEVE_TRACE_INSTRUCTION_MIX_HH
#define SIEVE_TRACE_INSTRUCTION_MIX_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sieve::trace {

/** Number of PKS execution characteristics (Table II). */
inline constexpr size_t kNumPksMetrics = 12;

/**
 * Microarchitecture-independent execution characteristics of a kernel
 * invocation — the full PKS feature set, of which Sieve uses only
 * instructionCount.
 */
struct InstructionMix
{
    uint64_t coalescedGlobalLoads = 0;  //!< 32B-transaction global loads
    uint64_t coalescedGlobalStores = 0; //!< 32B-transaction global stores
    uint64_t coalescedLocalLoads = 0;   //!< local-space transactions
    uint64_t threadGlobalLoads = 0;     //!< per-thread global load insts
    uint64_t threadGlobalStores = 0;    //!< per-thread global store insts
    uint64_t threadLocalLoads = 0;      //!< per-thread local load insts
    uint64_t threadSharedLoads = 0;     //!< per-thread shared load insts
    uint64_t threadSharedStores = 0;    //!< per-thread shared store insts
    uint64_t threadGlobalAtomics = 0;   //!< per-thread global atomics
    uint64_t instructionCount = 0;      //!< dynamic warp instructions
    double divergenceEfficiency = 1.0;  //!< active-lane fraction [0, 1]
    uint64_t numThreadBlocks = 0;       //!< CTAs launched

    /**
     * The 12-entry PKS feature vector, in Table II order.
     * This is exactly the input PKS feeds to PCA.
     */
    std::array<double, kNumPksMetrics> featureVector() const;

    /** Metric names in Table II order (for CSV headers and reports). */
    static const std::array<std::string, kNumPksMetrics> &metricNames();

    /** Sum of all per-thread memory instruction counters. */
    uint64_t totalMemoryInstructions() const;

    /** Fraction of instructions that are memory operations. */
    double memoryIntensity() const;

    bool operator==(const InstructionMix &) const = default;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_INSTRUCTION_MIX_HH
