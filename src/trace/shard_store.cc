#include "trace/shard_store.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "io/mmap_file.hh"
#include "io/span_reader.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "trace/tier.hh"

namespace sieve::trace {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[4] = {'S', 'V', 'S', 'M'};
constexpr char kFrameMagic[4] = {'S', 'V', 'B', '1'};
constexpr char kIndexMagic[4] = {'S', 'V', 'I', 'X'};
constexpr uint32_t kStoreVersion = 1;

/** frame magic + digest lo/hi + payload length. */
constexpr size_t kFrameHeaderBytes = 4 + 8 + 8 + 4;

/** Keep shard fan-out sane: more shards than this is a typo. */
constexpr size_t kMaxShards = 4096;

obs::Counter &
putsCounter()
{
    static obs::Counter &c = obs::counter("store.shard.puts");
    return c;
}

obs::Counter &
dedupHitsCounter()
{
    static obs::Counter &c = obs::counter("store.shard.dedup_hits");
    return c;
}

obs::Counter &
storedBlobsCounter()
{
    static obs::Counter &c = obs::counter("store.shard.stored_blobs");
    return c;
}

obs::Counter &
storedBytesCounter()
{
    static obs::Counter &c = obs::counter("store.shard.stored_bytes");
    // Bytes-at-rest telemetry track, registered here so only runs
    // that actually store shards grow a counter timeline.
    static const bool probe_registered = [] {
        obs::registerTelemetryProbe("store.shard.stored_bytes", [] {
            return static_cast<int64_t>(c.value());
        });
        return true;
    }();
    (void)probe_registered;
    return c;
}

obs::Counter &
getsCounter()
{
    static obs::Counter &c = obs::counter("store.shard.gets");
    return c;
}

template <typename T>
void
putPod(std::vector<uint8_t> &out, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

Error
storeError(ErrorKind kind, std::string message,
           const std::string &source)
{
    return ingestError(kind,
                       "shard store: " + std::move(message), source);
}

} // namespace

struct ShardStore::State
{
    std::string dir;
    size_t numShards = 0;

    struct Entry
    {
        uint64_t offset = 0; //!< payload offset within the shard file
        uint64_t length = 0; //!< payload length
        uint32_t shard = 0;
    };

    mutable std::mutex mutex;
    std::unordered_map<BlobDigest, Entry, BlobDigestHash> entries;
    std::vector<uint64_t> shardBytes; //!< payload bytes per shard
    std::vector<uint64_t> shardPuts;  //!< logical puts per shard

    std::string
    manifestPath() const
    {
        return dir + "/manifest.swm";
    }

    std::string
    blobPath(size_t shard) const
    {
        return dir + "/shard_" + std::to_string(shard) + ".blobs";
    }

    std::string
    indexPath(size_t shard) const
    {
        return dir + "/shard_" + std::to_string(shard) + ".idx";
    }

    size_t
    shardOf(const BlobDigest &digest) const
    {
        return static_cast<size_t>(digest.lo %
                                   static_cast<uint64_t>(numShards));
    }
};

Expected<ShardStore>
ShardStore::tryCreate(const std::string &dir, ShardStoreConfig config)
{
    if (config.numShards == 0 || config.numShards > kMaxShards)
        return storeError(ErrorKind::Validation,
                          "shard count " +
                              std::to_string(config.numShards) +
                              " out of range (want 1.." +
                              std::to_string(kMaxShards) + ")",
                          dir);

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return storeError(ErrorKind::Io,
                          "cannot create directory: " + ec.message(),
                          dir);

    auto state = std::make_shared<State>();
    state->dir = dir;
    state->numShards = config.numShards;
    state->shardBytes.assign(config.numShards, 0);
    state->shardPuts.assign(config.numShards, 0);

    if (fs::exists(state->manifestPath()))
        return storeError(ErrorKind::Validation,
                          "a store already exists here", dir);

    std::vector<uint8_t> manifest;
    manifest.insert(manifest.end(), kManifestMagic,
                    kManifestMagic + 4);
    putPod<uint32_t>(manifest, kStoreVersion);
    putPod<uint32_t>(manifest,
                     static_cast<uint32_t>(config.numShards));
    std::ofstream ofs(state->manifestPath(), std::ios::binary);
    ofs.write(reinterpret_cast<const char *>(manifest.data()),
              static_cast<std::streamsize>(manifest.size()));
    if (!ofs)
        return storeError(ErrorKind::Io, "cannot write manifest",
                          state->manifestPath());
    ofs.close();

    ShardStore store(std::move(state));
    // A fresh store must be immediately openable: empty indexes.
    if (auto flushed = store.flushIndex(); !flushed)
        return flushed.error();
    return store;
}

Expected<ShardStore>
ShardStore::tryOpen(const std::string &dir)
{
    auto state = std::make_shared<State>();
    state->dir = dir;

    auto manifest = io::MmapFile::tryOpen(state->manifestPath());
    if (!manifest)
        return storeError(ErrorKind::Io, "cannot read manifest",
                          state->manifestPath());
    const io::MmapFile &mview = manifest.value();
    io::SpanReader in(mview.data(), mview.size(),
                      state->manifestPath());
    char magic[4];
    in.readBytes(magic, sizeof(magic), "manifest magic");
    if (!in.failed() &&
        std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0)
        in.fail(ErrorKind::Parse, "shard store: bad manifest magic");
    uint32_t version = in.read<uint32_t>("manifest version");
    if (!in.failed() && version != kStoreVersion)
        in.fail(ErrorKind::Validation,
                "shard store: manifest version " +
                    std::to_string(version) + " unsupported (want " +
                    std::to_string(kStoreVersion) + ")");
    uint32_t num_shards = in.read<uint32_t>("shard count");
    if (!in.failed() &&
        (num_shards == 0 || num_shards > kMaxShards))
        in.fail(ErrorKind::Validation,
                "shard store: implausible shard count " +
                    std::to_string(num_shards));
    if (!in.failed() && !in.atEnd())
        in.fail(ErrorKind::Validation,
                "shard store: trailing bytes after manifest");
    if (in.failed())
        return in.takeError();

    state->numShards = num_shards;
    state->shardBytes.assign(num_shards, 0);
    state->shardPuts.assign(num_shards, 0);

    for (size_t shard = 0; shard < state->numShards; ++shard) {
        const std::string idx_path = state->indexPath(shard);
        auto idx = io::MmapFile::tryOpen(idx_path);
        if (!idx)
            return storeError(ErrorKind::Io, "missing index file",
                              idx_path);
        const io::MmapFile &iview = idx.value();
        io::SpanReader ix(iview.data(), iview.size(), idx_path);
        char imagic[4];
        ix.readBytes(imagic, sizeof(imagic), "index magic");
        if (!ix.failed() &&
            std::memcmp(imagic, kIndexMagic, sizeof(imagic)) != 0)
            ix.fail(ErrorKind::Parse,
                    "shard store: bad index magic");
        uint32_t iversion = ix.read<uint32_t>("index version");
        if (!ix.failed() && iversion != kStoreVersion)
            ix.fail(ErrorKind::Validation,
                    "shard store: index version " +
                        std::to_string(iversion) +
                        " unsupported (want " +
                        std::to_string(kStoreVersion) + ")");
        uint32_t ishard = ix.read<uint32_t>("index shard");
        if (!ix.failed() && ishard != shard)
            ix.fail(ErrorKind::Validation,
                    "shard store: index claims shard " +
                        std::to_string(ishard) + ", expected " +
                        std::to_string(shard));
        uint64_t count = ix.read<uint64_t>("index entry count");
        if (ix.failed())
            return ix.takeError();
        // Exact-length check, overflow-safe: the remainder after the
        // header must be `count` 32-byte entries plus the checksum.
        if (ix.remaining() < 8 ||
            (ix.remaining() - 8) % 32 != 0 ||
            (ix.remaining() - 8) / 32 != count)
            return storeError(
                ErrorKind::Validation,
                "index length does not match entry count " +
                    std::to_string(count),
                idx_path);
        const uint8_t *entry_bytes =
            iview.data() + (iview.size() - ix.remaining());
        const uint64_t want_sum = fnv1a(entry_bytes, count * 32);

        uint64_t blob_size = 0;
        if (count > 0) {
            std::error_code ec;
            blob_size = fs::file_size(state->blobPath(shard), ec);
            if (ec)
                return storeError(ErrorKind::Io,
                                  "missing blob file for shard " +
                                      std::to_string(shard),
                                  state->blobPath(shard));
        }

        for (uint64_t i = 0; i < count; ++i) {
            BlobDigest digest;
            State::Entry entry;
            digest.lo = ix.read<uint64_t>("entry digest lo");
            digest.hi = ix.read<uint64_t>("entry digest hi");
            entry.offset = ix.read<uint64_t>("entry offset");
            entry.length = ix.read<uint64_t>("entry length");
            entry.shard = static_cast<uint32_t>(shard);
            if (ix.failed())
                return ix.takeError();
            if (state->shardOf(digest) != shard)
                return storeError(
                    ErrorKind::Validation,
                    "entry digest routed to wrong shard", idx_path);
            if (entry.offset < kFrameHeaderBytes ||
                entry.offset + entry.length > blob_size)
                return storeError(
                    ErrorKind::Validation,
                    "entry [" + std::to_string(entry.offset) + ", +" +
                        std::to_string(entry.length) +
                        ") outside blob file of " +
                        std::to_string(blob_size) + " bytes",
                    idx_path);
            if (!state->entries.emplace(digest, entry).second)
                return storeError(ErrorKind::Validation,
                                  "duplicate digest in index",
                                  idx_path);
            state->shardBytes[shard] += entry.length;
        }
        uint64_t got_sum = ix.read<uint64_t>("index checksum");
        if (ix.failed())
            return ix.takeError();
        if (got_sum != want_sum)
            return storeError(ErrorKind::Validation,
                              "index checksum mismatch", idx_path);
        // History is unknown on reopen: seed logical puts at one per
        // blob at rest.
        state->shardPuts[shard] = count;
    }
    return ShardStore(std::move(state));
}

Expected<ShardStore::PutResult>
ShardStore::tryPut(const BlobDigest &digest,
                   const ColumnarTrace &trace)
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    const size_t shard = _state->shardOf(digest);
    ++_state->shardPuts[shard];
    putsCounter().add();

    auto it = _state->entries.find(digest);
    if (it != _state->entries.end()) {
        dedupHitsCounter().add();
        return PutResult{false,
                         static_cast<size_t>(it->second.length)};
    }

    const std::vector<uint8_t> payload = hibernate(trace);

    const std::string blob_path = _state->blobPath(shard);
    std::error_code ec;
    uint64_t frame_offset = 0;
    if (fs::exists(blob_path)) {
        frame_offset = fs::file_size(blob_path, ec);
        if (ec)
            return storeError(ErrorKind::Io,
                              "cannot stat shard file", blob_path);
    }
    std::ofstream ofs(blob_path, std::ios::binary | std::ios::app);
    if (!ofs)
        return storeError(ErrorKind::Io, "cannot append to shard file",
                          blob_path);

    std::vector<uint8_t> header;
    header.insert(header.end(), kFrameMagic, kFrameMagic + 4);
    putPod<uint64_t>(header, digest.lo);
    putPod<uint64_t>(header, digest.hi);
    putPod<uint32_t>(header, static_cast<uint32_t>(payload.size()));
    ofs.write(reinterpret_cast<const char *>(header.data()),
              static_cast<std::streamsize>(header.size()));
    ofs.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    ofs.flush();
    if (!ofs)
        return storeError(ErrorKind::Io, "short write to shard file",
                          _state->blobPath(shard));

    State::Entry entry;
    entry.offset = frame_offset + kFrameHeaderBytes;
    entry.length = payload.size();
    entry.shard = static_cast<uint32_t>(shard);
    _state->entries.emplace(digest, entry);
    _state->shardBytes[shard] += entry.length;
    storedBlobsCounter().add();
    storedBytesCounter().add(payload.size());
    return PutResult{true, payload.size()};
}

Expected<ColumnarTrace>
ShardStore::tryGet(const BlobDigest &digest) const
{
    State::Entry entry;
    {
        std::lock_guard<std::mutex> lock(_state->mutex);
        auto it = _state->entries.find(digest);
        if (it == _state->entries.end())
            return storeError(ErrorKind::Validation,
                              "digest not in store", _state->dir);
        entry = it->second;
        getsCounter().add();
    }

    const std::string path = _state->blobPath(entry.shard);
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        return storeError(ErrorKind::Io, "cannot open shard file",
                          path);
    ifs.seekg(static_cast<std::streamoff>(entry.offset));
    std::vector<uint8_t> payload(
        static_cast<size_t>(entry.length));
    ifs.read(reinterpret_cast<char *>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    if (!ifs)
        return storeError(ErrorKind::Io,
                          "short read of blob at offset " +
                              std::to_string(entry.offset),
                          path);
    return tryRehydrate(payload.data(), payload.size(), path);
}

bool
ShardStore::contains(const BlobDigest &digest) const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    return _state->entries.find(digest) != _state->entries.end();
}

std::optional<size_t>
ShardStore::blobBytes(const BlobDigest &digest) const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    auto it = _state->entries.find(digest);
    if (it == _state->entries.end())
        return std::nullopt;
    return static_cast<size_t>(it->second.length);
}

Expected<void>
ShardStore::flushIndex() const
{
    std::lock_guard<std::mutex> lock(_state->mutex);

    // Group entries per shard, ordered by offset so the index is a
    // deterministic function of the blob file contents.
    std::vector<std::vector<std::pair<BlobDigest, State::Entry>>>
        per_shard(_state->numShards);
    for (const auto &[digest, entry] : _state->entries)
        per_shard[entry.shard].emplace_back(digest, entry);
    for (auto &entries : per_shard)
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.offset < b.second.offset;
                  });

    for (size_t shard = 0; shard < _state->numShards; ++shard) {
        std::vector<uint8_t> entry_bytes;
        entry_bytes.reserve(per_shard[shard].size() * 32);
        for (const auto &[digest, entry] : per_shard[shard]) {
            putPod<uint64_t>(entry_bytes, digest.lo);
            putPod<uint64_t>(entry_bytes, digest.hi);
            putPod<uint64_t>(entry_bytes, entry.offset);
            putPod<uint64_t>(entry_bytes, entry.length);
        }

        std::vector<uint8_t> out;
        out.insert(out.end(), kIndexMagic, kIndexMagic + 4);
        putPod<uint32_t>(out, kStoreVersion);
        putPod<uint32_t>(out, static_cast<uint32_t>(shard));
        putPod<uint64_t>(out,
                         static_cast<uint64_t>(
                             per_shard[shard].size()));
        out.insert(out.end(), entry_bytes.begin(),
                   entry_bytes.end());
        putPod<uint64_t>(out, fnv1a(entry_bytes.data(),
                                    entry_bytes.size()));

        const std::string path = _state->indexPath(shard);
        std::ofstream ofs(path,
                          std::ios::binary | std::ios::trunc);
        ofs.write(reinterpret_cast<const char *>(out.data()),
                  static_cast<std::streamsize>(out.size()));
        if (!ofs)
            return storeError(ErrorKind::Io,
                              "cannot write index file", path);
    }
    return {};
}

Expected<std::vector<ShardStore::HealthIssue>>
ShardStore::validate() const
{
    std::vector<HealthIssue> issues;
    auto reopened = tryOpen(_state->dir);
    if (!reopened) {
        // Distinguish "the store is broken" (a finding) from "the
        // manifest is unreadable" (an outright error).
        if (!fs::exists(_state->manifestPath()))
            return storeError(ErrorKind::Io, "missing manifest",
                              _state->manifestPath());
        issues.push_back(
            HealthIssue{0, reopened.error().message});
        return issues;
    }

    const auto &disk = *reopened.value()._state;
    for (const auto &[digest, entry] : disk.entries) {
        const std::string path = disk.blobPath(entry.shard);
        std::ifstream ifs(path, std::ios::binary);
        if (!ifs) {
            issues.push_back(HealthIssue{
                entry.shard, "cannot open blob file " + path});
            continue;
        }
        ifs.seekg(static_cast<std::streamoff>(entry.offset -
                                              kFrameHeaderBytes));
        uint8_t header[kFrameHeaderBytes];
        ifs.read(reinterpret_cast<char *>(header), sizeof(header));
        if (!ifs) {
            issues.push_back(HealthIssue{
                entry.shard,
                "short read of frame header at offset " +
                    std::to_string(entry.offset -
                                   kFrameHeaderBytes)});
            continue;
        }
        BlobDigest got;
        uint32_t len = 0;
        std::memcpy(&got.lo, header + 4, 8);
        std::memcpy(&got.hi, header + 12, 8);
        std::memcpy(&len, header + 20, 4);
        if (std::memcmp(header, kFrameMagic, 4) != 0)
            issues.push_back(HealthIssue{
                entry.shard,
                "bad frame magic at offset " +
                    std::to_string(entry.offset -
                                   kFrameHeaderBytes)});
        else if (!(got == digest))
            issues.push_back(HealthIssue{
                entry.shard,
                "frame digest mismatch at offset " +
                    std::to_string(entry.offset -
                                   kFrameHeaderBytes)});
        else if (len != entry.length)
            issues.push_back(HealthIssue{
                entry.shard,
                "frame length " + std::to_string(len) +
                    " != index length " +
                    std::to_string(entry.length)});
    }
    std::sort(issues.begin(), issues.end(),
              [](const HealthIssue &a, const HealthIssue &b) {
                  return a.shard != b.shard ? a.shard < b.shard
                                            : a.problem < b.problem;
              });
    return issues;
}

size_t
ShardStore::numShards() const
{
    return _state->numShards;
}

size_t
ShardStore::numBlobs() const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    return _state->entries.size();
}

const std::string &
ShardStore::directory() const
{
    return _state->dir;
}

std::vector<ShardStore::ShardInfo>
ShardStore::shardInfo() const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    std::vector<ShardInfo> info(_state->numShards);
    for (size_t shard = 0; shard < _state->numShards; ++shard) {
        info[shard].shard = shard;
        info[shard].blobBytes =
            static_cast<size_t>(_state->shardBytes[shard]);
        info[shard].puts = _state->shardPuts[shard];
    }
    for (const auto &[digest, entry] : _state->entries)
        ++info[entry.shard].blobs;
    return info;
}

} // namespace sieve::trace
