/**
 * @file
 * The workload intermediate representation: kernels and their
 * chronological invocation stream.
 *
 * A GPU program consists of multiple kernels, each executed many
 * times; different executions of the same kernel are *kernel
 * invocations* (paper Section III-A). The Workload is the object
 * every other subsystem consumes: profilers read it, the hardware
 * executor times it, and the samplers select representative
 * invocations from it.
 */

#ifndef SIEVE_TRACE_WORKLOAD_HH
#define SIEVE_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/instruction_mix.hh"
#include "trace/launch_config.hh"
#include "trace/memory_profile.hh"

namespace sieve::trace {

/** A static kernel (one __global__ function in the program). */
struct Kernel
{
    uint32_t id = 0;          //!< dense index within the workload
    std::string name;         //!< demangled kernel name
};

/** One dynamic execution of a kernel. */
struct KernelInvocation
{
    uint32_t kernelId = 0;    //!< which Kernel this executes
    uint64_t invocationId = 0;//!< global chronological sequence number
    LaunchConfig launch;      //!< grid/CTA geometry
    InstructionMix mix;       //!< the 12 profile-visible characteristics
    MemoryProfile memory;     //!< profile-invisible behaviour
    uint64_t noiseSeed = 0;   //!< per-invocation run-to-run noise seed

    /** Dynamic instruction count (the one metric Sieve profiles). */
    uint64_t instructions() const { return mix.instructionCount; }
};

/** A complete workload: kernel table plus invocation stream. */
class Workload
{
  public:
    Workload() = default;
    Workload(std::string suite, std::string name);

    const std::string &suite() const { return _suite; }
    const std::string &name() const { return _name; }

    /** Register a kernel; returns its dense id. */
    uint32_t addKernel(std::string name);

    /** Append an invocation. Its invocationId is assigned here. */
    void addInvocation(KernelInvocation inv);

    /**
     * Pre-size the kernel/invocation vectors. Loaders call this with
     * header-declared counts *after* validating them against the
     * file size, so a hostile header cannot force a huge allocation.
     */
    void reserve(size_t kernels, size_t invocations);

    size_t numKernels() const { return _kernels.size(); }
    size_t numInvocations() const { return _invocations.size(); }

    const Kernel &kernel(uint32_t id) const;
    const std::vector<Kernel> &kernels() const { return _kernels; }

    const KernelInvocation &invocation(size_t idx) const;
    const std::vector<KernelInvocation> &invocations() const
    {
        return _invocations;
    }

    /** Chronological invocation indexes of one kernel. */
    std::vector<size_t> invocationsOfKernel(uint32_t kernel_id) const;

    /** Sum of dynamic instruction counts over all invocations. */
    uint64_t totalInstructions() const;

    /**
     * Paper-scale metadata: the invocation count of the original
     * (unscaled) workload from Table I. Zero when not applicable.
     */
    uint64_t paperInvocations() const { return _paper_invocations; }
    void setPaperInvocations(uint64_t n) { _paper_invocations = n; }

  private:
    std::string _suite;
    std::string _name;
    std::vector<Kernel> _kernels;
    std::vector<KernelInvocation> _invocations;
    uint64_t _paper_invocations = 0;
};

} // namespace sieve::trace

#endif // SIEVE_TRACE_WORKLOAD_HH
