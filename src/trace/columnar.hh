/**
 * @file
 * Columnar (SoA) kernel-trace representation.
 *
 * The AoS `KernelTrace` — nested vectors of 16-byte per-instruction
 * structs — is the interchange and reference form, but it dominates
 * the resident footprint of anything that keeps many traces alive
 * (the evaluation pipeline, batch simulation, and the future serving
 * daemon / shard store of ROADMAP items 1–2). `ColumnarTrace` is the
 * compact resident form:
 *
 *   - CTA/warp nesting is flattened into extent tables
 *     (`ctaWarpOffsets`, `warpInstOffsets`) instead of nested
 *     vectors, so a trace is a handful of flat arrays.
 *   - The six byte-sized instruction fields (opcode, registers,
 *     lanes, sectors) are dictionary-encoded: each distinct tuple is
 *     stored once and every instruction is a 2-byte dictionary
 *     index. Real traces draw from a few hundred distinct tuples, so
 *     this is the dominant win (16 B/inst -> 2 B/inst).
 *   - `lineAddress` values of global-memory instructions form a
 *     delta-encoded zigzag-varint stream, reset per warp so any warp
 *     can be decoded independently (`warpAddrOffsets`).
 *
 * Conversions are lossless by contract: `toAos(toColumnar(t))` is
 * byte-identical to `t` under `writeTrace`, for *any* AoS trace —
 * including degenerate ones a parser would produce (non-memory
 * opcodes carrying a nonzero lineAddress are preserved through the
 * `addrExceptions` side table, dictionary overflow past 65535 tuples
 * spills losslessly into `inlineTuples`).
 *
 * `encodeColumnar`/`tryDecodeColumnar` define the *canonical
 * columnar bytes*: a checksummed, fully validated serialization used
 * by the tier layer (trace/tier.hh) as the hibernation payload. The
 * decoder enforces the same semantic ranges as the text-trace parser
 * (lanes 1..32, sectors <= 32, regs 1..255, dims >= 1), so corrupted
 * bytes come back as a structured Error, never as silently-wrong
 * instructions.
 *
 * `DecodeArena` + `decodeWarp` are the simulator's decode loop: warp
 * streams are materialized into reusable arena slabs one CTA wave at
 * a time, so steady-state simulation performs no allocation at all.
 */

#ifndef SIEVE_TRACE_COLUMNAR_HH
#define SIEVE_TRACE_COLUMNAR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/error.hh"
#include "trace/sass_trace.hh"

namespace sieve::trace {

/** A decoded warp instruction stream (points into a DecodeArena). */
struct DecodedWarp
{
    const SassInstruction *insts = nullptr;
    size_t count = 0;
};

/** Columnar (SoA) form of one kernel invocation's trace. */
struct ColumnarTrace
{
    /** tupleIndex escape: the tuple lives in `inlineTuples`. */
    static constexpr uint16_t kInlineTuple = 0xffff;

    std::string kernelName;
    uint64_t invocationId = 0;
    LaunchConfig launch;
    uint64_t ctaReplication = 1;

    /** Warp range of CTA c: [ctaWarpOffsets[c], ctaWarpOffsets[c+1]). */
    std::vector<uint32_t> ctaWarpOffsets{0};

    /** Instruction range of warp w (global instruction indexes). */
    std::vector<uint64_t> warpInstOffsets{0};

    /** Byte offset of warp w's slice of `addrDeltas`. */
    std::vector<uint64_t> warpAddrOffsets{0};

    /**
     * Distinct (opcode, destReg, srcReg0, srcReg1, activeLanes,
     * sectors) tuples in first-appearance order; `lineAddress` of an
     * entry is always 0 (addresses live in the streams below).
     */
    std::vector<SassInstruction> dictionary;

    /** Per-instruction dictionary index (kInlineTuple = spilled). */
    std::vector<uint16_t> tupleIndex;

    /**
     * Overflow tuples for traces with > 65535 distinct tuples:
     * (global instruction index, tuple), ascending by index.
     */
    std::vector<std::pair<uint64_t, SassInstruction>> inlineTuples;

    /**
     * Zigzag-varint deltas of the lineAddress of every global-memory
     * instruction, in stream order, delta base reset to 0 at each
     * warp boundary.
     */
    std::vector<uint8_t> addrDeltas;

    /**
     * Nonzero lineAddress on a *non*-global-memory instruction
     * (never emitted by the synthesizer, but representable in the
     * text format): (global instruction index, address), ascending.
     */
    std::vector<std::pair<uint64_t, uint64_t>> addrExceptions;

    size_t numCtas() const { return ctaWarpOffsets.size() - 1; }
    size_t numWarps() const { return warpInstOffsets.size() - 1; }
    uint64_t numInstructions() const { return warpInstOffsets.back(); }

    /** Warp instructions across traced CTAs (without replication). */
    uint64_t tracedInstructions() const { return numInstructions(); }

    /** Total warp instructions the trace stands for. */
    uint64_t
    representedInstructions() const
    {
        return numInstructions() * ctaReplication;
    }

    /** Heap + struct footprint of this resident representation. */
    size_t residentBytes() const;

    /** residentBytes() / instructions (0 when empty). */
    double bytesPerInstruction() const;
};

/** Lossless AoS -> columnar conversion. */
ColumnarTrace toColumnar(const KernelTrace &trace);

/** Lossless columnar -> AoS conversion. */
KernelTrace toAos(const ColumnarTrace &trace);

/**
 * Modeled heap footprint of the AoS form of `trace`: instruction,
 * warp-vector, and CTA-vector storage. The baseline the columnar
 * form is measured against (`trace.bytes_per_instruction`).
 */
size_t aosFootprintBytes(const ColumnarTrace &trace);

/** Instruction count of warp `w`. */
inline size_t
warpInstructionCount(const ColumnarTrace &trace, size_t w)
{
    return static_cast<size_t>(trace.warpInstOffsets[w + 1] -
                               trace.warpInstOffsets[w]);
}

/**
 * Sequential decoder over one warp's instruction stream. Cheap to
 * construct; `next()` materializes one SassInstruction at a time
 * (dictionary lookup + address-delta accumulation), so a full pass
 * never allocates.
 */
class WarpDecoder
{
  public:
    WarpDecoder(const ColumnarTrace &trace, size_t warp);

    /** Instructions in this warp. */
    size_t count() const { return _count; }

    /** Decode the next instruction. @pre fewer than count() calls */
    SassInstruction next();

  private:
    const ColumnarTrace &_trace;
    uint64_t _gi;        //!< next global instruction index
    size_t _left;        //!< instructions remaining
    size_t _count;
    size_t _addrPos;     //!< cursor into addrDeltas
    uint64_t _prevAddr = 0;
    size_t _inlinePos;   //!< cursor into inlineTuples
    size_t _excPos;      //!< cursor into addrExceptions
};

/**
 * Decode warp `w` into `out` (capacity >= warpInstructionCount).
 * Returns the instruction count.
 */
size_t decodeWarp(const ColumnarTrace &trace, size_t w,
                  SassInstruction *out);

/**
 * Bump allocator of SassInstruction buffers for the simulator's
 * decode loop: `clear()` retires every allocation but keeps the
 * slabs, so the per-wave decode of a long simulation reuses the same
 * memory instead of churning the heap. Slab data pointers stay valid
 * until clear().
 */
class DecodeArena
{
  public:
    /** Contiguous buffer of `n` instructions (valid until clear()). */
    SassInstruction *alloc(size_t n);

    /** Retire all allocations; slabs are kept for reuse. */
    void clear();

    /** Instructions currently allocated. */
    size_t allocated() const { return _allocated; }

    /** Slab bytes owned (high-water, survives clear()). */
    size_t capacityBytes() const { return _arena.capacityBytes(); }

    /**
     * Slab allocations performed over this arena's lifetime; flat
     * across clear()/reuse cycles once warmed (the simulator's
     * zero-steady-state-allocation contract).
     */
    uint64_t growthEvents() const { return _arena.growthEvents(); }

  private:
    Arena _arena; //!< shared slab allocator (common/arena.hh)
    size_t _allocated = 0;
};

/**
 * Canonical byte serialization of a columnar trace: magic + version,
 * header varints, extent counts, dictionary, index/address streams,
 * and a trailing FNV-1a checksum. This is the hibernation payload of
 * trace/tier.hh and the byte string property tests round-trip.
 */
std::vector<uint8_t> encodeColumnar(const ColumnarTrace &trace);

/**
 * Parse and validate canonical columnar bytes. Enforces the text
 * parser's semantic ranges plus structural consistency (offsets,
 * stream lengths, checksum), so arbitrary corruption yields a
 * structured Error — never a crash or silently-wrong trace. Errors
 * carry `source` and the byte offset of the first problem.
 */
Expected<ColumnarTrace> tryDecodeColumnar(
    const uint8_t *data, size_t size,
    const std::string &source = "<columnar>");

namespace detail {

/** Append an LEB128 varint. */
void putVarint(std::vector<uint8_t> &out, uint64_t v);

/** Zigzag-encode a signed delta. */
inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Invert zigzag(). */
inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

} // namespace detail

} // namespace sieve::trace

#endif // SIEVE_TRACE_COLUMNAR_HH
