#include "trace/launch_config.hh"

#include <sstream>

namespace sieve::trace {

std::string
LaunchConfig::toString() const
{
    std::ostringstream oss;
    oss << '(' << grid.x << ',' << grid.y << ',' << grid.z << ")x("
        << cta.x << ',' << cta.y << ',' << cta.z << ')';
    return oss.str();
}

} // namespace sieve::trace
