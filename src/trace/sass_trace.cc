#include "trace/sass_trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve::trace {

namespace {

struct OpcodeEntry
{
    Opcode op;
    const char *name;
};

constexpr OpcodeEntry kOpcodeTable[] = {
    {Opcode::IAdd, "IADD"}, {Opcode::FFma, "FFMA"},
    {Opcode::Mufu, "MUFU"}, {Opcode::DFma, "DFMA"},
    {Opcode::Ldg, "LDG"},   {Opcode::Stg, "STG"},
    {Opcode::Lds, "LDS"},   {Opcode::Sts, "STS"},
    {Opcode::Ldl, "LDL"},   {Opcode::Stl, "STL"},
    {Opcode::Atom, "ATOM"}, {Opcode::Bra, "BRA"},
    {Opcode::Exit, "EXIT"},
};

} // namespace

const char *
opcodeName(Opcode op)
{
    for (const auto &e : kOpcodeTable) {
        if (e.op == op)
            return e.name;
    }
    panic("unknown opcode ", static_cast<int>(op));
}

Expected<Opcode>
tryParseOpcode(const std::string &name)
{
    for (const auto &e : kOpcodeTable) {
        if (name == e.name)
            return e.op;
    }
    return ingestError(ErrorKind::Parse, "unknown opcode mnemonic '" +
                                             name + "' in trace");
}

Opcode
parseOpcode(const std::string &name)
{
    return unwrapOrFatal(tryParseOpcode(name));
}

uint64_t
KernelTrace::tracedInstructions() const
{
    uint64_t total = 0;
    for (const auto &cta : ctas)
        for (const auto &warp : cta.warps)
            total += warp.instructions.size();
    return total;
}

uint64_t
KernelTrace::representedInstructions() const
{
    return tracedInstructions() * ctaReplication;
}

void
writeTrace(const KernelTrace &trace, std::ostream &os)
{
    os << "kernel " << trace.kernelName << '\n'
       << "invocation " << trace.invocationId << '\n'
       << "grid " << trace.launch.grid.x << ' ' << trace.launch.grid.y
       << ' ' << trace.launch.grid.z << '\n'
       << "cta " << trace.launch.cta.x << ' ' << trace.launch.cta.y << ' '
       << trace.launch.cta.z << '\n'
       << "shmem " << trace.launch.sharedMemBytes << '\n'
       << "regs " << trace.launch.regsPerThread << '\n'
       << "replication " << trace.ctaReplication << '\n';

    for (size_t c = 0; c < trace.ctas.size(); ++c) {
        os << "cta_begin " << c << '\n';
        const CtaTrace &cta = trace.ctas[c];
        for (size_t w = 0; w < cta.warps.size(); ++w) {
            os << "warp " << w << '\n';
            for (const SassInstruction &inst :
                 cta.warps[w].instructions) {
                os << opcodeName(inst.opcode) << ' '
                   << unsigned(inst.destReg) << ' '
                   << unsigned(inst.srcReg0) << ' '
                   << unsigned(inst.srcReg1) << ' '
                   << unsigned(inst.activeLanes) << ' '
                   << unsigned(inst.sectors) << ' ' << inst.lineAddress
                   << '\n';
            }
        }
        os << "cta_end\n";
    }
}

void
writeTraceFile(const KernelTrace &trace, const std::string &path)
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open trace file '", path, "' for writing");
    writeTrace(trace, ofs);
}

Expected<KernelTrace>
tryReadTrace(std::istream &is, const std::string &source)
{
    KernelTrace trace;
    std::string line;
    CtaTrace *cur_cta = nullptr;
    WarpTrace *cur_warp = nullptr;
    size_t line_no = 0;
    size_t prev_warp_insts = 0; //!< sizing hint for the next warp

    // Pre-sizing from header counts instead of growing incrementally;
    // capped so a hostile header cannot force a huge allocation.
    constexpr uint64_t kMaxCtaReserve = 4096;
    constexpr uint64_t kMaxWarpReserve = 64;
    constexpr size_t kMaxInstReserve = size_t{1} << 20;

    auto err = [&](ErrorKind kind, std::string msg) {
        return ingestError(kind, std::move(msg), source, line_no);
    };

    // Parse `count` uint64 fields after the head token; `what` names
    // the line kind for messages.
    auto fields = [&](const std::vector<std::string_view> &tokens,
                      size_t count, const char *what,
                      uint64_t *out) -> Expected<void> {
        if (tokens.size() != count + 1)
            return err(ErrorKind::Parse,
                       std::string("malformed trace '") + what +
                           "' line: expected " + std::to_string(count) +
                           " fields, got " +
                           std::to_string(tokens.size() - 1));
        for (size_t i = 0; i < count; ++i) {
            NumericParse status = parseUint64(tokens[i + 1], out[i]);
            if (status != NumericParse::Ok)
                return err(ErrorKind::Parse,
                           std::string(numericParseMessage(status)) +
                               " in trace '" + what + "' field '" +
                               std::string(tokens[i + 1]) + "'");
        }
        return {};
    };

    // A value that must fit a uint32 header field, optionally >= 1.
    auto u32field = [&](uint64_t v, const char *what, uint64_t lo,
                        uint32_t &out) -> Expected<void> {
        if (v < lo || v > UINT32_MAX)
            return err(ErrorKind::Validation,
                       std::string("trace '") + what + "' value " +
                           std::to_string(v) + " outside [" +
                           std::to_string(lo) + ", 2^32)");
        out = static_cast<uint32_t>(v);
        return {};
    };

    while (std::getline(is, line)) {
        ++line_no;
        auto text = trim(line);
        if (text.empty())
            continue;
        auto tokens = splitWhitespace(text);
        std::string head(tokens[0]);

        if (head == "kernel") {
            auto name = trim(text.substr(head.size()));
            if (name.empty())
                return err(ErrorKind::Parse,
                           "malformed trace 'kernel' line: "
                           "missing kernel name");
            trace.kernelName = std::string(name);
        } else if (head == "invocation") {
            uint64_t v[1];
            if (auto r = fields(tokens, 1, "invocation", v); !r)
                return r.error();
            trace.invocationId = v[0];
        } else if (head == "grid" || head == "cta") {
            uint64_t v[3];
            if (auto r = fields(tokens, 3, head.c_str(), v); !r)
                return r.error();
            Dim3 &dim = head == "grid" ? trace.launch.grid
                                       : trace.launch.cta;
            if (auto r = u32field(v[0], head.c_str(), 1, dim.x); !r)
                return r.error();
            if (auto r = u32field(v[1], head.c_str(), 1, dim.y); !r)
                return r.error();
            if (auto r = u32field(v[2], head.c_str(), 1, dim.z); !r)
                return r.error();
        } else if (head == "shmem") {
            uint64_t v[1];
            if (auto r = fields(tokens, 1, "shmem", v); !r)
                return r.error();
            if (auto r = u32field(v[0], "shmem", 0,
                                  trace.launch.sharedMemBytes);
                !r)
                return r.error();
        } else if (head == "regs") {
            uint64_t v[1];
            if (auto r = fields(tokens, 1, "regs", v); !r)
                return r.error();
            // SM register allocators cap a thread at 255 registers.
            if (v[0] < 1 || v[0] > 255)
                return err(ErrorKind::Validation,
                           "trace 'regs' value " + std::to_string(v[0]) +
                               " outside [1, 255]");
            trace.launch.regsPerThread = static_cast<uint32_t>(v[0]);
        } else if (head == "replication") {
            uint64_t v[1];
            if (auto r = fields(tokens, 1, "replication", v); !r)
                return r.error();
            if (v[0] < 1)
                return err(ErrorKind::Validation,
                           "trace 'replication' must be >= 1");
            trace.ctaReplication = v[0];
        } else if (head == "cta_begin") {
            if (trace.ctas.empty()) {
                // Headers precede CTA blocks in the written format:
                // traced CTAs = launched CTAs / replication.
                uint64_t launched = trace.launch.numCtas();
                uint64_t traced =
                    (launched + trace.ctaReplication - 1) /
                    trace.ctaReplication;
                trace.ctas.reserve(static_cast<size_t>(
                    std::min(std::max<uint64_t>(traced, 1),
                             kMaxCtaReserve)));
            }
            trace.ctas.emplace_back();
            cur_cta = &trace.ctas.back();
            cur_warp = nullptr;
        } else if (head == "cta_end") {
            if (!cur_cta)
                return err(ErrorKind::Parse,
                           "trace: 'cta_end' outside cta_begin");
            cur_cta = nullptr;
            cur_warp = nullptr;
        } else if (head == "warp") {
            if (!cur_cta)
                return err(ErrorKind::Parse,
                           "trace: 'warp' outside cta_begin/cta_end");
            if (cur_warp)
                prev_warp_insts = cur_warp->instructions.size();
            if (cur_cta->warps.empty()) {
                cur_cta->warps.reserve(static_cast<size_t>(std::min(
                    std::max<uint64_t>(trace.launch.warpsPerCta(), 1),
                    kMaxWarpReserve)));
            }
            cur_cta->warps.emplace_back();
            cur_warp = &cur_cta->warps.back();
            // Warp streams within a kernel have near-uniform length:
            // the previous warp's count is the best available hint.
            if (prev_warp_insts > 0)
                cur_warp->instructions.reserve(
                    std::min(prev_warp_insts, kMaxInstReserve));
        } else {
            if (!cur_warp)
                return err(ErrorKind::Parse,
                           "trace: instruction outside a warp block");
            auto op = tryParseOpcode(head);
            if (!op) {
                Error e = op.error();
                e.source = source;
                e.line = line_no;
                return e;
            }
            uint64_t v[6];
            if (auto r = fields(tokens, 6, "instruction", v); !r)
                return r.error();
            if (v[0] > 255 || v[1] > 255 || v[2] > 255)
                return err(ErrorKind::Validation,
                           "trace instruction register id outside "
                           "[0, 255]");
            if (v[3] < 1 || v[3] > 32)
                return err(ErrorKind::Validation,
                           "trace instruction active lanes " +
                               std::to_string(v[3]) +
                               " outside [1, 32]");
            if (v[4] > 32)
                return err(ErrorKind::Validation,
                           "trace instruction sector count " +
                               std::to_string(v[4]) +
                               " outside [0, 32]");
            SassInstruction inst;
            inst.opcode = op.value();
            inst.destReg = static_cast<uint8_t>(v[0]);
            inst.srcReg0 = static_cast<uint8_t>(v[1]);
            inst.srcReg1 = static_cast<uint8_t>(v[2]);
            inst.activeLanes = static_cast<uint8_t>(v[3]);
            inst.sectors = static_cast<uint8_t>(v[4]);
            inst.lineAddress = v[5];
            cur_warp->instructions.push_back(inst);
        }
    }
    if (is.bad())
        return err(ErrorKind::Io, "I/O error while reading trace");
    if (cur_cta)
        return err(ErrorKind::Parse,
                   "trace: unterminated cta_begin (missing cta_end)");
    if (trace.kernelName.empty())
        return err(ErrorKind::Parse, "trace: missing kernel header");
    return trace;
}

Expected<KernelTrace>
tryReadTraceFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        return ingestError(ErrorKind::Io, "cannot open trace file '" +
                                              path + "' for reading");
    return tryReadTrace(ifs, path);
}

KernelTrace
readTrace(std::istream &is)
{
    return unwrapOrFatal(tryReadTrace(is));
}

KernelTrace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        fatal("cannot open trace file '", path, "' for reading");
    return unwrapOrFatal(tryReadTrace(ifs, path));
}

} // namespace sieve::trace
