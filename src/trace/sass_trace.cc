#include "trace/sass_trace.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace sieve::trace {

namespace {

struct OpcodeEntry
{
    Opcode op;
    const char *name;
};

constexpr OpcodeEntry kOpcodeTable[] = {
    {Opcode::IAdd, "IADD"}, {Opcode::FFma, "FFMA"},
    {Opcode::Mufu, "MUFU"}, {Opcode::DFma, "DFMA"},
    {Opcode::Ldg, "LDG"},   {Opcode::Stg, "STG"},
    {Opcode::Lds, "LDS"},   {Opcode::Sts, "STS"},
    {Opcode::Ldl, "LDL"},   {Opcode::Stl, "STL"},
    {Opcode::Atom, "ATOM"}, {Opcode::Bra, "BRA"},
    {Opcode::Exit, "EXIT"},
};

} // namespace

const char *
opcodeName(Opcode op)
{
    for (const auto &e : kOpcodeTable) {
        if (e.op == op)
            return e.name;
    }
    panic("unknown opcode ", static_cast<int>(op));
}

Opcode
parseOpcode(const std::string &name)
{
    for (const auto &e : kOpcodeTable) {
        if (name == e.name)
            return e.op;
    }
    fatal("unknown opcode mnemonic '", name, "' in trace");
}

bool
isGlobalMemory(Opcode op)
{
    return op == Opcode::Ldg || op == Opcode::Stg || op == Opcode::Ldl ||
           op == Opcode::Stl || op == Opcode::Atom;
}

bool
isSharedMemory(Opcode op)
{
    return op == Opcode::Lds || op == Opcode::Sts;
}

uint64_t
KernelTrace::tracedInstructions() const
{
    uint64_t total = 0;
    for (const auto &cta : ctas)
        for (const auto &warp : cta.warps)
            total += warp.instructions.size();
    return total;
}

uint64_t
KernelTrace::representedInstructions() const
{
    return tracedInstructions() * ctaReplication;
}

void
writeTrace(const KernelTrace &trace, std::ostream &os)
{
    os << "kernel " << trace.kernelName << '\n'
       << "invocation " << trace.invocationId << '\n'
       << "grid " << trace.launch.grid.x << ' ' << trace.launch.grid.y
       << ' ' << trace.launch.grid.z << '\n'
       << "cta " << trace.launch.cta.x << ' ' << trace.launch.cta.y << ' '
       << trace.launch.cta.z << '\n'
       << "shmem " << trace.launch.sharedMemBytes << '\n'
       << "regs " << trace.launch.regsPerThread << '\n'
       << "replication " << trace.ctaReplication << '\n';

    for (size_t c = 0; c < trace.ctas.size(); ++c) {
        os << "cta_begin " << c << '\n';
        const CtaTrace &cta = trace.ctas[c];
        for (size_t w = 0; w < cta.warps.size(); ++w) {
            os << "warp " << w << '\n';
            for (const SassInstruction &inst :
                 cta.warps[w].instructions) {
                os << opcodeName(inst.opcode) << ' '
                   << unsigned(inst.destReg) << ' '
                   << unsigned(inst.srcReg0) << ' '
                   << unsigned(inst.srcReg1) << ' '
                   << unsigned(inst.activeLanes) << ' '
                   << unsigned(inst.sectors) << ' ' << inst.lineAddress
                   << '\n';
            }
        }
        os << "cta_end\n";
    }
}

void
writeTraceFile(const KernelTrace &trace, const std::string &path)
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open trace file '", path, "' for writing");
    writeTrace(trace, ofs);
}

KernelTrace
readTrace(std::istream &is)
{
    KernelTrace trace;
    std::string line;
    CtaTrace *cur_cta = nullptr;
    WarpTrace *cur_warp = nullptr;

    while (std::getline(is, line)) {
        auto text = trim(line);
        if (text.empty())
            continue;
        std::istringstream iss{std::string(text)};
        std::string head;
        iss >> head;

        if (head == "kernel") {
            iss >> trace.kernelName;
        } else if (head == "invocation") {
            iss >> trace.invocationId;
        } else if (head == "grid") {
            iss >> trace.launch.grid.x >> trace.launch.grid.y >>
                trace.launch.grid.z;
        } else if (head == "cta") {
            iss >> trace.launch.cta.x >> trace.launch.cta.y >>
                trace.launch.cta.z;
        } else if (head == "shmem") {
            iss >> trace.launch.sharedMemBytes;
        } else if (head == "regs") {
            iss >> trace.launch.regsPerThread;
        } else if (head == "replication") {
            iss >> trace.ctaReplication;
        } else if (head == "cta_begin") {
            trace.ctas.emplace_back();
            cur_cta = &trace.ctas.back();
            cur_warp = nullptr;
        } else if (head == "cta_end") {
            cur_cta = nullptr;
            cur_warp = nullptr;
        } else if (head == "warp") {
            if (!cur_cta)
                fatal("trace: 'warp' outside cta_begin/cta_end");
            cur_cta->warps.emplace_back();
            cur_warp = &cur_cta->warps.back();
        } else {
            if (!cur_warp)
                fatal("trace: instruction outside a warp block");
            SassInstruction inst;
            inst.opcode = parseOpcode(head);
            unsigned dest, src0, src1, lanes, sectors;
            uint64_t addr;
            if (!(iss >> dest >> src0 >> src1 >> lanes >> sectors >> addr))
                fatal("trace: malformed instruction line '",
                      std::string(text), "'");
            inst.destReg = static_cast<uint8_t>(dest);
            inst.srcReg0 = static_cast<uint8_t>(src0);
            inst.srcReg1 = static_cast<uint8_t>(src1);
            inst.activeLanes = static_cast<uint8_t>(lanes);
            inst.sectors = static_cast<uint8_t>(sectors);
            inst.lineAddress = addr;
            cur_warp->instructions.push_back(inst);
        }
    }
    if (trace.kernelName.empty())
        fatal("trace: missing kernel header");
    return trace;
}

KernelTrace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        fatal("cannot open trace file '", path, "' for reading");
    return readTrace(ifs);
}

} // namespace sieve::trace
