#include "trace/workload_stream.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"
#include "io/span_reader.hh"
#include "obs/metrics.hh"
#include "trace/workload_format.hh"

namespace sieve::trace {

namespace {

obs::Counter &
windowsCounter()
{
    static obs::Counter &c = obs::counter("ingest.stream.windows");
    return c;
}

obs::Counter &
invocationsCounter()
{
    static obs::Counter &c =
        obs::counter("ingest.stream.invocations");
    return c;
}

} // namespace

IngestBudget
IngestBudget::fromEnv()
{
    IngestBudget budget;
    if (const char *env = std::getenv("SIEVE_INGEST_BUDGET_MB")) {
        uint64_t mb = 0;
        if (parseUint64(env, mb) == NumericParse::Ok)
            budget.budgetBytes = static_cast<size_t>(mb) << 20;
        else
            warn("ignoring unparsable SIEVE_INGEST_BUDGET_MB='", env,
                 "'");
    }
    return budget;
}

Expected<WorkloadStreamReader>
WorkloadStreamReader::tryOpen(const std::string &path)
{
    auto file = io::MmapFile::tryOpen(path);
    if (!file)
        return ingestError(ErrorKind::Io,
                           "cannot open '" + path + "' for reading",
                           path, 0, 0);

    io::MmapFile &view = file.value();
    io::SpanReader in(view.data(), view.size(), path);
    wlfmt::HeaderInfo hdr;
    if (auto err = wlfmt::readHeader(in, path, view.size(), hdr))
        return std::move(*err);

    // The record region must be exactly the declared length. The
    // resident loader discovers a mismatch record by record; the
    // stream reader must know up front so windows can be addressed
    // by offset.
    const uint64_t remaining = in.remaining();
    const uint64_t needed =
        hdr.numInvocations * wlfmt::kInvocationRecordBytes;
    if (remaining < needed)
        return ingestError(
            ErrorKind::Io,
            "truncated workload file: " +
                std::to_string(hdr.numInvocations) +
                " invocation records need " + std::to_string(needed) +
                " bytes, " + std::to_string(remaining) + " available",
            path, 0, in.offset());
    if (remaining > needed)
        return ingestError(
            ErrorKind::Validation, "trailing bytes after workload data",
            path, 0, in.offset() + static_cast<size_t>(needed));

    WorkloadStreamReader reader;
    reader._path = path;
    reader._suite = std::move(hdr.suite);
    reader._name = std::move(hdr.name);
    reader._paper_invocations = hdr.paperInvocations;
    reader._kernel_names = std::move(hdr.kernelNames);
    reader._num_invocations = hdr.numInvocations;
    reader._records_offset = in.offset();
    reader._file = std::move(view);
    return reader;
}

Expected<size_t>
WorkloadStreamReader::nextWindow(std::vector<KernelInvocation> &out,
                                 size_t max_count)
{
    SIEVE_ASSERT(max_count > 0, "nextWindow() with an empty window");
    out.clear();
    if (_next >= _num_invocations)
        return size_t{0};

    const uint64_t left = _num_invocations - _next;
    const size_t count = static_cast<size_t>(
        std::min<uint64_t>(left, max_count));
    const size_t byte_off =
        _records_offset +
        static_cast<size_t>(_next * wlfmt::kInvocationRecordBytes);
    io::SpanReader in(
        _file.data() + byte_off,
        count * static_cast<size_t>(wlfmt::kInvocationRecordBytes),
        _path, byte_off);

    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        KernelInvocation inv = wlfmt::readInvocation(in);
        if (in.failed())
            return in.takeError();
        const uint64_t index = _next + i;
        if (inv.kernelId >= _kernel_names.size())
            return wlfmt::danglingKernelError(
                _path, index, inv.kernelId, _kernel_names.size(),
                in.offset());
        if (inv.invocationId != index)
            return wlfmt::chronologyError(_path, index,
                                          inv.invocationId,
                                          in.offset());
        out.push_back(std::move(inv));
    }

    _next += count;
    windowsCounter().add();
    invocationsCounter().add(count);
    return count;
}

} // namespace sieve::trace
