/**
 * @file
 * Whole-workload (de)serialization.
 *
 * The paper releases its identified representative kernel invocations
 * and traces so others can skip the profiling step; the equivalent
 * here is saving a complete generated workload — kernel table,
 * chronological invocation stream, visible characteristics, and the
 * hidden behaviour needed to re-run the timing models — to a single
 * file. The format is a versioned little-endian binary: compact
 * enough for 24k-invocation workloads to round-trip in milliseconds,
 * explicit enough to be read by other tools.
 *
 * Loading is recoverable: tryLoadWorkload() returns Expected with
 * byte-offset context on truncation, bad magic, implausible counts,
 * dangling kernel references, non-finite behaviour fields, or
 * trailing bytes. The fatal() entry points wrap it.
 */

#ifndef SIEVE_TRACE_WORKLOAD_IO_HH
#define SIEVE_TRACE_WORKLOAD_IO_HH

#include <iosfwd>
#include <string>

#include "common/error.hh"
#include "trace/workload.hh"

namespace sieve::trace {

/** Current workload-file format version. */
inline constexpr uint32_t kWorkloadFormatVersion = 1;

/** Serialize a workload to a binary stream. */
void saveWorkload(const Workload &workload, std::ostream &os);

/** Serialize a workload to a file. fatal() if unwritable. */
void saveWorkloadFile(const Workload &workload,
                      const std::string &path);

/**
 * Deserialize and validate a workload. Structured errors carry
 * `source` and the byte offset at which the problem was detected.
 */
Expected<Workload> tryLoadWorkload(std::istream &is,
                                   const std::string &source =
                                       "<stream>");

/**
 * Deserialize a workload from an in-memory byte span (e.g. an
 * io::MmapFile view) — zero-copy: record fields are decoded straight
 * out of the span. Same validation, error text, and byte offsets as
 * the stream path.
 */
Expected<Workload> tryLoadWorkloadBytes(const uint8_t *data,
                                        size_t size,
                                        const std::string &source =
                                            "<bytes>");

/**
 * tryLoadWorkload from a file; unreadable files are an IoError.
 * Memory-maps the file when possible (falling back to a buffered
 * read), so loading costs page faults, not copies.
 */
Expected<Workload> tryLoadWorkloadFile(const std::string &path);

/**
 * Deserialize a workload. fatal() on magic/version mismatch or a
 * truncated stream.
 */
Workload loadWorkload(std::istream &is);

/** Deserialize a workload from a file. fatal() if unreadable. */
Workload loadWorkloadFile(const std::string &path);

} // namespace sieve::trace

#endif // SIEVE_TRACE_WORKLOAD_IO_HH
