/**
 * @file
 * Whole-workload (de)serialization.
 *
 * The paper releases its identified representative kernel invocations
 * and traces so others can skip the profiling step; the equivalent
 * here is saving a complete generated workload — kernel table,
 * chronological invocation stream, visible characteristics, and the
 * hidden behaviour needed to re-run the timing models — to a single
 * file. The format is a versioned little-endian binary: compact
 * enough for 24k-invocation workloads to round-trip in milliseconds,
 * explicit enough to be read by other tools.
 */

#ifndef SIEVE_TRACE_WORKLOAD_IO_HH
#define SIEVE_TRACE_WORKLOAD_IO_HH

#include <iosfwd>
#include <string>

#include "trace/workload.hh"

namespace sieve::trace {

/** Current workload-file format version. */
inline constexpr uint32_t kWorkloadFormatVersion = 1;

/** Serialize a workload to a binary stream. */
void saveWorkload(const Workload &workload, std::ostream &os);

/** Serialize a workload to a file. fatal() if unwritable. */
void saveWorkloadFile(const Workload &workload,
                      const std::string &path);

/**
 * Deserialize a workload. fatal() on magic/version mismatch or a
 * truncated stream.
 */
Workload loadWorkload(std::istream &is);

/** Deserialize a workload from a file. fatal() if unreadable. */
Workload loadWorkloadFile(const std::string &path);

} // namespace sieve::trace

#endif // SIEVE_TRACE_WORKLOAD_IO_HH
