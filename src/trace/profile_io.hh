/**
 * @file
 * Profile CSV interchange, mirroring the paper's workflow where
 * profiler output "is converted into a readable CSV file which serves
 * as input to PKS and Sieve" (Section IV-3).
 *
 * Two schemas:
 *   - Sieve profile: kernel, invocation, instruction count, CTA size
 *     (the minimal NVBit-style profile; CTA size is needed for the
 *     Tier-2/3 dominant-CTA representative selection).
 *   - PKS profile: kernel, invocation, plus all 12 Table II metrics.
 */

#ifndef SIEVE_TRACE_PROFILE_IO_HH
#define SIEVE_TRACE_PROFILE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "trace/workload.hh"

namespace sieve::trace {

/** One row of a Sieve (instruction-count-only) profile. */
struct SieveProfileRow
{
    std::string kernelName;
    uint64_t invocationId = 0;
    uint64_t instructionCount = 0;
    uint32_t ctaSize = 0;
};

/** Build the Sieve profile table for a workload. */
CsvTable sieveProfileTable(const Workload &workload);

/** Parse a Sieve profile table back into rows. */
std::vector<SieveProfileRow> parseSieveProfile(const CsvTable &table);

/** Build the PKS 12-metric profile table for a workload. */
CsvTable pksProfileTable(const Workload &workload);

/**
 * Parse a PKS profile back into per-invocation feature vectors
 * (rows in invocation order, Table II column order).
 */
std::vector<std::vector<double>> parsePksProfile(const CsvTable &table);

} // namespace sieve::trace

#endif // SIEVE_TRACE_PROFILE_IO_HH
