/**
 * @file
 * Profile CSV interchange, mirroring the paper's workflow where
 * profiler output "is converted into a readable CSV file which serves
 * as input to PKS and Sieve" (Section IV-3).
 *
 * Two schemas:
 *   - Sieve profile: kernel, invocation, instruction count, CTA size
 *     (the minimal NVBit-style profile; CTA size is needed for the
 *     Tier-2/3 dominant-CTA representative selection).
 *   - PKS profile: kernel, invocation, plus all 12 Table II metrics.
 *
 * The try* parsers validate strictly — required columns, strict
 * numerics (no wrapping, no inf/nan), strictly increasing invocation
 * ids, positive instruction counts and CTA sizes — and return
 * structured errors with file/line context instead of aborting.
 */

#ifndef SIEVE_TRACE_PROFILE_IO_HH
#define SIEVE_TRACE_PROFILE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/error.hh"
#include "trace/workload.hh"

namespace sieve::trace {

/** One row of a Sieve (instruction-count-only) profile. */
struct SieveProfileRow
{
    std::string kernelName;
    uint64_t invocationId = 0;
    uint64_t instructionCount = 0;
    uint32_t ctaSize = 0;
};

/** Build the Sieve profile table for a workload. */
CsvTable sieveProfileTable(const Workload &workload);

/** An empty Sieve profile table with the schema header only. */
CsvTable emptySieveProfileTable();

/**
 * Append one invocation's profile row. sieveProfileTable() is this
 * over every invocation in chronological order; the streaming
 * profiler appends the same rows window by window, producing a
 * byte-identical table.
 */
void appendSieveProfileRow(CsvTable &table,
                           const std::string &kernel_name,
                           const KernelInvocation &inv);

/**
 * Parse and validate a Sieve profile table. Checks, per row: kernel
 * name non-empty, strictly increasing invocation ids (the profiler
 * emits rows chronologically), instruction count > 0, and CTA size
 * in [1, 1024]. Errors carry the offending source line.
 */
Expected<std::vector<SieveProfileRow>> tryParseSieveProfile(
    const CsvTable &table);

/** Parse a Sieve profile table back into rows. fatal() on error. */
std::vector<SieveProfileRow> parseSieveProfile(const CsvTable &table);

/** Build the PKS 12-metric profile table for a workload. */
CsvTable pksProfileTable(const Workload &workload);

/**
 * Parse and validate a PKS profile into per-invocation feature
 * vectors (invocation order, Table II column order). Metric values
 * must be finite and non-negative.
 */
Expected<std::vector<std::vector<double>>> tryParsePksProfile(
    const CsvTable &table);

/**
 * Parse a PKS profile back into per-invocation feature vectors
 * (rows in invocation order, Table II column order). fatal() on
 * error.
 */
std::vector<std::vector<double>> parsePksProfile(const CsvTable &table);

} // namespace sieve::trace

#endif // SIEVE_TRACE_PROFILE_IO_HH
