#include "trace/tier.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"

namespace sieve::trace {

namespace {

// ---------------------------------------------------------------
// LZSS frame
//
//   "SVZ1" magic (4 bytes) | raw size varint | token stream
//
// Token stream: control bytes of 8 flags, LSB first. Flag 1 = one
// literal byte; flag 0 = a match of two bytes: 12-bit backward
// offset (1..4095) in the low bits, 4-bit (length - kMinMatch) in
// the high bits. Greedy matcher over a last-occurrence hash of
// 3-byte prefixes — deterministic, no allocation beyond the output.
// ---------------------------------------------------------------

constexpr uint8_t kBlobMagic[4] = {'S', 'V', 'Z', '1'};
constexpr size_t kWindow = 4095;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = kMinMatch + 15;
constexpr size_t kHashSize = 1 << 13;

size_t
hash3(const uint8_t *p)
{
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> 19 & (kHashSize - 1);
}

} // namespace

std::vector<uint8_t>
compressBytes(const uint8_t *data, size_t size)
{
    std::vector<uint8_t> out;
    out.reserve(size / 2 + 16);
    out.insert(out.end(), kBlobMagic, kBlobMagic + 4);
    detail::putVarint(out, size);

    // Last position each 3-byte-prefix hash was seen at (+1; 0 = never).
    std::vector<size_t> head(kHashSize, 0);

    size_t pos = 0;
    size_t control_at = 0; // index of the active control byte
    int flag = 8;          // flags used in the active control byte

    auto emit_flag = [&](bool literal) {
        if (flag == 8) {
            control_at = out.size();
            out.push_back(0);
            flag = 0;
        }
        if (literal)
            out[control_at] |= static_cast<uint8_t>(1u << flag);
        ++flag;
    };

    while (pos < size) {
        size_t best_len = 0;
        size_t best_off = 0;
        if (size - pos >= kMinMatch) {
            size_t h = hash3(data + pos);
            size_t cand = head[h];
            head[h] = pos + 1;
            if (cand != 0 && pos + 1 - cand <= kWindow) {
                size_t start = cand - 1;
                size_t limit = std::min(kMaxMatch, size - pos);
                size_t len = 0;
                while (len < limit &&
                       data[start + len] == data[pos + len])
                    ++len;
                if (len >= kMinMatch) {
                    best_len = len;
                    best_off = pos - start;
                }
            }
        }

        if (best_len >= kMinMatch) {
            emit_flag(false);
            uint16_t token = static_cast<uint16_t>(
                best_off |
                (static_cast<uint16_t>(best_len - kMinMatch) << 12));
            out.push_back(static_cast<uint8_t>(token));
            out.push_back(static_cast<uint8_t>(token >> 8));
            // Index the skipped positions so later matches can
            // still land inside this match.
            for (size_t i = 1;
                 i < best_len && pos + i + kMinMatch <= size; ++i)
                head[hash3(data + pos + i)] = pos + i + 1;
            pos += best_len;
        } else {
            emit_flag(true);
            out.push_back(data[pos]);
            ++pos;
        }
    }
    return out;
}

Expected<std::vector<uint8_t>>
tryDecompressBytes(const uint8_t *data, size_t size,
                   const std::string &source)
{
    size_t pos = 0;
    auto err = [&](ErrorKind kind, std::string msg) {
        return ingestError(kind,
                           "compressed blob: " + std::move(msg) +
                               " (offset " + std::to_string(pos) + ")",
                           source);
    };

    if (size < 5)
        return err(ErrorKind::Parse, "shorter than frame header");
    if (std::memcmp(data, kBlobMagic, 4) != 0)
        return err(ErrorKind::Parse, "bad magic");
    pos = 4;

    uint64_t raw_size = 0;
    unsigned shift = 0;
    for (int i = 0;; ++i) {
        if (pos >= size || i >= 10)
            return err(ErrorKind::Parse, "malformed raw size");
        uint8_t b = data[pos++];
        if (i == 9 && b > 1)
            return err(ErrorKind::Parse, "raw size overflows 64 bits");
        raw_size |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
    }
    // A frame cannot legitimately expand to more than 8x its token
    // bytes (1 control bit + >= 1 byte per literal): reject absurd
    // raw sizes before allocating.
    if (raw_size > (size - pos + 1) * 18)
        return err(ErrorKind::Validation,
                   "raw size " + std::to_string(raw_size) +
                       " impossible for " +
                       std::to_string(size - pos) + " token bytes");

    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(raw_size));

    while (out.size() < raw_size) {
        if (pos >= size)
            return err(ErrorKind::Parse, "truncated token stream");
        uint8_t control = data[pos++];
        for (int f = 0; f < 8 && out.size() < raw_size; ++f) {
            if (control & (1u << f)) {
                if (pos >= size)
                    return err(ErrorKind::Parse,
                               "truncated literal");
                out.push_back(data[pos++]);
            } else {
                if (pos + 2 > size)
                    return err(ErrorKind::Parse, "truncated match");
                uint16_t token = static_cast<uint16_t>(
                    data[pos] |
                    (static_cast<uint16_t>(data[pos + 1]) << 8));
                pos += 2;
                size_t off = token & 0xfff;
                size_t len = (token >> 12) + kMinMatch;
                if (off == 0 || off > out.size())
                    return err(ErrorKind::Validation,
                               "match offset " + std::to_string(off) +
                                   " outside decoded prefix of " +
                                   std::to_string(out.size()));
                if (out.size() + len > raw_size)
                    return err(ErrorKind::Validation,
                               "match overruns raw size");
                size_t start = out.size() - off;
                for (size_t i = 0; i < len; ++i)
                    out.push_back(out[start + i]);
            }
        }
    }
    if (pos != size)
        return err(ErrorKind::Parse,
                   std::to_string(size - pos) +
                       " trailing bytes after token stream");
    return out;
}

std::vector<uint8_t>
hibernate(const ColumnarTrace &trace)
{
    std::vector<uint8_t> raw = encodeColumnar(trace);
    return compressBytes(raw.data(), raw.size());
}

Expected<ColumnarTrace>
tryRehydrate(const uint8_t *data, size_t size,
             const std::string &source)
{
    auto raw = tryDecompressBytes(data, size, source);
    if (!raw)
        return raw.error();
    return tryDecodeColumnar(raw.value().data(), raw.value().size(),
                             source);
}

TierConfig
TierConfig::fromEnv()
{
    TierConfig config;
    if (const char *env = std::getenv("SIEVE_TRACE_BUDGET_MB")) {
        uint64_t mb = 0;
        if (parseUint64(env, mb) == NumericParse::Ok)
            config.budgetBytes = static_cast<size_t>(mb) << 20;
        else
            warn("ignoring unparsable SIEVE_TRACE_BUDGET_MB='", env,
                 "'");
    }
    return config;
}

// ---------------------------------------------------------------
// Tier pool
// ---------------------------------------------------------------

namespace {

/**
 * Current hot bytes across every live pool. The Stable counter
 * trace.bytes_resident is monotonic (bytes ever made resident); the
 * telemetry timeline wants the *instantaneous* residency, so the
 * pools mirror every hot-bytes transition into this atomic.
 */
std::atomic<int64_t> &
residentNow()
{
    static std::atomic<int64_t> bytes{0};
    return bytes;
}

/** Register the residency track once a pool exists (not earlier, so
 * runs without tiered traces never grow a track). */
void
registerResidencyProbe()
{
    static const bool once = [] {
        obs::registerTelemetryProbe("trace.tier.resident_bytes", [] {
            return residentNow().load(std::memory_order_relaxed);
        });
        return true;
    }();
    (void)once;
}

} // namespace

namespace detail {

struct TraceSlot
{
    /**
     * Non-owning: every code path that reaches a slot does so
     * through a TraceHandle or Pin, both of which co-own the
     * PoolState — an owning pointer here would close a
     * state -> slot -> state reference cycle and leak every pool.
     */
    PoolState *pool = nullptr;
    std::vector<uint8_t> blob;  //!< private cold form (legacy path)
    std::optional<ColumnarTrace> hot;
    size_t hotBytes = 0;    //!< residentBytes() of the decoded form
    size_t blobSize = 0;    //!< compressed cold-form size (either path)
    uint64_t instructions = 0;
    uint32_t pins = 0;
    uint64_t lruTick = 0;   //!< last touch (0 = never resident)
    bool storeBacked = false; //!< cold form lives in the shard store
    BlobDigest digest;        //!< store key (storeBacked only)

    /**
     * Identity fields of a store-backed trace. The store key is the
     * gpusim *simulation-equivalence* digest, which deliberately
     * excludes kernelName and invocationId so content-identical
     * traces dedup to one blob; the slot keeps its own identity
     * resident (a few bytes) and re-stamps it after rehydration, so
     * a pin always observes the exact trace that was inserted.
     */
    std::string kernelName;
    uint64_t invocationId = 0;
};

struct PoolState
{
    PoolState() { registerResidencyProbe(); }

    ~PoolState()
    {
        // Whatever is still hot leaves residency with the pool.
        residentNow().fetch_sub(static_cast<int64_t>(residentBytes),
                                std::memory_order_relaxed);
    }

    mutable std::mutex mutex;
    // Shared handle: keeps the store state alive for as long as any
    // handle can still rehydrate from it.
    std::optional<ShardStore> store;
    size_t budgetBytes = 0;
    size_t residentBytes = 0; //!< sum of hot slots' hotBytes
    uint64_t tick = 0;
    std::vector<std::shared_ptr<TraceSlot>> slots;

    /**
     * Drop hot forms, least-recently-used first, until the budget
     * holds. Pinned slots are skipped. Caller holds `mutex`.
     */
    void
    enforceBudget()
    {
        while (residentBytes > budgetBytes) {
            TraceSlot *victim = nullptr;
            for (const auto &slot : slots) {
                if (!slot->hot || slot->pins != 0)
                    continue;
                if (!victim || slot->lruTick < victim->lruTick)
                    victim = slot.get();
            }
            if (!victim)
                return; // everything left is pinned
            victim->hot.reset();
            residentBytes -= victim->hotBytes;
            residentNow().fetch_sub(
                static_cast<int64_t>(victim->hotBytes),
                std::memory_order_relaxed);
        }
    }
};

} // namespace detail

namespace {

obs::Counter &
rehydrationCounter()
{
    static obs::Counter &c = obs::counter("trace.rehydrations");
    return c;
}

obs::Counter &
bytesResidentCounter()
{
    static obs::Counter &c = obs::counter("trace.bytes_resident");
    return c;
}

obs::Counter &
bytesPerInstCounter()
{
    static obs::Counter &c =
        obs::counter("trace.bytes_per_instruction");
    return c;
}

} // namespace

void
TraceHandle::Pin::release()
{
    if (!_slot)
        return;
    {
        std::lock_guard<std::mutex> lock(_state->mutex);
        SIEVE_ASSERT(_slot->pins != 0, "unbalanced trace pin");
        --_slot->pins;
    }
    _slot.reset();
    _state.reset();
}

TraceHandle::Pin &
TraceHandle::Pin::operator=(Pin &&other) noexcept
{
    if (this != &other) {
        release();
        _state = std::move(other._state);
        _slot = std::move(other._slot);
    }
    return *this;
}

TraceHandle::Pin::~Pin()
{
    release();
}

const ColumnarTrace &
TraceHandle::Pin::operator*() const
{
    SIEVE_ASSERT(_slot && _slot->hot,
                 "dereferencing an empty trace pin");
    return *_slot->hot;
}

TraceHandle::Pin
TraceHandle::pin() const
{
    SIEVE_ASSERT(_slot, "pin() on an empty TraceHandle");
    detail::PoolState &pool = *_state;
    std::lock_guard<std::mutex> lock(pool.mutex);
    if (!_slot->hot) {
        // Rehydrate. The cold form was produced in-process by
        // hibernate() (directly, or via the shard store), so failure
        // means corruption: fatal.
        Expected<ColumnarTrace> trace =
            _slot->storeBacked
                ? pool.store->tryGet(_slot->digest)
                : tryRehydrate(_slot->blob.data(),
                               _slot->blob.size(), "<tier-pool>");
        if (!trace)
            fatal(_slot->storeBacked ? "corrupt shard-store trace: "
                                     : "corrupt hibernated trace: ",
                  trace.error().message);
        if (_slot->storeBacked) {
            // The store deduplicates by content digest; restore this
            // slot's own identity over the shared body.
            trace.value().kernelName = _slot->kernelName;
            trace.value().invocationId = _slot->invocationId;
        }
        _slot->hot.emplace(std::move(trace.value()));
        pool.residentBytes += _slot->hotBytes;
        residentNow().fetch_add(static_cast<int64_t>(_slot->hotBytes),
                                std::memory_order_relaxed);
        rehydrationCounter().add();
        bytesResidentCounter().add(_slot->hotBytes);
    }
    _slot->lruTick = ++pool.tick;
    ++_slot->pins;
    Pin pinned(_state, _slot);
    pool.enforceBudget();
    return pinned;
}

bool
TraceHandle::resident() const
{
    SIEVE_ASSERT(_slot, "resident() on an empty TraceHandle");
    std::lock_guard<std::mutex> lock(_state->mutex);
    return _slot->hot.has_value();
}

size_t
TraceHandle::blobBytes() const
{
    SIEVE_ASSERT(_slot, "blobBytes() on an empty TraceHandle");
    return _slot->blobSize;
}

size_t
TraceHandle::hotBytes() const
{
    SIEVE_ASSERT(_slot, "hotBytes() on an empty TraceHandle");
    return _slot->hotBytes;
}

uint64_t
TraceHandle::instructions() const
{
    SIEVE_ASSERT(_slot, "instructions() on an empty TraceHandle");
    return _slot->instructions;
}

TraceTierPool::TraceTierPool(TierConfig config)
    : _state(std::make_shared<detail::PoolState>())
{
    _state->budgetBytes = config.budgetBytes;
}

TraceTierPool::TraceTierPool(TierConfig config, ShardStore store)
    : TraceTierPool(config)
{
    _state->store.emplace(std::move(store));
}

TraceHandle
TraceTierPool::insert(ColumnarTrace trace)
{
    auto slot = std::make_shared<detail::TraceSlot>();
    slot->pool = _state.get();
    slot->blob = hibernate(trace);
    slot->blobSize = slot->blob.size();
    slot->hotBytes = trace.residentBytes();
    slot->instructions = trace.numInstructions();

    std::lock_guard<std::mutex> lock(_state->mutex);
    slot->hot.emplace(std::move(trace));
    slot->lruTick = ++_state->tick;
    _state->residentBytes += slot->hotBytes;
    residentNow().fetch_add(static_cast<int64_t>(slot->hotBytes),
                            std::memory_order_relaxed);
    _state->slots.push_back(slot);

    bytesResidentCounter().add(slot->hotBytes);
    // Milli-bytes-per-instruction of this trace's resident form,
    // summed per inserted trace (see DESIGN.md §10).
    uint64_t insts = std::max<uint64_t>(slot->instructions, 1);
    bytesPerInstCounter().add(
        (static_cast<uint64_t>(slot->hotBytes) * 1000 + insts / 2) /
        insts);

    _state->enforceBudget();
    return TraceHandle(_state, slot);
}

TraceHandle
TraceTierPool::insert(ColumnarTrace trace, const BlobDigest &digest)
{
    SIEVE_ASSERT(_state->store.has_value(),
                 "digest insert() on a pool without a shard store");
    auto slot = std::make_shared<detail::TraceSlot>();
    slot->pool = _state.get();
    slot->storeBacked = true;
    slot->digest = digest;
    slot->kernelName = trace.kernelName;
    slot->invocationId = trace.invocationId;
    slot->hotBytes = trace.residentBytes();
    slot->instructions = trace.numInstructions();

    // The store is this process's own output directory; failure to
    // append is unrecoverable for the pipeline, like an unwritable
    // trace export.
    auto put = _state->store->tryPut(digest, trace);
    if (!put)
        fatal("shard store put failed: ", put.error().message);
    slot->blobSize = put.value().blobBytes;

    std::lock_guard<std::mutex> lock(_state->mutex);
    slot->hot.emplace(std::move(trace));
    slot->lruTick = ++_state->tick;
    _state->residentBytes += slot->hotBytes;
    residentNow().fetch_add(static_cast<int64_t>(slot->hotBytes),
                            std::memory_order_relaxed);
    _state->slots.push_back(slot);

    bytesResidentCounter().add(slot->hotBytes);
    uint64_t insts = std::max<uint64_t>(slot->instructions, 1);
    bytesPerInstCounter().add(
        (static_cast<uint64_t>(slot->hotBytes) * 1000 + insts / 2) /
        insts);

    _state->enforceBudget();
    return TraceHandle(_state, slot);
}

TraceTierPool::Occupancy
TraceTierPool::occupancy() const
{
    Occupancy occ;
    std::lock_guard<std::mutex> lock(_state->mutex);
    for (const auto &slot : _state->slots) {
        // Store-backed slots report their at-rest size; shared blobs
        // are counted once per referencing slot (logical census).
        occ.blobBytes += slot->blobSize;
        if (slot->hot) {
            ++occ.hotTraces;
            occ.hotBytes += slot->hotBytes;
        } else {
            ++occ.coldTraces;
        }
    }
    return occ;
}

size_t
TraceTierPool::budgetBytes() const
{
    return _state->budgetBytes;
}

size_t
TraceTierPool::size() const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    return _state->slots.size();
}

} // namespace sieve::trace
