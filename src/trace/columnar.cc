#include "trace/columnar.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/logging.hh"

namespace sieve::trace {

namespace {

/** Pack the six byte-sized instruction fields into one word. */
uint64_t
packTuple(const SassInstruction &inst)
{
    return static_cast<uint64_t>(inst.opcode) |
           (static_cast<uint64_t>(inst.destReg) << 8) |
           (static_cast<uint64_t>(inst.srcReg0) << 16) |
           (static_cast<uint64_t>(inst.srcReg1) << 24) |
           (static_cast<uint64_t>(inst.activeLanes) << 32) |
           (static_cast<uint64_t>(inst.sectors) << 40);
}

/** FNV-1a over a byte range (the serialization checksum). */
uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < n; ++i)
        h = (h ^ data[i]) * 0x100000001b3ULL;
    return h;
}

constexpr uint32_t kMagic = 0x54435653; // "SVCT" little-endian
constexpr uint8_t kVersion = 1;

} // namespace

namespace detail {

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

} // namespace detail

size_t
ColumnarTrace::residentBytes() const
{
    return sizeof(ColumnarTrace) + kernelName.size() +
           ctaWarpOffsets.size() * sizeof(uint32_t) +
           warpInstOffsets.size() * sizeof(uint64_t) +
           warpAddrOffsets.size() * sizeof(uint64_t) +
           dictionary.size() * sizeof(SassInstruction) +
           tupleIndex.size() * sizeof(uint16_t) +
           inlineTuples.size() *
               sizeof(std::pair<uint64_t, SassInstruction>) +
           addrDeltas.size() +
           addrExceptions.size() * sizeof(std::pair<uint64_t, uint64_t>);
}

double
ColumnarTrace::bytesPerInstruction() const
{
    uint64_t insts = numInstructions();
    if (insts == 0)
        return 0.0;
    return static_cast<double>(residentBytes()) /
           static_cast<double>(insts);
}

size_t
aosFootprintBytes(const ColumnarTrace &trace)
{
    return sizeof(KernelTrace) + trace.kernelName.size() +
           trace.numInstructions() * sizeof(SassInstruction) +
           trace.numWarps() * sizeof(WarpTrace) +
           trace.numCtas() * sizeof(CtaTrace);
}

ColumnarTrace
toColumnar(const KernelTrace &trace)
{
    ColumnarTrace out;
    out.kernelName = trace.kernelName;
    out.invocationId = trace.invocationId;
    out.launch = trace.launch;
    out.ctaReplication = trace.ctaReplication;

    uint64_t insts = trace.tracedInstructions();
    size_t warps = 0;
    for (const auto &cta : trace.ctas)
        warps += cta.warps.size();
    SIEVE_ASSERT(warps <= UINT32_MAX,
                 "trace exceeds 2^32 warps; cannot columnarize");

    out.ctaWarpOffsets.reserve(trace.ctas.size() + 1);
    out.warpInstOffsets.reserve(warps + 1);
    out.warpAddrOffsets.reserve(warps + 1);
    out.tupleIndex.reserve(static_cast<size_t>(insts));

    std::unordered_map<uint64_t, uint16_t> dict;
    dict.reserve(256);

    uint64_t gi = 0;
    for (const auto &cta : trace.ctas) {
        for (const auto &warp : cta.warps) {
            uint64_t prev_addr = 0;
            for (const SassInstruction &inst : warp.instructions) {
                uint64_t key = packTuple(inst);
                auto it = dict.find(key);
                uint16_t idx;
                if (it != dict.end()) {
                    idx = it->second;
                } else if (out.dictionary.size() <
                           ColumnarTrace::kInlineTuple) {
                    idx = static_cast<uint16_t>(out.dictionary.size());
                    SassInstruction entry = inst;
                    entry.lineAddress = 0;
                    out.dictionary.push_back(entry);
                    dict.emplace(key, idx);
                } else {
                    // Dictionary full: spill the tuple inline.
                    idx = ColumnarTrace::kInlineTuple;
                    SassInstruction entry = inst;
                    entry.lineAddress = 0;
                    out.inlineTuples.emplace_back(gi, entry);
                }
                out.tupleIndex.push_back(idx);

                if (isGlobalMemory(inst.opcode)) {
                    int64_t delta = static_cast<int64_t>(
                        inst.lineAddress - prev_addr);
                    detail::putVarint(out.addrDeltas,
                                      detail::zigzag(delta));
                    prev_addr = inst.lineAddress;
                } else if (inst.lineAddress != 0) {
                    out.addrExceptions.emplace_back(gi,
                                                    inst.lineAddress);
                }
                ++gi;
            }
            out.warpInstOffsets.push_back(gi);
            out.warpAddrOffsets.push_back(out.addrDeltas.size());
        }
        out.ctaWarpOffsets.push_back(
            static_cast<uint32_t>(out.warpInstOffsets.size() - 1));
    }
    return out;
}

WarpDecoder::WarpDecoder(const ColumnarTrace &trace, size_t warp)
    : _trace(trace), _gi(trace.warpInstOffsets[warp]),
      _left(warpInstructionCount(trace, warp)), _count(_left),
      _addrPos(static_cast<size_t>(trace.warpAddrOffsets[warp]))
{
    auto by_first = [](const auto &a, uint64_t b) {
        return a.first < b;
    };
    _inlinePos = static_cast<size_t>(
        std::lower_bound(trace.inlineTuples.begin(),
                         trace.inlineTuples.end(), _gi, by_first) -
        trace.inlineTuples.begin());
    _excPos = static_cast<size_t>(
        std::lower_bound(trace.addrExceptions.begin(),
                         trace.addrExceptions.end(), _gi, by_first) -
        trace.addrExceptions.begin());
}

SassInstruction
WarpDecoder::next()
{
    SIEVE_ASSERT(_left != 0, "WarpDecoder::next past end of warp");
    --_left;

    uint16_t idx = _trace.tupleIndex[static_cast<size_t>(_gi)];
    SassInstruction inst;
    if (idx != ColumnarTrace::kInlineTuple) {
        inst = _trace.dictionary[idx];
    } else {
        inst = _trace.inlineTuples[_inlinePos].second;
        ++_inlinePos;
    }

    if (isGlobalMemory(inst.opcode)) {
        uint64_t zz = 0;
        unsigned shift = 0;
        uint8_t b;
        do {
            b = _trace.addrDeltas[_addrPos++];
            zz |= static_cast<uint64_t>(b & 0x7f) << shift;
            shift += 7;
        } while (b & 0x80);
        _prevAddr += static_cast<uint64_t>(detail::unzigzag(zz));
        inst.lineAddress = _prevAddr;
    } else if (_excPos < _trace.addrExceptions.size() &&
               _trace.addrExceptions[_excPos].first == _gi) {
        inst.lineAddress = _trace.addrExceptions[_excPos].second;
        ++_excPos;
    }
    ++_gi;
    return inst;
}

size_t
decodeWarp(const ColumnarTrace &trace, size_t w, SassInstruction *out)
{
    // The simulator's hot loop. Hoisting the column base pointers
    // into locals matters: `out` has the same type as the dictionary
    // elements, so writing through it could alias any
    // SassInstruction the columns own, and without the locals the
    // compiler must reload every base pointer per instruction.
    const uint64_t gi0 = trace.warpInstOffsets[w];
    const size_t n =
        static_cast<size_t>(trace.warpInstOffsets[w + 1] - gi0);
    const uint16_t *tuples = trace.tupleIndex.data() + gi0;
    const SassInstruction *dict = trace.dictionary.data();
    const uint8_t *deltas = trace.addrDeltas.data();
    size_t addr_pos = static_cast<size_t>(trace.warpAddrOffsets[w]);
    uint64_t prev_addr = 0;

    // Side-table cursors; both tables are rare, usually empty.
    auto by_first = [](const auto &a, uint64_t b) {
        return a.first < b;
    };
    const auto *inl =
        trace.inlineTuples.data() +
        (std::lower_bound(trace.inlineTuples.begin(),
                          trace.inlineTuples.end(), gi0, by_first) -
         trace.inlineTuples.begin());
    const auto *exc =
        trace.addrExceptions.data() +
        (std::lower_bound(trace.addrExceptions.begin(),
                          trace.addrExceptions.end(), gi0, by_first) -
         trace.addrExceptions.begin());
    const auto *exc_end =
        trace.addrExceptions.data() + trace.addrExceptions.size();

    auto readDelta = [&]() {
        // Fast path: deltas between neighbouring cache-line
        // addresses are almost always one varint byte.
        uint8_t b = deltas[addr_pos++];
        uint64_t zz = b & 0x7f;
        if (b & 0x80) {
            unsigned shift = 7;
            do {
                b = deltas[addr_pos++];
                zz |= static_cast<uint64_t>(b & 0x7f) << shift;
                shift += 7;
            } while (b & 0x80);
        }
        prev_addr += static_cast<uint64_t>(detail::unzigzag(zz));
        return prev_addr;
    };

    // Clean-path split: when neither side table intersects this
    // warp's range (the overwhelmingly common case), the warp's
    // addresses are pre-decoded from its delta byte range
    // (warpAddrOffsets bounds it exactly) and the instruction loop
    // becomes a branchless dictionary gather + conditional-move
    // patch — no data-dependent branch per instruction, which is
    // what raw-AoS-competitive decode bandwidth requires.
    bool clean = (inl == trace.inlineTuples.data() +
                             trace.inlineTuples.size() ||
                  inl->first >= gi0 + n) &&
                 (exc == exc_end || exc->first >= gi0 + n);
    const size_t addr_end =
        static_cast<size_t>(trace.warpAddrOffsets[w + 1]);
    constexpr size_t kMaxStackAddrs = 1024;
    if (clean && addr_end - addr_pos <= kMaxStackAddrs) {
        // Each delta is >= 1 byte, so the byte range bounds the count.
        uint64_t addrs[kMaxStackAddrs + 1];
        size_t na = 0;
        while (addr_pos < addr_end)
            addrs[na++] = readDelta();
        addrs[na] = 0; // sentinel: read (and discarded) past the end
        // Dictionary entries carry lineAddress == 0 by invariant, so
        // the whole 16-byte entry is copied with memcpy (one vector
        // load + store instead of per-field moves) and the address
        // slot is then overwritten unconditionally: the masked value
        // is addrs[c] for a memory op and 0 — the entry's own value —
        // otherwise. No data-dependent branch anywhere in the loop.
        constexpr uint64_t mem_mask =
            (1u << static_cast<uint8_t>(Opcode::Ldg)) |
            (1u << static_cast<uint8_t>(Opcode::Stg)) |
            (1u << static_cast<uint8_t>(Opcode::Ldl)) |
            (1u << static_cast<uint8_t>(Opcode::Stl)) |
            (1u << static_cast<uint8_t>(Opcode::Atom));
        size_t c = 0;
        for (size_t i = 0; i < n; ++i) {
            const SassInstruction *e = dict + tuples[i];
            std::memcpy(out + i, e, sizeof(SassInstruction));
            uint64_t m =
                (mem_mask >> static_cast<uint8_t>(e->opcode)) & 1u;
            out[i].lineAddress = addrs[c] & (0 - m);
            c += m;
        }
        return n;
    }
    if (clean) {
        for (size_t i = 0; i < n; ++i) {
            SassInstruction inst = dict[tuples[i]];
            if (isGlobalMemory(inst.opcode))
                inst.lineAddress = readDelta();
            out[i] = inst;
        }
        return n;
    }

    for (size_t i = 0; i < n; ++i) {
        uint16_t idx = tuples[i];
        SassInstruction inst;
        if (idx != ColumnarTrace::kInlineTuple) {
            inst = dict[idx];
        } else {
            inst = inl->second;
            ++inl;
        }
        if (isGlobalMemory(inst.opcode)) {
            inst.lineAddress = readDelta();
        } else if (exc != exc_end && exc->first == gi0 + i) {
            inst.lineAddress = exc->second;
            ++exc;
        }
        out[i] = inst;
    }
    return n;
}

KernelTrace
toAos(const ColumnarTrace &trace)
{
    KernelTrace out;
    out.kernelName = trace.kernelName;
    out.invocationId = trace.invocationId;
    out.launch = trace.launch;
    out.ctaReplication = trace.ctaReplication;

    out.ctas.resize(trace.numCtas());
    for (size_t c = 0; c < trace.numCtas(); ++c) {
        CtaTrace &cta = out.ctas[c];
        size_t wbegin = trace.ctaWarpOffsets[c];
        size_t wend = trace.ctaWarpOffsets[c + 1];
        cta.warps.resize(wend - wbegin);
        for (size_t w = wbegin; w < wend; ++w) {
            WarpTrace &warp = cta.warps[w - wbegin];
            WarpDecoder dec(trace, w);
            warp.instructions.reserve(dec.count());
            for (size_t i = 0, n = dec.count(); i < n; ++i)
                warp.instructions.push_back(dec.next());
        }
    }
    return out;
}

SassInstruction *
DecodeArena::alloc(size_t n)
{
    // Delegates slab management to the shared Arena (common/arena.hh)
    // so simulator workspaces and decode buffers share one growth
    // accounting and reuse discipline.
    SassInstruction *p = _arena.alloc<SassInstruction>(n);
    _allocated += n;
    return p;
}

void
DecodeArena::clear()
{
    _arena.reset();
    _allocated = 0;
}

std::vector<uint8_t>
encodeColumnar(const ColumnarTrace &trace)
{
    using detail::putVarint;
    std::vector<uint8_t> out;
    out.reserve(64 + trace.tupleIndex.size() * 2 +
                trace.addrDeltas.size() + trace.dictionary.size() * 6);

    out.push_back(static_cast<uint8_t>(kMagic));
    out.push_back(static_cast<uint8_t>(kMagic >> 8));
    out.push_back(static_cast<uint8_t>(kMagic >> 16));
    out.push_back(static_cast<uint8_t>(kMagic >> 24));
    out.push_back(kVersion);

    putVarint(out, trace.kernelName.size());
    out.insert(out.end(), trace.kernelName.begin(),
               trace.kernelName.end());
    putVarint(out, trace.invocationId);
    putVarint(out, trace.launch.grid.x);
    putVarint(out, trace.launch.grid.y);
    putVarint(out, trace.launch.grid.z);
    putVarint(out, trace.launch.cta.x);
    putVarint(out, trace.launch.cta.y);
    putVarint(out, trace.launch.cta.z);
    putVarint(out, trace.launch.sharedMemBytes);
    putVarint(out, trace.launch.regsPerThread);
    putVarint(out, trace.ctaReplication);

    // Extent tables as per-level counts (offsets are recomputed on
    // decode, which also revalidates monotonicity for free).
    putVarint(out, trace.numCtas());
    for (size_t c = 0; c < trace.numCtas(); ++c)
        putVarint(out, trace.ctaWarpOffsets[c + 1] -
                           trace.ctaWarpOffsets[c]);
    for (size_t w = 0; w < trace.numWarps(); ++w)
        putVarint(out, warpInstructionCount(trace, w));

    auto put_tuple = [&out](const SassInstruction &inst) {
        out.push_back(static_cast<uint8_t>(inst.opcode));
        out.push_back(inst.destReg);
        out.push_back(inst.srcReg0);
        out.push_back(inst.srcReg1);
        out.push_back(inst.activeLanes);
        out.push_back(inst.sectors);
    };

    putVarint(out, trace.dictionary.size());
    for (const SassInstruction &entry : trace.dictionary)
        put_tuple(entry);

    for (uint16_t idx : trace.tupleIndex) {
        out.push_back(static_cast<uint8_t>(idx));
        out.push_back(static_cast<uint8_t>(idx >> 8));
    }

    putVarint(out, trace.inlineTuples.size());
    for (const auto &[gi, entry] : trace.inlineTuples) {
        putVarint(out, gi);
        put_tuple(entry);
    }

    putVarint(out, trace.addrDeltas.size());
    out.insert(out.end(), trace.addrDeltas.begin(),
               trace.addrDeltas.end());

    putVarint(out, trace.addrExceptions.size());
    for (const auto &[gi, addr] : trace.addrExceptions) {
        putVarint(out, gi);
        putVarint(out, addr);
    }

    uint64_t checksum = fnv1a(out.data(), out.size());
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
    return out;
}

namespace {

/** Bounds-checked cursor over canonical columnar bytes. */
struct ByteReader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;

    size_t remaining() const { return size - pos; }

    bool
    readByte(uint8_t &out)
    {
        if (pos >= size)
            return false;
        out = data[pos++];
        return true;
    }

    bool
    readVarint(uint64_t &out)
    {
        out = 0;
        unsigned shift = 0;
        for (int i = 0; i < 10; ++i) {
            uint8_t b;
            if (!readByte(b))
                return false;
            if (i == 9 && b > 1)
                return false; // would overflow 64 bits
            out |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return true;
            shift += 7;
        }
        return false;
    }
};

} // namespace

Expected<ColumnarTrace>
tryDecodeColumnar(const uint8_t *data, size_t size,
                  const std::string &source)
{
    ByteReader r{data, size};

    auto err = [&](ErrorKind kind, std::string msg) {
        return ingestError(kind,
                           "columnar trace: " + std::move(msg) +
                               " (offset " + std::to_string(r.pos) + ")",
                           source);
    };
    auto truncated = [&](const char *what) {
        return err(ErrorKind::Parse,
                   std::string("truncated ") + what);
    };

    if (size < 5 + 8)
        return err(ErrorKind::Parse, "shorter than header + checksum");

    uint64_t stored_sum = 0;
    for (int i = 0; i < 8; ++i)
        stored_sum |= static_cast<uint64_t>(data[size - 8 + i])
                      << (8 * i);
    if (fnv1a(data, size - 8) != stored_sum)
        return err(ErrorKind::Validation, "checksum mismatch");
    r.size = size - 8; // the payload the cursor may consume

    uint32_t magic = static_cast<uint32_t>(data[0]) |
                     (static_cast<uint32_t>(data[1]) << 8) |
                     (static_cast<uint32_t>(data[2]) << 16) |
                     (static_cast<uint32_t>(data[3]) << 24);
    if (magic != kMagic)
        return err(ErrorKind::Parse, "bad magic");
    if (data[4] != kVersion)
        return err(ErrorKind::Parse,
                   "unsupported version " + std::to_string(data[4]));
    r.pos = 5;

    ColumnarTrace out;

    uint64_t name_len;
    if (!r.readVarint(name_len))
        return truncated("kernel name length");
    if (name_len == 0)
        return err(ErrorKind::Validation, "empty kernel name");
    if (name_len > r.remaining())
        return truncated("kernel name");
    out.kernelName.assign(
        reinterpret_cast<const char *>(r.data + r.pos),
        static_cast<size_t>(name_len));
    r.pos += static_cast<size_t>(name_len);

    // Header scalars, validated to the text parser's ranges.
    auto read_u32 = [&](uint32_t &field, const char *what,
                        uint64_t lo) -> Expected<void> {
        uint64_t v;
        if (!r.readVarint(v))
            return truncated(what);
        if (v < lo || v > UINT32_MAX)
            return err(ErrorKind::Validation,
                       std::string(what) + " value " +
                           std::to_string(v) + " outside [" +
                           std::to_string(lo) + ", 2^32)");
        field = static_cast<uint32_t>(v);
        return {};
    };

    if (!r.readVarint(out.invocationId))
        return truncated("invocation id");
    if (auto e = read_u32(out.launch.grid.x, "grid.x", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.grid.y, "grid.y", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.grid.z, "grid.z", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.cta.x, "cta.x", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.cta.y, "cta.y", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.cta.z, "cta.z", 1); !e)
        return e.error();
    if (auto e = read_u32(out.launch.sharedMemBytes, "shmem", 0); !e)
        return e.error();
    if (auto e = read_u32(out.launch.regsPerThread, "regs", 1); !e)
        return e.error();
    if (out.launch.regsPerThread > 255)
        return err(ErrorKind::Validation,
                   "regs value " +
                       std::to_string(out.launch.regsPerThread) +
                       " outside [1, 255]");
    if (!r.readVarint(out.ctaReplication))
        return truncated("replication");
    if (out.ctaReplication < 1)
        return err(ErrorKind::Validation, "replication must be >= 1");

    // Extent tables.
    uint64_t num_ctas;
    if (!r.readVarint(num_ctas))
        return truncated("cta count");
    if (num_ctas > r.remaining())
        return err(ErrorKind::Parse, "cta count exceeds payload");
    out.ctaWarpOffsets.reserve(static_cast<size_t>(num_ctas) + 1);
    uint64_t num_warps = 0;
    for (uint64_t c = 0; c < num_ctas; ++c) {
        uint64_t warps;
        if (!r.readVarint(warps))
            return truncated("cta warp count");
        num_warps += warps;
        if (num_warps > UINT32_MAX)
            return err(ErrorKind::Validation,
                       "warp count exceeds 2^32");
        out.ctaWarpOffsets.push_back(
            static_cast<uint32_t>(num_warps));
    }
    if (num_warps > r.remaining())
        return err(ErrorKind::Parse, "warp count exceeds payload");
    out.warpInstOffsets.reserve(static_cast<size_t>(num_warps) + 1);
    uint64_t num_insts = 0;
    for (uint64_t w = 0; w < num_warps; ++w) {
        uint64_t insts;
        if (!r.readVarint(insts))
            return truncated("warp instruction count");
        num_insts += insts;
        if (num_insts > (uint64_t{1} << 48))
            return err(ErrorKind::Validation,
                       "instruction count exceeds 2^48");
        out.warpInstOffsets.push_back(num_insts);
    }

    // Dictionary.
    auto read_tuple = [&](SassInstruction &inst,
                          const char *what) -> Expected<void> {
        if (r.remaining() < 6)
            return truncated(what);
        uint8_t op = r.data[r.pos];
        if (op > static_cast<uint8_t>(Opcode::Exit))
            return err(ErrorKind::Validation,
                       "opcode id " + std::to_string(op) +
                           " out of range");
        inst.opcode = static_cast<Opcode>(op);
        inst.destReg = r.data[r.pos + 1];
        inst.srcReg0 = r.data[r.pos + 2];
        inst.srcReg1 = r.data[r.pos + 3];
        inst.activeLanes = r.data[r.pos + 4];
        inst.sectors = r.data[r.pos + 5];
        r.pos += 6;
        if (inst.activeLanes < 1 || inst.activeLanes > 32)
            return err(ErrorKind::Validation,
                       "active lanes " +
                           std::to_string(inst.activeLanes) +
                           " outside [1, 32]");
        if (inst.sectors > 32)
            return err(ErrorKind::Validation,
                       "sector count " +
                           std::to_string(inst.sectors) +
                           " outside [0, 32]");
        inst.lineAddress = 0;
        return {};
    };

    uint64_t dict_size;
    if (!r.readVarint(dict_size))
        return truncated("dictionary size");
    if (dict_size >= ColumnarTrace::kInlineTuple)
        return err(ErrorKind::Validation,
                   "dictionary size " + std::to_string(dict_size) +
                       " exceeds 65534");
    if (dict_size * 6 > r.remaining())
        return truncated("dictionary");
    out.dictionary.reserve(static_cast<size_t>(dict_size));
    for (uint64_t i = 0; i < dict_size; ++i) {
        SassInstruction entry;
        if (auto e = read_tuple(entry, "dictionary entry"); !e)
            return e.error();
        out.dictionary.push_back(entry);
    }

    // Tuple index stream.
    if (num_insts * 2 > r.remaining())
        return truncated("tuple index stream");
    out.tupleIndex.reserve(static_cast<size_t>(num_insts));
    uint64_t inline_refs = 0;
    for (uint64_t i = 0; i < num_insts; ++i) {
        uint16_t idx = static_cast<uint16_t>(
            r.data[r.pos] |
            (static_cast<uint16_t>(r.data[r.pos + 1]) << 8));
        r.pos += 2;
        if (idx == ColumnarTrace::kInlineTuple)
            ++inline_refs;
        else if (idx >= dict_size)
            return err(ErrorKind::Validation,
                       "tuple index " + std::to_string(idx) +
                           " outside dictionary of " +
                           std::to_string(dict_size));
        out.tupleIndex.push_back(idx);
    }

    // Inline (overflow) tuples: must match the escape marks 1:1.
    uint64_t inline_count;
    if (!r.readVarint(inline_count))
        return truncated("inline tuple count");
    if (inline_count != inline_refs)
        return err(ErrorKind::Validation,
                   std::to_string(inline_count) +
                       " inline tuples for " +
                       std::to_string(inline_refs) +
                       " escape marks");
    out.inlineTuples.reserve(static_cast<size_t>(inline_count));
    uint64_t prev_gi = 0;
    for (uint64_t i = 0; i < inline_count; ++i) {
        uint64_t gi;
        if (!r.readVarint(gi))
            return truncated("inline tuple index");
        if (gi >= num_insts || (i > 0 && gi <= prev_gi))
            return err(ErrorKind::Validation,
                       "inline tuple index " + std::to_string(gi) +
                           " not ascending within trace");
        if (out.tupleIndex[static_cast<size_t>(gi)] !=
            ColumnarTrace::kInlineTuple)
            return err(ErrorKind::Validation,
                       "inline tuple at index " + std::to_string(gi) +
                           " without escape mark");
        prev_gi = gi;
        SassInstruction entry;
        if (auto e = read_tuple(entry, "inline tuple"); !e)
            return e.error();
        out.inlineTuples.emplace_back(gi, entry);
    }

    // Address delta stream; walking every warp recomputes
    // warpAddrOffsets and verifies the stream length exactly.
    uint64_t addr_bytes;
    if (!r.readVarint(addr_bytes))
        return truncated("address stream length");
    if (addr_bytes > r.remaining())
        return truncated("address stream");
    out.addrDeltas.assign(r.data + r.pos,
                          r.data + r.pos + addr_bytes);
    r.pos += static_cast<size_t>(addr_bytes);

    // Address exceptions.
    uint64_t exc_count;
    if (!r.readVarint(exc_count))
        return truncated("address exception count");
    if (exc_count > r.remaining())
        return err(ErrorKind::Parse,
                   "address exception count exceeds payload");
    out.addrExceptions.reserve(static_cast<size_t>(exc_count));
    prev_gi = 0;
    for (uint64_t i = 0; i < exc_count; ++i) {
        uint64_t gi, addr;
        if (!r.readVarint(gi))
            return truncated("address exception index");
        if (!r.readVarint(addr))
            return truncated("address exception value");
        if (gi >= num_insts || (i > 0 && gi <= prev_gi))
            return err(ErrorKind::Validation,
                       "address exception index " +
                           std::to_string(gi) +
                           " not ascending within trace");
        if (addr == 0)
            return err(ErrorKind::Validation,
                       "address exception with zero address");
        prev_gi = gi;
        out.addrExceptions.emplace_back(gi, addr);
    }

    if (r.pos != r.size)
        return err(ErrorKind::Parse,
                   std::to_string(r.size - r.pos) +
                       " trailing payload bytes");

    // Replay every warp's delta stream: rebuilds warpAddrOffsets and
    // rejects malformed varints, stream length mismatches, and
    // exceptions that alias a global-memory instruction.
    out.warpAddrOffsets.clear();
    out.warpAddrOffsets.reserve(static_cast<size_t>(num_warps) + 1);
    size_t apos = 0;
    size_t exc_pos = 0;
    uint64_t gi = 0;
    for (uint64_t w = 0; w < num_warps; ++w) {
        out.warpAddrOffsets.push_back(apos);
        uint64_t count = out.warpInstOffsets[w + 1] -
                         out.warpInstOffsets[w];
        for (uint64_t i = 0; i < count; ++i, ++gi) {
            uint16_t idx = out.tupleIndex[static_cast<size_t>(gi)];
            Opcode op;
            if (idx != ColumnarTrace::kInlineTuple) {
                op = out.dictionary[idx].opcode;
            } else {
                auto it = std::lower_bound(
                    out.inlineTuples.begin(), out.inlineTuples.end(),
                    gi, [](const auto &a, uint64_t b) {
                        return a.first < b;
                    });
                op = it->second.opcode;
            }
            bool is_mem = isGlobalMemory(op);
            if (exc_pos < out.addrExceptions.size() &&
                out.addrExceptions[exc_pos].first == gi) {
                if (is_mem)
                    return err(ErrorKind::Validation,
                               "address exception on global-memory "
                               "instruction " + std::to_string(gi));
                ++exc_pos;
            }
            if (!is_mem)
                continue;
            bool more = true;
            for (int b = 0; more; ++b) {
                if (apos >= out.addrDeltas.size() || b >= 10)
                    return err(ErrorKind::Parse,
                               "malformed address delta for "
                               "instruction " + std::to_string(gi));
                more = (out.addrDeltas[apos++] & 0x80) != 0;
            }
        }
    }
    if (apos != out.addrDeltas.size())
        return err(ErrorKind::Parse,
                   std::to_string(out.addrDeltas.size() - apos) +
                       " unconsumed address stream bytes");
    out.warpAddrOffsets.push_back(apos);

    return out;
}

} // namespace sieve::trace
