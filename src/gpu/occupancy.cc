#include "gpu/occupancy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sieve::gpu {

uint32_t
maxResidentCtas(const ArchConfig &arch,
                const trace::LaunchConfig &launch)
{
    uint32_t cta_size = launch.ctaSize();
    if (cta_size == 0 || cta_size > arch.maxThreadsPerSm)
        fatal("CTA of ", cta_size, " threads cannot run on ", arch.name);

    uint32_t by_threads = arch.maxThreadsPerSm / cta_size;
    uint32_t by_ctas = arch.maxCtasPerSm;

    uint32_t regs_per_cta = launch.regsPerThread * cta_size;
    uint32_t by_regs = regs_per_cta > 0
                           ? arch.regFilePerSm / regs_per_cta
                           : by_ctas;
    if (by_regs == 0)
        fatal("CTA register demand ", regs_per_cta, " exceeds the ",
              arch.name, " register file");

    uint32_t by_shmem = by_ctas;
    if (launch.sharedMemBytes > 0) {
        if (launch.sharedMemBytes > arch.sharedMemPerSm)
            fatal("CTA shared-memory demand ", launch.sharedMemBytes,
                  " exceeds ", arch.name);
        by_shmem = arch.sharedMemPerSm / launch.sharedMemBytes;
    }

    uint32_t warps_per_cta = launch.warpsPerCta(arch.warpSize);
    uint32_t by_warps = warps_per_cta > 0
                            ? arch.maxWarpsPerSm / warps_per_cta
                            : by_ctas;

    uint32_t fit = std::min({by_threads, by_ctas, by_regs, by_shmem,
                             by_warps});
    return std::max<uint32_t>(fit, 1);
}

} // namespace sieve::gpu
