#include "gpu/hardware_executor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/occupancy.hh"

namespace sieve::gpu {

namespace {

/**
 * Cache-fit factor from a capacity ratio (cache size / working set).
 * Sharp sigmoid-like curve: ratio 1 -> 0.5, ratio 1.2 -> ~0.81,
 * ratio 0.8 -> ~0.14. Real caches transition quickly from "fits" to
 * "thrashes" around the capacity point, which is what makes the
 * Ampere (5 MB L2) vs Turing (5.5 MB L2) contrast matter for
 * workloads with ~5.2 MB working sets (paper Fig. 9: lmc/lmr run
 * *slower* on Ampere).
 */
double
capacityFit(double ratio)
{
    double r2 = ratio * ratio;
    double r8 = r2 * r2 * r2 * r2;
    return r8 / (1.0 + r8);
}

} // namespace

HardwareExecutor::HardwareExecutor(ArchConfig arch, double noise_sigma)
    : _arch(std::move(arch)), _noise_sigma(noise_sigma)
{
    SIEVE_ASSERT(_noise_sigma >= 0.0, "negative noise sigma");
}

uint32_t
HardwareExecutor::ctasPerSm(const trace::LaunchConfig &launch) const
{
    return maxResidentCtas(_arch, launch);
}

KernelResult
HardwareExecutor::run(const trace::KernelInvocation &inv) const
{
    const trace::InstructionMix &mix = inv.mix;
    const trace::MemoryProfile &mem = inv.memory;
    const trace::LaunchConfig &launch = inv.launch;

    double warp_insts = static_cast<double>(mix.instructionCount);
    SIEVE_ASSERT(warp_insts > 0.0, "invocation with zero instructions");

    // --- occupancy and wave structure ---
    uint32_t cpsm = ctasPerSm(launch);
    uint32_t warps_per_cta = launch.warpsPerCta(_arch.warpSize);

    double total_ctas = static_cast<double>(launch.numCtas());
    double num_sms = static_cast<double>(_arch.numSms);
    double concurrent_ctas = static_cast<double>(cpsm) * num_sms;
    double waves = std::ceil(total_ctas / concurrent_ctas);
    double tail_ctas = total_ctas - (waves - 1.0) * concurrent_ctas;

    // Tail (or sub-machine) phase: the remaining CTAs spread across
    // as many SMs as possible; an SM with few resident warps issues
    // below peak, saturating once it holds about two warps per
    // scheduler.
    double tail_active_sms = std::min(num_sms, tail_ctas);
    double tail_resident_ctas = std::min<double>(
        static_cast<double>(cpsm),
        std::ceil(tail_ctas / tail_active_sms));
    double tail_resident_warps = std::min<double>(
        tail_resident_ctas * warps_per_cta, _arch.maxWarpsPerSm);
    double saturation_warps =
        2.0 * static_cast<double>(_arch.schedulersPerSm);
    double tail_factor =
        std::min(1.0, tail_resident_warps / saturation_warps);
    double tail_sms = std::max(tail_active_sms * tail_factor, 1.0);

    // Effective parallelism in SM units: work-weighted harmonic
    // combination of the full waves (whole machine) and the tail.
    double full_frac = (waves - 1.0) * concurrent_ctas / total_ctas;
    double tail_frac = tail_ctas / total_ctas;
    double effective_sms =
        1.0 / (full_frac / num_sms + tail_frac / tail_sms);
    effective_sms = std::clamp(effective_sms, 1.0, num_sms);

    // Warps resident per busy SM (for latency hiding), taken from the
    // phase holding most of the work.
    double full_warps = std::min<double>(
        static_cast<double>(cpsm) * warps_per_cta, _arch.maxWarpsPerSm);
    double active_warps =
        waves > 1.0 ? full_warps : tail_resident_warps;

    // --- instruction class decomposition (warp granularity) ---
    double warp_size = static_cast<double>(_arch.warpSize);
    double mem_warp_insts = std::min(
        static_cast<double>(mix.totalMemoryInstructions()) / warp_size,
        warp_insts);
    double shared_warp_insts = std::min(
        static_cast<double>(mix.threadSharedLoads +
                            mix.threadSharedStores) / warp_size,
        mem_warp_insts);
    double alu_warp_insts = std::max(warp_insts - mem_warp_insts, 0.0);
    double long_lat_insts = alu_warp_insts * mem.longLatencyFrac;
    double short_alu_insts = alu_warp_insts - long_lat_insts;

    double insts_per_sm = warp_insts / effective_sms;

    // --- compute bound ---
    double issue_rate = static_cast<double>(_arch.schedulersPerSm);
    double fp32_rate = static_cast<double>(_arch.fp32LanesPerSm) /
                       warp_size;
    double sfu_rate = static_cast<double>(_arch.sfuLanesPerSm) /
                      warp_size;
    // Shared memory: one warp access per cycle, replayed on conflicts.
    double shared_rate = 1.0;
    double conflict_replays = 1.0 + 3.0 * mem.bankConflictRate;

    double compute_cycles = std::max({
        insts_per_sm / issue_rate,
        (short_alu_insts / effective_sms) / fp32_rate,
        (long_lat_insts / effective_sms) / sfu_rate,
        (shared_warp_insts / effective_sms) * conflict_replays /
            shared_rate,
    });

    // --- memory traffic through the hierarchy ---
    double sectors =
        static_cast<double>(mix.coalescedGlobalLoads +
                            mix.coalescedGlobalStores +
                            mix.coalescedLocalLoads) +
        static_cast<double>(mix.threadGlobalAtomics);
    double bytes = sectors * _arch.sectorBytes;

    double ws = std::max<double>(
        static_cast<double>(mem.workingSetBytes), 1.0);
    double per_sm_ws = ws / static_cast<double>(_arch.numSms);
    double l1_fit =
        capacityFit(static_cast<double>(_arch.l1SizeBytes) / per_sm_ws);
    double l1_hit = mem.l1Locality * l1_fit;
    double l2_fit =
        capacityFit(static_cast<double>(_arch.l2SizeBytes) / ws);
    double l2_hit = mem.l2Locality * l2_fit;

    double l2_bytes = bytes * (1.0 - l1_hit);
    double dram_bytes = l2_bytes * (1.0 - l2_hit);

    double bw_cycles = std::max(dram_bytes / _arch.dramBytesPerClk(),
                                l2_bytes / _arch.l2BandwidthBytesPerClk);

    // Atomic serialization: GPU-wide throughput of one warp atomic per
    // cycle across 32 ROP-like units.
    double atomic_cycles =
        static_cast<double>(mix.threadGlobalAtomics) / 32.0;
    bw_cycles = std::max(bw_cycles, atomic_cycles);

    // --- memory latency bound (MLP-limited) ---
    double avg_latency =
        l1_hit * _arch.l1LatencyCycles +
        (1.0 - l1_hit) * (l2_hit * _arch.l2LatencyCycles +
                          (1.0 - l2_hit) * _arch.dramLatencyCycles);
    double mlp = std::max(active_warps * mem.ilp, 1.0);
    double lat_cycles =
        (mem_warp_insts / effective_sms) * avg_latency / mlp;

    double memory_cycles = std::max(bw_cycles, lat_cycles);

    // --- combine ---
    double ramp = 2.0 * avg_latency + 100.0 * waves;
    double cycles = std::max(compute_cycles, memory_cycles) + ramp +
                    _arch.launchOverheadCycles;

    KernelResult result;
    if (_arch.launchOverheadCycles >
        std::max(compute_cycles, memory_cycles)) {
        result.bound = KernelResult::Bound::Launch;
    } else if (compute_cycles >= memory_cycles) {
        result.bound = KernelResult::Bound::Compute;
    } else if (bw_cycles >= lat_cycles) {
        result.bound = KernelResult::Bound::Memory;
    } else {
        result.bound = KernelResult::Bound::Latency;
    }

    // --- deterministic run-to-run noise ---
    if (_noise_sigma > 0.0) {
        Rng rng(inv.noiseSeed ^ hashLabel(_arch.name));
        double factor = 1.0 + _noise_sigma * rng.normal();
        cycles *= std::max(factor, 0.5);
    }

    result.cycles = cycles;
    result.ipc = warp_insts / cycles;
    result.timeUs = cycles / (_arch.coreClockGhz * 1e3);
    return result;
}

KernelResult
HardwareExecutor::runCold(const trace::KernelInvocation &inv) const
{
    KernelResult warm = run(inv);

    // Compulsory misses: the working set streams in from DRAM once.
    // For long kernels this vanishes into steady state; for short
    // ones it dominates — exactly the hazard of skipping warmup.
    double ws_bytes = static_cast<double>(inv.memory.workingSetBytes);
    double fill_cycles =
        ws_bytes / _arch.dramBytesPerClk() + _arch.dramLatencyCycles;

    KernelResult cold = warm;
    cold.cycles = warm.cycles + fill_cycles;
    cold.ipc = static_cast<double>(inv.mix.instructionCount) /
               cold.cycles;
    cold.timeUs = cold.cycles / (_arch.coreClockGhz * 1e3);
    return cold;
}

WorkloadResult
HardwareExecutor::runWorkload(const trace::Workload &workload) const
{
    WorkloadResult out;
    out.perInvocation.reserve(workload.numInvocations());
    for (const auto &inv : workload.invocations()) {
        KernelResult r = run(inv);
        out.totalCycles += r.cycles;
        out.totalTimeUs += r.timeUs;
        out.totalInstructions += inv.mix.instructionCount;
        out.perInvocation.push_back(r);
    }
    return out;
}

} // namespace sieve::gpu
