/**
 * @file
 * Analytical GPU timing model — the "real hardware" stand-in.
 *
 * The paper collects per-invocation cycle counts on real RTX 3080 /
 * RTX 2080 Ti silicon to form the golden reference and the sampling
 * accuracy metric (Section IV-3). Without GPUs, this module plays the
 * silicon's role: a deterministic interval-style analytical model
 * (occupancy, issue/execute throughput, cache-filtered DRAM bandwidth
 * and latency bounds, launch overhead, small run-to-run noise) that
 * prices a kernel invocation in O(1), which makes whole-workload
 * "hardware runs" over 10^5+ invocations practical.
 *
 * What matters for methodology fidelity is not absolute accuracy but
 * that cycle counts relate to workload structure the way silicon's
 * do: invocations of the same kernel with the same instruction count
 * take the same time (modulo noise), IPC shifts with occupancy,
 * memory-boundedness, and cache fit, and part of that behaviour is
 * driven by MemoryProfile fields that no profiler exposes.
 */

#ifndef SIEVE_GPU_HARDWARE_EXECUTOR_HH
#define SIEVE_GPU_HARDWARE_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "gpu/arch_config.hh"
#include "trace/workload.hh"

namespace sieve::gpu {

/** Timing outcome of one kernel invocation. */
struct KernelResult
{
    double cycles = 0.0;      //!< core-clock cycles
    double ipc = 0.0;         //!< warp instructions per cycle (GPU-wide)
    double timeUs = 0.0;      //!< wall time in microseconds

    /** Dominant bottleneck, for diagnostics and tests. */
    enum class Bound { Compute, Memory, Latency, Launch };
    Bound bound = Bound::Compute;
};

/** Timing outcome of a full workload execution. */
struct WorkloadResult
{
    std::vector<KernelResult> perInvocation;
    double totalCycles = 0.0;
    double totalTimeUs = 0.0;
    uint64_t totalInstructions = 0;

    /** Whole-application IPC. */
    double ipc() const
    {
        return totalCycles > 0.0
                   ? static_cast<double>(totalInstructions) / totalCycles
                   : 0.0;
    }
};

/**
 * Deterministic analytical executor for one architecture.
 * Thread-compatible: const after construction.
 */
class HardwareExecutor
{
  public:
    /**
     * @param arch architecture to model
     * @param noise_sigma relative run-to-run noise (0 disables);
     *        defaults to 0.4%, about what back-to-back kernel timing
     *        on a real, otherwise-idle GPU shows
     */
    explicit HardwareExecutor(ArchConfig arch,
                              double noise_sigma = 0.004);

    const ArchConfig &arch() const { return _arch; }

    /** Time one kernel invocation (perfect-warmup assumption). */
    KernelResult run(const trace::KernelInvocation &inv) const;

    /**
     * Time one kernel invocation executed *standalone with cold
     * caches* — the situation a sampled simulator faces when it
     * fast-forwards to a representative without warmup. The paper
     * assumes perfect warmup and leaves the warmup study to future
     * work (Section IV-3); this method enables that study: every
     * working-set line incurs one compulsory DRAM fetch on top of the
     * steady-state behaviour.
     */
    KernelResult runCold(const trace::KernelInvocation &inv) const;

    /** Time every invocation of a workload ("run it on hardware"). */
    WorkloadResult runWorkload(const trace::Workload &workload) const;

    /**
     * Occupancy helper: concurrent CTAs per SM for a launch,
     * considering thread, CTA, register, and shared-memory limits.
     * Always at least 1 (a launch that fits nothing is a user error
     * and trips fatal()).
     */
    uint32_t ctasPerSm(const trace::LaunchConfig &launch) const;

  private:
    ArchConfig _arch;
    double _noise_sigma;
};

} // namespace sieve::gpu

#endif // SIEVE_GPU_HARDWARE_EXECUTOR_HH
