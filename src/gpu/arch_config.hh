/**
 * @file
 * GPU architecture configuration.
 *
 * The paper evaluates on two real platforms: an Nvidia RTX 3080
 * (Ampere, 68 SMs, 10 GB, 760 GB/s) as the baseline, and an RTX
 * 2080 Ti (Turing, 68 SMs, 11 GB, 616 GB/s) for the relative-accuracy
 * study (Section IV-1). Both the analytical hardware executor and the
 * cycle-level simulator are parameterized by this config so relative
 * performance across architectures (Fig. 9) exercises the same code
 * path the paper exercises with silicon.
 */

#ifndef SIEVE_GPU_ARCH_CONFIG_HH
#define SIEVE_GPU_ARCH_CONFIG_HH

#include <cstdint>
#include <string>

namespace sieve::gpu {

/** Static description of one GPU architecture configuration. */
struct ArchConfig
{
    std::string name;

    // --- compute organization ---
    uint32_t numSms = 68;
    double coreClockGhz = 1.71;
    uint32_t warpSize = 32;
    uint32_t schedulersPerSm = 4;   //!< warp schedulers per SM
    uint32_t fp32LanesPerSm = 128;  //!< FP32 CUDA cores per SM
    uint32_t sfuLanesPerSm = 16;    //!< special-function units per SM

    // --- occupancy limits ---
    uint32_t maxWarpsPerSm = 48;
    uint32_t maxCtasPerSm = 16;
    uint32_t maxThreadsPerSm = 1536;
    uint32_t regFilePerSm = 65536;      //!< 32-bit registers
    uint32_t sharedMemPerSm = 102400;   //!< bytes

    // --- memory hierarchy ---
    uint32_t l1SizeBytes = 128 << 10;   //!< unified L1/shared per SM
    uint64_t l2SizeBytes = 5ULL << 20;
    double dramBandwidthGBps = 760.0;
    double l2BandwidthBytesPerClk = 2048.0; //!< GPU-wide L2 read BW
    double l1LatencyCycles = 32.0;
    double l2LatencyCycles = 210.0;
    double dramLatencyCycles = 470.0;
    uint32_t sectorBytes = 32;          //!< memory transaction size

    // --- fixed costs ---
    double launchOverheadCycles = 800.0; //!< per kernel launch

    /** DRAM bytes deliverable per core clock cycle. */
    double dramBytesPerClk() const
    {
        return dramBandwidthGBps / coreClockGhz;
    }

    /**
     * The RTX 3080-like Ampere baseline platform: 68 SMs, 760 GB/s
     * DRAM bandwidth, 5 MB L2, 128 FP32 lanes/SM.
     */
    static ArchConfig ampereRtx3080();

    /**
     * The RTX 2080 Ti-like Turing platform: 68 SMs, 616 GB/s DRAM
     * bandwidth, 5.5 MB L2, 64 FP32 lanes/SM, lower clock.
     */
    static ArchConfig turingRtx2080Ti();
};

} // namespace sieve::gpu

#endif // SIEVE_GPU_ARCH_CONFIG_HH
