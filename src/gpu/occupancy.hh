/**
 * @file
 * Occupancy arithmetic shared by the analytical executor and the
 * cycle-level simulator.
 */

#ifndef SIEVE_GPU_OCCUPANCY_HH
#define SIEVE_GPU_OCCUPANCY_HH

#include <cstdint>

#include "gpu/arch_config.hh"
#include "trace/launch_config.hh"

namespace sieve::gpu {

/**
 * Concurrent CTAs per SM for a launch, honouring the thread, CTA,
 * register, shared-memory, and warp-slot limits. fatal() if a single
 * CTA cannot fit at all (a user configuration error).
 */
uint32_t maxResidentCtas(const ArchConfig &arch,
                         const trace::LaunchConfig &launch);

} // namespace sieve::gpu

#endif // SIEVE_GPU_OCCUPANCY_HH
