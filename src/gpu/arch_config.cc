#include "gpu/arch_config.hh"

namespace sieve::gpu {

ArchConfig
ArchConfig::ampereRtx3080()
{
    ArchConfig cfg;
    cfg.name = "RTX3080-Ampere";
    cfg.numSms = 68;
    cfg.coreClockGhz = 1.71;
    cfg.schedulersPerSm = 4;
    cfg.fp32LanesPerSm = 128;
    cfg.sfuLanesPerSm = 16;
    cfg.maxWarpsPerSm = 48;
    cfg.maxCtasPerSm = 16;
    cfg.maxThreadsPerSm = 1536;
    cfg.regFilePerSm = 65536;
    cfg.sharedMemPerSm = 100 << 10;
    cfg.l1SizeBytes = 128 << 10;
    cfg.l2SizeBytes = 5ULL << 20;
    cfg.dramBandwidthGBps = 760.0;
    cfg.l2BandwidthBytesPerClk = 2048.0;
    cfg.l1LatencyCycles = 32.0;
    cfg.l2LatencyCycles = 210.0;
    // GDDR6X trades latency for bandwidth: notably higher effective
    // DRAM latency than the GDDR6 on the Turing part.
    cfg.dramLatencyCycles = 560.0;
    cfg.launchOverheadCycles = 800.0;
    return cfg;
}

ArchConfig
ArchConfig::turingRtx2080Ti()
{
    ArchConfig cfg;
    cfg.name = "RTX2080Ti-Turing";
    cfg.numSms = 68;
    cfg.coreClockGhz = 1.545;
    cfg.schedulersPerSm = 4;
    // Turing pairs each FP32 lane with an INT32 lane: half the FP32
    // lanes of GA102 per SM.
    cfg.fp32LanesPerSm = 64;
    cfg.sfuLanesPerSm = 16;
    cfg.maxWarpsPerSm = 32;
    cfg.maxCtasPerSm = 16;
    cfg.maxThreadsPerSm = 1024;
    cfg.regFilePerSm = 65536;
    cfg.sharedMemPerSm = 64 << 10;
    cfg.l1SizeBytes = 96 << 10;
    cfg.l2SizeBytes = 5632ULL << 10; // 5.5 MB
    cfg.dramBandwidthGBps = 616.0;
    cfg.l2BandwidthBytesPerClk = 1792.0;
    cfg.l1LatencyCycles = 32.0;
    cfg.l2LatencyCycles = 236.0;
    cfg.dramLatencyCycles = 420.0;
    cfg.launchOverheadCycles = 800.0;
    return cfg;
}

} // namespace sieve::gpu
