#include "serve/protocol.hh"

#include <cstring>

#include "common/strings.hh"
#include "io/span_reader.hh"

namespace sieve::serve {

bool
knownRequestKind(uint16_t kind)
{
    return kind <= static_cast<uint16_t>(RequestKind::TraceStats);
}

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
    case RequestKind::Ping:
        return "ping";
    case RequestKind::Stats:
        return "stats";
    case RequestKind::Sample:
        return "sample";
    case RequestKind::Evaluate:
        return "evaluate";
    case RequestKind::Simulate:
        return "simulate";
    case RequestKind::TraceStats:
        return "trace-stats";
    }
    return "unknown";
}

uint64_t
fnv1a64(const void *data, size_t size)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace {

template <typename T>
void
appendLe(std::string &out, T value)
{
    static_assert(std::is_unsigned_v<T>);
    for (size_t i = 0; i < sizeof(T); ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

std::string
toHex(uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    do {
        out.insert(out.begin(), digits[value & 0xf]);
        value >>= 4;
    } while (value != 0);
    return out;
}

} // namespace

std::string
encodeFrame(uint32_t magic, uint16_t kind, std::string_view payload)
{
    SIEVE_ASSERT(payload.size() <= kMaxPayloadBytes,
                 "frame payload exceeds protocol limit");
    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    appendLe(out, magic);
    appendLe(out, kProtocolVersion);
    appendLe(out, kind);
    appendLe(out, static_cast<uint32_t>(payload.size()));
    appendLe(out, fnv1a64(payload.data(), payload.size()));
    out.append(payload);
    return out;
}

std::string
encodeFields(const std::vector<std::string> &fields)
{
    SIEVE_ASSERT(fields.size() <= 0xffff, "too many request fields");
    std::string out;
    appendLe(out, static_cast<uint16_t>(fields.size()));
    for (const std::string &field : fields) {
        SIEVE_ASSERT(field.size() <= kMaxPayloadBytes,
                     "request field exceeds protocol limit");
        appendLe(out, static_cast<uint32_t>(field.size()));
        out.append(field);
    }
    return out;
}

Expected<std::vector<std::string>>
decodeFields(std::string_view payload, const std::string &source)
{
    io::SpanReader reader(
        reinterpret_cast<const uint8_t *>(payload.data()),
        payload.size(), source, 0, io::ErrorCounting::Uncounted);
    uint16_t count = reader.read<uint16_t>("field count");
    std::vector<std::string> fields;
    for (uint16_t i = 0; i < count && !reader.failed(); ++i) {
        uint32_t len = reader.read<uint32_t>("field length");
        if (reader.failed())
            break;
        if (len > reader.remaining()) {
            reader.fail(ErrorKind::Parse,
                        "field length " + std::to_string(len) +
                            " overruns the payload");
            break;
        }
        std::string field(len, '\0');
        reader.readBytes(field.data(), len, "field bytes");
        fields.push_back(std::move(field));
    }
    if (reader.failed())
        return reader.takeError();
    if (!reader.atEnd()) {
        reader.fail(ErrorKind::Parse,
                    std::to_string(reader.remaining()) +
                        " trailing byte(s) after the last field");
        return reader.takeError();
    }
    return fields;
}

std::string
encodeError(const Error &error)
{
    return encodeFields({errorKindName(error.kind), error.message,
                         error.source, std::to_string(error.line),
                         error.byteOffset == Error::kNoOffset
                             ? std::string("-")
                             : std::to_string(error.byteOffset)});
}

Expected<WireError>
decodeError(std::string_view payload)
{
    Expected<std::vector<std::string>> fields =
        decodeFields(payload, "error response");
    if (!fields.ok())
        return fields.error();
    if (fields.value().size() != 5) {
        return Error{ErrorKind::Parse,
                     "error response carries " +
                         std::to_string(fields.value().size()) +
                         " field(s), expected 5",
                     "error response"};
    }
    const std::vector<std::string> &f = fields.value();
    Error error;
    error.kind = ErrorKind::Parse;
    for (ErrorKind kind :
         {ErrorKind::Parse, ErrorKind::Io, ErrorKind::Validation,
          ErrorKind::Sim}) {
        if (f[0] == errorKindName(kind))
            error.kind = kind;
    }
    error.message = f[1];
    error.source = f[2];
    uint64_t line = 0;
    if (parseUint64(f[3], line) == NumericParse::Ok)
        error.line = static_cast<size_t>(line);
    uint64_t offset = 0;
    if (f[4] != "-" && parseUint64(f[4], offset) == NumericParse::Ok)
        error.byteOffset = static_cast<size_t>(offset);
    return WireError{std::move(error)};
}

void
FrameParser::feed(const void *data, size_t size)
{
    // Compact the consumed prefix before growing; a long-lived
    // connection otherwise accumulates every frame it ever received.
    if (_consumed > 0 && _consumed == _buffer.size()) {
        _streamBase += _consumed;
        _buffer.clear();
        _consumed = 0;
    }
    _buffer.append(static_cast<const char *>(data), size);
}

Expected<std::optional<Frame>>
FrameParser::next()
{
    if (_error)
        return *_error;
    size_t available = _buffer.size() - _consumed;
    if (available < kHeaderBytes)
        return std::optional<Frame>{};

    const uint8_t *head = reinterpret_cast<const uint8_t *>(
        _buffer.data() + _consumed);
    io::SpanReader reader(head, kHeaderBytes, _source,
                          _streamBase + _consumed,
                          io::ErrorCounting::Uncounted);
    uint32_t magic = reader.read<uint32_t>("frame magic");
    uint16_t version = reader.read<uint16_t>("frame version");
    uint16_t kind = reader.read<uint16_t>("frame kind");
    uint32_t length = reader.read<uint32_t>("payload length");
    uint64_t checksum = reader.read<uint64_t>("payload checksum");
    SIEVE_ASSERT(!reader.failed(), "fixed header short-read");

    if (magic != _magic) {
        _error = Error{ErrorKind::Parse,
                       "bad frame magic 0x" + toHex(magic), _source,
                       0, _streamBase + _consumed};
        return *_error;
    }
    if (version != kProtocolVersion) {
        _error = Error{ErrorKind::Parse,
                       "unsupported protocol version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kProtocolVersion) + ")",
                       _source, 0, _streamBase + _consumed + 4};
        return *_error;
    }
    if (length > kMaxPayloadBytes) {
        _error = Error{ErrorKind::Validation,
                       "payload length " + std::to_string(length) +
                           " exceeds the " +
                           std::to_string(kMaxPayloadBytes) +
                           "-byte frame limit",
                       _source, 0, _streamBase + _consumed + 8};
        return *_error;
    }
    if (available < kHeaderBytes + length)
        return std::optional<Frame>{};

    std::string_view payload(_buffer.data() + _consumed +
                                 kHeaderBytes,
                             length);
    uint64_t actual = fnv1a64(payload.data(), payload.size());
    if (actual != checksum) {
        _error = Error{ErrorKind::Validation,
                       "payload checksum mismatch (header 0x" +
                           toHex(checksum) + ", payload 0x" +
                           toHex(actual) + ")",
                       _source, 0, _streamBase + _consumed + 12};
        return *_error;
    }

    Frame frame;
    frame.kind = kind;
    frame.payload.assign(payload);
    _consumed += kHeaderBytes + length;
    return std::optional<Frame>{std::move(frame)};
}

} // namespace sieve::serve
