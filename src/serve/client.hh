/**
 * @file
 * Blocking client for the sieved protocol: `sieve call`, the bench
 * load generator, and the conformance/fuzz tests all speak through
 * this, so every byte that reaches a server in the tree was framed
 * by the same encoder the server decodes with.
 */

#ifndef SIEVE_SERVE_CLIENT_HH
#define SIEVE_SERVE_CLIENT_HH

#include <string>
#include <string_view>

#include "common/error.hh"
#include "serve/protocol.hh"

namespace sieve::serve {

/** One AF_UNIX connection to a sieved instance. */
class ServeClient
{
  public:
    /** One response frame, decoded. */
    struct Response
    {
        ResponseStatus status = ResponseStatus::Ok;
        std::string payload;
    };

    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /** Connect to a listening socket path. */
    static Expected<ServeClient> connect(const std::string &path);

    bool connected() const { return _fd >= 0; }
    int fd() const { return _fd; }

    /** Frame and send one request. */
    Expected<void> sendRequest(RequestKind kind,
                               std::string_view payload);

    /** Send raw pre-framed bytes (the fuzzers' mutated frames). */
    Expected<void> sendBytes(std::string_view bytes);

    /** Half-close: no more requests, responses still readable. */
    void shutdownWrite();

    /**
     * Bound every subsequent receive() by a socket timeout; an
     * expiry reports an IoError ("timed out"). How the fuzz sweep
     * distinguishes a slow server from a silently dead one.
     */
    void setReceiveTimeoutMs(int timeout_ms);

    /**
     * Block until one full response frame arrives. EOF before a
     * complete frame is an IoError — a server that disconnects
     * without replying fails the conformance suite through exactly
     * this path.
     */
    Expected<Response> receive();

    /** sendRequest + receive. */
    Expected<Response> call(RequestKind kind,
                            std::string_view payload);

  private:
    int _fd = -1;
    FrameParser _parser{kResponseMagic, "server response"};
};

} // namespace sieve::serve

#endif // SIEVE_SERVE_CLIENT_HH
