/**
 * @file
 * Closed-loop load generator for sieved (`sieve bench-serve`).
 *
 * Spins up an in-process server on a scratch socket, fans N client
 * threads over a fixed mixed-request schedule, and records
 * per-operation latency through the PR 8 fixed-bucket histogram
 * machinery (Histogram::bucketFor + summarizeBuckets -> p50/p95).
 * Every Ok response is compared byte-for-byte against the ground
 * truth a local RequestRunner computes for the same payload, so the
 * bench doubles as a determinism gate: a run with any response
 * mismatch exits non-zero and writes nothing.
 *
 * Results land in BENCH_PR10.json in the bench-snapshot schema
 * consumed by `sieve perf-report` / obs::parseBenchSnapshot.
 */

#ifndef SIEVE_SERVE_BENCH_SERVE_HH
#define SIEVE_SERVE_BENCH_SERVE_HH

#include <cstddef>
#include <string>

namespace sieve::serve {

struct BenchServeOptions
{
    size_t connections = 4;  //!< concurrent client threads
    size_t requests = 25;    //!< closed-loop requests per thread
    size_t jobs = 0;         //!< server pool workers (0 = default)
    bool smoke = false;      //!< CI mode: smaller workload + load
    std::string out = "BENCH_PR10.json";
    std::string socketPath;  //!< empty = scratch path in TMPDIR
};

/** Run the bench; 0 on success, 1 on any response mismatch. */
int runBenchServe(const BenchServeOptions &options);

} // namespace sieve::serve

#endif // SIEVE_SERVE_BENCH_SERVE_HH
