#include "serve/server.hh"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"

namespace sieve::serve {

namespace {

std::string
errnoMessage(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** O_NONBLOCK so the event loop's syscalls can never stall it. */
bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Stable request counters (functions of the request history). */
obs::Counter &
acceptedCounter()
{
    static obs::Counter &c =
        obs::counter("serve.requests.accepted");
    return c;
}

obs::Counter &
completedCounter()
{
    static obs::Counter &c =
        obs::counter("serve.requests.completed");
    return c;
}

obs::Counter &
errorsCounter()
{
    static obs::Counter &c = obs::counter("serve.requests.errors");
    return c;
}

obs::Counter &
connectionsCounter()
{
    static obs::Counter &c =
        obs::counter("serve.connections.accepted");
    return c;
}

} // namespace

/**
 * One client. All fields are guarded by Server::_mu; the fd is only
 * used by the event-loop thread. Frames execute strictly in arrival
 * order per connection (responses carry no request id, so order is
 * the correlation), while distinct connections run concurrently on
 * the pool up to the admission bounds.
 */
struct Server::Connection
{
    Connection(int fd_, uint64_t id_)
        : fd(fd_), id(id_),
          parser(kRequestMagic,
                 "client " + std::to_string(id_))
    {
    }

    int fd;
    uint64_t id;
    FrameParser parser;
    std::deque<Frame> pending; //!< admitted, waiting for the pool
    bool executing = false;    //!< one frame on a pool worker
    std::string outbox;        //!< encoded responses awaiting send
    bool closeAfterFlush = false; //!< poisoned stream / drain reply
    bool eofSeen = false;

    size_t
    inFlight() const
    {
        return pending.size() + (executing ? 1 : 0);
    }
};

Server::Server(ServerConfig config) : _config(std::move(config))
{
    buildRegistry();
}

Server::~Server()
{
    if (_registry.started())
        _registry.stopAll();
}

void
Server::buildRegistry()
{
    // The obs flush is the *stop* of the first-started service, so
    // reverse shutdown runs it dead last — after the listener closed,
    // the pool joined, and the runner (tier pool + sim caches +
    // workload contexts) released, nothing counts metrics anymore.
    _registry.add({"obs", {}, nullptr, [] { obs::flushObs(); }});
    _registry.add({"telemetry",
                   {"obs"},
                   nullptr,
                   // The sampler itself is armed by configureObs and
                   // stopped inside flushObs; this entry pins its
                   // place in the lifecycle order.
                   nullptr});
    _registry.add({"runner",
                   {"obs"},
                   [this]() -> Expected<void> {
                       RunnerConfig cfg;
                       cfg.jobs = _config.jobs;
                       cfg.pingDelayForTests =
                           _config.pingDelayForTests;
                       _runner =
                           std::make_unique<RequestRunner>(cfg);
                       return {};
                   },
                   [this] { _runner.reset(); }});
    _registry.add({"pool",
                   {"runner"},
                   [this]() -> Expected<void> {
                       _pool = std::make_unique<ThreadPool>(
                           _config.jobs);
                       return {};
                   },
                   [this] { _pool.reset(); }});
    _registry.add(
        {"listener",
         {"pool", "telemetry"},
         [this]() -> Expected<void> {
             if (_config.socketPath.empty()) {
                 return Error{ErrorKind::Validation,
                              "serve needs a socket path",
                              "server"};
             }
             sockaddr_un addr{};
             if (_config.socketPath.size() >=
                 sizeof(addr.sun_path)) {
                 return Error{ErrorKind::Validation,
                              "socket path longer than " +
                                  std::to_string(
                                      sizeof(addr.sun_path) - 1) +
                                  " bytes",
                              _config.socketPath};
             }
             int pipe_fds[2];
             if (::pipe(pipe_fds) != 0) {
                 return Error{ErrorKind::Io,
                              errnoMessage("pipe"), "server"};
             }
             _wakeRead = pipe_fds[0];
             _wakeWrite = pipe_fds[1];

             _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
             if (_listenFd < 0) {
                 return Error{ErrorKind::Io,
                              errnoMessage("socket"),
                              _config.socketPath};
             }
             ::unlink(_config.socketPath.c_str());
             addr.sun_family = AF_UNIX;
             std::strncpy(addr.sun_path,
                          _config.socketPath.c_str(),
                          sizeof(addr.sun_path) - 1);
             if (::bind(_listenFd,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)) != 0 ||
                 ::listen(_listenFd, 64) != 0) {
                 return Error{ErrorKind::Io,
                              errnoMessage("bind/listen"),
                              _config.socketPath};
             }
             if (!setNonBlocking(_listenFd) ||
                 !setNonBlocking(_wakeRead)) {
                 return Error{ErrorKind::Io,
                              errnoMessage("fcntl"), "server"};
             }
             return {};
         },
         [this] {
             std::lock_guard<std::mutex> lock(_mu);
             for (auto &[fd, conn] : _connections) {
                 ::close(fd);
                 conn->fd = -1;
             }
             _connections.clear();
             if (_listenFd >= 0)
                 ::close(_listenFd);
             if (_wakeRead >= 0)
                 ::close(_wakeRead);
             if (_wakeWrite >= 0)
                 ::close(_wakeWrite);
             _listenFd = _wakeRead = _wakeWrite = -1;
             ::unlink(_config.socketPath.c_str());
         }});
}

Expected<void>
Server::start()
{
    // Touch every Stable serve.* counter up front so the exported
    // counter surface is a function of the request history alone —
    // a clean run reports serve.requests.errors=0 instead of
    // omitting the key entirely.
    acceptedCounter();
    completedCounter();
    errorsCounter();
    connectionsCounter();
    return _registry.startAll();
}

void
Server::requestShutdown()
{
    _shutdownRequested.store(true, std::memory_order_release);
    if (_wakeWrite >= 0) {
        char byte = 'w';
        // Best-effort: a full pipe already guarantees a wakeup.
        [[maybe_unused]] ssize_t n =
            ::write(_wakeWrite, &byte, 1);
    }
}

void
Server::drainWakePipe()
{
    char buf[256];
    while (::read(_wakeRead, buf, sizeof(buf)) > 0) {
    }
}

void
Server::enqueueResponse(const std::shared_ptr<Connection> &conn,
                        ResponseStatus status,
                        std::string_view payload)
{
    if (conn->fd < 0)
        return; // connection dropped while the request ran
    conn->outbox += encodeResponse(status, payload);
}

void
Server::dispatchFrame(const std::shared_ptr<Connection> &conn,
                      Frame frame)
{
    if (_shutdownRequested.load(std::memory_order_acquire)) {
        obs::counter("serve.requests.rejected.shutdown",
                     obs::Stability::Volatile)
            .add();
        enqueueResponse(
            conn, ResponseStatus::ShuttingDown,
            encodeError(Error{ErrorKind::Validation,
                              "server is draining; request "
                              "rejected",
                              "server"}));
        conn->closeAfterFlush = true;
        return;
    }
    if (!knownRequestKind(frame.kind)) {
        errorsCounter().add();
        enqueueResponse(
            conn, ResponseStatus::Error,
            encodeError(Error{ErrorKind::Parse,
                              "unknown request kind " +
                                  std::to_string(frame.kind),
                              "client " + std::to_string(conn->id)}));
        return;
    }
    // Bounded admission: both rejections depend on timing (what else
    // is in flight), so they are Volatile and do not touch the
    // Stable accepted/completed/errors set.
    if (_inFlight >= _config.maxQueue) {
        obs::counter("serve.requests.rejected.queue",
                     obs::Stability::Volatile)
            .add();
        enqueueResponse(
            conn, ResponseStatus::Error,
            encodeError(Error{ErrorKind::Validation,
                              "server saturated (" +
                                  std::to_string(_inFlight) +
                                  " requests in flight)",
                              "server"}));
        return;
    }
    if (conn->inFlight() >= _config.perClientQuota) {
        obs::counter("serve.requests.rejected.quota",
                     obs::Stability::Volatile)
            .add();
        enqueueResponse(
            conn, ResponseStatus::Error,
            encodeError(Error{ErrorKind::Validation,
                              "per-client quota of " +
                                  std::to_string(
                                      _config.perClientQuota) +
                                  " in-flight requests exceeded",
                              "server"}));
        return;
    }

    acceptedCounter().add();
    ++_inFlight;
    conn->pending.push_back(std::move(frame));
    startNext(conn);
}

void
Server::startNext(const std::shared_ptr<Connection> &conn)
{
    // _mu held. One frame per connection executes at a time, so
    // responses leave in request order.
    if (conn->executing || conn->pending.empty())
        return;
    Frame frame = std::move(conn->pending.front());
    conn->pending.pop_front();
    conn->executing = true;

    _pool->submit([this, conn, frame = std::move(frame)]() mutable {
        auto t0 = std::chrono::steady_clock::now();
        Expected<std::string> result = _runner->handle(
            static_cast<RequestKind>(frame.kind), frame.payload);
        uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        obs::histogram("serve.request.latency_ns").record(ns);

        std::lock_guard<std::mutex> lock(_mu);
        if (result.ok()) {
            completedCounter().add();
            enqueueResponse(conn, ResponseStatus::Ok,
                            result.value());
        } else {
            errorsCounter().add();
            enqueueResponse(conn, ResponseStatus::Error,
                            encodeError(result.error()));
        }
        conn->executing = false;
        SIEVE_ASSERT(_inFlight > 0, "in-flight underflow");
        --_inFlight;
        startNext(conn);
        if (_wakeWrite >= 0) {
            char byte = 'r';
            [[maybe_unused]] ssize_t n =
                ::write(_wakeWrite, &byte, 1);
        }
    });
}

void
Server::acceptClients()
{
    while (true) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN / EWOULDBLOCK: drained
        connectionsCounter().add();
        std::lock_guard<std::mutex> lock(_mu);
        auto conn =
            std::make_shared<Connection>(fd, _nextClientId++);
        _connections[fd] = std::move(conn);
    }
}

void
Server::readClient(const std::shared_ptr<Connection> &conn)
{
    char buf[64 * 1024];
    while (true) {
        ssize_t n = ::recv(conn->fd, buf, sizeof(buf),
                           MSG_DONTWAIT);
        if (n > 0) {
            conn->parser.feed(buf, static_cast<size_t>(n));
            while (!conn->closeAfterFlush) {
                Expected<std::optional<Frame>> next =
                    conn->parser.next();
                if (!next.ok()) {
                    // Malformed header/checksum: the stream offset
                    // can no longer be trusted. One structured error
                    // response, then flush-and-close.
                    errorsCounter().add();
                    enqueueResponse(conn, ResponseStatus::Error,
                                    encodeError(next.error()));
                    conn->closeAfterFlush = true;
                    break;
                }
                if (!next.value().has_value())
                    break;
                dispatchFrame(conn, std::move(*next.value()));
            }
            if (conn->closeAfterFlush)
                return; // poisoned: ignore everything after
            continue;
        }
        if (n == 0) {
            conn->eofSeen = true;
            if (!conn->parser.idle() && !conn->closeAfterFlush) {
                // Half-closed mid-frame: answer with a structured
                // truncation error instead of silently dropping.
                errorsCounter().add();
                enqueueResponse(
                    conn, ResponseStatus::Error,
                    encodeError(Error{
                        ErrorKind::Io,
                        "connection closed inside a frame",
                        "client " + std::to_string(conn->id), 0,
                        conn->parser.consumed()}));
                conn->closeAfterFlush = true;
            }
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == EINTR)
            return;
        // Hard socket error: nothing more can reach this client.
        conn->eofSeen = true;
        conn->closeAfterFlush = true;
        conn->outbox.clear();
        return;
    }
}

void
Server::writeClient(const std::shared_ptr<Connection> &conn)
{
    while (!conn->outbox.empty()) {
        ssize_t n = ::send(conn->fd, conn->outbox.data(),
                           conn->outbox.size(),
                           MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n > 0) {
            conn->outbox.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == EINTR)
            return;
        conn->outbox.clear();
        conn->eofSeen = true;
        conn->closeAfterFlush = true;
        return;
    }
}

bool
Server::drained()
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_inFlight > 0)
        return false;
    for (const auto &[fd, conn] : _connections) {
        if (!conn->outbox.empty() || conn->executing)
            return false;
    }
    return true;
}

void
Server::eventLoop()
{
    while (true) {
        std::vector<pollfd> fds;
        std::vector<std::shared_ptr<Connection>> polled;
        {
            std::lock_guard<std::mutex> lock(_mu);
            fds.push_back({_wakeRead, POLLIN, 0});
            fds.push_back({_listenFd, POLLIN, 0});
            for (auto &[fd, conn] : _connections) {
                short events = 0;
                if (!conn->closeAfterFlush && !conn->eofSeen)
                    events |= POLLIN;
                if (!conn->outbox.empty())
                    events |= POLLOUT;
                fds.push_back({fd, events, 0});
                polled.push_back(conn);
            }
        }

        // 100 ms timeout: the wake pipe covers every state change,
        // the timeout is a belt-and-braces bound on a lost wakeup.
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0 && errno != EINTR)
            fatal("poll failed: ", std::strerror(errno));

        if (fds[0].revents & POLLIN)
            drainWakePipe();
        if (fds[1].revents & POLLIN)
            acceptClients();

        for (size_t i = 0; i < polled.size(); ++i) {
            const pollfd &pfd = fds[i + 2];
            std::lock_guard<std::mutex> lock(_mu);
            if (polled[i]->fd < 0)
                continue;
            if (pfd.revents & (POLLIN | POLLHUP))
                if (!polled[i]->eofSeen &&
                    !polled[i]->closeAfterFlush)
                    readClient(polled[i]);
            if (!polled[i]->outbox.empty())
                writeClient(polled[i]);
        }

        // Retire connections with nothing left to say.
        {
            std::lock_guard<std::mutex> lock(_mu);
            for (auto it = _connections.begin();
                 it != _connections.end();) {
                auto &conn = it->second;
                bool flushed = conn->outbox.empty() &&
                               conn->inFlight() == 0;
                if (flushed &&
                    (conn->closeAfterFlush || conn->eofSeen)) {
                    ::close(conn->fd);
                    conn->fd = -1;
                    it = _connections.erase(it);
                } else {
                    ++it;
                }
            }
        }

        if (_shutdownRequested.load(std::memory_order_acquire) &&
            drained())
            return;
    }
}

void
Server::run()
{
    SIEVE_ASSERT(_registry.started(), "run() before start()");
    eventLoop();
    _registry.stopAll();
}

namespace {
std::atomic<Server *> g_signalServer{nullptr};

void
onShutdownSignal(int)
{
    Server *server =
        g_signalServer.load(std::memory_order_acquire);
    if (server)
        server->requestShutdown();
}
} // namespace

void
installShutdownSignalHandlers(Server &server)
{
    g_signalServer.store(&server, std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

} // namespace sieve::serve
