/**
 * @file
 * sieved: the single-process serving daemon (DESIGN.md §14).
 *
 * One poll()-driven event loop on the calling thread owns the
 * AF_UNIX listener and every connection; request execution fans out
 * to the shared ThreadPool and responses are handed back to the loop
 * through a self-pipe wakeup. Admission is bounded — a global
 * in-flight queue cap plus a per-client quota — and over-limit
 * requests are answered immediately with a structured error rather
 * than queued without bound.
 *
 * Shutdown is a drain, not an exit: requestShutdown() (async-signal
 * safe; wired to SIGTERM/SIGINT by installShutdownSignalHandlers)
 * flips an atomic flag and wakes the loop. From then on every new
 * request — and every request on a newly accepted connection — is
 * answered with a ShuttingDown response, in-flight work completes
 * and flushes to its clients, and only then does the loop return and
 * the ServiceRegistry stop everything in reverse start order, ending
 * with the obs flush (metrics -> trace -> ledger, the PR 8 order).
 *
 * Counter contract: serve.connections.accepted and
 * serve.requests.{accepted,completed,errors} are Stable — functions
 * of the request history, identical at any --jobs. Queue/quota
 * rejections and the latency histogram are Volatile (timing).
 */

#ifndef SIEVE_SERVE_SERVER_HH
#define SIEVE_SERVE_SERVER_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/thread_pool.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/runner.hh"

namespace sieve::serve {

struct ServerConfig
{
    std::string socketPath;     //!< AF_UNIX listening path
    size_t jobs = 1;            //!< pool workers (0 = defaultJobs)
    size_t maxQueue = 64;       //!< global in-flight request bound
    size_t perClientQuota = 8;  //!< in-flight requests per client
    bool pingDelayForTests = false; //!< see RunnerConfig
};

/** The daemon: lifecycle registry + event loop + request runner. */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Start every registered service (bind + listen last). On error
     * nothing is left running.
     */
    Expected<void> start();

    /**
     * Run the event loop until a drain completes, then stop all
     * services in reverse start order. Call from the thread that
     * owns the daemon (blocks).
     */
    void run();

    /**
     * Begin graceful drain. Async-signal-safe (atomic store + pipe
     * write); callable from any thread or a signal handler.
     */
    void requestShutdown();

    const ServiceRegistry &registry() const { return _registry; }
    const ServerConfig &config() const { return _config; }
    RequestRunner &runner() { return *_runner; }

  private:
    struct Connection;

    void buildRegistry();
    void eventLoop();
    void acceptClients();
    void readClient(const std::shared_ptr<Connection> &conn);
    void writeClient(const std::shared_ptr<Connection> &conn);
    void dispatchFrame(const std::shared_ptr<Connection> &conn,
                       Frame frame);
    void startNext(const std::shared_ptr<Connection> &conn);
    void enqueueResponse(const std::shared_ptr<Connection> &conn,
                         ResponseStatus status,
                         std::string_view payload);
    void drainWakePipe();
    bool drained();

    ServerConfig _config;
    ServiceRegistry _registry;
    std::unique_ptr<RequestRunner> _runner;
    std::unique_ptr<ThreadPool> _pool;

    int _listenFd = -1;
    int _wakeRead = -1;
    int _wakeWrite = -1;
    std::atomic<bool> _shutdownRequested{false};

    std::mutex _mu; //!< guards connections + in-flight accounting
    std::map<int, std::shared_ptr<Connection>> _connections;
    size_t _inFlight = 0; //!< admitted, response not yet queued
    uint64_t _nextClientId = 1;
};

/** Route SIGTERM/SIGINT to server.requestShutdown(). */
void installShutdownSignalHandlers(Server &server);

} // namespace sieve::serve

#endif // SIEVE_SERVE_SERVER_HH
