/**
 * @file
 * The sieved wire protocol: length-prefixed, checksummed frames.
 *
 * One frame is a fixed 20-byte little-endian header followed by the
 * payload (DESIGN.md §14):
 *
 *   offset  size  field
 *        0     4  magic      "SVRQ" (request) / "SVRS" (response)
 *        4     2  version    kProtocolVersion
 *        6     2  kind       RequestKind / ResponseStatus
 *        8     4  length     payload bytes, <= kMaxPayloadBytes
 *       12     8  checksum   FNV-1a64 over the payload bytes
 *
 * Request payloads (except Ping, whose payload is echoed verbatim)
 * are a field list: u16 count, then per field u32 length + bytes,
 * with no trailing bytes allowed. Error-response payloads carry a
 * serialized common/error.hh Error, so a client reconstructs the
 * same structured taxonomy the offline parsers report.
 *
 * Decoding reuses the io::SpanReader cursor with
 * ErrorCounting::Uncounted: the same bounds-checked first-error-wins
 * discipline as the ingestion loaders, without a malformed network
 * frame perturbing the Stable ingest.errors.* counters.
 */

#ifndef SIEVE_SERVE_PROTOCOL_HH
#define SIEVE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hh"

namespace sieve::serve {

constexpr uint32_t kRequestMagic = 0x51525653;  // "SVRQ" in LE bytes
constexpr uint32_t kResponseMagic = 0x53525653; // "SVRS" in LE bytes
constexpr uint16_t kProtocolVersion = 1;
constexpr size_t kHeaderBytes = 20;
constexpr uint32_t kMaxPayloadBytes = 16u * 1024 * 1024;

/** Operations sieved answers. */
enum class RequestKind : uint16_t {
    Ping = 0,       //!< payload echoed verbatim
    Stats = 1,      //!< server-resident state census (text)
    Sample = 2,     //!< representative selection -> CSV bytes
    Evaluate = 3,   //!< full method evaluation -> report table
    Simulate = 4,   //!< cycle-level sim of a trace -> report table
    TraceStats = 5, //!< trace memory census -> CSV bytes
};

/** True for a kind value the protocol defines. */
bool knownRequestKind(uint16_t kind);

/** Canonical lower-case name ("ping", "evaluate", ...). */
const char *requestKindName(RequestKind kind);

/** Outcome carried in a response frame's kind field. */
enum class ResponseStatus : uint16_t {
    Ok = 0,           //!< payload is the result bytes
    Error = 1,        //!< payload is an encoded Error
    ShuttingDown = 2, //!< drain mode; payload is an encoded Error
};

/** One decoded frame (request or response, per the parser's magic). */
struct Frame
{
    uint16_t kind = 0; //!< RequestKind or ResponseStatus
    std::string payload;
};

/** FNV-1a 64-bit over a byte range (the frame checksum). */
uint64_t fnv1a64(const void *data, size_t size);

/** Assemble one frame: header (with computed checksum) + payload. */
std::string encodeFrame(uint32_t magic, uint16_t kind,
                        std::string_view payload);

inline std::string
encodeRequest(RequestKind kind, std::string_view payload)
{
    return encodeFrame(kRequestMagic, static_cast<uint16_t>(kind),
                       payload);
}

inline std::string
encodeResponse(ResponseStatus status, std::string_view payload)
{
    return encodeFrame(kResponseMagic, static_cast<uint16_t>(status),
                       payload);
}

/** Field-list payload: u16 count, then u32 length + bytes each. */
std::string encodeFields(const std::vector<std::string> &fields);

/** Strict decode of encodeFields (no trailing bytes tolerated). */
Expected<std::vector<std::string>> decodeFields(
    std::string_view payload, const std::string &source);

/** Error payload: kind name, message, source, line, byte offset. */
std::string encodeError(const Error &error);

/**
 * A successfully decoded error-response payload. The wrapper keeps
 * the transported Error distinct from a decode failure (Expected's
 * own error channel), which `Expected<Error>` could not express.
 */
struct WireError
{
    Error error;
};

/** Decode encodeError; malformed payloads are a Parse error. */
Expected<WireError> decodeError(std::string_view payload);

/**
 * Incremental frame decoder over a byte stream.
 *
 * Feed whatever recv() produced; next() hands back complete frames
 * one at a time. A malformed header or checksum poisons the parser
 * (the stream position can no longer be trusted), matching the
 * first-error-wins discipline of the ingestion readers: the caller
 * sends one structured error response and stops reading.
 */
class FrameParser
{
  public:
    /**
     * @param magic  expected frame magic (request or response side).
     * @param source error-context label ("client 3", socket path...).
     */
    FrameParser(uint32_t magic, std::string source)
        : _magic(magic), _source(std::move(source))
    {
    }

    /** Buffer more stream bytes. */
    void feed(const void *data, size_t size);

    /**
     * Next complete frame: a Frame when one is fully buffered,
     * std::nullopt when more bytes are needed, an Error on a
     * malformed header/checksum (sticky — every later call returns
     * the same error).
     */
    Expected<std::optional<Frame>> next();

    /** True when no partial frame is buffered (clean EOF point). */
    bool idle() const { return _buffer.size() == _consumed; }

    /** Total stream bytes consumed into complete frames. */
    size_t consumed() const { return _consumed; }

  private:
    uint32_t _magic;
    std::string _source;
    std::string _buffer;
    size_t _consumed = 0;   //!< bytes of _buffer already decoded
    size_t _streamBase = 0; //!< stream offset of _buffer[0]
    std::optional<Error> _error;
};

} // namespace sieve::serve

#endif // SIEVE_SERVE_PROTOCOL_HH
