#include "serve/client.hh"

#include <errno.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace sieve::serve {

namespace {

Error
ioError(std::string message, const std::string &source)
{
    return Error{ErrorKind::Io, std::move(message), source};
}

} // namespace

ServeClient::~ServeClient()
{
    if (_fd >= 0)
        ::close(_fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : _fd(std::exchange(other._fd, -1)),
      _parser(std::move(other._parser))
{
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (_fd >= 0)
            ::close(_fd);
        _fd = std::exchange(other._fd, -1);
        _parser = std::move(other._parser);
    }
    return *this;
}

Expected<ServeClient>
ServeClient::connect(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        return Error{ErrorKind::Validation,
                     "socket path too long", path};
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return ioError(std::string("socket: ") +
                           std::strerror(errno),
                       path);
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        ::close(fd);
        return ioError(std::string("connect: ") +
                           std::strerror(saved),
                       path);
    }
    ServeClient client;
    client._fd = fd;
    return client;
}

Expected<void>
ServeClient::sendRequest(RequestKind kind, std::string_view payload)
{
    return sendBytes(encodeRequest(kind, payload));
}

Expected<void>
ServeClient::sendBytes(std::string_view bytes)
{
    if (_fd < 0)
        return ioError("send on a closed client", "client");
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(_fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError(std::string("send: ") +
                               std::strerror(errno),
                           "client");
        }
        sent += static_cast<size_t>(n);
    }
    return {};
}

void
ServeClient::shutdownWrite()
{
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_WR);
}

void
ServeClient::setReceiveTimeoutMs(int timeout_ms)
{
    if (_fd < 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Expected<ServeClient::Response>
ServeClient::receive()
{
    if (_fd < 0)
        return ioError("receive on a closed client", "client");
    char buf[64 * 1024];
    while (true) {
        Expected<std::optional<Frame>> next = _parser.next();
        if (!next.ok())
            return next.error();
        if (next.value().has_value()) {
            Response response;
            response.status = static_cast<ResponseStatus>(
                next.value()->kind);
            response.payload = std::move(next.value()->payload);
            return response;
        }
        ssize_t n = ::recv(_fd, buf, sizeof(buf), 0);
        if (n == 0) {
            return ioError(
                "server closed the connection before a complete "
                "response",
                "client");
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return ioError("timed out waiting for a response",
                               "client");
            }
            return ioError(std::string("recv: ") +
                               std::strerror(errno),
                           "client");
        }
        _parser.feed(buf, static_cast<size_t>(n));
    }
}

Expected<ServeClient::Response>
ServeClient::call(RequestKind kind, std::string_view payload)
{
    Expected<void> sent = sendRequest(kind, payload);
    if (!sent.ok())
        return sent.error();
    return receive();
}

} // namespace sieve::serve
