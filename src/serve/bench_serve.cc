#include "serve/bench_serve.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "eval/report.hh"
#include "obs/metrics.hh"
#include "obs/percentile.hh"
#include "sampling/rep_traces.hh"
#include "sampling/sieve.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/runner.hh"
#include "serve/server.hh"
#include "trace/columnar.hh"
#include "trace/sass_trace.hh"
#include "workloads/generator.hh"
#include "workloads/suites.hh"

namespace sieve::serve {

namespace {

/** One scheduled operation: its bench label and the exact bytes. */
struct BenchOp
{
    std::string name;
    RequestKind kind = RequestKind::Ping;
    std::string payload;
    std::string expected; //!< ground-truth Ok response bytes
};

std::string
scratchSocketPath()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string dir = tmp && *tmp ? tmp : "/tmp";
    return dir + "/sieve-bench-serve-" +
           std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/** Serialize one representative trace of `workload` for simulate. */
std::string
traceBytesFor(const workloads::WorkloadSpec &spec)
{
    trace::Workload wl = workloads::generateWorkload(spec);
    sampling::SieveSampler sampler({0.4});
    sampling::SamplingResult result = sampler.sample(wl);
    sampling::RepresentativeTraces reps(wl, result);
    trace::TraceHandle::Pin pin = reps.handle(0).pin();
    trace::KernelTrace kt = trace::toAos(*pin);
    std::ostringstream os;
    trace::writeTrace(kt, os);
    return os.str();
}

/** The fixed mixed-request schedule every client thread cycles. */
Expected<std::vector<BenchOp>>
buildSchedule(bool smoke)
{
    const std::string workload = "gru";
    const std::string cap = smoke ? "300" : "800";
    std::optional<workloads::WorkloadSpec> spec = workloads::findSpec(
        workload, static_cast<size_t>(std::stoul(cap)));
    if (!spec) {
        return Error{ErrorKind::Validation,
                     "bench workload '" + workload +
                         "' missing from the registry",
                     "bench-serve"};
    }

    std::vector<BenchOp> ops;
    ops.push_back({"serve.ping", RequestKind::Ping, "bench", {}});
    ops.push_back({"serve.sample", RequestKind::Sample,
                   encodeFields({workload, "sieve", "0.4", cap}),
                   {}});
    ops.push_back(
        {"serve.evaluate", RequestKind::Evaluate,
         encodeFields({workload, "sieve", "ampere", "0.4", cap}),
         {}});
    ops.push_back({"serve.simulate", RequestKind::Simulate,
                   encodeFields({"ampere", "0",
                                 traceBytesFor(spec.value())}),
                   {}});
    ops.push_back({"serve.trace-stats", RequestKind::TraceStats,
                   encodeFields({"0.4", "16", "0", cap, workload}),
                   {}});

    // Ground truth: the same payloads through an offline runner. The
    // served responses must match these byte-for-byte at any --jobs.
    RequestRunner ground({/*jobs=*/1});
    for (BenchOp &op : ops) {
        Expected<std::string> r = ground.handle(op.kind, op.payload);
        if (!r.ok())
            return r.error();
        op.expected = std::move(r).value();
    }
    return ops;
}

} // namespace

int
runBenchServe(const BenchServeOptions &options)
{
    using Clock = std::chrono::steady_clock;

    BenchServeOptions opts = options;
    if (opts.smoke) {
        opts.connections = std::min<size_t>(opts.connections, 2);
        opts.requests = std::min<size_t>(opts.requests, 10);
    }
    if (opts.connections == 0 || opts.requests == 0) {
        std::fprintf(stderr,
                     "bench-serve: connections and requests must be "
                     "positive\n");
        return 1;
    }

    Expected<std::vector<BenchOp>> schedule =
        buildSchedule(opts.smoke);
    if (!schedule.ok()) {
        std::fprintf(stderr, "bench-serve: %s\n",
                     schedule.error().toString().c_str());
        return 1;
    }
    const std::vector<BenchOp> &ops = schedule.value();

    ServerConfig config;
    config.socketPath = opts.socketPath.empty() ? scratchSocketPath()
                                                : opts.socketPath;
    config.jobs = opts.jobs;
    config.maxQueue = opts.connections * 8 + 8;
    config.perClientQuota = 8;
    Server server(config);
    Expected<void> started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "bench-serve: %s\n",
                     started.error().toString().c_str());
        return 1;
    }
    std::thread loop([&server] { server.run(); });

    // Per-op latency buckets, merged across threads after the join;
    // quantiles come out of the shared PR 8 bucket walk so the bench
    // reports the same estimator the in-server histogram publishes.
    std::mutex merge_mu;
    std::vector<std::vector<uint64_t>> buckets(
        ops.size(),
        std::vector<uint64_t>(obs::Histogram::kBuckets, 0));
    std::vector<uint64_t> counts(ops.size(), 0);
    std::atomic<size_t> mismatches{0};
    std::string firstMismatch;

    auto worker = [&](size_t client) {
        std::vector<std::vector<uint64_t>> local(
            ops.size(),
            std::vector<uint64_t>(obs::Histogram::kBuckets, 0));
        std::vector<uint64_t> localCounts(ops.size(), 0);
        Expected<ServeClient> conn =
            ServeClient::connect(config.socketPath);
        if (!conn.ok()) {
            std::lock_guard<std::mutex> lock(merge_mu);
            if (firstMismatch.empty())
                firstMismatch = conn.error().toString();
            mismatches.fetch_add(1);
            return;
        }
        ServeClient &client_conn = conn.value();
        for (size_t i = 0; i < opts.requests; ++i) {
            size_t idx = (client + i) % ops.size();
            const BenchOp &op = ops[idx];
            Clock::time_point t0 = Clock::now();
            Expected<ServeClient::Response> reply =
                client_conn.call(op.kind, op.payload);
            uint64_t ns = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count());
            bool ok = reply.ok() &&
                      reply.value().status == ResponseStatus::Ok &&
                      reply.value().payload == op.expected;
            if (!ok) {
                std::lock_guard<std::mutex> lock(merge_mu);
                if (firstMismatch.empty()) {
                    firstMismatch =
                        op.name + ": " +
                        (reply.ok() ? "response differs from the "
                                      "offline ground truth"
                                    : reply.error().toString());
                }
                mismatches.fetch_add(1);
                return;
            }
            local[idx][obs::Histogram::bucketFor(ns)] += 1;
            localCounts[idx] += 1;
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (size_t op = 0; op < ops.size(); ++op) {
            counts[op] += localCounts[op];
            for (size_t b = 0; b < local[op].size(); ++b)
                buckets[op][b] += local[op][b];
        }
    };

    std::vector<std::thread> clients;
    clients.reserve(opts.connections);
    for (size_t c = 0; c < opts.connections; ++c)
        clients.emplace_back(worker, c);
    for (std::thread &t : clients)
        t.join();

    server.requestShutdown();
    loop.join();

    if (mismatches.load() != 0) {
        std::fprintf(stderr,
                     "bench-serve: %zu request(s) failed the "
                     "determinism check; first: %s\n",
                     mismatches.load(), firstMismatch.c_str());
        return 1;
    }

    std::ofstream out(opts.out);
    if (!out) {
        std::fprintf(stderr, "bench-serve: cannot write %s\n",
                     opts.out.c_str());
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_serve\",\n"
        << "  \"schema\": 6,\n"
        << "  \"jobs\": " << opts.jobs << ",\n"
        << "  \"connections\": " << opts.connections << ",\n"
        << "  \"requests_per_connection\": " << opts.requests
        << ",\n"
        << "  \"smoke\": " << (opts.smoke ? "true" : "false")
        << ",\n"
        << "  \"results\": [\n";
    eval::Report table("bench-serve latency (ns)");
    table.setColumns({"op", "n", "p50", "p95"});
    for (size_t op = 0; op < ops.size(); ++op) {
        obs::Quantiles q = obs::summarizeBuckets(buckets[op]);
        out << "    {\"op\": \"" << ops[op].name << "\", \"n\": "
            << counts[op] << ", \"reps\": 1, \"median_ns\": "
            << static_cast<uint64_t>(q.p50) << ", \"p50_ns\": "
            << static_cast<uint64_t>(q.p50) << ", \"p95_ns\": "
            << static_cast<uint64_t>(q.p95) << "}"
            << (op + 1 < ops.size() ? "," : "") << "\n";
        table.addRow({ops[op].name, eval::Report::count(counts[op]),
                   eval::Report::count(static_cast<uint64_t>(q.p50)),
                   eval::Report::count(
                       static_cast<uint64_t>(q.p95))});
    }
    out << "  ]\n}\n";
    out.close();
    table.print();
    std::printf("wrote %s\n", opts.out.c_str());
    return 0;
}

} // namespace sieve::serve
