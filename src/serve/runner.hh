/**
 * @file
 * Request execution for sieved: the daemon's resident state plus the
 * dispatch from a decoded request to its response bytes.
 *
 * The runner is what makes serving worthwhile: workloads, golden
 * runs (eval::ExperimentContext), and simulation results
 * (gpusim::SimCache, keyed by PR 4 content digests) stay resident
 * across requests and clients, so the second evaluation of a
 * workload or the second simulation of a byte-identical trace is a
 * lookup. Responses are built through the shared renderers in
 * eval/render.hh, which is what keeps a served response
 * byte-identical to the equivalent CLI invocation.
 *
 * Every failure is an Expected Error — never fatal(): one malformed
 * request must not take down the daemon, the same contract the PR 5
 * recoverable parsers give the batch pipeline.
 *
 * Request payloads (field lists per protocol.hh; numbers in their
 * decimal text form, "0" meaning the registry default):
 *   Ping        raw payload, echoed verbatim
 *   Stats       empty -> "key value" census lines
 *   Sample      [workload, method, theta, cap]           -> CSV
 *   Evaluate    [workload, method, arch, theta, cap]     -> table
 *   Simulate    [arch, pkp(0|1), trace bytes]            -> table
 *   TraceStats  [theta, ctas, budgetMb, cap, name...]    -> CSV
 */

#ifndef SIEVE_SERVE_RUNNER_HH
#define SIEVE_SERVE_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.hh"
#include "eval/experiment.hh"
#include "gpusim/sim_cache.hh"
#include "serve/protocol.hh"

namespace sieve::serve {

struct RunnerConfig
{
    /** Worker count handed to nested suite fan-outs (0 = default). */
    size_t jobs = 1;

    /**
     * Honour a "delay-ms=N" ping payload by sleeping before the echo
     * (capped at 2 s). Test-only: how the drain tests pin a request
     * in flight at a known point.
     */
    bool pingDelayForTests = false;
};

/** Thread-safe request dispatcher over the daemon's resident state. */
class RequestRunner
{
  public:
    explicit RequestRunner(RunnerConfig config = {});

    /**
     * Execute one decoded request; returns the response payload
     * bytes, or a structured Error for the error response. Safe to
     * call concurrently from any number of pool workers.
     */
    Expected<std::string> handle(RequestKind kind,
                                 const std::string &payload);

    const RunnerConfig &config() const { return _config; }

  private:
    /** Build-once resident context per (arch, invocation cap). */
    eval::ExperimentContext &contextFor(const std::string &arch,
                                        size_t cap);

    /** Build-once simulator + digest cache per (arch, pkp). */
    gpusim::SimCache &simCacheFor(const std::string &arch, bool pkp);

    Expected<std::string> handlePing(const std::string &payload);
    Expected<std::string> handleStats(const std::string &payload);
    Expected<std::string> handleSample(const std::string &payload);
    Expected<std::string> handleEvaluate(const std::string &payload);
    Expected<std::string> handleSimulate(const std::string &payload);
    Expected<std::string> handleTraceStats(
        const std::string &payload);

    struct SimState
    {
        std::unique_ptr<gpusim::GpuSimulator> simulator;
        std::unique_ptr<gpusim::SimCache> cache;
    };

    RunnerConfig _config;
    std::mutex _mu; //!< guards the maps; entries are thread-safe
    std::map<std::string, std::unique_ptr<eval::ExperimentContext>>
        _contexts;
    std::map<std::string, SimState> _sims;
};

} // namespace sieve::serve

#endif // SIEVE_SERVE_RUNNER_HH
