/**
 * @file
 * Service lifecycle registry for sieved (DESIGN.md §14).
 *
 * The daemon is a handful of resident components — the observability
 * sinks, the request runner holding the tier pool / sim caches /
 * workload contexts, the worker pool, the socket listener — whose
 * startup and shutdown order matters: the pool must join its workers
 * before the state they touch is torn down, and the obs flush (the
 * PR 8 metrics -> trace -> ledger sequence) must run after everything
 * that still counts metrics has stopped. Each component registers as
 * a Service with declared dependencies; startAll() resolves a
 * deterministic topological order and stopAll() replays the *actual*
 * start order in reverse, which tests assert directly.
 */

#ifndef SIEVE_SERVE_REGISTRY_HH
#define SIEVE_SERVE_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "common/error.hh"

namespace sieve::serve {

/** One lifecycle participant. */
struct Service
{
    std::string name;
    std::vector<std::string> dependsOn; //!< started before this one
    std::function<Expected<void>()> start; //!< may be null (no-op)
    std::function<void()> stop;            //!< may be null (no-op)
};

/**
 * Dependency-ordered startup / reverse-ordered shutdown.
 *
 * Deterministic: services start in registration order except that
 * declared dependencies start first (depth-first). Unknown
 * dependencies and cycles are Validation errors. If a start callback
 * fails, everything already started is stopped in reverse and the
 * error is returned.
 */
class ServiceRegistry
{
  public:
    /** Register a service; only valid before startAll(). */
    void add(Service service);

    /** Start every service in dependency order. */
    Expected<void> startAll();

    /** Stop every started service, reverse of the start order. */
    void stopAll();

    bool started() const { return _started; }

    /** Names in the order startAll() actually started them. */
    const std::vector<std::string> &startOrder() const
    {
        return _startOrder;
    }

    /** Names in the order stopAll() stopped them (empty before). */
    const std::vector<std::string> &stopOrder() const
    {
        return _stopOrder;
    }

  private:
    Expected<void> visit(size_t index,
                         std::vector<uint8_t> &state,
                         std::vector<size_t> &order);

    std::vector<Service> _services;
    std::vector<size_t> _startedIndexes;
    std::vector<std::string> _startOrder;
    std::vector<std::string> _stopOrder;
    bool _started = false;
};

} // namespace sieve::serve

#endif // SIEVE_SERVE_REGISTRY_HH
