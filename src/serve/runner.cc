#include "serve/runner.hh"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/strings.hh"
#include "eval/render.hh"
#include "eval/suite_runner.hh"
#include "gpusim/trace_synth.hh"
#include "sampling/evaluation.hh"
#include "sampling/pks.hh"
#include "sampling/random_sampler.hh"
#include "sampling/sieve.hh"
#include "sampling/tbpoint.hh"
#include "trace/tier.hh"
#include "workloads/suites.hh"

namespace sieve::serve {

namespace {

/** Upper bounds a fuzzed request cannot push past (OOM guards). */
constexpr uint64_t kMaxCap = 1'000'000;
constexpr uint64_t kMaxCtas = 65'536;
constexpr uint64_t kMaxBudgetMb = 65'536;
constexpr uint64_t kMaxPingDelayMs = 2'000;

Error
requestError(ErrorKind kind, std::string message)
{
    return Error{kind, std::move(message), "request"};
}

Expected<gpu::ArchConfig>
archConfigFor(const std::string &name)
{
    if (name == "ampere")
        return gpu::ArchConfig::ampereRtx3080();
    if (name == "turing")
        return gpu::ArchConfig::turingRtx2080Ti();
    return requestError(ErrorKind::Validation,
                        "unknown architecture '" + name +
                            "' (ampere | turing)");
}

Expected<double>
parseTheta(const std::string &text)
{
    double theta = 0.0;
    if (parseDouble(text, theta) != NumericParse::Ok ||
        theta <= 0.0 || theta > 10.0) {
        return requestError(ErrorKind::Validation,
                            "theta must be in (0, 10], got '" + text +
                                "'");
    }
    return theta;
}

Expected<uint64_t>
parseBounded(const std::string &text, const char *what, uint64_t max)
{
    uint64_t value = 0;
    if (parseUint64(text, value) != NumericParse::Ok ||
        value > max) {
        return requestError(ErrorKind::Validation,
                            std::string(what) + " must be an integer" +
                                " in [0, " + std::to_string(max) +
                                "], got '" + text + "'");
    }
    return value;
}

Expected<workloads::WorkloadSpec>
specFor(const std::string &name, size_t cap)
{
    std::optional<workloads::WorkloadSpec> spec =
        cap == 0 ? workloads::findSpec(name)
                 : workloads::findSpec(name, cap);
    if (!spec) {
        return requestError(ErrorKind::Validation,
                            "unknown workload '" + name + "'");
    }
    return *spec;
}

/** Non-fatal twin of the CLI's runSampler dispatch. */
Expected<std::pair<sampling::SamplingResult, double>>
runSampler(const std::string &method, const trace::Workload &wl,
           const gpu::WorkloadResult &gold, double theta)
{
    if (method == "sieve") {
        sampling::SieveSampler sampler({theta});
        auto result = sampler.sample(wl);
        double pred =
            sampler.predictCycles(result, wl, gold.perInvocation);
        return std::pair{std::move(result), pred};
    }
    if (method == "pks") {
        sampling::PksSampler sampler;
        auto result = sampler.sample(wl, gold.perInvocation);
        double pred =
            sampler.predictCycles(result, gold.perInvocation);
        return std::pair{std::move(result), pred};
    }
    if (method == "tbpoint") {
        sampling::TbPointSampler sampler;
        auto result = sampler.sample(wl);
        double pred =
            sampler.predictCycles(result, gold.perInvocation);
        return std::pair{std::move(result), pred};
    }
    if (method == "random") {
        sampling::RandomSampler sampler;
        auto result = sampler.sample(wl);
        double pred =
            sampler.predictCycles(result, wl, gold.perInvocation);
        return std::pair{std::move(result), pred};
    }
    return requestError(ErrorKind::Validation,
                        "unknown method '" + method +
                            "' (sieve | pks | tbpoint | random)");
}

} // namespace

RequestRunner::RequestRunner(RunnerConfig config)
    : _config(config)
{
}

eval::ExperimentContext &
RequestRunner::contextFor(const std::string &arch, size_t cap)
{
    // seedLabel() (the context's internal cache key) does not encode
    // the invocation cap, so each (arch, cap) pair gets its own
    // context; mixing caps in one context would alias its entries.
    std::string key = arch + "#" + std::to_string(cap);
    std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _contexts[key];
    if (!slot) {
        slot = std::make_unique<eval::ExperimentContext>(
            archConfigFor(arch).value());
    }
    return *slot;
}

gpusim::SimCache &
RequestRunner::simCacheFor(const std::string &arch, bool pkp)
{
    std::string key = arch + (pkp ? "+pkp" : "");
    std::lock_guard<std::mutex> lock(_mu);
    SimState &state = _sims[key];
    if (!state.cache) {
        gpusim::GpuSimConfig cfg;
        cfg.pkpEnabled = pkp;
        state.simulator = std::make_unique<gpusim::GpuSimulator>(
            archConfigFor(arch).value(), cfg);
        state.cache =
            std::make_unique<gpusim::SimCache>(*state.simulator);
    }
    return *state.cache;
}

Expected<std::string>
RequestRunner::handle(RequestKind kind, const std::string &payload)
{
    try {
        switch (kind) {
        case RequestKind::Ping:
            return handlePing(payload);
        case RequestKind::Stats:
            return handleStats(payload);
        case RequestKind::Sample:
            return handleSample(payload);
        case RequestKind::Evaluate:
            return handleEvaluate(payload);
        case RequestKind::Simulate:
            return handleSimulate(payload);
        case RequestKind::TraceStats:
            return handleTraceStats(payload);
        }
        return requestError(ErrorKind::Validation,
                            "unknown request kind " +
                                std::to_string(
                                    static_cast<uint16_t>(kind)));
    } catch (const std::exception &e) {
        // A library-level throw must never unwind past the worker:
        // it becomes this request's structured error.
        return requestError(ErrorKind::Sim,
                            std::string("request failed: ") +
                                e.what());
    }
}

Expected<std::string>
RequestRunner::handlePing(const std::string &payload)
{
    constexpr std::string_view kDelayPrefix = "delay-ms=";
    if (_config.pingDelayForTests &&
        payload.rfind(kDelayPrefix, 0) == 0) {
        Expected<uint64_t> delay =
            parseBounded(payload.substr(kDelayPrefix.size()),
                         "ping delay", kMaxPingDelayMs);
        if (!delay.ok())
            return delay.error();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay.value()));
    }
    return payload;
}

Expected<std::string>
RequestRunner::handleStats(const std::string &payload)
{
    if (!payload.empty()) {
        return requestError(ErrorKind::Parse,
                            "stats request carries a payload");
    }
    size_t contexts = 0, caches = 0;
    gpusim::SimCacheStats total;
    {
        std::lock_guard<std::mutex> lock(_mu);
        contexts = _contexts.size();
        caches = _sims.size();
        for (const auto &[key, state] : _sims) {
            gpusim::SimCacheStats s = state.cache->stats();
            total.lookups += s.lookups;
            total.hits += s.hits;
            total.unique += s.unique;
        }
    }
    std::ostringstream os;
    os << "contexts " << contexts << "\n"
       << "sim_caches " << caches << "\n"
       << "sim.lookups " << total.lookups << "\n"
       << "sim.hits " << total.hits << "\n"
       << "sim.unique " << total.unique << "\n";
    return os.str();
}

Expected<std::string>
RequestRunner::handleSample(const std::string &payload)
{
    Expected<std::vector<std::string>> fields =
        decodeFields(payload, "sample request");
    if (!fields.ok())
        return fields.error();
    if (fields.value().size() != 4) {
        return requestError(ErrorKind::Parse,
                            "sample request needs 4 fields "
                            "[workload, method, theta, cap], got " +
                                std::to_string(
                                    fields.value().size()));
    }
    const std::vector<std::string> &f = fields.value();
    Expected<double> theta = parseTheta(f[2]);
    if (!theta.ok())
        return theta.error();
    Expected<uint64_t> cap = parseBounded(f[3], "cap", kMaxCap);
    if (!cap.ok())
        return cap.error();
    Expected<workloads::WorkloadSpec> spec =
        specFor(f[0], static_cast<size_t>(cap.value()));
    if (!spec.ok())
        return spec.error();

    // The offline `sieve sample` scores against the Ampere golden
    // run regardless of --arch; mirror that exactly.
    eval::ExperimentContext &ctx =
        contextFor("ampere", static_cast<size_t>(cap.value()));
    const trace::Workload &wl = ctx.workload(spec.value());
    const gpu::WorkloadResult &gold = ctx.golden(spec.value());
    auto sampled = runSampler(f[1], wl, gold, theta.value());
    if (!sampled.ok())
        return sampled.error();

    std::ostringstream os;
    eval::representativesCsv(wl, sampled.value().first).write(os);
    return os.str();
}

Expected<std::string>
RequestRunner::handleEvaluate(const std::string &payload)
{
    Expected<std::vector<std::string>> fields =
        decodeFields(payload, "evaluate request");
    if (!fields.ok())
        return fields.error();
    if (fields.value().size() != 5) {
        return requestError(
            ErrorKind::Parse,
            "evaluate request needs 5 fields "
            "[workload, method, arch, theta, cap], got " +
                std::to_string(fields.value().size()));
    }
    const std::vector<std::string> &f = fields.value();
    Expected<gpu::ArchConfig> arch = archConfigFor(f[2]);
    if (!arch.ok())
        return arch.error();
    Expected<double> theta = parseTheta(f[3]);
    if (!theta.ok())
        return theta.error();
    Expected<uint64_t> cap = parseBounded(f[4], "cap", kMaxCap);
    if (!cap.ok())
        return cap.error();
    Expected<workloads::WorkloadSpec> spec =
        specFor(f[0], static_cast<size_t>(cap.value()));
    if (!spec.ok())
        return spec.error();

    eval::ExperimentContext &ctx =
        contextFor(f[2], static_cast<size_t>(cap.value()));
    const trace::Workload &wl = ctx.workload(spec.value());
    const gpu::WorkloadResult &gold = ctx.golden(spec.value());
    auto sampled = runSampler(f[1], wl, gold, theta.value());
    if (!sampled.ok())
        return sampled.error();
    sampling::MethodEvaluation eval = sampling::evaluate(
        sampled.value().first, sampled.value().second,
        gold.perInvocation);
    return eval::evaluationReport(f[1], wl.suite(), wl.name(), eval)
        .toString();
}

Expected<std::string>
RequestRunner::handleSimulate(const std::string &payload)
{
    Expected<std::vector<std::string>> fields =
        decodeFields(payload, "simulate request");
    if (!fields.ok())
        return fields.error();
    if (fields.value().size() != 3) {
        return requestError(ErrorKind::Parse,
                            "simulate request needs 3 fields "
                            "[arch, pkp, trace], got " +
                                std::to_string(
                                    fields.value().size()));
    }
    const std::vector<std::string> &f = fields.value();
    Expected<gpu::ArchConfig> arch = archConfigFor(f[0]);
    if (!arch.ok())
        return arch.error();
    if (f[1] != "0" && f[1] != "1") {
        return requestError(ErrorKind::Validation,
                            "pkp must be 0 or 1, got '" + f[1] +
                                "'");
    }

    std::istringstream is(f[2]);
    Expected<trace::KernelTrace> kt =
        trace::tryReadTrace(is, "request trace");
    if (!kt.ok())
        return kt.error();

    gpusim::SimCache &cache = simCacheFor(f[0], f[1] == "1");
    gpusim::KernelSimResult result = cache.simulate(kt.value());
    return eval::simulationReport(kt.value(), result).toString();
}

Expected<std::string>
RequestRunner::handleTraceStats(const std::string &payload)
{
    Expected<std::vector<std::string>> fields =
        decodeFields(payload, "trace-stats request");
    if (!fields.ok())
        return fields.error();
    if (fields.value().size() < 5) {
        return requestError(
            ErrorKind::Parse,
            "trace-stats request needs >= 5 fields "
            "[theta, ctas, budgetMb, cap, workload...], got " +
                std::to_string(fields.value().size()));
    }
    const std::vector<std::string> &f = fields.value();
    Expected<double> theta = parseTheta(f[0]);
    if (!theta.ok())
        return theta.error();
    Expected<uint64_t> ctas = parseBounded(f[1], "ctas", kMaxCtas);
    if (!ctas.ok())
        return ctas.error();
    Expected<uint64_t> budget_mb =
        parseBounded(f[2], "budgetMb", kMaxBudgetMb);
    if (!budget_mb.ok())
        return budget_mb.error();
    Expected<uint64_t> cap = parseBounded(f[3], "cap", kMaxCap);
    if (!cap.ok())
        return cap.error();

    std::vector<workloads::WorkloadSpec> specs;
    for (size_t i = 4; i < f.size(); ++i) {
        Expected<workloads::WorkloadSpec> spec =
            specFor(f[i], static_cast<size_t>(cap.value()));
        if (!spec.ok())
            return spec.error();
        specs.push_back(std::move(spec).value());
    }

    gpusim::TraceSynthOptions synth;
    if (ctas.value() > 0)
        synth.maxTracedCtas = ctas.value();
    trace::TierConfig tier = trace::TierConfig::fromEnv();
    if (budget_mb.value() > 0)
        tier.budgetBytes =
            static_cast<size_t>(budget_mb.value()) * 1024 * 1024;

    eval::ExperimentContext &ctx =
        contextFor("ampere", static_cast<size_t>(cap.value()));
    eval::SuiteRunner runner(ctx, {_config.jobs});
    std::vector<eval::WorkloadTraceStats> rows = runner.traceStats(
        specs, {theta.value()}, synth, tier);

    std::ostringstream os;
    eval::traceStatsCsv(rows).write(os);
    return os.str();
}

} // namespace sieve::serve
