#include "serve/registry.hh"

#include <algorithm>

namespace sieve::serve {

void
ServiceRegistry::add(Service service)
{
    SIEVE_ASSERT(!_started, "add() after startAll()");
    SIEVE_ASSERT(!service.name.empty(), "service without a name");
    _services.push_back(std::move(service));
}

namespace {
enum : uint8_t { kUnvisited = 0, kVisiting = 1, kDone = 2 };
} // namespace

Expected<void>
ServiceRegistry::visit(size_t index, std::vector<uint8_t> &state,
                       std::vector<size_t> &order)
{
    if (state[index] == kDone)
        return {};
    if (state[index] == kVisiting) {
        return Error{ErrorKind::Validation,
                     "service dependency cycle through '" +
                         _services[index].name + "'",
                     "service registry"};
    }
    state[index] = kVisiting;
    for (const std::string &dep : _services[index].dependsOn) {
        auto it = std::find_if(
            _services.begin(), _services.end(),
            [&](const Service &s) { return s.name == dep; });
        if (it == _services.end()) {
            return Error{ErrorKind::Validation,
                         "service '" + _services[index].name +
                             "' depends on unregistered '" + dep +
                             "'",
                         "service registry"};
        }
        Expected<void> ok = visit(
            static_cast<size_t>(it - _services.begin()), state,
            order);
        if (!ok.ok())
            return ok;
    }
    state[index] = kDone;
    order.push_back(index);
    return {};
}

Expected<void>
ServiceRegistry::startAll()
{
    SIEVE_ASSERT(!_started, "startAll() twice");
    std::vector<uint8_t> state(_services.size(), kUnvisited);
    std::vector<size_t> order;
    order.reserve(_services.size());
    for (size_t i = 0; i < _services.size(); ++i) {
        Expected<void> ok = visit(i, state, order);
        if (!ok.ok())
            return ok;
    }

    for (size_t index : order) {
        Service &service = _services[index];
        if (service.start) {
            Expected<void> ok = service.start();
            if (!ok.ok()) {
                // Unwind what already started, newest first.
                stopAll();
                return ok;
            }
        }
        _startedIndexes.push_back(index);
        _startOrder.push_back(service.name);
    }
    _started = true;
    return {};
}

void
ServiceRegistry::stopAll()
{
    for (size_t i = _startedIndexes.size(); i-- > 0;) {
        Service &service = _services[_startedIndexes[i]];
        if (service.stop)
            service.stop();
        _stopOrder.push_back(service.name);
    }
    _startedIndexes.clear();
    _started = false;
}

} // namespace sieve::serve
