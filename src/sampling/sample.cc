#include "sampling/sample.hh"

#include "common/logging.hh"

namespace sieve::sampling {

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::None:
        return "none";
      case Tier::Tier1:
        return "tier-1";
      case Tier::Tier2:
        return "tier-2";
      case Tier::Tier3:
        return "tier-3";
    }
    panic("unknown tier ", static_cast<int>(t));
}

std::vector<size_t>
SamplingResult::representatives() const
{
    std::vector<size_t> reps;
    reps.reserve(strata.size());
    for (const auto &s : strata)
        reps.push_back(s.representative);
    return reps;
}

size_t
SamplingResult::totalMembers() const
{
    size_t total = 0;
    for (const auto &s : strata)
        total += s.members.size();
    return total;
}

double
SamplingResult::tierInvocationFraction(Tier tier) const
{
    size_t total = totalMembers();
    if (total == 0)
        return 0.0;
    size_t in_tier = 0;
    for (const auto &s : strata) {
        if (s.tier == tier)
            in_tier += s.members.size();
    }
    return static_cast<double>(in_tier) / static_cast<double>(total);
}

} // namespace sieve::sampling
