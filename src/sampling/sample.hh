/**
 * @file
 * Shared sampling types: strata/clusters, representatives, weights.
 *
 * Both samplers produce the same artifact — a set of invocation
 * groups, each with one representative kernel invocation and a weight
 * — which downstream code uses identically for prediction, speedup
 * accounting, and trace export. Only the grouping rule, the selection
 * rule, and the weight semantics differ between Sieve and PKS.
 */

#ifndef SIEVE_SAMPLING_SAMPLE_HH
#define SIEVE_SAMPLING_SAMPLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace sieve::sampling {

/** Sieve tier classification (paper Section III-B). */
enum class Tier : uint8_t {
    None = 0, //!< not applicable (PKS clusters)
    Tier1,    //!< zero instruction-count variation across invocations
    Tier2,    //!< CoV below the theta threshold
    Tier3,    //!< CoV at or above theta; KDE-substratified
};

/** Name of a tier ("tier-1", ...). */
const char *tierName(Tier t);

/** One stratum (Sieve) or cluster (PKS) of kernel invocations. */
struct Stratum
{
    /** Invocation indexes (into Workload::invocations()), ascending. */
    std::vector<size_t> members;

    /** Index of the selected representative invocation. */
    size_t representative = 0;

    /**
     * Normalized weight. Sieve: stratum instruction count over total
     * instruction count. PKS: invocation count over total invocation
     * count.
     */
    double weight = 0.0;

    /** Kernel the stratum belongs to (Sieve only; PKS clusters may
     *  mix kernels and leave this at kNoKernel). */
    uint32_t kernelId = kNoKernel;

    /** Sieve tier of this stratum. */
    Tier tier = Tier::None;

    static constexpr uint32_t kNoKernel = 0xffffffff;

    size_t size() const { return members.size(); }
};

/** Output of a sampling method for one workload. */
struct SamplingResult
{
    std::string method;        //!< "sieve" or "pks" (+ policy suffix)
    std::vector<Stratum> strata;

    // Method metadata.
    double theta = 0.0;        //!< Sieve CoV threshold
    size_t chosenK = 0;        //!< PKS selected cluster count

    /** Number of representative kernel invocations selected. */
    size_t numRepresentatives() const { return strata.size(); }

    /** All representative invocation indexes, in stratum order. */
    std::vector<size_t> representatives() const;

    /** Total members across all strata (= invocations covered). */
    size_t totalMembers() const;

    /**
     * Fraction of invocations whose stratum has the given tier.
     * Reproduces one bar of Fig. 2.
     */
    double tierInvocationFraction(Tier tier) const;
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_SAMPLE_HH
