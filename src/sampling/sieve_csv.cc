#include "sampling/sieve_csv.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/strings.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"

namespace sieve::sampling {

namespace {

using trace::SieveProfileRow;

/** First-chronological row with the group's dominant CTA size. */
const SieveProfileRow *
dominantCtaFirst(const std::vector<const SieveProfileRow *> &rows)
{
    std::map<uint32_t, size_t> cta_counts;
    for (const SieveProfileRow *row : rows)
        ++cta_counts[row->ctaSize];
    uint32_t dominant = 0;
    size_t best = 0;
    for (const auto &[size, count] : cta_counts) {
        if (count > best) {
            best = count;
            dominant = size;
        }
    }
    for (const SieveProfileRow *row : rows) {
        if (row->ctaSize == dominant)
            return row;
    }
    return rows.front();
}

} // namespace

CsvTable
CsvSamplingResult::toCsv() const
{
    CsvTable table({"kernel", "invocation", "tier", "stratum_size",
                    "weight"});
    for (const CsvRepresentative &rep : representatives) {
        table.addRow({
            rep.kernelName,
            std::to_string(rep.invocationId),
            tierName(rep.tier),
            std::to_string(rep.stratumSize),
            toFixed(rep.weight, 8),
        });
    }
    return table;
}

Expected<CsvSamplingResult>
trySieveFromProfile(const std::vector<SieveProfileRow> &rows,
                    SieveConfig config)
{
    if (rows.empty())
        return ingestError(ErrorKind::Validation,
                           "empty profile: nothing to stratify");
    if (config.theta <= 0.0)
        return ingestError(ErrorKind::Validation,
                           "Sieve theta must be positive, got " +
                               std::to_string(config.theta));

    // Group rows by kernel name, preserving chronological order
    // within each kernel.
    std::vector<std::string> kernel_order;
    std::map<std::string, std::vector<const SieveProfileRow *>> groups;
    uint64_t total_insts = 0;
    for (const SieveProfileRow &row : rows) {
        auto [it, inserted] = groups.try_emplace(row.kernelName);
        if (inserted)
            kernel_order.push_back(row.kernelName);
        it->second.push_back(&row);
        total_insts += row.instructionCount;
    }
    if (total_insts == 0)
        return ingestError(ErrorKind::Validation,
                           "profile with zero instructions");

    CsvSamplingResult out;
    out.totalInstructions = total_insts;

    for (const std::string &kernel : kernel_order) {
        const auto &members = groups[kernel];

        std::vector<double> counts;
        counts.reserve(members.size());
        for (const SieveProfileRow *row : members)
            counts.push_back(
                static_cast<double>(row->instructionCount));

        bool all_equal = std::all_of(
            counts.begin(), counts.end(),
            [&](double c) { return c == counts.front(); });
        double cov = stats::coefficientOfVariation(counts);

        auto emit = [&](const std::vector<const SieveProfileRow *> &g,
                        Tier tier) {
            uint64_t insts = 0;
            for (const SieveProfileRow *row : g)
                insts += row->instructionCount;
            const SieveProfileRow *rep =
                tier == Tier::Tier1 ? g.front() : dominantCtaFirst(g);

            CsvRepresentative r;
            r.kernelName = kernel;
            r.invocationId = rep->invocationId;
            r.tier = tier;
            r.stratumSize = g.size();
            r.weight = static_cast<double>(insts) /
                       static_cast<double>(total_insts);
            out.representatives.push_back(std::move(r));
        };

        if (all_equal) {
            emit(members, Tier::Tier1);
        } else if (cov < config.theta) {
            emit(members, Tier::Tier2);
        } else {
            std::vector<size_t> labels =
                stats::stratifyByDensity(counts, config.theta);
            size_t n_strata = stats::numStrata(labels);
            std::vector<std::vector<const SieveProfileRow *>> strata(
                n_strata);
            for (size_t i = 0; i < members.size(); ++i)
                strata[labels[i]].push_back(members[i]);
            for (const auto &stratum : strata) {
                if (!stratum.empty())
                    emit(stratum, Tier::Tier3);
            }
        }
    }
    return out;
}

Expected<CsvSamplingResult>
trySieveFromProfileCsv(const CsvTable &table, SieveConfig config)
{
    auto rows = trace::tryParseSieveProfile(table);
    if (!rows)
        return rows.error();
    return trySieveFromProfile(rows.value(), config);
}

CsvSamplingResult
sieveFromProfile(const std::vector<SieveProfileRow> &rows,
                 SieveConfig config)
{
    return unwrapOrFatal(trySieveFromProfile(rows, config));
}

CsvSamplingResult
sieveFromProfileCsv(const CsvTable &table, SieveConfig config)
{
    return unwrapOrFatal(trySieveFromProfileCsv(table, config));
}

} // namespace sieve::sampling
