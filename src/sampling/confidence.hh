/**
 * @file
 * Confidence intervals for stratified sampling predictions.
 *
 * Sieve is textbook stratified sampling, which means classical survey
 * theory applies: if more than one invocation per stratum is
 * measured, the within-stratum variance of per-instruction cost (CPI)
 * can be estimated, and with it a standard error on the predicted
 * application cycle count:
 *
 *     cycles_hat = sum_h I_h * cpi_hat_h,
 *     Var(cycles_hat) = sum_h I_h^2 * s_h^2 / n_h * (1 - n_h / N_h),
 *
 * with I_h the stratum instruction mass, cpi_hat_h the mean measured
 * CPI in stratum h, s_h^2 the sample CPI variance, n_h the measured
 * count, and N_h the stratum population (the finite-population
 * correction). The paper does not report error bars; this module
 * adds them, turning "the error happened to be 1.2%" into "the method
 * knew its error was about that size before the golden run existed".
 */

#ifndef SIEVE_SAMPLING_CONFIDENCE_HH
#define SIEVE_SAMPLING_CONFIDENCE_HH

#include <cstddef>
#include <vector>

#include "gpu/hardware_executor.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** A cycle-count prediction with a symmetric confidence interval. */
struct PredictionInterval
{
    double predictedCycles = 0.0;
    double standardError = 0.0;
    /** Half-width at the requested confidence level. */
    double halfWidth = 0.0;

    double lower() const { return predictedCycles - halfWidth; }
    double upper() const { return predictedCycles + halfWidth; }

    /** Half-width as a fraction of the prediction. */
    double
    relativeHalfWidth() const
    {
        return predictedCycles > 0.0 ? halfWidth / predictedCycles
                                     : 0.0;
    }

    /** True if the given measured value falls inside the interval. */
    bool
    covers(double measured) const
    {
        return measured >= lower() && measured <= upper();
    }
};

/**
 * Pick the invocations to measure per stratum: the representative
 * plus up to (probes - 1) additional spread-out members, so strata
 * with more than one member yield a variance estimate.
 *
 * @return measurement plan: for each stratum, the invocation indexes
 *         to execute.
 */
std::vector<std::vector<size_t>> measurementPlan(
    const SamplingResult &result, size_t probes = 2);

/**
 * Stratified prediction with a confidence interval.
 *
 * @param result the Sieve sampling result
 * @param workload the workload (instruction masses)
 * @param plan the measurement plan from measurementPlan()
 * @param measured per-invocation results; only planned indexes read
 * @param z normal quantile for the confidence level (1.96 = 95%)
 */
PredictionInterval predictWithConfidence(
    const SamplingResult &result, const trace::Workload &workload,
    const std::vector<std::vector<size_t>> &plan,
    const std::vector<gpu::KernelResult> &measured, double z = 1.96);

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_CONFIDENCE_HH
