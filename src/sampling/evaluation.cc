#include "sampling/evaluation.hh"

#include "common/logging.hh"
#include "stats/descriptive.hh"
#include "stats/error_metrics.hh"

namespace sieve::sampling {

double
weightedClusterCycleCov(const SamplingResult &result,
                        const std::vector<gpu::KernelResult> &golden)
{
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    for (const auto &stratum : result.strata) {
        stats::Accumulator acc;
        for (size_t idx : stratum.members) {
            SIEVE_ASSERT(idx < golden.size(),
                         "stratum member out of range");
            acc.add(golden[idx].cycles);
        }
        double w = static_cast<double>(stratum.members.size());
        weighted_sum += w * acc.cov();
        weight_total += w;
    }
    return weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
}

double
simulationSpeedup(const SamplingResult &result,
                  const std::vector<gpu::KernelResult> &golden)
{
    double total = 0.0;
    for (const auto &r : golden)
        total += r.cycles;

    double rep_cycles = 0.0;
    for (const auto &stratum : result.strata) {
        SIEVE_ASSERT(stratum.representative < golden.size(),
                     "representative out of range");
        rep_cycles += golden[stratum.representative].cycles;
    }
    SIEVE_ASSERT(rep_cycles > 0.0, "zero representative cycles");
    return total / rep_cycles;
}

MethodEvaluation
evaluate(const SamplingResult &result, double predicted_cycles,
         const std::vector<gpu::KernelResult> &golden)
{
    double measured = 0.0;
    for (const auto &r : golden)
        measured += r.cycles;

    MethodEvaluation eval;
    eval.method = result.method;
    eval.predictedCycles = predicted_cycles;
    eval.measuredCycles = measured;
    eval.error = stats::relativeError(predicted_cycles, measured);
    eval.speedup = simulationSpeedup(result, golden);
    eval.numRepresentatives = result.numRepresentatives();
    eval.weightedClusterCov = weightedClusterCycleCov(result, golden);
    return eval;
}

} // namespace sieve::sampling
