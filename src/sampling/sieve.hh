/**
 * @file
 * The Sieve stratified sampler — the paper's primary contribution.
 *
 * Pipeline (paper Section III):
 *  1. Per kernel, gather the instruction counts of all invocations.
 *  2. Tier the kernel: Tier-1 if counts are identical, Tier-2 if the
 *     CoV is below theta, Tier-3 otherwise.
 *  3. Tier-1/2 kernels form one stratum each; Tier-3 kernels are
 *     sub-stratified with kernel density estimation so that each
 *     stratum's CoV drops below theta.
 *  4. Representative selection: Tier-1 takes the first-chronological
 *     invocation; Tier-2/3 take the first-chronological invocation
 *     with the stratum's dominant CTA size.
 *  5. Stratum weight = stratum instruction count / total instruction
 *     count.
 *  6. Prediction: application IPC is the weighted harmonic mean of
 *     representative IPCs; predicted cycles = total instructions /
 *     predicted IPC.
 */

#ifndef SIEVE_SAMPLING_SIEVE_HH
#define SIEVE_SAMPLING_SIEVE_HH

#include <vector>

#include "common/thread_pool.hh"
#include "gpu/hardware_executor.hh"
#include "sampling/profile_view.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Representative selection policies for Sieve (ablation study). */
enum class SieveSelection : uint8_t {
    /** First chronological with dominant CTA size (paper default). */
    FirstDominantCta,
    /** Plain first chronological, ignoring CTA size. */
    FirstChronological,
    /** First chronological with the *maximum* CTA size — considered
     *  and rejected by the paper as less accurate. */
    MaxCta,
};

/** Configuration for the Sieve sampler. */
struct SieveConfig
{
    /**
     * CoV threshold separating Tier-2 from Tier-3, and the bound
     * enforced on every stratum. The paper finds theta = 0.4 balances
     * accuracy and speedup (Section III-B, Fig. 10).
     */
    double theta = 0.4;

    /** Representative selection policy. */
    SieveSelection selection = SieveSelection::FirstDominantCta;
};

/** The Sieve stratified sampling methodology. */
class SieveSampler
{
  public:
    explicit SieveSampler(SieveConfig config = {});

    const SieveConfig &config() const { return _config; }

    /**
     * Stratify a workload and select representatives. Uses only the
     * profile-visible instruction counts, kernel identities, and CTA
     * sizes — never cycle counts (Sieve needs no golden reference).
     *
     * @param pool optional worker pool for the Tier-3 KDE grid
     *        evaluation; output is byte-identical at any worker count
     */
    SamplingResult sample(const trace::Workload &workload,
                          ThreadPool *pool = nullptr) const;

    /**
     * The core pipeline, over a profile view instead of a resident
     * workload. sample() is profileWorkload() + this; the streaming
     * path is profileStream() + this — byte-identical results by
     * construction, since the profile is all the sampler ever reads.
     */
    SamplingResult sampleProfile(const WorkloadProfile &profile,
                                 ThreadPool *pool = nullptr) const;

    /**
     * Predict whole-application cycle count from the measured (or
     * simulated) performance of the representatives only.
     *
     * @param result the sampling result for this workload
     * @param workload the workload (for total instruction count)
     * @param per_invocation per-invocation results; only entries at
     *        representative indexes are read
     */
    double predictCycles(
        const SamplingResult &result, const trace::Workload &workload,
        const std::vector<gpu::KernelResult> &per_invocation) const;

    /**
     * Predict application IPC (the weighted harmonic mean of
     * representative IPCs, Section III-D).
     */
    double predictIpc(
        const SamplingResult &result,
        const std::vector<gpu::KernelResult> &per_invocation) const;

    /**
     * predictIpc() when only the representatives were executed:
     * `rep_results[i]` is the result of strata[i]'s representative.
     * Bit-identical to the per-invocation overload on the same
     * values (same strata-order harmonic mean).
     */
    double predictIpcFromReps(
        const SamplingResult &result,
        const std::vector<gpu::KernelResult> &rep_results) const;

    /** predictCycles() from per-stratum representative results. */
    double predictCyclesFromReps(
        const SamplingResult &result, uint64_t total_instructions,
        const std::vector<gpu::KernelResult> &rep_results) const;

  private:
    /**
     * Pick a representative among `positions` (indexes into the
     * kernel view's columns); returns a global invocation index.
     */
    size_t selectRepresentative(const KernelProfileView &kernel,
                                const std::vector<size_t> &positions,
                                Tier tier) const;

    SieveConfig _config;
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_SIEVE_HH
