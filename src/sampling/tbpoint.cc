#include "sampling/tbpoint.hh"

#include <limits>

#include "common/logging.hh"
#include "stats/hierarchical.hh"
#include "stats/kmeans.hh" // squaredDistance

namespace sieve::sampling {

TbPointSampler::TbPointSampler(TbPointConfig config) : _config(config)
{
    if (_config.distanceCutoff <= 0.0)
        fatal("TBPoint distance cutoff must be positive, got ",
              _config.distanceCutoff);
}

SamplingResult
TbPointSampler::sample(const trace::Workload &workload) const
{
    size_t n = workload.numInvocations();
    SIEVE_ASSERT(n > 0, "TBPoint on an empty workload");

    stats::Matrix features(n, trace::kNumPksMetrics);
    for (size_t i = 0; i < n; ++i) {
        auto fv = workload.invocation(i).mix.featureVector();
        for (size_t c = 0; c < fv.size(); ++c)
            features.at(i, c) = fv[c];
    }
    stats::Matrix z = stats::standardizeColumns(features);

    stats::HierarchicalOptions options;
    options.distanceCutoff = _config.distanceCutoff;
    options.maxDendrogramPoints = _config.maxDendrogramPoints;
    options.seed = _config.seed;
    stats::HierarchicalResult clustering =
        stats::hierarchicalCluster(z, options);

    SamplingResult result;
    result.method = "tbpoint";
    result.chosenK = clustering.k();

    std::vector<std::vector<size_t>> clusters(clustering.k());
    for (size_t i = 0; i < n; ++i)
        clusters[clustering.assignments[i]].push_back(i);

    for (size_t c = 0; c < clusters.size(); ++c) {
        if (clusters[c].empty())
            continue;
        Stratum stratum;
        stratum.members = clusters[c];
        stratum.tier = Tier::None;
        stratum.weight = static_cast<double>(clusters[c].size()) /
                         static_cast<double>(n);

        // TBPoint's policy: the member closest to the centroid.
        size_t best = clusters[c].front();
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t idx : clusters[c]) {
            double d = stats::squaredDistance(z, idx,
                                              clustering.centroids, c);
            if (d < best_d) {
                best_d = d;
                best = idx;
            }
        }
        stratum.representative = best;
        result.strata.push_back(std::move(stratum));
    }
    return result;
}

double
TbPointSampler::predictCycles(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    double predicted = 0.0;
    for (const auto &stratum : result.strata) {
        SIEVE_ASSERT(stratum.representative < per_invocation.size(),
                     "representative index out of range");
        predicted += static_cast<double>(stratum.members.size()) *
                     per_invocation[stratum.representative].cycles;
    }
    return predicted;
}

} // namespace sieve::sampling
