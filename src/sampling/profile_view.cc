#include "sampling/profile_view.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace sieve::sampling {

void
WorkloadProfile::addInvocation(const trace::KernelInvocation &inv)
{
    SIEVE_ASSERT(inv.kernelId < kernels.size(),
                 "profile invocation references unknown kernel ",
                 inv.kernelId);
    KernelProfileView &kp = kernels[inv.kernelId];
    kp.members.push_back(static_cast<size_t>(numInvocations));
    kp.instructions.push_back(inv.mix.instructionCount);
    kp.ctaSizes.push_back(inv.launch.ctaSize());
    totalInstructions += inv.mix.instructionCount;
    ++numInvocations;
}

WorkloadProfile
profileWorkload(const trace::Workload &workload)
{
    WorkloadProfile profile;
    profile.suite = workload.suite();
    profile.name = workload.name();
    profile.paperInvocations = workload.paperInvocations();
    profile.kernelNames.reserve(workload.numKernels());
    for (const trace::Kernel &kernel : workload.kernels())
        profile.kernelNames.push_back(kernel.name);
    profile.kernels.resize(workload.numKernels());
    for (const trace::KernelInvocation &inv : workload.invocations())
        profile.addInvocation(inv);
    return profile;
}

Expected<WorkloadProfile>
profileStream(trace::WorkloadStreamReader &reader,
              const trace::IngestBudget &budget)
{
    static obs::Counter &c_profiles =
        obs::counter("ingest.stream.profiles");

    WorkloadProfile profile;
    profile.suite = reader.suite();
    profile.name = reader.name();
    profile.paperInvocations = reader.paperInvocations();
    profile.kernelNames = reader.kernelNames();
    profile.kernels.resize(reader.numKernels());

    reader.rewind();
    std::vector<trace::KernelInvocation> window;
    const size_t window_cap = budget.windowInvocations();
    for (;;) {
        auto got = reader.nextWindow(window, window_cap);
        if (!got)
            return got.error();
        if (got.value() == 0)
            break;
        for (const trace::KernelInvocation &inv : window)
            profile.addInvocation(inv);
    }
    c_profiles.add();
    return profile;
}

} // namespace sieve::sampling
