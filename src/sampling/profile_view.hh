/**
 * @file
 * The profile view: exactly what Sieve's stratification consumes,
 * and nothing more.
 *
 * The sampler never looks at a whole KernelInvocation — only at each
 * invocation's kernel identity, dynamic instruction count, and CTA
 * size (paper Section III: tiering and representative selection are
 * functions of the profiled instruction counts plus launch
 * geometry). `WorkloadProfile` captures that 20-bytes-per-invocation
 * summary in per-kernel columns, which is what makes out-of-core
 * sampling possible: the streaming pipeline folds bounded windows of
 * records into the profile and discards them, so stratifying a
 * workload needs the *profile* resident, never the records.
 *
 * Determinism: both builders append invocations in chronological
 * order, so per-kernel member lists are ascending and every quantity
 * the sampler derives (counts vector, CoV, KDE strata, weights) is
 * bit-identical between profileWorkload() on a resident Workload and
 * profileStream() over the same bytes on disk.
 */

#ifndef SIEVE_SAMPLING_PROFILE_VIEW_HH
#define SIEVE_SAMPLING_PROFILE_VIEW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/workload.hh"
#include "trace/workload_stream.hh"

namespace sieve::sampling {

/** Per-kernel columns, aligned by position; members are ascending. */
struct KernelProfileView
{
    std::vector<size_t> members;        //!< global invocation indexes
    std::vector<uint64_t> instructions; //!< dynamic instruction counts
    std::vector<uint32_t> ctaSizes;     //!< launch.ctaSize()
};

/** The sampler-facing summary of one workload. */
struct WorkloadProfile
{
    std::string suite;
    std::string name;
    uint64_t paperInvocations = 0;
    std::vector<std::string> kernelNames;
    std::vector<KernelProfileView> kernels; //!< indexed by kernel id
    uint64_t numInvocations = 0;
    uint64_t totalInstructions = 0;

    /**
     * Fold the next chronological invocation in. `inv.kernelId` must
     * be within `kernelNames` (loaders validate this).
     */
    void addInvocation(const trace::KernelInvocation &inv);
};

/** One chronological pass over a resident workload. */
WorkloadProfile profileWorkload(const trace::Workload &workload);

/**
 * One streaming pass over a workload file, holding at most one
 * budget-bounded window of records at a time. Rewinds the reader
 * first; leaves it at end of stream.
 */
Expected<WorkloadProfile> profileStream(
    trace::WorkloadStreamReader &reader,
    const trace::IngestBudget &budget);

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_PROFILE_VIEW_HH
