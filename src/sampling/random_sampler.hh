/**
 * @file
 * Uniform random invocation sampling — the statistical floor.
 *
 * Classic simple random sampling (Conte et al.-style for CPUs,
 * Section VI): draw N kernel invocations uniformly without
 * replacement and expand the sampled cycle mass by the sampling
 * ratio. No profiling, no structure — the baseline every structured
 * method must beat per unit of simulated work.
 */

#ifndef SIEVE_SAMPLING_RANDOM_SAMPLER_HH
#define SIEVE_SAMPLING_RANDOM_SAMPLER_HH

#include <cstdint>

#include "gpu/hardware_executor.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Configuration for uniform random sampling. */
struct RandomConfig
{
    /** Invocations drawn (clamped to the workload size). */
    size_t sampleSize = 64;

    /** Seed for the draw. */
    uint64_t seed = 0x5a3d011;
};

/** Uniform random invocation sampler. */
class RandomSampler
{
  public:
    explicit RandomSampler(RandomConfig config = {});

    const RandomConfig &config() const { return _config; }

    /**
     * Draw the sample. Each selected invocation forms a singleton
     * stratum with weight 1/sampleSize.
     */
    SamplingResult sample(const trace::Workload &workload) const;

    /**
     * Expansion estimator: (n_total / n_sample) x sum of sampled
     * cycle counts.
     */
    double predictCycles(
        const SamplingResult &result, const trace::Workload &workload,
        const std::vector<gpu::KernelResult> &per_invocation) const;

  private:
    RandomConfig _config;
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_RANDOM_SAMPLER_HH
