#include "sampling/random_sampler.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sieve::sampling {

RandomSampler::RandomSampler(RandomConfig config) : _config(config)
{
    if (_config.sampleSize == 0)
        fatal("random sampler needs a positive sample size");
}

SamplingResult
RandomSampler::sample(const trace::Workload &workload) const
{
    size_t n = workload.numInvocations();
    SIEVE_ASSERT(n > 0, "random sampling of an empty workload");
    size_t take = std::min(_config.sampleSize, n);

    std::vector<size_t> indexes(n);
    std::iota(indexes.begin(), indexes.end(), 0);
    Rng rng(_config.seed ^ hashLabel(workload.name()));
    rng.shuffle(indexes);
    indexes.resize(take);
    std::sort(indexes.begin(), indexes.end());

    SamplingResult result;
    result.method = "random";
    result.strata.reserve(take);
    for (size_t idx : indexes) {
        Stratum stratum;
        stratum.members = {idx};
        stratum.representative = idx;
        stratum.weight = 1.0 / static_cast<double>(take);
        stratum.kernelId = workload.invocation(idx).kernelId;
        result.strata.push_back(std::move(stratum));
    }
    return result;
}

double
RandomSampler::predictCycles(
    const SamplingResult &result, const trace::Workload &workload,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    SIEVE_ASSERT(!result.strata.empty(), "empty random sample");
    double sampled = 0.0;
    for (const auto &stratum : result.strata)
        sampled += per_invocation[stratum.representative].cycles;
    double expansion = static_cast<double>(workload.numInvocations()) /
                       static_cast<double>(result.strata.size());
    return sampled * expansion;
}

} // namespace sieve::sampling
