#include "sampling/confidence.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/descriptive.hh"

namespace sieve::sampling {

std::vector<std::vector<size_t>>
measurementPlan(const SamplingResult &result, size_t probes)
{
    SIEVE_ASSERT(probes >= 1, "measurement plan needs >= 1 probe");

    std::vector<std::vector<size_t>> plan;
    plan.reserve(result.strata.size());
    for (const Stratum &stratum : result.strata) {
        std::vector<size_t> picks = {stratum.representative};
        // Spread additional probes across the member list so drift
        // within a stratum is straddled rather than sampled at one
        // end.
        size_t n = stratum.members.size();
        for (size_t p = 1; p < probes && picks.size() < n; ++p) {
            size_t idx = stratum.members[(p * (n - 1)) / (probes - 1)];
            if (std::find(picks.begin(), picks.end(), idx) ==
                picks.end())
                picks.push_back(idx);
        }
        plan.push_back(std::move(picks));
    }
    return plan;
}

PredictionInterval
predictWithConfidence(const SamplingResult &result,
                      const trace::Workload &workload,
                      const std::vector<std::vector<size_t>> &plan,
                      const std::vector<gpu::KernelResult> &measured,
                      double z)
{
    SIEVE_ASSERT(plan.size() == result.strata.size(),
                 "plan does not match the sampling result");

    PredictionInterval out;
    double variance = 0.0;

    for (size_t h = 0; h < result.strata.size(); ++h) {
        const Stratum &stratum = result.strata[h];
        const std::vector<size_t> &picks = plan[h];
        SIEVE_ASSERT(!picks.empty(), "empty plan for stratum ", h);

        // Stratum instruction mass.
        double insts_h = 0.0;
        for (size_t idx : stratum.members) {
            insts_h += static_cast<double>(
                workload.invocation(idx).instructions());
        }

        // Measured per-instruction cost (CPI) of the probes.
        stats::Accumulator cpi;
        for (size_t idx : picks) {
            SIEVE_ASSERT(idx < measured.size(),
                         "probe index out of range");
            double insts = static_cast<double>(
                workload.invocation(idx).instructions());
            SIEVE_ASSERT(insts > 0.0, "probe with zero instructions");
            cpi.add(measured[idx].cycles / insts);
        }

        out.predictedCycles += insts_h * cpi.mean();

        // Within-stratum variance contribution (sample variance with
        // Bessel's correction; zero when only one probe exists).
        size_t n_h = picks.size();
        size_t pop_h = stratum.members.size();
        if (n_h >= 2 && pop_h > 1) {
            double s2 = cpi.variance() * static_cast<double>(n_h) /
                        static_cast<double>(n_h - 1);
            double fpc = 1.0 - static_cast<double>(n_h) /
                                   static_cast<double>(pop_h);
            variance += insts_h * insts_h * s2 /
                        static_cast<double>(n_h) * std::max(fpc, 0.0);
        }
    }

    out.standardError = std::sqrt(variance);
    out.halfWidth = z * out.standardError;
    return out;
}

} // namespace sieve::sampling
