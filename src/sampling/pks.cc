#include "sampling/pks.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "stats/reference.hh"

namespace sieve::sampling {

const char *
pksSelectionName(PksSelection s)
{
    switch (s) {
      case PksSelection::FirstChronological:
        return "first";
      case PksSelection::Random:
        return "random";
      case PksSelection::Centroid:
        return "centroid";
    }
    panic("unknown PKS selection ", static_cast<int>(s));
}

PksSampler::PksSampler(PksConfig config) : _config(config)
{
    if (_config.maxK == 0)
        fatal("PKS maxK must be positive");
    if (_config.varianceToKeep <= 0.0 || _config.varianceToKeep > 1.0)
        fatal("PKS varianceToKeep out of (0, 1]: ",
              _config.varianceToKeep);
}

namespace {

/** Select the representative of one cluster under a policy. */
size_t
selectRepresentative(const std::vector<size_t> &members,
                     PksSelection policy, size_t centroid_member,
                     Rng &rng)
{
    SIEVE_ASSERT(!members.empty(), "empty PKS cluster");
    switch (policy) {
      case PksSelection::FirstChronological:
        return members.front();
      case PksSelection::Random:
        return members[static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(members.size()) - 1))];
      case PksSelection::Centroid:
        return centroid_member;
    }
    panic("unknown PKS selection policy");
}

} // namespace

SamplingResult
PksSampler::sample(const trace::Workload &workload,
                   const std::vector<gpu::KernelResult> &golden,
                   ThreadPool *pool) const
{
    static obs::Counter &c_samples =
        obs::counter("sampling.pks.samples");
    static obs::Counter &c_k_evaluated =
        obs::counter("sampling.pks.k_evaluated");
    static obs::Counter &c_clusters =
        obs::counter("sampling.pks.clusters");
    c_samples.add();
    obs::Span span("sampling", "pks:" + workload.name());

    size_t n = workload.numInvocations();
    SIEVE_ASSERT(n > 0, "PKS on an empty workload");
    if (golden.size() != n)
        fatal("PKS golden reference has ", golden.size(),
              " entries for ", n, " invocations");

    double golden_total = 0.0;
    for (const auto &r : golden)
        golden_total += r.cycles;
    // An all-zero (or otherwise degenerate) golden reference must not
    // poison the sweep with 0/0 = NaN relative errors — NaN compares
    // false against everything, which would make the winner scan keep
    // k=1 regardless of the actual clusterings. Fall back to absolute
    // error: the selection still minimizes the same per-cluster
    // deviation, just unnormalized.
    double error_scale = golden_total;
    if (!(error_scale > 0.0)) {
        warn("PKS golden cycle total is ", golden_total, " for '",
             workload.name(),
             "'; k-selection falls back to absolute error");
        error_scale = 1.0;
    }

    // Feature matrix: all 12 Table II characteristics per invocation.
    stats::Matrix features(n, trace::kNumPksMetrics);
    for (size_t i = 0; i < n; ++i) {
        auto fv = workload.invocation(i).mix.featureVector();
        for (size_t c = 0; c < fv.size(); ++c)
            features.at(i, c) = fv[c];
    }

    // Standardize + PCA (Section II-A).
    stats::Pca pca(features, _config.varianceToKeep);
    stats::Matrix reduced = pca.transform(features);

    // Row dedup + per-point norms, built once and shared by every
    // k-means run of the sweep: the projection is the same matrix for
    // all k, so the distinct-row structure and norms are too.
    stats::KMeansContext kmeans_context =
        stats::makeKMeansContext(reduced);

    // Evaluate every k up to maxK against the golden reference and
    // keep the k with the lowest prediction error — PKS' hardware-
    // dependent tuning step. The k evaluations are independent (each
    // derives its randomness from per-k split streams, and all share
    // the one `reduced` projection), so the sweep fans out over the
    // pool; the winner is then chosen by a serial ascending-k scan
    // whose strict `<` keeps the lowest k on exactly tied errors —
    // identical selection to the historical serial loop.
    Rng base_rng(_config.seed ^ hashLabel(workload.name()));

    size_t max_k = std::min(_config.maxK, n);
    c_k_evaluated.add(max_k);
    struct Candidate
    {
        SamplingResult result;
        double error = 0.0;
    };
    auto evaluateK = [&](size_t k) -> Candidate {
        Rng kmeans_rng = base_rng.split("kmeans:" + std::to_string(k));
        stats::KMeansResult clustering = stats::kMeans(
            reduced, k, kmeans_rng, 100, nullptr, &kmeans_context);

        std::vector<std::vector<size_t>> clusters(clustering.k());
        for (size_t i = 0; i < n; ++i)
            clusters[clustering.assignments[i]].push_back(i);

        std::vector<size_t> centroid_members =
            _config.selection == PksSelection::Centroid
                ? clustering.closestToCentroid(reduced)
                : std::vector<size_t>(clustering.k(),
                                      stats::KMeansResult::npos);

        SamplingResult candidate;
        candidate.method = std::string("pks-") +
                           pksSelectionName(_config.selection);
        candidate.chosenK = k;

        Rng select_rng = base_rng.split("select:" + std::to_string(k));
        // k-selection metric: sum of per-cluster absolute prediction
        // errors against the golden reference. Using the per-cluster
        // (not total) error prevents overprediction in one cluster
        // cancelling underprediction in another — the total error is
        // what Section IV later *evaluates*, but a selection that
        // minimized it directly would be trivially near-zero, which
        // is inconsistent with the errors PKA itself reports.
        double abs_error_sum = 0.0;
        for (size_t c = 0; c < clusters.size(); ++c) {
            if (clusters[c].empty())
                continue;
            Stratum stratum;
            stratum.members = clusters[c];
            stratum.tier = Tier::None;
            stratum.representative = selectRepresentative(
                clusters[c], _config.selection, centroid_members[c],
                select_rng);
            stratum.weight = static_cast<double>(clusters[c].size()) /
                             static_cast<double>(n);

            double cluster_pred =
                static_cast<double>(clusters[c].size()) *
                golden[stratum.representative].cycles;
            double cluster_actual = 0.0;
            for (size_t idx : clusters[c])
                cluster_actual += golden[idx].cycles;
            abs_error_sum += std::fabs(cluster_pred - cluster_actual);

            candidate.strata.push_back(std::move(stratum));
        }

        return {std::move(candidate), abs_error_sum / error_scale};
    };

    std::vector<Candidate> candidates;
    if (pool) {
        candidates = parallelMap(*pool, max_k, [&](size_t i) {
            return evaluateK(i + 1);
        });
    } else {
        candidates.reserve(max_k);
        for (size_t k = 1; k <= max_k; ++k)
            candidates.push_back(evaluateK(k));
    }

    SamplingResult best;
    double best_error = -1.0;
    for (Candidate &candidate : candidates) {
        if (best_error < 0.0 || candidate.error < best_error) {
            best_error = candidate.error;
            best = std::move(candidate.result);
        }
    }
    c_clusters.add(best.strata.size());
    return best;
}

SamplingResult
PksSampler::sampleReference(
    const trace::Workload &workload,
    const std::vector<gpu::KernelResult> &golden) const
{
    // Deliberate near-duplicate of sample(): the retained baseline
    // must not share the optimized code paths it exists to check, so
    // it repeats the pipeline with stats::reference::kMeans, no
    // shared context, and a serial sweep. Counters are not bumped —
    // this never runs in production, and double-counting would skew
    // the Stable metrics the CI gate diffs.
    size_t n = workload.numInvocations();
    SIEVE_ASSERT(n > 0, "PKS on an empty workload");
    if (golden.size() != n)
        fatal("PKS golden reference has ", golden.size(),
              " entries for ", n, " invocations");

    double golden_total = 0.0;
    for (const auto &r : golden)
        golden_total += r.cycles;
    double error_scale = golden_total;
    if (!(error_scale > 0.0))
        error_scale = 1.0;

    stats::Matrix features(n, trace::kNumPksMetrics);
    for (size_t i = 0; i < n; ++i) {
        auto fv = workload.invocation(i).mix.featureVector();
        for (size_t c = 0; c < fv.size(); ++c)
            features.at(i, c) = fv[c];
    }

    stats::Pca pca(features, _config.varianceToKeep);
    stats::Matrix reduced = pca.transform(features);

    Rng base_rng(_config.seed ^ hashLabel(workload.name()));

    size_t max_k = std::min(_config.maxK, n);
    SamplingResult best;
    double best_error = -1.0;
    for (size_t k = 1; k <= max_k; ++k) {
        Rng kmeans_rng = base_rng.split("kmeans:" + std::to_string(k));
        stats::KMeansResult clustering =
            stats::reference::kMeans(reduced, k, kmeans_rng);

        std::vector<std::vector<size_t>> clusters(clustering.k());
        for (size_t i = 0; i < n; ++i)
            clusters[clustering.assignments[i]].push_back(i);

        std::vector<size_t> centroid_members =
            _config.selection == PksSelection::Centroid
                ? clustering.closestToCentroid(reduced)
                : std::vector<size_t>(clustering.k(),
                                      stats::KMeansResult::npos);

        SamplingResult candidate;
        candidate.method = std::string("pks-") +
                           pksSelectionName(_config.selection);
        candidate.chosenK = k;

        Rng select_rng = base_rng.split("select:" + std::to_string(k));
        double abs_error_sum = 0.0;
        for (size_t c = 0; c < clusters.size(); ++c) {
            if (clusters[c].empty())
                continue;
            Stratum stratum;
            stratum.members = clusters[c];
            stratum.tier = Tier::None;
            stratum.representative = selectRepresentative(
                clusters[c], _config.selection, centroid_members[c],
                select_rng);
            stratum.weight = static_cast<double>(clusters[c].size()) /
                             static_cast<double>(n);

            double cluster_pred =
                static_cast<double>(clusters[c].size()) *
                golden[stratum.representative].cycles;
            double cluster_actual = 0.0;
            for (size_t idx : clusters[c])
                cluster_actual += golden[idx].cycles;
            abs_error_sum += std::fabs(cluster_pred - cluster_actual);

            candidate.strata.push_back(std::move(stratum));
        }

        double error = abs_error_sum / error_scale;
        if (best_error < 0.0 || error < best_error) {
            best_error = error;
            best = std::move(candidate);
        }
    }
    return best;
}

double
PksSampler::predictCycles(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    double predicted = 0.0;
    for (const auto &stratum : result.strata) {
        SIEVE_ASSERT(stratum.representative < per_invocation.size(),
                     "representative index out of range");
        predicted += static_cast<double>(stratum.members.size()) *
                     per_invocation[stratum.representative].cycles;
    }
    return predicted;
}

} // namespace sieve::sampling
