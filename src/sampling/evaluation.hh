/**
 * @file
 * Sampling-method evaluation: the accuracy, speedup, and dispersion
 * metrics of Section IV-3 and Figs. 3-6.
 *
 *   Error   = |C_predicted - C_measured| / C_measured
 *   Speedup = total cycles of the full run / total cycles of the
 *             representative invocations (i.e. the simulation-time
 *             reduction a simulator would see)
 *   Dispersion = weighted average CoV of cycle counts within each
 *             stratum/cluster (Fig. 4)
 */

#ifndef SIEVE_SAMPLING_EVALUATION_HH
#define SIEVE_SAMPLING_EVALUATION_HH

#include <string>
#include <vector>

#include "gpu/hardware_executor.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Evaluation of one sampling method on one workload. */
struct MethodEvaluation
{
    std::string method;
    double predictedCycles = 0.0;
    double measuredCycles = 0.0;
    double error = 0.0;          //!< relative prediction error
    double speedup = 0.0;        //!< simulation speedup
    size_t numRepresentatives = 0;
    double weightedClusterCov = 0.0; //!< Fig. 4 dispersion metric
};

/**
 * Evaluate a sampling result given its prediction and the golden
 * per-invocation results.
 */
MethodEvaluation evaluate(
    const SamplingResult &result, double predicted_cycles,
    const std::vector<gpu::KernelResult> &golden);

/**
 * The Fig. 4 metric: the average CoV of cycle counts within each
 * stratum/cluster, weighted by stratum member count.
 */
double weightedClusterCycleCov(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &golden);

/**
 * Simulation speedup: total measured cycles divided by the cycles
 * spent in representative invocations only.
 */
double simulationSpeedup(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &golden);

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_EVALUATION_HH
