/**
 * @file
 * TBPoint-style baseline sampler (Huang et al., IPDPS 2014).
 *
 * The pre-PKS state of the art the paper covers in Section VI:
 * kernel invocations are characterized by a broad set of execution
 * characteristics and grouped with *hierarchical* clustering (cut at
 * a similarity threshold) rather than k-means. One representative is
 * simulated per group; application performance is predicted as an
 * invocation-count-weighted sum of representative cycle counts, as
 * for PKS. Implemented here so the three generations of GPU sampling
 * (TBPoint -> PKS -> Sieve) can be compared on the same workloads.
 */

#ifndef SIEVE_SAMPLING_TBPOINT_HH
#define SIEVE_SAMPLING_TBPOINT_HH

#include <cstdint>

#include "gpu/hardware_executor.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Configuration for the TBPoint-style sampler. */
struct TbPointConfig
{
    /**
     * Dendrogram cut: merges above this distance (in standardized
     * feature space, average linkage) are rejected. Smaller values
     * give more clusters and higher fidelity.
     */
    double distanceCutoff = 1.0;

    /** Dendrogram subsample bound (hierarchical clustering is
     *  quadratic; see stats/hierarchical.hh). */
    size_t maxDendrogramPoints = 2000;

    /** Seed for the subsample draw. */
    uint64_t seed = 0x7b901717;
};

/** The TBPoint-style hierarchical-clustering sampler. */
class TbPointSampler
{
  public:
    explicit TbPointSampler(TbPointConfig config = {});

    const TbPointConfig &config() const { return _config; }

    /**
     * Cluster a workload and select representatives (closest to each
     * cluster centroid, TBPoint's policy). Unlike PKS, no golden
     * reference is consulted — the cut threshold is fixed a priori.
     */
    SamplingResult sample(const trace::Workload &workload) const;

    /** Invocation-count-weighted sum of representative cycles. */
    double predictCycles(
        const SamplingResult &result,
        const std::vector<gpu::KernelResult> &per_invocation) const;

  private:
    TbPointConfig _config;
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_TBPOINT_HH
