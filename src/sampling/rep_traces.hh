/**
 * @file
 * Tiered per-stratum representative traces.
 *
 * Section V-G of the paper materializes one SASS trace per selected
 * representative. This module is the memory-aware version of that
 * step: each stratum's representative invocation is synthesized,
 * converted to the columnar form (trace/columnar.hh), and parked in
 * a private `TraceTierPool` (trace/tier.hh) — so only the strata a
 * consumer actually pins are decoded, and everything else lives as a
 * compressed blob under the LRU budget.
 *
 * One `RepresentativeTraces` instance owns one pool. Builders and
 * consumers drive the pool's insert/pin sequence deterministically
 * (strata are processed in stratum order), which is what keeps the
 * Stable trace.* counters --jobs-invariant when many instances are
 * built in parallel (see the determinism contract in trace/tier.hh).
 */

#ifndef SIEVE_SAMPLING_REP_TRACES_HH
#define SIEVE_SAMPLING_REP_TRACES_HH

#include <cstdint>
#include <vector>

#include "gpusim/trace_synth.hh"
#include "sampling/sample.hh"
#include "trace/tier.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Aggregate footprint of one workload's representative traces. */
struct RepTraceSetStats
{
    size_t strata = 0;           //!< traces in the set
    uint64_t instructions = 0;   //!< total traced warp instructions
    size_t aosBytes = 0;         //!< modeled AoS footprint
    size_t columnarBytes = 0;    //!< decoded columnar footprint
    size_t blobBytes = 0;        //!< compressed (cold) footprint
    size_t dictionaryEntries = 0; //!< summed dictionary sizes
    size_t hotTraces = 0;        //!< currently decoded
    size_t coldTraces = 0;       //!< currently hibernated

    /** columnarBytes / instructions (0 when empty). */
    double bytesPerInstruction() const;
};

/**
 * The tiered trace set of one workload's sampling result: one
 * TraceHandle per stratum, in stratum order, backed by a private
 * tier pool.
 */
class RepresentativeTraces
{
  public:
    /**
     * One stratum representative: the kernel name plus the full
     * invocation record, which is all synthesis reads. The streaming
     * pipeline materializes exactly these from a second bounded pass
     * over the workload file.
     */
    struct RepInvocation
    {
        std::string kernelName;
        trace::KernelInvocation invocation;
    };

    /**
     * Synthesize, columnarize, and tier every stratum's
     * representative trace. With `store`, cold forms land in the
     * digest-sharded store (deduplicated at rest) instead of private
     * per-slot blobs.
     */
    RepresentativeTraces(
        const trace::Workload &workload, const SamplingResult &result,
        gpusim::TraceSynthOptions synth = {},
        trace::TierConfig tier = trace::TierConfig::fromEnv(),
        trace::ShardStore *store = nullptr);

    /**
     * Out-of-core variant: build from pre-fetched representative
     * records, one per stratum in stratum order. Produces the same
     * traces (and the same insert sequence, hence the same Stable
     * trace.* counters) as the Workload constructor on equivalent
     * input.
     */
    explicit RepresentativeTraces(
        const std::vector<RepInvocation> &reps,
        gpusim::TraceSynthOptions synth = {},
        trace::TierConfig tier = trace::TierConfig::fromEnv(),
        trace::ShardStore *store = nullptr);

    /** Handles in stratum order. */
    const std::vector<trace::TraceHandle> &handles() const
    {
        return _handles;
    }

    const trace::TraceHandle &
    handle(size_t stratum) const
    {
        return _handles[stratum];
    }

    size_t size() const { return _handles.size(); }

    /** The backing pool (for occupancy / budget queries). */
    const trace::TraceTierPool &pool() const { return _pool; }

    /** Build-time footprint totals + current tier occupancy. */
    RepTraceSetStats stats() const;

  private:
    trace::TraceTierPool _pool;
    std::vector<trace::TraceHandle> _handles;
    RepTraceSetStats _build; //!< totals accumulated during build
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_REP_TRACES_HH
