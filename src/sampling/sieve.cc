#include "sampling/sieve.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"
#include "stats/weighted.hh"

namespace sieve::sampling {

SieveSampler::SieveSampler(SieveConfig config) : _config(config)
{
    if (_config.theta <= 0.0)
        fatal("Sieve theta must be positive, got ", _config.theta);
}

size_t
SieveSampler::selectRepresentative(const trace::Workload &workload,
                                   const std::vector<size_t> &members,
                                   Tier tier) const
{
    SIEVE_ASSERT(!members.empty(), "empty stratum");

    // Members are ascending by invocation index, which is
    // chronological order; the first entry is the first-chronological
    // invocation.
    if (tier == Tier::Tier1 ||
        _config.selection == SieveSelection::FirstChronological)
        return members.front();

    if (_config.selection == SieveSelection::MaxCta) {
        uint32_t max_cta = 0;
        for (size_t idx : members) {
            max_cta = std::max(max_cta,
                               workload.invocation(idx).launch.ctaSize());
        }
        for (size_t idx : members) {
            if (workload.invocation(idx).launch.ctaSize() == max_cta)
                return idx;
        }
    }

    // Default policy: dominant (most frequent) CTA size, then first
    // chronological among invocations with that size.
    std::map<uint32_t, size_t> cta_counts;
    for (size_t idx : members)
        ++cta_counts[workload.invocation(idx).launch.ctaSize()];

    uint32_t dominant = 0;
    size_t best_count = 0;
    for (const auto &[size, count] : cta_counts) {
        if (count > best_count) {
            best_count = count;
            dominant = size;
        }
    }
    for (size_t idx : members) {
        if (workload.invocation(idx).launch.ctaSize() == dominant)
            return idx;
    }
    return members.front(); // unreachable; keeps the compiler content
}

SamplingResult
SieveSampler::sample(const trace::Workload &workload,
                     ThreadPool *pool) const
{
    static obs::Counter &c_samples =
        obs::counter("sampling.sieve.samples");
    static obs::Counter &c_tier1 =
        obs::counter("sampling.sieve.strata.tier1");
    static obs::Counter &c_tier2 =
        obs::counter("sampling.sieve.strata.tier2");
    static obs::Counter &c_tier3 =
        obs::counter("sampling.sieve.strata.tier3");
    c_samples.add();
    obs::Span span("sampling", "sieve:" + workload.name());

    SamplingResult result;
    result.method = "sieve";
    result.theta = _config.theta;

    uint64_t total_insts = workload.totalInstructions();
    SIEVE_ASSERT(total_insts > 0, "workload with zero instructions");

    for (uint32_t k = 0; k < workload.numKernels(); ++k) {
        std::vector<size_t> members = workload.invocationsOfKernel(k);
        if (members.empty())
            continue;

        std::vector<double> counts;
        counts.reserve(members.size());
        for (size_t idx : members) {
            counts.push_back(static_cast<double>(
                workload.invocation(idx).instructions()));
        }

        // Tier the kernel by instruction-count variability.
        bool all_equal = std::all_of(
            counts.begin(), counts.end(),
            [&](double c) { return c == counts.front(); });
        double cov = stats::coefficientOfVariation(counts);

        if (all_equal || cov < _config.theta) {
            Tier tier = all_equal ? Tier::Tier1 : Tier::Tier2;
            Stratum stratum;
            stratum.members = members;
            stratum.kernelId = k;
            stratum.tier = tier;
            stratum.representative =
                selectRepresentative(workload, members, tier);
            result.strata.push_back(std::move(stratum));
            (tier == Tier::Tier1 ? c_tier1 : c_tier2).add();
            continue;
        }

        // Tier-3: KDE sub-stratification until each stratum's CoV is
        // below theta.
        std::vector<size_t> labels =
            stats::stratifyByDensity(counts, _config.theta, pool);
        size_t n_strata = stats::numStrata(labels);

        std::vector<std::vector<size_t>> groups(n_strata);
        for (size_t i = 0; i < members.size(); ++i)
            groups[labels[i]].push_back(members[i]);

        for (auto &group : groups) {
            if (group.empty())
                continue;
            Stratum stratum;
            stratum.members = std::move(group);
            stratum.kernelId = k;
            stratum.tier = Tier::Tier3;
            stratum.representative = selectRepresentative(
                workload, stratum.members, Tier::Tier3);
            result.strata.push_back(std::move(stratum));
            c_tier3.add();
        }
    }

    // Weights: stratum instruction count over total instruction count.
    for (auto &stratum : result.strata) {
        uint64_t insts = 0;
        for (size_t idx : stratum.members)
            insts += workload.invocation(idx).instructions();
        stratum.weight = static_cast<double>(insts) /
                         static_cast<double>(total_insts);
    }
    return result;
}

double
SieveSampler::predictIpc(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    std::vector<double> ipcs;
    std::vector<double> weights;
    ipcs.reserve(result.strata.size());
    weights.reserve(result.strata.size());
    for (const auto &stratum : result.strata) {
        SIEVE_ASSERT(stratum.representative < per_invocation.size(),
                     "representative index out of range");
        ipcs.push_back(per_invocation[stratum.representative].ipc);
        weights.push_back(stratum.weight);
    }
    return stats::weightedHarmonicMean(ipcs, weights);
}

double
SieveSampler::predictCycles(
    const SamplingResult &result, const trace::Workload &workload,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    double ipc = predictIpc(result, per_invocation);
    SIEVE_ASSERT(ipc > 0.0, "non-positive predicted IPC");
    return static_cast<double>(workload.totalInstructions()) / ipc;
}

} // namespace sieve::sampling
