#include "sampling/sieve.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"
#include "stats/weighted.hh"

namespace sieve::sampling {

SieveSampler::SieveSampler(SieveConfig config) : _config(config)
{
    if (_config.theta <= 0.0)
        fatal("Sieve theta must be positive, got ", _config.theta);
}

size_t
SieveSampler::selectRepresentative(
    const KernelProfileView &kernel,
    const std::vector<size_t> &positions, Tier tier) const
{
    SIEVE_ASSERT(!positions.empty(), "empty stratum");

    // Positions are ascending, and members are ascending by
    // invocation index, which is chronological order; the first
    // entry is the first-chronological invocation.
    if (tier == Tier::Tier1 ||
        _config.selection == SieveSelection::FirstChronological)
        return kernel.members[positions.front()];

    if (_config.selection == SieveSelection::MaxCta) {
        uint32_t max_cta = 0;
        for (size_t pos : positions)
            max_cta = std::max(max_cta, kernel.ctaSizes[pos]);
        for (size_t pos : positions) {
            if (kernel.ctaSizes[pos] == max_cta)
                return kernel.members[pos];
        }
    }

    // Default policy: dominant (most frequent) CTA size, then first
    // chronological among invocations with that size.
    std::map<uint32_t, size_t> cta_counts;
    for (size_t pos : positions)
        ++cta_counts[kernel.ctaSizes[pos]];

    uint32_t dominant = 0;
    size_t best_count = 0;
    for (const auto &[size, count] : cta_counts) {
        if (count > best_count) {
            best_count = count;
            dominant = size;
        }
    }
    for (size_t pos : positions) {
        if (kernel.ctaSizes[pos] == dominant)
            return kernel.members[pos];
    }
    // unreachable; keeps the compiler content
    return kernel.members[positions.front()];
}

SamplingResult
SieveSampler::sample(const trace::Workload &workload,
                     ThreadPool *pool) const
{
    return sampleProfile(profileWorkload(workload), pool);
}

SamplingResult
SieveSampler::sampleProfile(const WorkloadProfile &profile,
                            ThreadPool *pool) const
{
    static obs::Counter &c_samples =
        obs::counter("sampling.sieve.samples");
    static obs::Counter &c_tier1 =
        obs::counter("sampling.sieve.strata.tier1");
    static obs::Counter &c_tier2 =
        obs::counter("sampling.sieve.strata.tier2");
    static obs::Counter &c_tier3 =
        obs::counter("sampling.sieve.strata.tier3");
    c_samples.add();
    obs::Span span("sampling", "sieve:" + profile.name);

    SamplingResult result;
    result.method = "sieve";
    result.theta = _config.theta;

    uint64_t total_insts = profile.totalInstructions;
    SIEVE_ASSERT(total_insts > 0, "workload with zero instructions");

    for (uint32_t k = 0; k < profile.kernels.size(); ++k) {
        const KernelProfileView &kernel = profile.kernels[k];
        if (kernel.members.empty())
            continue;
        const size_t n = kernel.members.size();

        std::vector<double> counts;
        counts.reserve(n);
        for (uint64_t insts : kernel.instructions)
            counts.push_back(static_cast<double>(insts));

        // Tier the kernel by instruction-count variability.
        bool all_equal = std::all_of(
            counts.begin(), counts.end(),
            [&](double c) { return c == counts.front(); });
        double cov = stats::coefficientOfVariation(counts);

        if (all_equal || cov < _config.theta) {
            Tier tier = all_equal ? Tier::Tier1 : Tier::Tier2;
            std::vector<size_t> positions(n);
            std::iota(positions.begin(), positions.end(), size_t{0});
            Stratum stratum;
            stratum.members = kernel.members;
            stratum.kernelId = k;
            stratum.tier = tier;
            stratum.representative =
                selectRepresentative(kernel, positions, tier);
            result.strata.push_back(std::move(stratum));
            (tier == Tier::Tier1 ? c_tier1 : c_tier2).add();
            continue;
        }

        // Tier-3: KDE sub-stratification until each stratum's CoV is
        // below theta.
        std::vector<size_t> labels =
            stats::stratifyByDensity(counts, _config.theta, pool);
        size_t n_strata = stats::numStrata(labels);

        std::vector<std::vector<size_t>> groups(n_strata);
        for (size_t i = 0; i < n; ++i)
            groups[labels[i]].push_back(i);

        for (auto &group : groups) {
            if (group.empty())
                continue;
            Stratum stratum;
            stratum.kernelId = k;
            stratum.tier = Tier::Tier3;
            stratum.representative =
                selectRepresentative(kernel, group, Tier::Tier3);
            stratum.members.reserve(group.size());
            for (size_t pos : group)
                stratum.members.push_back(kernel.members[pos]);
            result.strata.push_back(std::move(stratum));
            c_tier3.add();
        }
    }

    // Weights: stratum instruction count over total instruction count.
    // Summed in member (chronological) order, exactly as the resident
    // path always has.
    for (auto &stratum : result.strata) {
        const KernelProfileView &kernel =
            profile.kernels[stratum.kernelId];
        uint64_t insts = 0;
        size_t pos = 0;
        for (size_t idx : stratum.members) {
            while (kernel.members[pos] != idx)
                ++pos;
            insts += kernel.instructions[pos];
        }
        stratum.weight = static_cast<double>(insts) /
                         static_cast<double>(total_insts);
    }
    return result;
}

double
SieveSampler::predictIpc(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    std::vector<double> ipcs;
    std::vector<double> weights;
    ipcs.reserve(result.strata.size());
    weights.reserve(result.strata.size());
    for (const auto &stratum : result.strata) {
        SIEVE_ASSERT(stratum.representative < per_invocation.size(),
                     "representative index out of range");
        ipcs.push_back(per_invocation[stratum.representative].ipc);
        weights.push_back(stratum.weight);
    }
    return stats::weightedHarmonicMean(ipcs, weights);
}

double
SieveSampler::predictIpcFromReps(
    const SamplingResult &result,
    const std::vector<gpu::KernelResult> &rep_results) const
{
    SIEVE_ASSERT(rep_results.size() == result.strata.size(),
                 "one representative result per stratum expected");
    std::vector<double> ipcs;
    std::vector<double> weights;
    ipcs.reserve(result.strata.size());
    weights.reserve(result.strata.size());
    for (size_t s = 0; s < result.strata.size(); ++s) {
        ipcs.push_back(rep_results[s].ipc);
        weights.push_back(result.strata[s].weight);
    }
    return stats::weightedHarmonicMean(ipcs, weights);
}

double
SieveSampler::predictCycles(
    const SamplingResult &result, const trace::Workload &workload,
    const std::vector<gpu::KernelResult> &per_invocation) const
{
    double ipc = predictIpc(result, per_invocation);
    SIEVE_ASSERT(ipc > 0.0, "non-positive predicted IPC");
    return static_cast<double>(workload.totalInstructions()) / ipc;
}

double
SieveSampler::predictCyclesFromReps(
    const SamplingResult &result, uint64_t total_instructions,
    const std::vector<gpu::KernelResult> &rep_results) const
{
    double ipc = predictIpcFromReps(result, rep_results);
    SIEVE_ASSERT(ipc > 0.0, "non-positive predicted IPC");
    return static_cast<double>(total_instructions) / ipc;
}

} // namespace sieve::sampling
