#include "sampling/rep_traces.hh"

#include "trace/columnar.hh"

namespace sieve::sampling {

double
RepTraceSetStats::bytesPerInstruction() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(columnarBytes) /
           static_cast<double>(instructions);
}

RepresentativeTraces::RepresentativeTraces(
    const trace::Workload &workload, const SamplingResult &result,
    gpusim::TraceSynthOptions synth, trace::TierConfig tier)
    : _pool(tier)
{
    _handles.reserve(result.strata.size());
    for (const Stratum &stratum : result.strata) {
        trace::ColumnarTrace columnar = trace::toColumnar(
            gpusim::synthesizeTrace(workload, stratum.representative,
                                    synth));
        ++_build.strata;
        _build.instructions += columnar.numInstructions();
        _build.aosBytes += trace::aosFootprintBytes(columnar);
        _build.columnarBytes += columnar.residentBytes();
        _build.dictionaryEntries += columnar.dictionary.size();
        _handles.push_back(_pool.insert(std::move(columnar)));
    }
}

RepTraceSetStats
RepresentativeTraces::stats() const
{
    RepTraceSetStats out = _build;
    trace::TraceTierPool::Occupancy occ = _pool.occupancy();
    out.blobBytes = occ.blobBytes;
    out.hotTraces = occ.hotTraces;
    out.coldTraces = occ.coldTraces;
    return out;
}

} // namespace sieve::sampling
