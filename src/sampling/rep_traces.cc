#include "sampling/rep_traces.hh"

#include "gpusim/sim_cache.hh"
#include "trace/columnar.hh"

namespace sieve::sampling {

double
RepTraceSetStats::bytesPerInstruction() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(columnarBytes) /
           static_cast<double>(instructions);
}

namespace {

/**
 * Park one representative's columnar trace: account the build stats,
 * then insert into the pool — store-backed (content-addressed, dedup
 * at rest) when a ShardStore was supplied, private blob otherwise.
 */
trace::TraceHandle
tierTrace(trace::TraceTierPool &pool, trace::ShardStore *store,
          trace::ColumnarTrace columnar, RepTraceSetStats &build)
{
    ++build.strata;
    build.instructions += columnar.numInstructions();
    build.aosBytes += trace::aosFootprintBytes(columnar);
    build.columnarBytes += columnar.residentBytes();
    build.dictionaryEntries += columnar.dictionary.size();
    if (store != nullptr) {
        trace::BlobDigest digest =
            gpusim::toBlobDigest(gpusim::digestTrace(columnar));
        return pool.insert(std::move(columnar), digest);
    }
    return pool.insert(std::move(columnar));
}

} // namespace

RepresentativeTraces::RepresentativeTraces(
    const trace::Workload &workload, const SamplingResult &result,
    gpusim::TraceSynthOptions synth, trace::TierConfig tier,
    trace::ShardStore *store)
    : _pool(store != nullptr ? trace::TraceTierPool(tier, *store)
                             : trace::TraceTierPool(tier))
{
    _handles.reserve(result.strata.size());
    for (const Stratum &stratum : result.strata) {
        trace::ColumnarTrace columnar = trace::toColumnar(
            gpusim::synthesizeTrace(workload, stratum.representative,
                                    synth));
        _handles.push_back(
            tierTrace(_pool, store, std::move(columnar), _build));
    }
}

RepresentativeTraces::RepresentativeTraces(
    const std::vector<RepInvocation> &reps,
    gpusim::TraceSynthOptions synth, trace::TierConfig tier,
    trace::ShardStore *store)
    : _pool(store != nullptr ? trace::TraceTierPool(tier, *store)
                             : trace::TraceTierPool(tier))
{
    _handles.reserve(reps.size());
    for (const RepInvocation &rep : reps) {
        trace::ColumnarTrace columnar =
            trace::toColumnar(gpusim::synthesizeTrace(
                rep.kernelName, rep.invocation, synth));
        _handles.push_back(
            tierTrace(_pool, store, std::move(columnar), _build));
    }
}

RepTraceSetStats
RepresentativeTraces::stats() const
{
    RepTraceSetStats out = _build;
    trace::TraceTierPool::Occupancy occ = _pool.occupancy();
    out.blobBytes = occ.blobBytes;
    out.hotTraces = occ.hotTraces;
    out.coldTraces = occ.coldTraces;
    return out;
}

} // namespace sieve::sampling
