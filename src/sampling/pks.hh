/**
 * @file
 * Principal Kernel Selection (PKS) — the state-of-the-art baseline
 * (Baddouh et al., MICRO 2021), as described in paper Section II-A.
 *
 * Pipeline:
 *  1. Profile all 12 microarchitecture-independent characteristics
 *     per kernel invocation (Table II).
 *  2. Standardize and apply PCA to reduce dimensionality.
 *  3. k-means-cluster the invocations in the reduced space. The
 *     cluster count k is chosen by evaluating every k up to 20 and
 *     keeping the one that minimizes prediction error against a
 *     golden cycle count measured on real hardware — the
 *     hardware-dependence the paper criticizes (Section II-B).
 *  4. Select one representative invocation per cluster: first
 *     chronological by default; random and closest-to-centroid are
 *     the alternatives studied in Fig. 5.
 *  5. Predict application cycles as the sum over clusters of
 *     (cluster invocation count) x (representative cycle count).
 */

#ifndef SIEVE_SAMPLING_PKS_HH
#define SIEVE_SAMPLING_PKS_HH

#include <cstdint>
#include <vector>

#include "common/thread_pool.hh"
#include "gpu/hardware_executor.hh"
#include "sampling/sample.hh"
#include "trace/workload.hh"

namespace sieve::sampling {

/** Representative selection policies studied in Fig. 5. */
enum class PksSelection : uint8_t {
    FirstChronological, //!< PKS default ("PKS-first")
    Random,             //!< uniform random cluster member
    Centroid,           //!< member closest to the cluster centroid
};

/** Name of a PKS selection policy. */
const char *pksSelectionName(PksSelection s);

/** Configuration for the PKS sampler. */
struct PksConfig
{
    /** Maximum cluster count evaluated during k selection. */
    size_t maxK = 20;

    /** Fraction of variance PCA must retain. */
    double varianceToKeep = 0.9;

    /** Representative selection policy. */
    PksSelection selection = PksSelection::FirstChronological;

    /** Seed for k-means++ and random selection. */
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/** The PKS clustering sampler. */
class PksSampler
{
  public:
    explicit PksSampler(PksConfig config = {});

    const PksConfig &config() const { return _config; }

    /**
     * Cluster a workload and select representatives.
     *
     * The standardized/PCA-projected feature matrix is computed once
     * and shared across the whole k sweep; with a pool, the sweep's
     * independent k evaluations fan out via parallelMap (each k
     * derives its randomness from per-k split streams, so the chosen
     * k and clustering are byte-identical at any worker count).
     *
     * @param workload the profiled workload
     * @param golden per-invocation golden cycle counts measured on
     *        real hardware — required by PKS' k-selection step. Must
     *        align index-for-index with workload.invocations().
     * @param pool optional worker pool for the k sweep
     */
    SamplingResult sample(
        const trace::Workload &workload,
        const std::vector<gpu::KernelResult> &golden,
        ThreadPool *pool = nullptr) const;

    /**
     * Retained serial baseline of sample(): the same pipeline with
     * the k sweep run serially over stats::reference::kMeans (no row
     * dedup, no bounds pruning, no shared context). Byte-identical to
     * sample() by the determinism contract — the perf-oracle tests
     * assert it, and bench_perf times optimized-vs-this to report the
     * pksSample speedup. Not called by the production pipeline.
     */
    SamplingResult sampleReference(
        const trace::Workload &workload,
        const std::vector<gpu::KernelResult> &golden) const;

    /**
     * PKS prediction: weighted sum of representative cycle counts
     * with invocation-count weights (Section II-A).
     */
    double predictCycles(
        const SamplingResult &result,
        const std::vector<gpu::KernelResult> &per_invocation) const;

  private:
    PksConfig _config;
};

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_PKS_HH
