/**
 * @file
 * The CSV-driven Sieve back-end.
 *
 * The paper's released tooling is a set of scripts: the profiler
 * writes "a readable CSV file which serves as input to PKS and Sieve"
 * (Section IV-3), and the Sieve back-end turns that CSV into the list
 * of representative kernel invocations and weights. This module is
 * that back-end: it consumes only the four profile columns (kernel,
 * invocation, instruction count, CTA size) — no Workload object, no
 * hidden state — and emits the same stratification the in-memory
 * sampler produces. A test asserts the two paths agree exactly.
 */

#ifndef SIEVE_SAMPLING_SIEVE_CSV_HH
#define SIEVE_SAMPLING_SIEVE_CSV_HH

#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/error.hh"
#include "sampling/sample.hh"
#include "sampling/sieve.hh"
#include "trace/profile_io.hh"

namespace sieve::sampling {

/** One selected representative, as the script pipeline reports it. */
struct CsvRepresentative
{
    std::string kernelName;
    uint64_t invocationId = 0;  //!< global chronological id
    Tier tier = Tier::None;
    size_t stratumSize = 0;     //!< invocations it stands for
    double weight = 0.0;        //!< instruction-count share
};

/** Output of the CSV back-end. */
struct CsvSamplingResult
{
    std::vector<CsvRepresentative> representatives;
    uint64_t totalInstructions = 0;

    /** Serialize as the representative-list CSV the tooling ships. */
    CsvTable toCsv() const;
};

/**
 * Run Sieve stratification over parsed profile rows. An empty
 * profile, a non-positive theta, or a zero total instruction count
 * is a ValidationError.
 */
Expected<CsvSamplingResult> trySieveFromProfile(
    const std::vector<trace::SieveProfileRow> &rows,
    SieveConfig config = {});

/** Parse a profile CSV table and stratify it, recoverably. */
Expected<CsvSamplingResult> trySieveFromProfileCsv(
    const CsvTable &table, SieveConfig config = {});

/**
 * Run Sieve stratification over parsed profile rows.
 * Rows must be in chronological (invocationId) order, as the
 * profiler emits them. fatal() on invalid input.
 */
CsvSamplingResult sieveFromProfile(
    const std::vector<trace::SieveProfileRow> &rows,
    SieveConfig config = {});

/** Convenience: parse a profile CSV table and stratify it. */
CsvSamplingResult sieveFromProfileCsv(const CsvTable &table,
                                      SieveConfig config = {});

} // namespace sieve::sampling

#endif // SIEVE_SAMPLING_SIEVE_CSV_HH
