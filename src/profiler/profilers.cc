#include "profiler/profilers.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "trace/instruction_mix.hh"
#include "trace/profile_io.hh"

namespace sieve::profiler {

namespace {

/** Paper-scale extrapolation factor for a generated workload. */
double
paperScale(const trace::Workload &workload)
{
    if (workload.paperInvocations() == 0 ||
        workload.numInvocations() == 0)
        return 1.0;
    return static_cast<double>(workload.paperInvocations()) /
           static_cast<double>(workload.numInvocations());
}

} // namespace

NvbitProfiler::NvbitProfiler(ProfilingCostParams params)
    : _params(params)
{
}

CsvTable
NvbitProfiler::collect(const trace::Workload &workload) const
{
    static obs::Counter &c_collects =
        obs::counter("profiler.nvbit.collects");
    c_collects.add();
    obs::Span span("profiler", "nvbit:" + workload.name());
    return trace::sieveProfileTable(workload);
}

Expected<CsvTable>
NvbitProfiler::collectStream(trace::WorkloadStreamReader &reader,
                             const trace::IngestBudget &budget) const
{
    static obs::Counter &c_collects =
        obs::counter("profiler.nvbit.collects");
    c_collects.add();
    obs::Span span("profiler", "nvbit:" + reader.name());

    CsvTable table = trace::emptySieveProfileTable();
    reader.rewind();
    std::vector<trace::KernelInvocation> window;
    while (true) {
        Expected<size_t> got =
            reader.nextWindow(window, budget.windowInvocations());
        if (!got.ok())
            return got.error();
        if (got.value() == 0)
            break;
        for (size_t i = 0; i < got.value(); ++i)
            trace::appendSieveProfileRow(
                table, reader.kernelNames()[window[i].kernelId],
                window[i]);
    }
    return table;
}

double
NvbitProfiler::collectionHours(const trace::Workload &workload,
                               const gpu::WorkloadResult &golden) const
{
    return hoursFromInstrumentedUs(
        workload,
        accumulateGoldenCosts(workload, golden, _params)
            .nvbitInstrumentedUs);
}

double
NvbitProfiler::hoursFromInstrumentedUs(const trace::Workload &workload,
                                       double instrumented_us) const
{
    return instrumented_us * paperScale(workload) / 3.6e9;
}

NsightProfiler::NsightProfiler(ProfilingCostParams params)
    : _params(params)
{
}

CsvTable
NsightProfiler::collect(const trace::Workload &workload) const
{
    static obs::Counter &c_collects =
        obs::counter("profiler.nsight.collects");
    c_collects.add();
    obs::Span span("profiler", "nsight:" + workload.name());
    return trace::pksProfileTable(workload);
}

uint32_t
NsightProfiler::passesFor(const trace::Workload &workload) const
{
    uint32_t passes = (trace::kNumPksMetrics + _params.metricsPerPass -
                       1) /
                      _params.metricsPerPass;
    if (workload.suite() == "mlperf")
        passes += _params.extraPassesMlperf;
    return passes;
}

double
NsightProfiler::collectionHours(const trace::Workload &workload,
                                const gpu::WorkloadResult &golden) const
{
    return hoursFromPerInvocationUs(
        workload,
        accumulateGoldenCosts(workload, golden, _params)
            .nsightPerInvocationUs);
}

double
NsightProfiler::hoursFromPerInvocationUs(
    const trace::Workload &workload, double per_invocation_us) const
{
    double scale = paperScale(workload);

    // Super-linear accumulation at paper scale: the i-th profiled
    // invocation costs (1 + growth * i / 100k) times the base cost.
    // Summed in closed form over n invocations.
    double n = static_cast<double>(workload.numInvocations()) * scale;
    double growth = _params.nsightGrowthPer100k / 1e5;
    double total_us =
        per_invocation_us * (n + growth * n * (n - 1.0) / 2.0);

    return total_us / 3.6e9;
}

GoldenCostSums
accumulateGoldenCosts(const trace::Workload &workload,
                      const gpu::WorkloadResult &golden,
                      const ProfilingCostParams &params)
{
    SIEVE_ASSERT(golden.perInvocation.size() ==
                     workload.numInvocations(),
                 "golden results do not match workload");

    static obs::Counter &c_costs =
        obs::counter("profiler.golden_costs");
    c_costs.add();
    obs::Span span("profiler", "golden-costs:" + workload.name());

    // NVBit: one instrumented run -- native execution inflated by the
    // instrumentation slowdown, plus a fixed callback cost per
    // invocation. Nsight: every pass replays the kernel natively and
    // pays the save/restore overhead; the sum is averaged into a
    // per-invocation cost. Both accumulate over the same single walk,
    // each with its own accumulator, so term order matches the
    // profilers' historical independent loops exactly.
    double passes = NsightProfiler(params).passesFor(workload);

    GoldenCostSums sums;
    for (const auto &r : golden.perInvocation) {
        sums.nvbitInstrumentedUs += r.timeUs * params.nvbitSlowdown +
                                    params.nvbitPerInvocationUs;
        sums.nsightPerInvocationUs +=
            passes * (r.timeUs + params.nsightReplayOverheadUs);
    }
    sums.nsightPerInvocationUs /=
        static_cast<double>(golden.perInvocation.size());
    return sums;
}

ProfilingTimes
estimateProfilingTimes(const trace::Workload &workload,
                       const gpu::WorkloadResult &golden,
                       ProfilingCostParams params)
{
    GoldenCostSums sums =
        accumulateGoldenCosts(workload, golden, params);

    ProfilingTimes times;
    times.nvbitHours = NvbitProfiler(params).hoursFromInstrumentedUs(
        workload, sums.nvbitInstrumentedUs);
    times.nsightHours =
        NsightProfiler(params).hoursFromPerInvocationUs(
            workload, sums.nsightPerInvocationUs);
    return times;
}

} // namespace sieve::profiler
