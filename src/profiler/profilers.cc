#include "profiler/profilers.hh"

#include <cmath>

#include "common/logging.hh"
#include "trace/instruction_mix.hh"
#include "trace/profile_io.hh"

namespace sieve::profiler {

namespace {

/** Paper-scale extrapolation factor for a generated workload. */
double
paperScale(const trace::Workload &workload)
{
    if (workload.paperInvocations() == 0 ||
        workload.numInvocations() == 0)
        return 1.0;
    return static_cast<double>(workload.paperInvocations()) /
           static_cast<double>(workload.numInvocations());
}

} // namespace

NvbitProfiler::NvbitProfiler(ProfilingCostParams params)
    : _params(params)
{
}

CsvTable
NvbitProfiler::collect(const trace::Workload &workload) const
{
    return trace::sieveProfileTable(workload);
}

double
NvbitProfiler::collectionHours(const trace::Workload &workload,
                               const gpu::WorkloadResult &golden) const
{
    SIEVE_ASSERT(golden.perInvocation.size() ==
                     workload.numInvocations(),
                 "golden results do not match workload");

    // One instrumented run: native execution inflated by the
    // instrumentation slowdown, plus a fixed callback cost per
    // invocation.
    double us = 0.0;
    for (const auto &r : golden.perInvocation)
        us += r.timeUs * _params.nvbitSlowdown +
              _params.nvbitPerInvocationUs;

    return us * paperScale(workload) / 3.6e9;
}

NsightProfiler::NsightProfiler(ProfilingCostParams params)
    : _params(params)
{
}

CsvTable
NsightProfiler::collect(const trace::Workload &workload) const
{
    return trace::pksProfileTable(workload);
}

uint32_t
NsightProfiler::passesFor(const trace::Workload &workload) const
{
    uint32_t passes = (trace::kNumPksMetrics + _params.metricsPerPass -
                       1) /
                      _params.metricsPerPass;
    if (workload.suite() == "mlperf")
        passes += _params.extraPassesMlperf;
    return passes;
}

double
NsightProfiler::collectionHours(const trace::Workload &workload,
                                const gpu::WorkloadResult &golden) const
{
    SIEVE_ASSERT(golden.perInvocation.size() ==
                     workload.numInvocations(),
                 "golden results do not match workload");

    double passes = passesFor(workload);
    double scale = paperScale(workload);

    // Average per-invocation cost of one profiled invocation: every
    // pass replays the kernel natively and pays the save/restore
    // overhead.
    double per_inv_us = 0.0;
    for (const auto &r : golden.perInvocation)
        per_inv_us += passes *
                      (r.timeUs + _params.nsightReplayOverheadUs);
    per_inv_us /= static_cast<double>(golden.perInvocation.size());

    // Super-linear accumulation at paper scale: the i-th profiled
    // invocation costs (1 + growth * i / 100k) times the base cost.
    // Summed in closed form over n invocations.
    double n = static_cast<double>(workload.numInvocations()) * scale;
    double growth = _params.nsightGrowthPer100k / 1e5;
    double total_us = per_inv_us * (n + growth * n * (n - 1.0) / 2.0);

    return total_us / 3.6e9;
}

ProfilingTimes
estimateProfilingTimes(const trace::Workload &workload,
                       const gpu::WorkloadResult &golden,
                       ProfilingCostParams params)
{
    ProfilingTimes times;
    times.nvbitHours =
        NvbitProfiler(params).collectionHours(workload, golden);
    times.nsightHours =
        NsightProfiler(params).collectionHours(workload, golden);
    return times;
}

} // namespace sieve::profiler
