/**
 * @file
 * Profiler front-ends and their cost models.
 *
 * Sieve profiles one characteristic (dynamic instruction count) with a
 * light-weight NVBit-style binary-instrumentation pass; PKS collects
 * all 12 Table II characteristics with an Nsight-Compute-style
 * profiler that replays every kernel invocation multiple times, saves
 * and restores device memory between passes, and (as the paper
 * observes in Section V-C) slows down super-linearly as the number of
 * profiled invocations grows. The cost models here reproduce the
 * profiling-time gap of Fig. 7 from that cost structure.
 *
 * Profiling time is reported at *paper scale*: per-invocation costs
 * computed on the generated workload are extrapolated to the Table I
 * invocation counts, like for like with the paper's setup.
 */

#ifndef SIEVE_PROFILER_PROFILERS_HH
#define SIEVE_PROFILER_PROFILERS_HH

#include <cstdint>
#include <string>

#include "common/csv.hh"
#include "common/error.hh"
#include "gpu/hardware_executor.hh"
#include "trace/workload.hh"
#include "trace/workload_stream.hh"

namespace sieve::profiler {

/** Tunable constants of the profiling cost models. */
struct ProfilingCostParams
{
    /** NVBit instrumented-execution slowdown versus native. */
    double nvbitSlowdown = 3.0;

    /** NVBit per-invocation callback/flush overhead (microseconds). */
    double nvbitPerInvocationUs = 5.0;

    /** Metrics collected per Nsight replay pass. */
    uint32_t metricsPerPass = 3;

    /**
     * Extra replay passes for workloads with a richer instruction-
     * type repertoire (the paper names this as the reason MLPerf
     * profiles are costlier than Cactus ones).
     */
    uint32_t extraPassesMlperf = 4;

    /** Per-invocation, per-pass replay overhead: kernel relaunch plus
     *  device-memory save/restore (microseconds). */
    double nsightReplayOverheadUs = 2000.0;

    /**
     * Super-linear growth: the per-invocation cost multiplier
     * increases by this factor per 100k invocations profiled
     * (Nsight "becomes progressively slower", Section V-C).
     */
    double nsightGrowthPer100k = 1.0;
};

/** Simulated wall-clock cost of profiling one workload. */
struct ProfilingTimes
{
    double nvbitHours = 0.0;   //!< Sieve profile (instruction count)
    double nsightHours = 0.0;  //!< PKS profile (12 metrics)

    /** Profiling-time speedup of Sieve over PKS (Fig. 7). */
    double speedup() const
    {
        return nvbitHours > 0.0 ? nsightHours / nvbitHours : 0.0;
    }
};

/**
 * NVBit-style instrumentation profiler: emits the Sieve profile
 * (kernel, invocation, instruction count, CTA size).
 */
class NvbitProfiler
{
  public:
    explicit NvbitProfiler(ProfilingCostParams params = {});

    /** The profile CSV a Sieve run consumes. */
    CsvTable collect(const trace::Workload &workload) const;

    /**
     * Out-of-core collect(): stream the workload's invocation records
     * one bounded window at a time and append rows as they arrive.
     * Byte-identical to collect() on the resident load of the same
     * file (same rows, same order, same Stable
     * profiler.nvbit.collects count).
     */
    Expected<CsvTable>
    collectStream(trace::WorkloadStreamReader &reader,
                  const trace::IngestBudget &budget) const;

    /**
     * Simulated collection time at paper scale.
     * @param golden native per-invocation timing of the workload
     */
    double collectionHours(const trace::Workload &workload,
                           const gpu::WorkloadResult &golden) const;

    /**
     * Collection time from an already-accumulated instrumented-run
     * cost (see accumulateGoldenCosts), avoiding a second walk of the
     * golden results when both profilers are estimated together.
     */
    double hoursFromInstrumentedUs(const trace::Workload &workload,
                                   double instrumented_us) const;

  private:
    ProfilingCostParams _params;
};

/**
 * Nsight-Compute-style profiler: emits the full 12-metric PKS
 * profile via multi-pass kernel replay.
 */
class NsightProfiler
{
  public:
    explicit NsightProfiler(ProfilingCostParams params = {});

    /** The profile CSV a PKS run consumes. */
    CsvTable collect(const trace::Workload &workload) const;

    /** Replay passes needed for a workload's 12-metric profile. */
    uint32_t passesFor(const trace::Workload &workload) const;

    /** Simulated collection time at paper scale. */
    double collectionHours(const trace::Workload &workload,
                           const gpu::WorkloadResult &golden) const;

    /**
     * Collection time from an already-accumulated average profiled
     * cost per invocation (see accumulateGoldenCosts), avoiding a
     * second walk of the golden results.
     */
    double hoursFromPerInvocationUs(const trace::Workload &workload,
                                    double per_invocation_us) const;

  private:
    ProfilingCostParams _params;
};

/**
 * Both profilers' per-invocation cost sums from a *single* walk of
 * the golden results. Each accumulator receives exactly the same
 * per-element terms, in the same order, as the profiler's own
 * standalone loop, so the derived hours are bit-identical to calling
 * the two collectionHours() independently.
 */
struct GoldenCostSums
{
    /** Total NVBit instrumented-run cost (microseconds). */
    double nvbitInstrumentedUs = 0.0;

    /** Average Nsight profiled cost per invocation (microseconds). */
    double nsightPerInvocationUs = 0.0;
};

/** Accumulate both profilers' cost sums in one golden-results pass. */
GoldenCostSums accumulateGoldenCosts(const trace::Workload &workload,
                                     const gpu::WorkloadResult &golden,
                                     const ProfilingCostParams &params);

/** Convenience: both profilers' costs for one workload. */
ProfilingTimes estimateProfilingTimes(
    const trace::Workload &workload, const gpu::WorkloadResult &golden,
    ProfilingCostParams params = {});

} // namespace sieve::profiler

#endif // SIEVE_PROFILER_PROFILERS_HH
