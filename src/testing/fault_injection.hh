/**
 * @file
 * Deterministic fault-injection harness for the ingestion surface.
 *
 * The robustness contract of the try* parsers (profile CSVs,
 * workload binaries, SASS traces) is: any input, however mangled,
 * either parses to a semantically valid value or comes back as a
 * structured Error — never a crash, never silently-wrong data. This
 * harness checks that contract by construction: it derives a corpus
 * of corrupted inputs from clean baselines using a seeded splittable
 * Rng (bit-flips, truncation, field deletion, NaN/Inf/overflow
 * injection), replays each case through the recoverable parsers, and
 * classifies every outcome:
 *
 *   - StructuredError: the parser rejected the input with a
 *     non-empty structured error. Expected and fine.
 *   - BenignAccept: the mutation kept the input valid (e.g. a bit
 *     flip inside a kernel name). Accepted values must pass the
 *     *fixpoint check*: serializing the parse and re-parsing the
 *     serialization must reproduce the exact same value (compared in
 *     canonical byte form).
 *   - SilentCorruption: the parser accepted the input but the
 *     fixpoint check failed, or it threw. This is the bug class the
 *     harness exists to catch, and it fails the run.
 *
 * Everything is seeded: case i of format F under seed S is the same
 * bytes on every machine at any worker count, so a failing case
 * reproduces from its (seed, format, index) coordinates alone.
 */

#ifndef SIEVE_TESTING_FAULT_INJECTION_HH
#define SIEVE_TESTING_FAULT_INJECTION_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"

namespace sieve::testing {

/** One corruption strategy. */
enum class FaultOp : uint8_t {
    BitFlip,        //!< flip one random bit
    Truncate,       //!< cut the input short at a random point
    DeleteField,    //!< drop one field (text) / byte span (binary)
    InjectNaN,      //!< overwrite a field with NaN
    InjectInf,      //!< overwrite a field with infinity
    InjectOverflow, //!< overwrite with an out-of-range / negative value
};

/** Number of FaultOp strategies. */
inline constexpr size_t kNumFaultOps = 6;

/** Short name of a fault op ("bit-flip", ...). */
const char *faultOpName(FaultOp op);

/**
 * Seeded corruption engine. Mutation `index` of corpus `label` is a
 * pure function of (seed, label, index): the rng stream is
 * Rng(seed).split(label).split(index), so corpora are reproducible
 * and embarrassingly parallel.
 */
class Corruptor
{
  public:
    /** One derived corrupted input. */
    struct Mutation
    {
        FaultOp op = FaultOp::BitFlip;
        std::string bytes;
    };

    explicit Corruptor(uint64_t seed) : _seed(seed) {}

    /**
     * Derive mutation `index` of `label`'s corpus from `clean`.
     * `text` selects field-aware mutations (CSV/trace lines) over
     * byte-span mutations (binary formats).
     */
    Mutation mutate(std::string_view clean, std::string_view label,
                    uint64_t index, bool text) const;

    uint64_t seed() const { return _seed; }

  private:
    uint64_t _seed;
};

/**
 * RAII temporary file holding given bytes — the disk-backed face of
 * a corrupted input, for exercising the file-based entry points
 * (tryLoadWorkloadFile, tryReadTraceFile, CsvTable::tryReadFile).
 * The file lives in the system temp directory under a
 * process-unique name and is removed on destruction.
 */
class FaultyFile
{
  public:
    explicit FaultyFile(std::string_view bytes,
                        std::string_view stem = "fault");
    ~FaultyFile();

    FaultyFile(const FaultyFile &) = delete;
    FaultyFile &operator=(const FaultyFile &) = delete;

    /** Path of the materialized file. */
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** Ingestion formats the harness covers. */
enum class IngestFormat : uint8_t {
    SieveProfileCsv,
    PksProfileCsv,
    WorkloadBinary,
    SassTrace,
};

/** Number of covered formats. */
inline constexpr size_t kNumIngestFormats = 4;

/** Corpus label / display name of a format ("sieve-profile-csv"). */
const char *ingestFormatName(IngestFormat format);

/** How one fuzz case ended. */
enum class FuzzOutcome : uint8_t {
    StructuredError, //!< rejected with a well-formed Error
    BenignAccept,    //!< accepted and passed the fixpoint check
    SilentCorruption,//!< accepted but wrong, threw, or empty error
};

/** Per-format outcome counts. */
struct FormatFuzzStats
{
    std::string format;
    size_t cases = 0;
    size_t structuredErrors = 0;
    size_t benignAccepts = 0;
    size_t failures = 0;
};

/** Aggregate result of one harness run. */
struct FuzzReport
{
    std::vector<FormatFuzzStats> formats;

    /** One line per failing case: "(format, index, op): why". */
    std::vector<std::string> failures;

    /** Total cases across formats. */
    size_t totalCases() const;

    /** True when no case was classified SilentCorruption. */
    bool ok() const { return failures.empty(); }

    /**
     * Multi-line per-format summary table plus the failure list.
     * Deterministic: byte-identical at any worker count.
     */
    std::string summary() const;
};

/** Harness configuration. */
struct FuzzOptions
{
    uint64_t seed = 0x5143;          //!< corpus seed
    size_t mutationsPerFormat = 200; //!< cases per format
    size_t jobs = 0;                 //!< 0 = ThreadPool::defaultJobs()
};

/**
 * Run the seeded corruptor sweep over every ingestion format and
 * classify each case. The report (including the failure list) is
 * byte-identical for any `jobs` value.
 */
FuzzReport runFuzzIngest(const FuzzOptions &opts = {});

/**
 * The clean baseline inputs the corpora are derived from, exposed
 * for tests: a small deterministic workload and the serialized
 * baseline bytes of one format.
 */
std::string cleanIngestInput(IngestFormat format);

} // namespace sieve::testing

#endif // SIEVE_TESTING_FAULT_INJECTION_HH
