#include "testing/fault_injection.hh"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cctype>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/thread_pool.hh"
#include "trace/profile_io.hh"
#include "trace/sass_trace.hh"
#include "trace/workload_io.hh"

namespace sieve::testing {

namespace {

// --- corruption primitives ---

/** (offset, length) spans of the fields of one line. Fields are
 * comma-separated when the line contains a comma (CSV), otherwise
 * whitespace-separated (trace) — matching how the parsers split. */
std::vector<std::pair<size_t, size_t>>
fieldSpans(std::string_view line)
{
    std::vector<std::pair<size_t, size_t>> spans;
    if (line.find(',') != std::string_view::npos) {
        size_t start = 0;
        while (true) {
            size_t comma = line.find(',', start);
            size_t end =
                comma == std::string_view::npos ? line.size() : comma;
            spans.emplace_back(start, end - start);
            if (comma == std::string_view::npos)
                break;
            start = comma + 1;
        }
        return spans;
    }
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && std::isspace(
                   static_cast<unsigned char>(line[i])))
            ++i;
        size_t start = i;
        while (i < line.size() && !std::isspace(
                   static_cast<unsigned char>(line[i])))
            ++i;
        if (i > start)
            spans.emplace_back(start, i - start);
    }
    return spans;
}

/** (offset, length) spans of each line, without the newline. */
std::vector<std::pair<size_t, size_t>>
lineSpans(std::string_view text)
{
    std::vector<std::pair<size_t, size_t>> spans;
    size_t start = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        size_t end = nl == std::string_view::npos ? text.size() : nl;
        if (end > start)
            spans.emplace_back(start, end - start);
        if (nl == std::string_view::npos)
            break;
        start = nl + 1;
    }
    return spans;
}

/**
 * Replace (replacement set) or delete (replacement empty) one random
 * field of one random non-empty line. No-op on field-free text.
 */
void
mutateTextField(std::string &bytes, Rng &rng,
                std::optional<std::string> replacement)
{
    auto lines = lineSpans(bytes);
    if (lines.empty())
        return;
    auto [loff, llen] = lines[static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(lines.size()) - 1))];
    std::string_view line(bytes.data() + loff, llen);
    auto fields = fieldSpans(line);
    if (fields.empty())
        return;
    size_t f = static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(fields.size()) - 1));
    size_t fstart = loff + fields[f].first;
    size_t flen = fields[f].second;

    if (replacement) {
        bytes.replace(fstart, flen, *replacement);
        return;
    }
    // Deletion: also swallow one adjoining delimiter so a CSV cell
    // disappears instead of becoming empty.
    if (fields.size() == 1) {
        bytes.erase(loff, llen);
        return;
    }
    if (f > 0) {
        size_t prev_end = loff + fields[f - 1].first +
                          fields[f - 1].second;
        bytes.erase(prev_end, fstart + flen - prev_end);
    } else {
        size_t next_start = loff + fields[f + 1].first;
        bytes.erase(fstart, next_start - fstart);
    }
}

/** Overwrite up to 8 bytes at a random offset with `pattern`. */
void
overwriteBytes(std::string &bytes, Rng &rng, uint64_t pattern)
{
    size_t n = std::min<size_t>(8, bytes.size());
    size_t max_pos = bytes.size() - n;
    size_t pos = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(max_pos)));
    std::memcpy(bytes.data() + pos, &pattern, n);
}

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

const char *
faultOpName(FaultOp op)
{
    switch (op) {
    case FaultOp::BitFlip:        return "bit-flip";
    case FaultOp::Truncate:       return "truncate";
    case FaultOp::DeleteField:    return "delete-field";
    case FaultOp::InjectNaN:      return "inject-nan";
    case FaultOp::InjectInf:      return "inject-inf";
    case FaultOp::InjectOverflow: return "inject-overflow";
    }
    panic("unknown fault op ", static_cast<int>(op));
}

Corruptor::Mutation
Corruptor::mutate(std::string_view clean, std::string_view label,
                  uint64_t index, bool text) const
{
    Rng rng = Rng(_seed).split(label).split(index);
    Mutation m;
    m.op = static_cast<FaultOp>(rng.uniformInt(
        0, static_cast<int64_t>(kNumFaultOps) - 1));
    m.bytes.assign(clean.begin(), clean.end());
    if (m.bytes.empty())
        return m;

    switch (m.op) {
    case FaultOp::BitFlip: {
        size_t pos = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(m.bytes.size()) - 1));
        m.bytes[pos] = static_cast<char>(
            m.bytes[pos] ^ (1u << rng.uniformInt(0, 7)));
        break;
    }
    case FaultOp::Truncate: {
        m.bytes.resize(static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(m.bytes.size()) - 1)));
        break;
    }
    case FaultOp::DeleteField: {
        if (text) {
            mutateTextField(m.bytes, rng, std::nullopt);
        } else {
            size_t pos = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(m.bytes.size()) - 1));
            size_t len = std::min<size_t>(
                static_cast<size_t>(rng.uniformInt(1, 8)),
                m.bytes.size() - pos);
            m.bytes.erase(pos, len);
        }
        break;
    }
    case FaultOp::InjectNaN: {
        if (text)
            mutateTextField(m.bytes, rng, std::string("nan"));
        else
            overwriteBytes(
                m.bytes, rng,
                doubleBits(std::numeric_limits<double>::quiet_NaN()));
        break;
    }
    case FaultOp::InjectInf: {
        if (text)
            mutateTextField(m.bytes, rng, std::string("inf"));
        else
            overwriteBytes(
                m.bytes, rng,
                doubleBits(std::numeric_limits<double>::infinity()));
        break;
    }
    case FaultOp::InjectOverflow: {
        if (text) {
            static const char *kOverflows[] = {
                "-17",                     // negative into unsigned
                "36893488147419103232",    // 2^65
                "1e+400",                  // double overflow
            };
            mutateTextField(
                m.bytes, rng,
                std::string(kOverflows[rng.uniformInt(0, 2)]));
        } else {
            overwriteBytes(m.bytes, rng, ~uint64_t{0});
        }
        break;
    }
    }
    return m;
}

FaultyFile::FaultyFile(std::string_view bytes, std::string_view stem)
{
    static std::atomic<uint64_t> counter{0};
    std::filesystem::path dir =
        std::filesystem::temp_directory_path();
    _path = (dir / (std::string(stem) + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1)) + ".tmp"))
                .string();
    std::ofstream os(_path, std::ios::binary);
    if (!os)
        fatal("cannot create fault-injection file '", _path, "'");
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

FaultyFile::~FaultyFile()
{
    std::error_code ec;
    std::filesystem::remove(_path, ec);
}

const char *
ingestFormatName(IngestFormat format)
{
    switch (format) {
    case IngestFormat::SieveProfileCsv: return "sieve-profile-csv";
    case IngestFormat::PksProfileCsv:   return "pks-profile-csv";
    case IngestFormat::WorkloadBinary:  return "workload-binary";
    case IngestFormat::SassTrace:       return "sass-trace";
    }
    panic("unknown ingest format ", static_cast<int>(format));
}

namespace {

// --- clean baselines ---

/** Small deterministic workload the corpora are derived from. */
trace::Workload
makeFuzzWorkload()
{
    trace::Workload wl("fuzz", "corpus");
    wl.setPaperInvocations(24000);
    wl.addKernel("alpha_kernel");
    wl.addKernel("beta_kernel");
    wl.addKernel("gamma_kernel");
    for (uint32_t i = 0; i < 12; ++i) {
        trace::KernelInvocation inv;
        inv.kernelId = i % 3;
        inv.launch.grid = {16 + i, 2, 1};
        inv.launch.cta = {64u << (i % 3), 1, 1};
        inv.launch.sharedMemBytes = 1024 * (i % 4);
        inv.launch.regsPerThread = 32 + (i % 3) * 8;
        inv.mix.instructionCount = 1000 + 37 * i;
        inv.mix.threadGlobalLoads = 100 + i;
        inv.mix.threadGlobalStores = 50 + i;
        inv.mix.threadSharedLoads = 10 * i;
        inv.mix.coalescedGlobalLoads = 80 + i;
        inv.mix.divergenceEfficiency = 0.5 + 0.04 * i;
        inv.mix.numThreadBlocks = inv.launch.numCtas();
        inv.memory.l1Locality = 0.25 + 0.05 * (i % 5);
        inv.memory.l2Locality = 0.5;
        inv.memory.workingSetBytes = uint64_t{1} << (16 + i % 4);
        inv.memory.ilp = 2.0 + 0.25 * (i % 3);
        inv.noiseSeed = 0x9000 + i;
        wl.addInvocation(std::move(inv));
    }
    return wl;
}

/** Small deterministic SASS trace exercising every opcode class. */
trace::KernelTrace
makeFuzzTrace()
{
    using trace::Opcode;
    trace::KernelTrace kt;
    kt.kernelName = "fuzz_kernel";
    kt.invocationId = 7;
    kt.launch.grid = {32, 1, 1};
    kt.launch.cta = {128, 1, 1};
    kt.launch.sharedMemBytes = 2048;
    kt.launch.regsPerThread = 40;
    kt.ctaReplication = 4;

    const Opcode body[] = {
        Opcode::Ldg,  Opcode::FFma, Opcode::IAdd, Opcode::Lds,
        Opcode::Sts,  Opcode::Mufu, Opcode::Bra,  Opcode::DFma,
        Opcode::Stg,  Opcode::Atom,
    };
    for (int c = 0; c < 2; ++c) {
        trace::CtaTrace cta;
        for (int w = 0; w < 2; ++w) {
            trace::WarpTrace warp;
            uint64_t addr = 4096 * (c * 2 + w);
            for (size_t i = 0; i < std::size(body); ++i) {
                trace::SassInstruction inst;
                inst.opcode = body[i];
                inst.destReg = static_cast<uint8_t>(8 + i);
                inst.srcReg0 = static_cast<uint8_t>(4 + i);
                inst.srcReg1 = static_cast<uint8_t>(i);
                inst.activeLanes = 32;
                inst.sectors =
                    inst.opcode == Opcode::Bra
                        ? 16
                        : static_cast<uint8_t>(1 + i % 4);
                inst.lineAddress = addr + i * 4;
                warp.instructions.push_back(inst);
            }
            trace::SassInstruction exit;
            exit.opcode = Opcode::Exit;
            warp.instructions.push_back(exit);
            cta.warps.push_back(std::move(warp));
        }
        kt.ctas.push_back(std::move(cta));
    }
    return kt;
}

// --- canonical (re)serialization for the fixpoint check ---

/** Shortest exact decimal rendering (from_chars round-trips it). */
std::string
fmtDouble(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
canonSieveRows(const std::vector<trace::SieveProfileRow> &rows)
{
    CsvTable table({"kernel", "invocation", "instruction_count",
                    "cta_size"});
    for (const auto &row : rows) {
        table.addRow({row.kernelName, std::to_string(row.invocationId),
                      std::to_string(row.instructionCount),
                      std::to_string(row.ctaSize)});
    }
    std::ostringstream os;
    table.write(os);
    return os.str();
}

std::string
canonPksRows(const std::vector<std::vector<double>> &rows)
{
    std::vector<std::string> header;
    for (const auto &name : trace::InstructionMix::metricNames())
        header.push_back(name);
    CsvTable table(std::move(header));
    for (const auto &features : rows) {
        std::vector<std::string> cells;
        cells.reserve(features.size());
        for (double v : features)
            cells.push_back(fmtDouble(v));
        table.addRow(std::move(cells));
    }
    std::ostringstream os;
    table.write(os);
    return os.str();
}

/**
 * Parse `bytes` as `format` and, on acceptance, return the canonical
 * serialization of the parsed value.
 */
Expected<std::string>
canonicalize(IngestFormat format, const std::string &bytes,
             const std::string &source)
{
    switch (format) {
    case IngestFormat::SieveProfileCsv: {
        std::istringstream is(bytes);
        auto table = CsvTable::tryRead(is, source);
        if (!table)
            return table.error();
        auto rows = trace::tryParseSieveProfile(table.value());
        if (!rows)
            return rows.error();
        return canonSieveRows(rows.value());
    }
    case IngestFormat::PksProfileCsv: {
        std::istringstream is(bytes);
        auto table = CsvTable::tryRead(is, source);
        if (!table)
            return table.error();
        auto rows = trace::tryParsePksProfile(table.value());
        if (!rows)
            return rows.error();
        return canonPksRows(rows.value());
    }
    case IngestFormat::WorkloadBinary: {
        std::istringstream is(bytes);
        auto wl = trace::tryLoadWorkload(is, source);
        if (!wl)
            return wl.error();
        std::ostringstream os;
        trace::saveWorkload(wl.value(), os);
        return os.str();
    }
    case IngestFormat::SassTrace: {
        std::istringstream is(bytes);
        auto kt = trace::tryReadTrace(is, source);
        if (!kt)
            return kt.error();
        std::ostringstream os;
        trace::writeTrace(kt.value(), os);
        return os.str();
    }
    }
    panic("unknown ingest format ", static_cast<int>(format));
}

constexpr IngestFormat kFormats[kNumIngestFormats] = {
    IngestFormat::SieveProfileCsv,
    IngestFormat::PksProfileCsv,
    IngestFormat::WorkloadBinary,
    IngestFormat::SassTrace,
};

bool
isTextFormat(IngestFormat format)
{
    return format != IngestFormat::WorkloadBinary;
}

} // namespace

std::string
cleanIngestInput(IngestFormat format)
{
    trace::Workload wl = makeFuzzWorkload();
    switch (format) {
    case IngestFormat::SieveProfileCsv: {
        std::ostringstream os;
        trace::sieveProfileTable(wl).write(os);
        return os.str();
    }
    case IngestFormat::PksProfileCsv: {
        std::ostringstream os;
        trace::pksProfileTable(wl).write(os);
        return os.str();
    }
    case IngestFormat::WorkloadBinary: {
        std::ostringstream os;
        trace::saveWorkload(wl, os);
        return os.str();
    }
    case IngestFormat::SassTrace: {
        std::ostringstream os;
        trace::writeTrace(makeFuzzTrace(), os);
        return os.str();
    }
    }
    panic("unknown ingest format ", static_cast<int>(format));
}

size_t
FuzzReport::totalCases() const
{
    size_t total = 0;
    for (const auto &f : formats)
        total += f.cases;
    return total;
}

std::string
FuzzReport::summary() const
{
    size_t errors = 0, accepts = 0, failed = 0;
    for (const auto &f : formats) {
        errors += f.structuredErrors;
        accepts += f.benignAccepts;
        failed += f.failures;
    }
    std::string out = "fuzz-ingest: " + std::to_string(totalCases()) +
                      " cases, " + std::to_string(errors) +
                      " structured errors, " + std::to_string(accepts) +
                      " benign accepts, " + std::to_string(failed) +
                      " failures";
    for (const auto &f : formats) {
        out += "\n  " + f.format + ": " + std::to_string(f.cases) +
               " cases, " + std::to_string(f.structuredErrors) +
               " errors, " + std::to_string(f.benignAccepts) +
               " accepts, " + std::to_string(f.failures) +
               " failures";
    }
    for (const auto &failure : failures)
        out += "\nFAIL " + failure;
    return out;
}

FuzzReport
runFuzzIngest(const FuzzOptions &opts)
{
    struct CaseOutcome
    {
        FuzzOutcome outcome = FuzzOutcome::StructuredError;
        FaultOp op = FaultOp::BitFlip;
        std::string detail;
    };

    Corruptor corruptor(opts.seed);
    std::array<std::string, kNumIngestFormats> cleans;
    for (size_t f = 0; f < kNumIngestFormats; ++f)
        cleans[f] = cleanIngestInput(kFormats[f]);

    const size_t per = opts.mutationsPerFormat;
    const size_t total = per * kNumIngestFormats;
    ThreadPool pool(opts.jobs);

    auto outcomes = parallelMap(pool, total, [&](size_t i) {
        const size_t f = i / per;
        const uint64_t index = i % per;
        const IngestFormat format = kFormats[f];
        const char *name = ingestFormatName(format);

        CaseOutcome out;
        Corruptor::Mutation m = corruptor.mutate(
            cleans[f], name, index, isTextFormat(format));
        out.op = m.op;
        std::string source = std::string("fuzz:") + name + ":" +
                             std::to_string(index);
        try {
            auto first = canonicalize(format, m.bytes, source);
            if (!first.ok()) {
                if (first.error().message.empty()) {
                    out.outcome = FuzzOutcome::SilentCorruption;
                    out.detail = "rejected with an empty error message";
                } else {
                    out.outcome = FuzzOutcome::StructuredError;
                }
                return out;
            }
            auto second = canonicalize(format, first.value(),
                                       source + ":fixpoint");
            if (!second.ok()) {
                out.outcome = FuzzOutcome::SilentCorruption;
                out.detail =
                    "accepted, but its canonical form re-parses "
                    "with: " + second.error().toString();
            } else if (second.value() != first.value()) {
                out.outcome = FuzzOutcome::SilentCorruption;
                out.detail = "accepted, but parse -> serialize -> "
                             "parse is not a fixpoint";
            } else {
                out.outcome = FuzzOutcome::BenignAccept;
            }
        } catch (const std::exception &ex) {
            out.outcome = FuzzOutcome::SilentCorruption;
            out.detail = std::string("uncaught exception: ") +
                         ex.what();
        }
        return out;
    });

    // Serial in-order aggregation: the report is jobs-invariant.
    FuzzReport report;
    for (size_t f = 0; f < kNumIngestFormats; ++f) {
        FormatFuzzStats stats;
        stats.format = ingestFormatName(kFormats[f]);
        for (size_t index = 0; index < per; ++index) {
            const CaseOutcome &out = outcomes[f * per + index];
            ++stats.cases;
            switch (out.outcome) {
            case FuzzOutcome::StructuredError:
                ++stats.structuredErrors;
                break;
            case FuzzOutcome::BenignAccept:
                ++stats.benignAccepts;
                break;
            case FuzzOutcome::SilentCorruption:
                ++stats.failures;
                report.failures.push_back(
                    "(" + stats.format + ", case " +
                    std::to_string(index) + ", " +
                    faultOpName(out.op) + "): " + out.detail);
                break;
            }
        }
        report.formats.push_back(std::move(stats));
    }
    return report;
}

} // namespace sieve::testing
