#include "io/mmap_file.hh"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SIEVE_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SIEVE_IO_HAVE_MMAP 0
#endif

#include "obs/metrics.hh"

namespace sieve::io {

namespace {

obs::Counter &
mmapFilesCounter()
{
    static obs::Counter &c = obs::counter("io.mmap.files");
    return c;
}

obs::Counter &
mmapBytesCounter()
{
    static obs::Counter &c = obs::counter("io.mmap.bytes");
    return c;
}

obs::Counter &
fallbackCounter()
{
    static obs::Counter &c = obs::counter("io.mmap.fallbacks");
    return c;
}

Error
openError(const std::string &path)
{
    return ingestError(ErrorKind::Io,
                       "cannot open '" + path + "' for reading", path, 0, 0);
}

/** One buffered read of the whole file (mmap-less platforms/files). */
Expected<MmapFile>
tryOpenBuffered(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return openError(path);

    std::vector<uint8_t> bytes;
    uint8_t chunk[1 << 16];
    size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return openError(path);
    return MmapFile::fromBuffer(path, std::move(bytes));
}

} // namespace

MmapFile::~MmapFile()
{
    reset();
}

void
MmapFile::reset()
{
#if SIEVE_IO_HAVE_MMAP
    if (_mapped && _data != nullptr)
        ::munmap(const_cast<uint8_t *>(_data), _size);
#endif
    _data = nullptr;
    _size = 0;
    _mapped = false;
    _buffer.clear();
    _path.clear();
}

void
MmapFile::moveFrom(MmapFile &other)
{
    _data = other._data;
    _size = other._size;
    _mapped = other._mapped;
    _buffer = std::move(other._buffer);
    _path = std::move(other._path);
    if (!_mapped && !_buffer.empty())
        _data = _buffer.data();
    other._data = nullptr;
    other._size = 0;
    other._mapped = false;
    other._buffer.clear();
    other._path.clear();
}

MmapFile
MmapFile::fromBuffer(const std::string &path, std::vector<uint8_t> bytes)
{
    MmapFile file;
    file._path = path;
    file._buffer = std::move(bytes);
    file._data = file._buffer.empty() ? nullptr : file._buffer.data();
    file._size = file._buffer.size();
    file._mapped = false;
    fallbackCounter().add();
    return file;
}

Expected<MmapFile>
MmapFile::tryOpen(const std::string &path)
{
#if SIEVE_IO_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return openError(path);

    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        // Pipes and other non-regular files cannot be mapped; let
        // the buffered path stream them (or fail with a clean error).
        return tryOpenBuffered(path);
    }

    if (st.st_size == 0) {
        // mmap of length 0 is undefined: an empty file is a valid
        // empty buffered view.
        ::close(fd);
        return tryOpenBuffered(path);
    }

    void *map =
        ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
               MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return tryOpenBuffered(path);

    MmapFile file;
    file._path = path;
    file._data = static_cast<const uint8_t *>(map);
    file._size = static_cast<size_t>(st.st_size);
    file._mapped = true;
    mmapFilesCounter().add();
    mmapBytesCounter().add(file._size);
    return file;
#else
    return tryOpenBuffered(path);
#endif
}

} // namespace sieve::io
